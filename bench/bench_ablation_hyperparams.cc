// Extension bench (not a paper table): sensitivity of ELDA-Net to its three
// documented design knobs — the compression factor d, the embedding
// dimension e, and the embedding anchors (a, b). The paper fixes d=4, e=24,
// (a,b)=(-3,3) (Section V-A) without a sweep; this bench supplies the
// missing ablation and sanity-checks that the paper's operating point is a
// reasonable one on the synthetic cohort.
//
// Flags: --admissions --epochs --runs --full

#include "bench/bench_common.h"
#include "core/elda_net.h"
#include "train/experiment.h"

namespace elda {
namespace {

train::ModelStats RunConfig(const core::EldaNetConfig& config,
                            const train::PreparedExperiment& experiment,
                            const train::TrainerConfig& trainer,
                            int64_t runs) {
  return train::RunRepeated(
      [&](uint64_t seed) {
        core::EldaNetConfig seeded = config;
        seeded.seed = seed;
        return std::make_unique<core::EldaNet>(seeded);
      },
      experiment, trainer, runs);
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/400,
                         /*default_epochs=*/6);
  bench::PrintHeader(
      "Extension: ELDA-Net hyper-parameter ablations",
      "Sweeps the compression factor d, embedding dim e and anchors (a,b)\n"
      "around the paper's operating point (d=4, e=24, a=-3, b=3) on\n"
      "SynthPhysioNet2012 mortality.");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);

  TablePrinter table({"configuration", "AUC-PR", "AUC-ROC", "params"});
  auto add = [&](const std::string& label, const core::EldaNetConfig& cfg) {
    train::ModelStats stats =
        RunConfig(cfg, experiment, scale.trainer, scale.runs);
    table.AddRow({label, TablePrinter::Num(stats.auc_pr.mean, 3),
                  TablePrinter::Num(stats.auc_roc.mean, 3),
                  std::to_string(stats.num_parameters)});
    std::cout << "." << std::flush;
  };

  core::EldaNetConfig base = core::EldaNetConfig::Full();
  add("paper point: d=4, e=24, a/b=+/-3", base);
  for (int64_t d : {2, 8}) {
    core::EldaNetConfig cfg = base;
    cfg.compression = d;
    add("compression d=" + std::to_string(d), cfg);
  }
  for (int64_t e : {12, 48}) {
    core::EldaNetConfig cfg = base;
    cfg.embed_dim = e;
    add("embedding e=" + std::to_string(e), cfg);
  }
  for (float bound : {1.5f, 6.0f}) {
    core::EldaNetConfig cfg = base;
    cfg.lower = -bound;
    cfg.upper = bound;
    add("anchors a/b=+/-" + TablePrinter::Num(bound, 1), cfg);
  }
  std::cout << "\n" << table.ToString();
  std::cout << "\nExpected: a broad plateau around the paper's point; very\n"
               "small d or e underfits the interaction structure, very wide\n"
               "anchors flatten the embedding's sensitivity to the\n"
               "physiological range.\n";
  return 0;
}
