// Shared scaffolding for the table/figure benchmark binaries.
//
// Every binary reproduces one table or figure of the paper. Because the
// build machine is a single CPU core (vs the authors' GPU testbed), the
// default cohort sizes and epoch budgets are scaled down; pass --full for
// paper-scale cohorts (12,000 / 21,139 admissions) or override individual
// knobs (--admissions, --epochs, --runs).

#ifndef ELDA_BENCH_BENCH_COMMON_H_
#define ELDA_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "par/par.h"
#include "synth/simulator.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/table.h"

namespace elda {
namespace bench {

struct BenchScale {
  int64_t physionet_admissions = 0;
  int64_t mimic_admissions = 0;
  train::TrainerConfig trainer;
  int64_t runs = 1;
};

// Parses the common flags out of argv. `extra_flags` extends the accepted
// flag set for binary-specific options; returns the Flags object so callers
// can read them.
inline Flags ParseBenchFlags(int argc, char** argv,
                             std::vector<std::string> extra_flags,
                             BenchScale* scale,
                             int64_t default_admissions = 500,
                             int64_t default_epochs = 8) {
  std::vector<std::string> spec = {"full",       "admissions", "epochs",
                                   "runs",       "batch-size", "lr",
                                   "verbose",    "threads"};
  for (auto& f : extra_flags) spec.push_back(std::move(f));
  Flags flags(argc, argv, spec);
  const bool full = flags.GetBool("full", false);
  scale->physionet_admissions = flags.GetInt(
      "admissions", full ? 12000 : default_admissions);
  scale->mimic_admissions = flags.GetInt(
      "admissions", full ? 21139 : default_admissions);
  scale->trainer.max_epochs = flags.GetInt("epochs", full ? 30 : default_epochs);
  scale->trainer.patience = full ? 5 : 3;
  scale->trainer.batch_size = flags.GetInt("batch-size", 64);
  scale->trainer.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 1e-3));
  scale->trainer.verbose = flags.GetBool("verbose", false);
  scale->runs = flags.GetInt("runs", 1);
  // --threads overrides ELDA_THREADS / hardware_concurrency for the whole
  // binary (0 keeps the environment-derived default).
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) par::SetNumThreads(threads);
  scale->trainer.num_threads = threads;
  return flags;
}

inline synth::CohortConfig ScaledPhysioNet(const BenchScale& scale) {
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = scale.physionet_admissions;
  return config;
}

inline synth::CohortConfig ScaledMimic(const BenchScale& scale) {
  synth::CohortConfig config = synth::SynthMimicIii();
  config.num_admissions = scale.mimic_admissions;
  return config;
}

inline void PrintHeader(const std::string& title, const std::string& notes) {
  std::cout << "\n=== " << title << " ===\n";
  if (!notes.empty()) std::cout << notes << "\n";
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace elda

#endif  // ELDA_BENCH_BENCH_COMMON_H_
