// Shared scaffolding for the table/figure benchmark binaries.
//
// Every binary reproduces one table or figure of the paper. Because the
// build machine is a single CPU core (vs the authors' GPU testbed), the
// default cohort sizes and epoch budgets are scaled down; pass --full for
// paper-scale cohorts (12,000 / 21,139 admissions) or override individual
// knobs (--admissions, --epochs, --runs).

#ifndef ELDA_BENCH_BENCH_COMMON_H_
#define ELDA_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "par/par.h"
#include "synth/simulator.h"
#include "train/trainer.h"
#include "util/argparse.h"
#include "util/flags.h"
#include "util/table.h"

namespace elda {
namespace bench {

struct BenchScale {
  int64_t physionet_admissions = 0;
  int64_t mimic_admissions = 0;
  train::TrainerConfig trainer;
  int64_t runs = 1;
};

// Parses the common flags out of argv. `extra_flags` extends the accepted
// flag set for binary-specific options; returns the Flags object so callers
// can read them.
inline Flags ParseBenchFlags(int argc, char** argv,
                             std::vector<std::string> extra_flags,
                             BenchScale* scale,
                             int64_t default_admissions = 500,
                             int64_t default_epochs = 8) {
  std::vector<std::string> spec = {"full",       "admissions", "epochs",
                                   "runs",       "batch-size", "lr",
                                   "verbose",    "threads"};
  for (auto& f : extra_flags) spec.push_back(std::move(f));
  Flags flags(argc, argv, spec);
  const bool full = flags.GetBool("full", false);
  scale->physionet_admissions = flags.GetInt(
      "admissions", full ? 12000 : default_admissions);
  scale->mimic_admissions = flags.GetInt(
      "admissions", full ? 21139 : default_admissions);
  scale->trainer.max_epochs = flags.GetInt("epochs", full ? 30 : default_epochs);
  scale->trainer.patience = full ? 5 : 3;
  scale->trainer.batch_size = flags.GetInt("batch-size", 64);
  scale->trainer.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 1e-3));
  scale->trainer.verbose = flags.GetBool("verbose", false);
  scale->runs = flags.GetInt("runs", 1);
  // --threads overrides ELDA_THREADS / hardware_concurrency for the whole
  // binary (0 keeps the environment-derived default).
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) par::SetNumThreads(threads);
  scale->trainer.num_threads = threads;
  return flags;
}

// ArgParser-based successor to ParseBenchFlags. Binaries register the
// common scale flags on their own parser (so binary-specific flags share
// the same --help page), Parse, then resolve the sentinel defaults:
//
//   bench::BenchFlagValues values;
//   util::ArgParser parser("bench_x", "...");
//   bench::RegisterBenchFlags(&parser, &values);
//   parser.Int("batches", &batches, "...");   // binary-specific
//   parser.Parse(argc, argv);
//   bench::BenchScale scale;
//   bench::ResolveBenchScale(values, &scale, /*default_admissions=*/256);
struct BenchFlagValues {
  bool full = false;
  int64_t admissions = -1;  // -1: derived from --full / per-binary default
  int64_t epochs = -1;      // -1: derived from --full / per-binary default
  int64_t runs = 1;
  int64_t batch_size = 64;
  double lr = 1e-3;
  bool verbose = false;
  int64_t threads = 0;  // 0: ELDA_THREADS / hardware default
};

inline void RegisterBenchFlags(util::ArgParser* parser,
                               BenchFlagValues* values) {
  parser->Bool("full", &values->full,
               "paper-scale cohorts and epoch budgets");
  parser->Int("admissions", &values->admissions,
              "cohort admissions (-1: scale default)");
  parser->Int("epochs", &values->epochs,
              "training epochs (-1: scale default)");
  parser->Int("runs", &values->runs, "independent runs to average");
  parser->Int("batch-size", &values->batch_size, "training batch size");
  parser->Double("lr", &values->lr, "learning rate");
  parser->Bool("verbose", &values->verbose, "per-epoch progress");
  parser->Int("threads", &values->threads,
              "thread-pool size (0: environment default)");
}

inline void ResolveBenchScale(const BenchFlagValues& values, BenchScale* scale,
                              int64_t default_admissions = 500,
                              int64_t default_epochs = 8) {
  scale->physionet_admissions =
      values.admissions >= 0 ? values.admissions
                             : (values.full ? 12000 : default_admissions);
  scale->mimic_admissions =
      values.admissions >= 0 ? values.admissions
                             : (values.full ? 21139 : default_admissions);
  scale->trainer.max_epochs =
      values.epochs >= 0 ? values.epochs
                         : (values.full ? 30 : default_epochs);
  scale->trainer.patience = values.full ? 5 : 3;
  scale->trainer.batch_size = values.batch_size;
  scale->trainer.learning_rate = static_cast<float>(values.lr);
  scale->trainer.verbose = values.verbose;
  scale->runs = values.runs;
  if (values.threads > 0) par::SetNumThreads(values.threads);
  scale->trainer.num_threads = values.threads;
}

// Short git revision baked in at configure time; "unknown" outside a git
// checkout. Emitted by every --json_out writer so result files are
// attributable to a commit.
inline const char* GitRev() {
#ifdef ELDA_GIT_REV
  return ELDA_GIT_REV;
#else
  return "unknown";
#endif
}

inline synth::CohortConfig ScaledPhysioNet(const BenchScale& scale) {
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = scale.physionet_admissions;
  return config;
}

inline synth::CohortConfig ScaledMimic(const BenchScale& scale) {
  synth::CohortConfig config = synth::SynthMimicIii();
  config.num_admissions = scale.mimic_admissions;
  return config;
}

inline void PrintHeader(const std::string& title, const std::string& notes) {
  std::cout << "\n=== " << title << " ===\n";
  if (!notes.empty()) std::cout << notes << "\n";
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace elda

#endif  // ELDA_BENCH_BENCH_COMMON_H_
