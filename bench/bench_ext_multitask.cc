// Extension bench (beyond the paper): multi-task ELDA — one shared
// dual-interaction trunk with two prediction heads trained jointly on
// in-hospital mortality and LOS > 7d, compared with two independently
// trained single-task ELDA-Nets on the same cohort. The joint deployment
// goes through the unified encoder/head framework (train/task_head.h) and
// the Trainer's multi-task loop.
//
// Expected shape: the joint model reaches comparable per-task quality with
// ~little more than half the parameters (and half the training compute) of
// the two-model deployment, because the expensive interaction trunk is
// shared.
//
// Flags: --admissions --epochs --full

#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "core/multitask.h"
#include "train/experiment.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/500,
                         /*default_epochs=*/8);
  bench::PrintHeader(
      "Extension: multi-task ELDA (joint mortality + LOS heads)",
      "One shared trunk vs two single-task ELDA-Nets on the same cohort.");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment mortality(cohort, data::Task::kMortality);
  train::PreparedExperiment los(cohort, data::Task::kLosGt7);

  TablePrinter table({"deployment", "mortality AUC-PR", "LOS AUC-PR",
                      "params", "trainings"});

  // Joint model (trained once, on the mortality experiment's split so both
  // heads see identical data; LOS labels ride in the batch's y_los slab).
  {
    core::EldaNetConfig net_config = core::EldaNetConfig::Full();
    net_config.seed = 5;
    core::MultiTaskElda elda = core::MakeMultiTaskElda(net_config);
    train::TrainerConfig trainer_config = scale.trainer;
    trainer_config.seed = 5;
    train::Trainer trainer(trainer_config);
    train::MultiTaskTrainResult result = trainer.TrainMultiTask(
        elda.trunk.get(), elda.heads.get(), mortality.prepared(),
        mortality.split(), data::Task::kMortality);
    table.AddRow({"multi-task (shared trunk)",
                  TablePrinter::Num(result.test.ForTask("mortality").auc_pr, 3),
                  TablePrinter::Num(result.test.ForTask("los").auc_pr, 3),
                  std::to_string(result.num_parameters), "1"});
    std::cout << "." << std::flush;
  }
  // Two single-task models.
  {
    train::ModelStats m = baselines::RunModelByName(
        "ELDA-Net", mortality, scale.trainer, /*num_runs=*/1);
    train::ModelStats l =
        baselines::RunModelByName("ELDA-Net", los, scale.trainer, 1);
    table.AddRow({"two single-task ELDA-Nets",
                  TablePrinter::Num(m.auc_pr.mean, 3),
                  TablePrinter::Num(l.auc_pr.mean, 3),
                  std::to_string(2 * m.num_parameters), "2"});
    std::cout << "." << std::flush;
  }
  std::cout << "\n" << table.ToString();
  return 0;
}
