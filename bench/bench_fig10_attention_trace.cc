// Regenerates Figure 10: the hour-by-hour trace of the attention the
// Glucose row pays to other medical features across Patient A's 48-hour
// stay, for ELDA-Net (Fig. 10a) and the ELDA-Net-F_fm ablation (Fig. 10b).
//
// Shape to reproduce:
//   * ELDA-Net: DLA-coupled features (FiO2, HR, Lactate, ...) attract more
//     attention while Glucose is abnormal (the episode hours); weakly
//     related features (HCT, WBC) stay flat.
//   * ELDA-Net-F_fm: the FM linear embedding's scale grows with |value|, so
//     the extreme Lactate monopolises the attention (paper: > 50%) and
//     crowds out the other abnormal features.
//
// Flags: --admissions --epochs --full

#include "bench/bench_common.h"
#include "core/elda.h"
#include "synth/features.h"

namespace elda {
namespace {

const std::vector<std::string>& TracedFeatures() {
  static const std::vector<std::string>* kTraced =
      new std::vector<std::string>{"FiO2", "HR",  "Lactate",
                                   "pH",   "HCT", "WBC"};
  return *kTraced;
}

void PrintTrace(const std::string& title, const core::Elda& elda,
                const core::Elda::Interpretation& interp,
                const data::EmrSample& patient) {
  std::cout << "[" << title << "] attention (%) of the Glucose row, and the "
               "standardised Glucose value:\n";
  std::vector<std::string> header = {"hour", "Glucose(z)"};
  for (const std::string& name : TracedFeatures()) header.push_back(name);
  TablePrinter table(header);
  const int64_t glucose = synth::kGlucose;
  for (int64_t t = 0; t < patient.num_steps; t += 3) {
    const float z =
        (patient.value(t, glucose) - elda.standardizer().mean(glucose)) /
        elda.standardizer().stddev(glucose);
    std::vector<std::string> row = {std::to_string(t),
                                    TablePrinter::Num(z, 2)};
    for (const std::string& name : TracedFeatures()) {
      const int64_t j = synth::FeatureIndexByName(name);
      row.push_back(TablePrinter::Num(
          100.0 * interp.feature_attention.at({t, glucose, j}), 1));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString();

  // Episode (hours 16-29) vs baseline (hours 0-11) attention summary.
  auto window_mean = [&](int64_t j, int64_t from, int64_t to) {
    double sum = 0.0;
    for (int64_t t = from; t < to; ++t) {
      sum += interp.feature_attention.at({t, glucose, j});
    }
    return 100.0 * sum / (to - from);
  };
  TablePrinter summary(
      {"feature", "pre-episode (0-11)", "episode (16-29)", "late (40-47)"});
  for (const std::string& name : TracedFeatures()) {
    const int64_t j = synth::FeatureIndexByName(name);
    summary.AddRow({name, TablePrinter::Num(window_mean(j, 0, 12), 1),
                    TablePrinter::Num(window_mean(j, 16, 30), 1),
                    TablePrinter::Num(window_mean(j, 40, 48), 1)});
  }
  std::cout << summary.ToString() << "\n";
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/800,
                         /*default_epochs=*/12);
  bench::PrintHeader(
      "Figure 10: change of Glucose's interaction attention over time",
      "ELDA-Net vs the ELDA-Net-F_fm ablation on the same DLA patient.\n"
      "Expected: coupled features gain attention during the episode under\n"
      "ELDA-Net; under F_fm the extreme Lactate dominates (paper: >50%).");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);
  data::EmrSample patient = synth::MakeDlaShowcasePatient();

  for (const bool use_fm : {false, true}) {
    core::EldaConfig elda_config;
    elda_config.trainer = scale.trainer;
    if (use_fm) {
      // Full architecture but with the FM linear embedding, isolating the
      // embedding mechanism exactly as Fig. 10b does.
      elda_config.net.embedding = core::EmbeddingVariant::kFmLinear;
      elda_config.net.display_name = "ELDA-Net-Ffm(full)";
    }
    core::Elda elda(elda_config);
    train::TrainResult result = elda.Fit(cohort, data::Task::kMortality);
    std::cout << (use_fm ? "ELDA-Net-F_fm" : "ELDA-Net")
              << " trained: test AUC-PR "
              << TablePrinter::Num(result.test.auc_pr, 3) << "\n";
    core::Elda::Interpretation interp = elda.Interpret(patient);
    PrintTrace(use_fm ? "Fig. 10b: ELDA-Net-F_fm" : "Fig. 10a: ELDA-Net",
               elda, interp, patient);
  }
  return 0;
}
