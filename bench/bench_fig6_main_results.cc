// Regenerates Figure 6: the main results — BCE loss, AUC-ROC and AUC-PR for
// ELDA-Net and all eleven baselines, on both cohorts and both tasks
// (in-hospital mortality, LOS > 7 days).
//
// The paper reports Figure 6 as bar charts; its text anchors the comparison:
//   * ELDA-Net is best on every task/dataset/metric.
//   * Mortality AUC-PR improvement over the best baseline: +2.6%
//     (PhysioNet2012) and +3.4% (MIMIC-III); LOS: +2.5% and +0.5%.
//   * Time-series models beat the time-collapsed LR/FM/AFM; FM > LR;
//     Dipole and ConCare are the strongest mortality baselines; GRU-D is
//     strongest on LOS; RETAIN and SAnD trail the RNN models.
//
// Expected shape at reduced scale: the same ordering, not the same absolute
// numbers (synthetic cohort, scaled-down N and epochs).
//
// Flags: --admissions N --epochs E --runs R --dataset physionet|mimic|both
//        --task mortality|los|both --models comma,list --full

#include <sstream>

#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "train/experiment.h"

namespace elda {
namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string WithStd(const metrics::MeanStd& ms, int precision = 3) {
  std::string out = TablePrinter::Num(ms.mean, precision);
  if (ms.stddev > 0.0) {
    out += " +/- " + TablePrinter::Num(ms.stddev, precision);
  }
  return out;
}

void RunSetting(const std::string& dataset_name,
                const synth::CohortConfig& config, data::Task task,
                const std::vector<std::string>& models,
                const bench::BenchScale& scale) {
  const std::string task_name =
      task == data::Task::kMortality ? "in-hospital mortality" : "LOS > 7d";
  std::cout << "--- " << dataset_name << " / " << task_name << " ("
            << config.num_admissions << " admissions, "
            << scale.trainer.max_epochs << " epochs, " << scale.runs
            << " run(s)) ---\n";
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, task);
  TablePrinter table({"model", "BCE", "AUC-ROC", "AUC-PR", "params"});
  double best_baseline_pr = 0.0;
  double elda_pr = 0.0;
  for (const std::string& name : models) {
    train::ModelStats stats =
        baselines::RunModelByName(name, experiment, scale.trainer,
                                  scale.runs);
    table.AddRow({stats.name, WithStd(stats.bce), WithStd(stats.auc_roc),
                  WithStd(stats.auc_pr),
                  std::to_string(stats.num_parameters)});
    if (name == "ELDA-Net") {
      elda_pr = stats.auc_pr.mean;
    } else {
      best_baseline_pr = std::max(best_baseline_pr, stats.auc_pr.mean);
    }
    std::cout << "." << std::flush;
  }
  std::cout << "\n" << table.ToString();
  if (elda_pr > 0.0 && best_baseline_pr > 0.0) {
    std::cout << "ELDA-Net AUC-PR vs best baseline: "
              << TablePrinter::Num(elda_pr, 3) << " vs "
              << TablePrinter::Num(best_baseline_pr, 3) << " ("
              << (elda_pr >= best_baseline_pr ? "+" : "")
              << TablePrinter::Num(
                     100.0 * (elda_pr - best_baseline_pr) /
                         std::max(best_baseline_pr, 1e-9),
                     1)
              << "% relative; paper reports +2.6%/+3.4% mortality, "
                 "+2.5%/+0.5% LOS at full scale)\n";
  }
  std::cout << std::endl;
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  Flags flags = bench::ParseBenchFlags(argc, argv, {"dataset", "task",
                                                    "models"},
                                       &scale, /*default_admissions=*/800,
                                       /*default_epochs=*/12);
  bench::PrintHeader(
      "Figure 6: main results (all models, both datasets, both tasks)",
      "Compare the *ordering* with the paper: ELDA-Net first, RNN family\n"
      "next, time-collapsed LR/FM/AFM last. Use --full (or --admissions /\n"
      "--epochs / --runs) for paper-scale runs.");

  std::vector<std::string> models =
      SplitCsv(flags.GetString("models", ""));
  if (models.empty()) {
    models = baselines::BaselineNames();
    models.push_back("ELDA-Net");
  }
  const std::string dataset = flags.GetString("dataset", "both");
  const std::string task_flag = flags.GetString("task", "both");

  std::vector<std::pair<std::string, synth::CohortConfig>> datasets;
  if (dataset == "both" || dataset == "physionet") {
    datasets.emplace_back("SynthPhysioNet2012", bench::ScaledPhysioNet(scale));
  }
  if (dataset == "both" || dataset == "mimic") {
    datasets.emplace_back("SynthMimicIii", bench::ScaledMimic(scale));
  }
  std::vector<data::Task> tasks;
  if (task_flag == "both" || task_flag == "mortality") {
    tasks.push_back(data::Task::kMortality);
  }
  if (task_flag == "both" || task_flag == "los") {
    tasks.push_back(data::Task::kLosGt7);
  }
  for (const auto& [name, config] : datasets) {
    for (data::Task task : tasks) {
      RunSetting(name, config, task, models, scale);
    }
  }
  return 0;
}
