// Regenerates Figure 7: the ablation study over ELDA-Net's modules and
// embedding mechanisms — ELDA-Net-T, -F_fm, -F_fm*, -F_bi, -F_bi* and the
// full model — with the best baseline as a reference line.
//
// Paper anchors (PhysioNet2012 mortality AUC-PR): ELDA-Net-T = 0.559,
// plain GRU = 0.536, best baseline (Dipole_l) = 0.547. Expected shape:
//   * ELDA-Net-T alone already beats the baselines (time interactions help).
//   * F_fm* > F_fm (separate embedding for standardised zeros helps FM).
//   * F_bi > F_fm and F_bi > F_fm* (bi-directional embedding wins).
//   * F_bi > F_bi* (the all-ones-at-zero hack breaks continuity and hurts).
//   * Full ELDA-Net > every single-module variant (the levels complement).
//
// Flags: --admissions --epochs --runs --dataset physionet|mimic|both
//        --task mortality|los|both --full

#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "train/experiment.h"

namespace elda {
namespace {

std::string WithStd(const metrics::MeanStd& ms) {
  std::string out = TablePrinter::Num(ms.mean, 3);
  if (ms.stddev > 0.0) out += " +/- " + TablePrinter::Num(ms.stddev, 3);
  return out;
}

void RunSetting(const std::string& dataset_name,
                const synth::CohortConfig& config, data::Task task,
                const bench::BenchScale& scale) {
  const std::string task_name =
      task == data::Task::kMortality ? "in-hospital mortality" : "LOS > 7d";
  std::cout << "--- " << dataset_name << " / " << task_name << " ---\n";
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, task);

  const std::vector<std::string> variants = {
      "GRU",          // dashed reference line in Fig. 7
      "Dipole-c",     // strong attention baseline reference
      "ELDA-Net-T",   "ELDA-Net-Ffm", "ELDA-Net-Ffm*",
      "ELDA-Net-Fbi", "ELDA-Net-Fbi*", "ELDA-Net",
  };
  TablePrinter table({"variant", "BCE", "AUC-ROC", "AUC-PR"});
  for (const std::string& name : variants) {
    train::ModelStats stats =
        baselines::RunModelByName(name, experiment, scale.trainer,
                                  scale.runs);
    table.AddRow({stats.name, WithStd(stats.bce), WithStd(stats.auc_roc),
                  WithStd(stats.auc_pr)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n" << table.ToString() << std::endl;
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  Flags flags = bench::ParseBenchFlags(argc, argv, {"dataset", "task"},
                                       &scale, /*default_admissions=*/800,
                                       /*default_epochs=*/12);
  bench::PrintHeader(
      "Figure 7: ablation study of ELDA-Net's modules",
      "Paper anchors (PhysioNet2012 mortality AUC-PR, full scale):\n"
      "  ELDA-Net-T 0.559 | GRU 0.536 | best baseline Dipole_l 0.547.\n"
      "Expected ordering: Ffm < Ffm* < Fbi, Fbi* < Fbi, and the full model\n"
      "above every single-module variant.");

  const std::string dataset = flags.GetString("dataset", "physionet");
  const std::string task_flag = flags.GetString("task", "both");
  std::vector<std::pair<std::string, synth::CohortConfig>> datasets;
  if (dataset == "both" || dataset == "physionet") {
    datasets.emplace_back("SynthPhysioNet2012", bench::ScaledPhysioNet(scale));
  }
  if (dataset == "both" || dataset == "mimic") {
    datasets.emplace_back("SynthMimicIii", bench::ScaledMimic(scale));
  }
  std::vector<data::Task> tasks;
  if (task_flag == "both" || task_flag == "mortality") {
    tasks.push_back(data::Task::kMortality);
  }
  if (task_flag == "both" || task_flag == "los") {
    tasks.push_back(data::Task::kLosGt7);
  }
  for (const auto& [name, config] : datasets) {
    for (data::Task task : tasks) RunSetting(name, config, task, scale);
  }
  return 0;
}
