// Regenerates Figure 8: time-level interaction attention for survivors vs
// non-survivors, ELDA vs Dipole_c.
//
// The paper's observations to reproduce in shape:
//   * Both groups put more attention on *later* hours (conditions close to
//     the final state matter most).
//   * Non-survivors' attention curves are more varied/unstable, with
//     patient-specific spikes at critical hours; survivors are smoother.
//   * ELDA separates the two groups' trends more clearly than Dipole_c's
//     implicit attention.
//
// Flags: --admissions --epochs --full

#include <cmath>

#include "baselines/dipole.h"
#include "bench/bench_common.h"
#include "core/interpret.h"
#include "train/experiment.h"

namespace elda {
namespace {

using core::GroupTimeAttention;
using core::LateAttentionMass;

// Dipole-side collector mirroring core::CollectGroupTimeAttention (the
// library version is typed to EldaNet; Dipole publishes the same
// "time_attention" capture surface).
GroupTimeAttention CollectDipole(const baselines::Dipole* model,
                                 const train::PreparedExperiment& experiment,
                                 int64_t steps) {
  GroupTimeAttention curves;
  curves.positive_mean.assign(steps - 1, 0.0);
  curves.negative_mean.assign(steps - 1, 0.0);
  ag::NoGradScope no_grad;
  const auto& indices = experiment.split().test;
  for (size_t start = 0; start < indices.size(); start += 128) {
    const size_t end = std::min(indices.size(), start + 128);
    std::vector<int64_t> chunk(indices.begin() + start,
                               indices.begin() + end);
    data::Batch batch =
        data::MakeBatch(experiment.prepared(), chunk, experiment.task());
    nn::CaptureSink sink;
    nn::ForwardContext ctx;
    ctx.capture = &sink;
    model->Forward(batch, &ctx);
    const Tensor beta = sink.Get("time_attention");  // [B, T-1]
    for (int64_t b = 0; b < static_cast<int64_t>(chunk.size()); ++b) {
      const bool died = batch.y[b] == 1.0f;
      double volatility = 0.0;
      for (int64_t t = 0; t < steps - 1; ++t) {
        const double a = beta.at({b, t});
        (died ? curves.positive_mean : curves.negative_mean)[t] += a;
        if (t > 0) volatility += std::fabs(a - beta.at({b, t - 1}));
      }
      if (died) {
        curves.positive_volatility += volatility;
        ++curves.positive_count;
      } else {
        curves.negative_volatility += volatility;
        ++curves.negative_count;
      }
    }
  }
  for (double& v : curves.positive_mean) {
    v /= std::max<int64_t>(curves.positive_count, 1);
  }
  for (double& v : curves.negative_mean) {
    v /= std::max<int64_t>(curves.negative_count, 1);
  }
  curves.positive_volatility /= std::max<int64_t>(curves.positive_count, 1);
  curves.negative_volatility /= std::max<int64_t>(curves.negative_count, 1);
  return curves;
}

void PrintCurves(const std::string& model_name,
                 const GroupTimeAttention& curves) {
  std::cout << "[" << model_name << "] average attention (%) per hour:\n";
  TablePrinter table({"hour", "survivors", "non-survivors"});
  for (size_t t = 0; t < curves.negative_mean.size(); t += 4) {
    table.AddRow({std::to_string(t),
                  TablePrinter::Num(100.0 * curves.negative_mean[t], 2),
                  TablePrinter::Num(100.0 * curves.positive_mean[t], 2)});
  }
  const size_t last = curves.negative_mean.size() - 1;
  table.AddRow({std::to_string(last),
                TablePrinter::Num(100.0 * curves.negative_mean[last], 2),
                TablePrinter::Num(100.0 * curves.positive_mean[last], 2)});
  std::cout << table.ToString();
  std::cout << "attention mass in final 12 hours: survivors "
            << TablePrinter::Num(
                   100.0 * LateAttentionMass(curves.negative_mean, 12), 1)
            << "%, non-survivors "
            << TablePrinter::Num(
                   100.0 * LateAttentionMass(curves.positive_mean, 12), 1)
            << "%  (uniform would be "
            << TablePrinter::Num(100.0 * 12.0 / curves.negative_mean.size(),
                                 1)
            << "%)\n";
  std::cout << "per-patient curve volatility (mean |a_t - a_{t-1}|): "
            << "survivors "
            << TablePrinter::Num(curves.negative_volatility, 4)
            << ", non-survivors "
            << TablePrinter::Num(curves.positive_volatility, 4)
            << "  (paper: non-survivors more varied)\n\n";
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/800,
                         /*default_epochs=*/12);
  bench::PrintHeader(
      "Figure 8: time-level attention, survivors vs non-survivors",
      "Shape to reproduce: later hours receive more attention in both\n"
      "groups; non-survivor curves are more varied; ELDA separates the\n"
      "groups more clearly than Dipole_c.");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  const int64_t steps = cohort.num_steps();
  train::Trainer trainer(scale.trainer);

  {
    core::EldaNetConfig net_config = core::EldaNetConfig::Full();
    net_config.seed = 11;
    core::EldaNet elda(net_config);
    train::TrainResult result = trainer.Train(
        &elda, experiment.prepared(), experiment.split(), experiment.task());
    std::cout << "ELDA-Net trained: test AUC-PR "
              << TablePrinter::Num(result.test.auc_pr, 3) << "\n";
    PrintCurves("ELDA (Time-level Interaction Learning Module)",
                core::CollectGroupTimeAttention(
                    &elda, experiment.prepared(), experiment.split().test,
                    experiment.task()));
  }
  {
    baselines::Dipole dipole(cohort.num_features(), 32,
                             baselines::DipoleAttention::kConcat, 13);
    train::TrainResult result =
        trainer.Train(&dipole, experiment.prepared(), experiment.split(),
                      experiment.task());
    std::cout << "Dipole-c trained: test AUC-PR "
              << TablePrinter::Num(result.test.auc_pr, 3) << "\n";
    PrintCurves("Dipole_c (implicit attention)",
                CollectDipole(&dipole, experiment, steps));
  }
  return 0;
}
