// Regenerates Figure 9 and Table II: feature-level interaction attention for
// the representative DM+DLA "Patient A", at the onset of the glucose rise
// (hour 13) and after stabilisation (hour 35), plus the controlled
// experiment of Fig. 9b where every observed Lactate value is replaced by
// the cohort-normal value.
//
// Shape to reproduce:
//   * At hour 13, Glucose's attention concentrates on the DLA-coupled,
//     abnormal features (FiO2, HCO3, HR, Lactate, MAP, Temp) while
//     irrelevant features (HCT, WBC) stay low.
//   * Attention is asymmetric: pH attends to Lactate more than Lactate
//     attends to pH.
//   * At hour 35 (values back to normal) the distribution flattens.
//   * Normalising Lactate (Fig. 9b) collapses the attention that Glucose
//     and pH paid to it toward the average level.
//
// Flags: --admissions --epochs --full

#include <cmath>

#include "bench/bench_common.h"
#include "core/elda.h"
#include "synth/features.h"

namespace elda {
namespace {

const std::vector<std::string>& ShownFeatures() {
  // The ten features of the paper's Table II / Fig. 9.
  static const std::vector<std::string>* kShown =
      new std::vector<std::string>{"FiO2", "Glucose", "HCO3", "HCT",  "HR",
                                   "Lactate", "MAP",  "Temp", "pH",   "WBC"};
  return *kShown;
}

void PrintPatientValues(const core::Elda& elda,
                        const data::EmrSample& patient,
                        const std::vector<int64_t>& hours) {
  std::cout << "[Table II] Patient A's standardised values:\n";
  std::vector<std::string> header = {"feature"};
  for (int64_t h : hours) header.push_back("hour " + std::to_string(h));
  TablePrinter table(header);
  for (const std::string& name : ShownFeatures()) {
    const int64_t c = synth::FeatureIndexByName(name);
    std::vector<std::string> row = {name};
    for (int64_t h : hours) {
      const float standardized =
          (patient.value(h, c) - elda.standardizer().mean(c)) /
          elda.standardizer().stddev(c);
      row.push_back(TablePrinter::Num(standardized, 2));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString() << "\n";
}

// Prints the attention submatrix over the shown features at one hour.
void PrintAttention(const Tensor& attention, int64_t hour) {
  std::cout << "attention (%) at hour " << hour
            << " (row = feature being processed):\n";
  std::vector<std::string> header = {"row\\col"};
  for (const std::string& name : ShownFeatures()) header.push_back(name);
  TablePrinter table(header);
  for (const std::string& row_name : ShownFeatures()) {
    const int64_t i = synth::FeatureIndexByName(row_name);
    std::vector<std::string> row = {row_name};
    for (const std::string& col_name : ShownFeatures()) {
      const int64_t j = synth::FeatureIndexByName(col_name);
      row.push_back(TablePrinter::Num(100.0 * attention.at({hour, i, j}), 1));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString() << "\n";
}

data::EmrSample NormaliseLactate(const data::EmrSample& patient,
                                 float lactate_mean) {
  data::EmrSample modified = patient;
  const int64_t c = synth::kLactate;
  for (int64_t t = 0; t < modified.num_steps; ++t) {
    if (modified.is_observed(t, c)) modified.value(t, c) = lactate_mean;
  }
  return modified;
}

double AttentionTo(const Tensor& attention, int64_t hour, int64_t row,
                   int64_t col) {
  return attention.at({hour, row, col});
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/800,
                         /*default_epochs=*/12);
  bench::PrintHeader(
      "Figure 9 + Table II: feature-level attention for DM+DLA Patient A",
      "Trains ELDA on SynthPhysioNet2012 (mortality), then interprets the\n"
      "scripted DLA showcase admission at hour 13 (glucose rising) and hour\n"
      "35 (stabilised), with the Fig. 9b Lactate-normalisation control.");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);

  core::EldaConfig elda_config;
  elda_config.trainer = scale.trainer;
  core::Elda elda(elda_config);
  train::TrainResult result = elda.Fit(cohort, data::Task::kMortality);
  std::cout << "ELDA trained: test AUC-PR "
            << TablePrinter::Num(result.test.auc_pr, 3) << ", AUC-ROC "
            << TablePrinter::Num(result.test.auc_roc, 3) << "\n\n";

  data::EmrSample patient = synth::MakeDlaShowcasePatient();
  const std::vector<int64_t> hours = {13, 35};
  PrintPatientValues(elda, patient, hours);

  core::Elda::Interpretation interp = elda.Interpret(patient);
  std::cout << "predicted mortality risk for Patient A: "
            << TablePrinter::Num(interp.risk, 3) << "\n\n";
  std::cout << "[Fig. 9a] original EMR data\n";
  for (int64_t h : hours) PrintAttention(interp.feature_attention, h);

  // Controlled experiment (Fig. 9b): normalise Lactate.
  data::EmrSample modified =
      NormaliseLactate(patient, elda.standardizer().mean(synth::kLactate));
  core::Elda::Interpretation control = elda.Interpret(modified);
  std::cout << "[Fig. 9b] after replacing observed Lactate with the cohort "
               "mean\n";
  for (int64_t h : hours) PrintAttention(control.feature_attention, h);

  // Quantitative summary of the controlled effect at the episode hour.
  const int64_t glucose = synth::kGlucose;
  const int64_t ph = synth::kPh;
  const int64_t lactate = synth::kLactate;
  const double uniform = 1.0 / 36.0;
  std::cout << "Lactate's share of attention at hour 13 "
               "(paper: drops to the average level after normalisation):\n";
  TablePrinter summary({"row", "original", "lactate normalised",
                        "uniform level"});
  for (const auto& [label, row] :
       {std::pair<std::string, int64_t>{"Glucose", glucose},
        std::pair<std::string, int64_t>{"pH", ph}}) {
    summary.AddRow(
        {label,
         TablePrinter::Num(
             100.0 * AttentionTo(interp.feature_attention, 13, row, lactate),
             1) + "%",
         TablePrinter::Num(
             100.0 *
                 AttentionTo(control.feature_attention, 13, row, lactate),
             1) + "%",
         TablePrinter::Num(100.0 * uniform, 1) + "%"});
  }
  std::cout << summary.ToString();
  return 0;
}
