// Out-of-core data substrate benchmark: sharded cohort generation and
// ShardedLoader epoch throughput.
//
// Phase 1 streams a variable-length cohort to CRC-framed shards
// (synth::GenerateCohortToShards) and reports generation rate plus the
// stay-length distribution. Phase 2 drains full epochs through the
// ShardedLoader, sweeping the length-bucket count to show the padding-waste
// vs shuffle-granularity trade-off, and comparing prefetch off/on at the
// default bucketing. Peak RSS is reported so the bounded-memory claim is
// checkable at any --admissions scale.
//
// Flags: --admissions N, --samples-per-shard N, --batch-size N,
// --buckets "1,2,4,8,16", --threads N, --dir PATH, --json_out PATH.

#include <sys/resource.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/sharded_loader.h"
#include "data/shard_io.h"
#include "synth/simulator.h"
#include "util/argparse.h"

namespace elda {
namespace {

std::vector<int64_t> ParseCounts(const std::string& spec) {
  std::vector<int64_t> counts;
  int64_t value = 0;
  bool in_number = false;
  for (char ch : spec) {
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + (ch - '0');
      in_number = true;
    } else if (in_number) {
      counts.push_back(value);
      value = 0;
      in_number = false;
    }
  }
  if (in_number) counts.push_back(value);
  ELDA_CHECK(!counts.empty()) << "no bucket counts in '" << spec << "'";
  return counts;
}

double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

struct EpochResult {
  int64_t buckets = 0;
  bool prefetch = false;
  int64_t batches = 0;
  int64_t samples = 0;
  int64_t valid_steps = 0;  // patient-hours actually carried
  double seconds = 0.0;
  double padding_waste = 0.0;

  double samples_per_sec() const { return samples / seconds; }
  double steps_per_sec() const { return valid_steps / seconds; }
  double ns_per_batch() const { return seconds * 1e9 / batches; }
};

EpochResult DrainOneEpoch(const std::vector<std::string>& paths,
                          const data::Standardizer& standardizer,
                          int64_t batch_size, int64_t buckets, bool prefetch) {
  using Clock = std::chrono::steady_clock;
  data::ShardedLoaderOptions options;
  options.batch_size = batch_size;
  options.num_buckets = buckets;
  options.prefetch = prefetch;
  data::ShardedLoader loader(paths, &standardizer, options);

  EpochResult result;
  result.buckets = buckets;
  result.prefetch = prefetch;
  result.padding_waste = loader.PaddingWaste();
  const auto start = Clock::now();
  loader.StartEpoch();
  data::Batch batch;
  while (loader.Next(&batch)) {
    ++result.batches;
    result.samples += static_cast<int64_t>(batch.lengths.size());
    for (int64_t len : batch.lengths) result.valid_steps += len;
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  using Clock = std::chrono::steady_clock;

  int64_t admissions = 20000;
  int64_t samples_per_shard = 4096;
  int64_t batch_size = 64;
  std::string buckets_spec = "1,2,4,8,16";
  int64_t threads = 0;
  std::string dir = "/tmp/elda_bench_loader";
  std::string json_path = "BENCH_loader.json";
  util::ArgParser parser("bench_loader",
                         "Sharded-cohort generation and out-of-core loader "
                         "throughput: padding waste vs bucket count, "
                         "prefetch off/on, peak RSS.");
  parser.Int("admissions", &admissions, "stays to generate")
      .Int("samples-per-shard", &samples_per_shard, "records per shard file")
      .Int("batch-size", &batch_size, "loader batch size")
      .String("buckets", &buckets_spec,
              "comma-separated length-bucket counts to sweep")
      .Int("threads", &threads, "worker threads (0: environment default)")
      .String("dir", &dir, "directory for the generated shards")
      .String("json_out", &json_path, "machine-readable results path");
  parser.Parse(argc, argv);
  if (threads > 0) par::SetNumThreads(threads);
  mkdir(dir.c_str(), 0755);

  bench::PrintHeader(
      "out-of-core data substrate",
      "variable-length stays streamed to CRC-framed shards, then drained\n"
      "through the length-bucketed, prefetching ShardedLoader");

  // ---- Phase 1: stream the cohort to shards -----------------------------
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = admissions;
  config.variable_length = true;
  const std::string prefix = dir + "/cohort";
  const auto gen_start = Clock::now();
  const synth::ShardedCohortInfo info =
      synth::GenerateCohortToShards(config, prefix, samples_per_shard);
  const double gen_seconds =
      std::chrono::duration<double>(Clock::now() - gen_start).count();
  const data::LengthStats& len = info.length_stats;
  {
    TablePrinter table({"stays", "shards", "gen s", "stays/s", "len p50",
                        "len p95", "len max", "mean len"});
    table.AddRow({TablePrinter::Num(info.num_samples, 0),
                  TablePrinter::Num(static_cast<double>(info.paths.size()), 0),
                  TablePrinter::Num(gen_seconds, 2),
                  TablePrinter::Num(info.num_samples / gen_seconds, 0),
                  TablePrinter::Num(static_cast<double>(len.p50), 0),
                  TablePrinter::Num(static_cast<double>(len.p95), 0),
                  TablePrinter::Num(static_cast<double>(len.max), 0),
                  TablePrinter::Num(len.mean, 1)});
    std::cout << "[generation]\n" << table.ToString() << "\n";
  }
  std::cout << "peak RSS after generation: " << PeakRssMb() << " MiB\n";

  const data::Standardizer standardizer =
      data::FitStandardizerFromShards(info.paths);
  std::cout << "peak RSS after standardizer fit: " << PeakRssMb()
            << " MiB\n\n";

  // ---- Phase 2: epoch throughput vs bucket count ------------------------
  std::vector<EpochResult> results;
  {
    TablePrinter table({"buckets", "prefetch", "batches", "padding waste",
                        "samples/s", "steps/s"});
    for (int64_t buckets : ParseCounts(buckets_spec)) {
      const EpochResult r = DrainOneEpoch(info.paths, standardizer,
                                          batch_size, buckets,
                                          /*prefetch=*/true);
      results.push_back(r);
      table.AddRow({TablePrinter::Num(static_cast<double>(buckets), 0), "on",
                    TablePrinter::Num(static_cast<double>(r.batches), 0),
                    TablePrinter::Num(r.padding_waste, 4),
                    TablePrinter::Num(r.samples_per_sec(), 0),
                    TablePrinter::Num(r.steps_per_sec(), 0)});
    }
    // Prefetch off at the default bucketing isolates the overlap win.
    const EpochResult serial = DrainOneEpoch(info.paths, standardizer,
                                             batch_size, /*buckets=*/4,
                                             /*prefetch=*/false);
    results.push_back(serial);
    table.AddRow({"4", "off",
                  TablePrinter::Num(static_cast<double>(serial.batches), 0),
                  TablePrinter::Num(serial.padding_waste, 4),
                  TablePrinter::Num(serial.samples_per_sec(), 0),
                  TablePrinter::Num(serial.steps_per_sec(), 0)});
    std::cout << "[loader epochs]\n" << table.ToString() << "\n";
  }
  std::cout << "peak RSS: " << PeakRssMb() << " MiB\n";

  // ---- JSON (top-level keys shared with the other --json_out writers) ---
  std::ofstream out(json_path);
  if (out) {
    out << "{\n  \"schema\": \"elda-bench-loader-v1\",\n"
        << "  \"threads\": " << par::NumThreads() << ",\n"
        << "  \"git_rev\": \"" << bench::GitRev() << "\",\n"
        << "  \"peak_rss_mb\": " << PeakRssMb() << ",\n"
        << "  \"benchmarks\": [\n"
        << "    {\"name\": \"BM_ShardCohortGenerate\", \"stays\": "
        << info.num_samples << ", \"shards\": " << info.paths.size()
        << ", \"stays_per_sec\": " << info.num_samples / gen_seconds
        << ", \"len_p50\": " << len.p50 << ", \"len_p95\": " << len.p95
        << ", \"len_max\": " << len.max << ", \"len_mean\": " << len.mean
        << ", \"ns_per_iter\": " << gen_seconds * 1e9 / info.num_samples
        << "}";
    for (const EpochResult& r : results) {
      out << ",\n    {\"name\": \"BM_ShardedLoaderEpoch/" << r.buckets << "/"
          << (r.prefetch ? 1 : 0) << "\", \"batches\": " << r.batches
          << ", \"padding_waste\": " << r.padding_waste
          << ", \"samples_per_sec\": " << r.samples_per_sec()
          << ", \"steps_per_sec\": " << r.steps_per_sec()
          << ", \"ns_per_iter\": " << r.ns_per_batch() << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cerr << "failed to write " << json_path << "\n";
  }
  return 0;
}
