// Microbenchmarks of the substrate kernels and ELDA-Net's modules
// (google-benchmark). Includes the DESIGN.md ablation: the factored
// feature-interaction computation vs a naive O(C^2 E) pairwise loop.
//
// Besides the console table, every run writes a machine-readable
// BENCH_micro.json (override the path with --json_out=PATH) with one record
// per benchmark: op, args, threads, ns/iter, and items/s where the
// benchmark reports throughput. Run with ELDA_PROF=1 to get the op-level
// profile (per-op time, allocation, pool hit rate) appended after the
// table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/elda_net.h"
#include "core/embedding.h"
#include "core/feature_interaction.h"
#include "mem/pool.h"
#include "mem/prof.h"
#include "nn/gru.h"
#include "nn/recurrent_sweep.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Normal(std::move(shape), 0.0f, 1.0f, &rng);
}

// The kernel benchmarks take the thread count as their last argument so a
// single run shows the elda::par scaling curve (1 = the serial fallback).

void BM_MatMulSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  par::ScopedNumThreads scoped(state.range(1));
  Tensor a = RandomTensor({n, n}, 1);
  Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulSquare)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 8});

// All four transpose combinations at one packed-kernel shape: the NT/TT
// pack-time gathers and the TN packing of A have different memory access
// patterns, so they are tracked separately.
void BM_MatMulTranspose(benchmark::State& state) {
  const int64_t n = 256;
  const bool trans_a = state.range(0) != 0;
  const bool trans_b = state.range(1) != 0;
  par::ScopedNumThreads scoped(state.range(2));
  Tensor a = RandomTensor({n, n}, 20);
  Tensor b = RandomTensor({n, n}, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b, trans_a, trans_b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulTranspose)
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1});

void BM_MatMulBatchedSmall(benchmark::State& state) {
  // The feature-interaction workload shape: many tiny matmuls.
  par::ScopedNumThreads scoped(state.range(0));
  Tensor a = RandomTensor({3072, 37, 24}, 3);
  Tensor b = RandomTensor({3072, 24, 37}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 3072 * 37 * 24 * 37);
}
BENCHMARK(BM_MatMulBatchedSmall)->Arg(1)->Arg(2)->Arg(8);

void BM_SoftmaxLastAxis(benchmark::State& state) {
  par::ScopedNumThreads scoped(state.range(0));
  Tensor a = RandomTensor({3072, 37, 37}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, 2));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_SoftmaxLastAxis)->Arg(1)->Arg(2)->Arg(8);

void BM_BroadcastMul(benchmark::State& state) {
  // The embedding-module broadcast: [B,T,C,1] * [C,E].
  Tensor a = RandomTensor({64, 48, 37, 1}, 6);
  Tensor b = RandomTensor({37, 24}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 48 * 37 * 24);
}
BENCHMARK(BM_BroadcastMul);

void BM_GruForward(benchmark::State& state) {
  Rng rng(8);
  nn::Gru gru(37, 64, &rng);
  ag::Variable x = ag::Constant(RandomTensor({64, 48, 37}, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x));
  }
}
BENCHMARK(BM_GruForward);

// The recurrence-engine ablation: arg0 = batch size, arg1 = 1 for the
// time-major hoisted sweep (one [T*B,C] x [C,3H] input GEMM, fused gate
// kernel, zero-copy per-step views), 0 for the op-by-op per-step
// composition it replaced (T separate Slice/Reshape/GEMM/Sigmoid/... op
// chains — the pre-sweep nn::Gru::Forward). Both produce bitwise-identical
// [B,T,H] outputs (asserted in tests/recurrence_test.cc); the counter shows
// the tape-node reduction on top of the wall-clock win.
void BM_RecurrentSweep(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  const bool hoisted = state.range(1) != 0;
  const int64_t steps = 48, features = 37, hidden = 64;
  Rng rng(22);
  nn::Gru gru(features, hidden, &rng);
  const nn::GruCell& cell = gru.cell();
  ag::Variable x =
      ag::Constant(RandomTensor({batch_size, steps, features}, 23));
  int64_t tape_nodes = 0;
  for (auto _ : state) {
    const int64_t nodes_before = ag::TapeNodesAllocated();
    if (hoisted) {
      benchmark::DoNotOptimize(gru.Forward(x));
    } else {
      // Verbatim pre-sweep time loop: slice step t out of [B,T,C], build
      // the gates from individual tape ops, stack the states back up.
      ag::Variable h = ag::Constant(Tensor::Zeros({batch_size, hidden}));
      std::vector<ag::Variable> states;
      states.reserve(steps);
      for (int64_t t = 0; t < steps; ++t) {
        ag::Variable x_t =
            ag::Reshape(ag::Slice(x, 1, t, 1), {batch_size, features});
        ag::Variable xw = ag::Add(ag::MatMul(x_t, cell.w_ih()), cell.bias());
        ag::Variable hu = ag::MatMul(h, cell.w_hh());
        ag::Variable r = ag::Sigmoid(
            ag::Add(ag::Slice(xw, 1, 0, hidden), ag::Slice(hu, 1, 0, hidden)));
        ag::Variable z = ag::Sigmoid(ag::Add(ag::Slice(xw, 1, hidden, hidden),
                                             ag::Slice(hu, 1, hidden, hidden)));
        ag::Variable n = ag::Tanh(
            ag::Add(ag::Slice(xw, 1, 2 * hidden, hidden),
                    ag::Mul(r, ag::Slice(hu, 1, 2 * hidden, hidden))));
        ag::Variable one_minus_z =
            ag::Sub(ag::Constant(Tensor::Ones(z.value().shape())), z);
        h = ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
        states.push_back(ag::Reshape(h, {batch_size, 1, hidden}));
      }
      benchmark::DoNotOptimize(ag::Concat(states, 1));
    }
    tape_nodes += ag::TapeNodesAllocated() - nodes_before;
  }
  state.counters["tape_nodes_per_iter"] = benchmark::Counter(
      static_cast<double>(tape_nodes) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * batch_size * steps);
}
BENCHMARK(BM_RecurrentSweep)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_FeatureInteractionFactored(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(10);
  core::FeatureInteraction module(c, 24, 4, &rng);
  ag::Variable e = ag::Constant(RandomTensor({8, 48, c, 24}, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.Forward(e));
  }
}
BENCHMARK(BM_FeatureInteractionFactored)->Arg(12)->Arg(24)->Arg(37);

// The naive pairwise implementation of Eqs. 3-6 that materialises every
// r_ij, as a reference for the DESIGN.md factoring ablation (values-only,
// no autograd, which already favours the naive side).
void BM_FeatureInteractionNaive(benchmark::State& state) {
  const int64_t c = state.range(0);
  const int64_t e_dim = 24, d = 4, bt = 8 * 48;
  Tensor e = RandomTensor({bt, c, e_dim}, 12);
  Tensor w = RandomTensor({c, e_dim}, 13);
  Tensor p = RandomTensor({2 * e_dim, d}, 14);
  for (auto _ : state) {
    Tensor out({bt, c * d});
    std::vector<float> scores(c), context(e_dim), combined(2 * e_dim);
    for (int64_t s = 0; s < bt; ++s) {
      const float* es = e.data() + s * c * e_dim;
      for (int64_t i = 0; i < c; ++i) {
        float max_score = -1e30f;
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          float score = 0.0f;
          for (int64_t k = 0; k < e_dim; ++k) {
            score += w[i * e_dim + k] * es[i * e_dim + k] * es[j * e_dim + k];
          }
          scores[j] = score;
          max_score = std::max(max_score, score);
        }
        float z = 0.0f;
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          scores[j] = std::exp(scores[j] - max_score);
          z += scores[j];
        }
        std::fill(context.begin(), context.end(), 0.0f);
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          const float alpha = scores[j] / z;
          for (int64_t k = 0; k < e_dim; ++k) {
            context[k] += alpha * es[i * e_dim + k] * es[j * e_dim + k];
          }
        }
        for (int64_t k = 0; k < e_dim; ++k) {
          combined[k] = std::max(es[i * e_dim + k], 0.0f);
          combined[e_dim + k] = std::max(context[k], 0.0f);
        }
        for (int64_t dd = 0; dd < d; ++dd) {
          float f = 0.0f;
          for (int64_t k = 0; k < 2 * e_dim; ++k) {
            f += combined[k] * p[k * d + dd];
          }
          out[s * c * d + i * d + dd] = f;
        }
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FeatureInteractionNaive)->Arg(12)->Arg(24)->Arg(37);

void BM_BiDirectionalEmbedding(benchmark::State& state) {
  Rng rng(15);
  core::BiDirectionalEmbedding embedding(
      37, 24, core::EmbeddingVariant::kBiDirectional, -3, 3, true, &rng);
  ag::Variable x = ag::Constant(RandomTensor({64, 48, 37}, 16));
  Tensor mask = Tensor::Ones({64, 48, 37});
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.Forward(x, mask));
  }
}
BENCHMARK(BM_BiDirectionalEmbedding);

void BM_EldaNetForwardBackward(benchmark::State& state) {
  core::EldaNetConfig config = core::EldaNetConfig::Full();
  core::EldaNet net(config);
  Rng rng(17);
  data::Batch batch;
  batch.x = RandomTensor({64, 48, 37}, 18);
  batch.mask = Tensor::Ones({64, 48, 37});
  batch.delta = Tensor::Zeros({64, 48, 37});
  batch.y = Tensor({64});
  for (int64_t i = 0; i < 64; ++i) batch.y[i] = rng.Bernoulli(0.2);
  for (auto _ : state) {
    net.ZeroGrad();
    ag::BceWithLogits(net.Forward(batch), batch.y).Backward();
  }
}
BENCHMARK(BM_EldaNetForwardBackward);

// Forward-only inference latency, taped vs graph-free: arg0 = batch size,
// arg1 = 1 to run under ag::NoGradScope. Counters report autograd tape
// nodes and pooled buffer acquires per forward — the no-grad rows must show
// zero tape nodes and less allocation traffic at identical outputs.
void BM_EldaNetInference(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  const bool no_grad = state.range(1) != 0;
  core::EldaNetConfig config = core::EldaNetConfig::Full();
  core::EldaNet net(config);
  data::Batch batch;
  batch.x = RandomTensor({batch_size, 48, 37}, 19);
  batch.mask = Tensor::Ones({batch_size, 48, 37});
  batch.delta = Tensor::Zeros({batch_size, 48, 37});
  int64_t tape_nodes = 0;
  int64_t acquires = 0;
  auto total_acquires = [] {
    const mem::PoolStats stats = mem::Pool::Global().Stats();
    return stats.acquires + stats.small_acquires + stats.huge_acquires;
  };
  for (auto _ : state) {
    const int64_t nodes_before = ag::TapeNodesAllocated();
    const int64_t acquires_before = total_acquires();
    if (no_grad) {
      ag::NoGradScope scope;
      benchmark::DoNotOptimize(net.Forward(batch));
    } else {
      benchmark::DoNotOptimize(net.Forward(batch));
    }
    tape_nodes += ag::TapeNodesAllocated() - nodes_before;
    acquires += total_acquires() - acquires_before;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["tape_nodes_per_iter"] =
      benchmark::Counter(static_cast<double>(tape_nodes) / iters);
  state.counters["buffer_acquires_per_iter"] =
      benchmark::Counter(static_cast<double>(acquires) / iters);
}
BENCHMARK(BM_EldaNetInference)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Collects every finished run alongside the normal console output, then
// writes BENCH_micro.json. The name encodes op and args as
// "BM_Op/arg0/arg1/..."; args are re-parsed from it since the reporter only
// sees the formatted name.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Record {
    std::string name;
    std::string op;
    std::vector<int64_t> args;
    int64_t threads = 1;
    double ns_per_iter = 0.0;
    double items_per_second = -1.0;  // < 0: benchmark reports no throughput
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      const size_t slash = rec.name.find('/');
      rec.op = rec.name.substr(0, slash);
      if (slash != std::string::npos) {
        std::string rest = rec.name.substr(slash + 1);
        size_t pos = 0;
        while (pos < rest.size()) {
          const size_t next = rest.find('/', pos);
          const std::string tok = rest.substr(pos, next - pos);
          rec.args.push_back(std::strtoll(tok.c_str(), nullptr, 10));
          if (next == std::string::npos) break;
          pos = next + 1;
        }
      }
      rec.threads = ThreadsArg(rec.op, rec.args);
      rec.ns_per_iter = run.GetAdjustedRealTime();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rec.items_per_second = it->second;
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name == "items_per_second") continue;
        rec.counters.emplace_back(counter_name,
                                  static_cast<double>(counter));
      }
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    // Top-level keys (schema/threads/git_rev/benchmarks) are shared with
    // the table benchmark binaries' --json_out so result files aggregate
    // uniformly. The top-level `threads` is the pool default for the run;
    // per-record `threads` is the benchmark's own scaling argument.
    out << "{\n  \"schema\": \"elda-bench-micro-v2\",\n"
        << "  \"threads\": " << par::NumThreads() << ",\n"
        << "  \"git_rev\": \""
#ifdef ELDA_GIT_REV
        << ELDA_GIT_REV
#else
        << "unknown"
#endif
        << "\",\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"name\": \"" << r.name << "\", \"op\": \"" << r.op
          << "\", \"args\": [";
      for (size_t j = 0; j < r.args.size(); ++j) {
        if (j) out << ", ";
        out << r.args[j];
      }
      out << "], \"threads\": " << r.threads
          << ", \"ns_per_iter\": " << r.ns_per_iter;
      if (r.items_per_second >= 0.0) {
        out << ", \"items_per_second\": " << r.items_per_second;
      }
      for (const auto& [counter_name, value] : r.counters) {
        out << ", \"" << counter_name << "\": " << value;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  // Which positional argument carries the elda::par thread count, per
  // benchmark family (1 for benches that run at the default).
  static int64_t ThreadsArg(const std::string& op,
                            const std::vector<int64_t>& args) {
    if (op == "BM_MatMulSquare" && args.size() >= 2) return args[1];
    if (op == "BM_MatMulTranspose" && args.size() >= 3) return args[2];
    if ((op == "BM_MatMulBatchedSmall" || op == "BM_SoftmaxLastAxis") &&
        !args.empty()) {
      return args[0];
    }
    return 1;
  }

  std::vector<Record> records_;
};

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  // Pull out our own --json_out flag before google-benchmark sees the args.
  std::string json_path = "BENCH_micro.json";
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    constexpr const char kFlag[] = "--json_out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  elda::JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (reporter.WriteJson(json_path)) {
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  elda::prof::ReportIfEnabled(std::cout);
  return 0;
}
