// Microbenchmarks of the substrate kernels and ELDA-Net's modules
// (google-benchmark). Includes the DESIGN.md ablation: the factored
// feature-interaction computation vs a naive O(C^2 E) pairwise loop.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "core/elda_net.h"
#include "core/embedding.h"
#include "core/feature_interaction.h"
#include "nn/gru.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Normal(std::move(shape), 0.0f, 1.0f, &rng);
}

// The kernel benchmarks take the thread count as their last argument so a
// single run shows the elda::par scaling curve (1 = the serial fallback).

void BM_MatMulSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  par::ScopedNumThreads scoped(state.range(1));
  Tensor a = RandomTensor({n, n}, 1);
  Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulSquare)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 8});

void BM_MatMulBatchedSmall(benchmark::State& state) {
  // The feature-interaction workload shape: many tiny matmuls.
  par::ScopedNumThreads scoped(state.range(0));
  Tensor a = RandomTensor({3072, 37, 24}, 3);
  Tensor b = RandomTensor({3072, 24, 37}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 3072 * 37 * 24 * 37);
}
BENCHMARK(BM_MatMulBatchedSmall)->Arg(1)->Arg(2)->Arg(8);

void BM_SoftmaxLastAxis(benchmark::State& state) {
  par::ScopedNumThreads scoped(state.range(0));
  Tensor a = RandomTensor({3072, 37, 37}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, 2));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_SoftmaxLastAxis)->Arg(1)->Arg(2)->Arg(8);

void BM_BroadcastMul(benchmark::State& state) {
  // The embedding-module broadcast: [B,T,C,1] * [C,E].
  Tensor a = RandomTensor({64, 48, 37, 1}, 6);
  Tensor b = RandomTensor({37, 24}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 48 * 37 * 24);
}
BENCHMARK(BM_BroadcastMul);

void BM_GruForward(benchmark::State& state) {
  Rng rng(8);
  nn::Gru gru(37, 64, &rng);
  ag::Variable x = ag::Constant(RandomTensor({64, 48, 37}, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x));
  }
}
BENCHMARK(BM_GruForward);

void BM_FeatureInteractionFactored(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(10);
  core::FeatureInteraction module(c, 24, 4, &rng);
  ag::Variable e = ag::Constant(RandomTensor({8, 48, c, 24}, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.Forward(e));
  }
}
BENCHMARK(BM_FeatureInteractionFactored)->Arg(12)->Arg(24)->Arg(37);

// The naive pairwise implementation of Eqs. 3-6 that materialises every
// r_ij, as a reference for the DESIGN.md factoring ablation (values-only,
// no autograd, which already favours the naive side).
void BM_FeatureInteractionNaive(benchmark::State& state) {
  const int64_t c = state.range(0);
  const int64_t e_dim = 24, d = 4, bt = 8 * 48;
  Tensor e = RandomTensor({bt, c, e_dim}, 12);
  Tensor w = RandomTensor({c, e_dim}, 13);
  Tensor p = RandomTensor({2 * e_dim, d}, 14);
  for (auto _ : state) {
    Tensor out({bt, c * d});
    std::vector<float> scores(c), context(e_dim), combined(2 * e_dim);
    for (int64_t s = 0; s < bt; ++s) {
      const float* es = e.data() + s * c * e_dim;
      for (int64_t i = 0; i < c; ++i) {
        float max_score = -1e30f;
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          float score = 0.0f;
          for (int64_t k = 0; k < e_dim; ++k) {
            score += w[i * e_dim + k] * es[i * e_dim + k] * es[j * e_dim + k];
          }
          scores[j] = score;
          max_score = std::max(max_score, score);
        }
        float z = 0.0f;
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          scores[j] = std::exp(scores[j] - max_score);
          z += scores[j];
        }
        std::fill(context.begin(), context.end(), 0.0f);
        for (int64_t j = 0; j < c; ++j) {
          if (j == i) continue;
          const float alpha = scores[j] / z;
          for (int64_t k = 0; k < e_dim; ++k) {
            context[k] += alpha * es[i * e_dim + k] * es[j * e_dim + k];
          }
        }
        for (int64_t k = 0; k < e_dim; ++k) {
          combined[k] = std::max(es[i * e_dim + k], 0.0f);
          combined[e_dim + k] = std::max(context[k], 0.0f);
        }
        for (int64_t dd = 0; dd < d; ++dd) {
          float f = 0.0f;
          for (int64_t k = 0; k < 2 * e_dim; ++k) {
            f += combined[k] * p[k * d + dd];
          }
          out[s * c * d + i * d + dd] = f;
        }
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FeatureInteractionNaive)->Arg(12)->Arg(24)->Arg(37);

void BM_BiDirectionalEmbedding(benchmark::State& state) {
  Rng rng(15);
  core::BiDirectionalEmbedding embedding(
      37, 24, core::EmbeddingVariant::kBiDirectional, -3, 3, true, &rng);
  ag::Variable x = ag::Constant(RandomTensor({64, 48, 37}, 16));
  Tensor mask = Tensor::Ones({64, 48, 37});
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.Forward(x, mask));
  }
}
BENCHMARK(BM_BiDirectionalEmbedding);

void BM_EldaNetForwardBackward(benchmark::State& state) {
  core::EldaNetConfig config = core::EldaNetConfig::Full();
  core::EldaNet net(config);
  Rng rng(17);
  data::Batch batch;
  batch.x = RandomTensor({64, 48, 37}, 18);
  batch.mask = Tensor::Ones({64, 48, 37});
  batch.delta = Tensor::Zeros({64, 48, 37});
  batch.y = Tensor({64});
  for (int64_t i = 0; i < 64; ++i) batch.y[i] = rng.Bernoulli(0.2);
  for (auto _ : state) {
    net.ZeroGrad();
    ag::BceWithLogits(net.Forward(batch), batch.y).Backward();
  }
}
BENCHMARK(BM_EldaNetForwardBackward);

}  // namespace
}  // namespace elda

BENCHMARK_MAIN();
