// Load generator for elda::serve — the streaming inference service.
//
// Two phases:
//
//  1. Load: admits --sessions resident patients (default 100k, scales to
//     1M), then --clients threads stream --rounds observations per patient
//     through ObserveAsync with a bounded pipeline of in-flight requests,
//     so concurrent singles coalesce in the micro-batcher. Reports p50/p99
//     per-observation latency (submit -> future resolved) and sustained
//     observations/second, plus the realised mean micro-batch size.
//
//  2. T-sweep: one patient observed --t-sweep times through the sync
//     (inline, no linger) service, per-observation latency bucketed by
//     history length. For models with an incremental StepForward the
//     buckets stay flat — cost is O(1) in T; window-replay fallback models
//     grow until the rolling window caps the replay at --window steps.
//
// The service sees an untrained registry model: serving cost does not
// depend on the weights, only on the architecture's step path.
//
// Flags: --model (registry name), --sessions, --rounds, --clients,
// --depth (per-client in-flight pipeline), --batch (micro-batch cap),
// --window (rolling-window capacity), --delay-us (batcher linger),
// --threads (kernel threads inside the scoring step), --t-sweep (0 skips),
// --json_out PATH.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace elda {
namespace {

constexpr int64_t kNumFeatures = 37;  // PhysioNet-2012 channel count

serve::Observation MakeObservation(Rng* rng) {
  serve::Observation obs;
  obs.x.resize(kNumFeatures);
  obs.mask.resize(kNumFeatures);
  obs.delta.resize(kNumFeatures);
  for (int64_t c = 0; c < kNumFeatures; ++c) {
    const bool seen = rng->Bernoulli(0.3);
    obs.x[c] = static_cast<float>(rng->Normal());
    obs.mask[c] = seen ? 1.0f : 0.0f;
    obs.delta[c] = seen ? 0.0f : 1.0f;
  }
  return obs;
}

double PercentileUs(const std::vector<double>& sorted_us, double pct) {
  if (sorted_us.empty()) return 0.0;
  const int64_t n = static_cast<int64_t>(sorted_us.size());
  int64_t idx = static_cast<int64_t>(pct / 100.0 * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_us[idx];
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  using Clock = std::chrono::steady_clock;

  std::string model_name = "GRU";
  int64_t sessions = 100000;
  int64_t rounds = 3;
  int64_t clients = 4;
  int64_t depth = 64;
  int64_t batch = 64;
  int64_t window = 32;
  int64_t delay_us = 200;
  int64_t threads = 1;
  int64_t t_sweep = 256;
  std::string json_path = "BENCH_serve.json";
  util::ArgParser parser("bench_serve_load",
                         "Streaming inference load generator: latency and "
                         "throughput with resident per-patient state.");
  parser.String("model", &model_name, "registry model to serve")
      .Int("sessions", &sessions, "resident patients to admit")
      .Int("rounds", &rounds, "observations streamed per patient")
      .Int("clients", &clients, "client threads submitting observations")
      .Int("depth", &depth, "per-client in-flight request pipeline")
      .Int("batch", &batch, "micro-batch coalescing cap")
      .Int("window", &window, "rolling-window capacity per session")
      .Int("delay-us", &delay_us, "micro-batcher linger before partial batch")
      .Int("threads", &threads, "kernel threads inside the scoring step")
      .Int("t-sweep", &t_sweep,
           "history length for the latency-vs-T table (0: skip)")
      .String("json_out", &json_path, "machine-readable results path");
  parser.Parse(argc, argv);

  auto model = baselines::MakeModel(model_name, kNumFeatures, /*seed=*/3);
  bench::PrintHeader(
      "serve load: " + model_name,
      model->has_incremental_step()
          ? "incremental StepForward (O(1) per observation)"
          : "window-replay fallback (O(window) per observation)");

  // ---- Phase 1: resident-session load -----------------------------------
  serve::ServeConfig config;
  config.infer.batch_size = batch;
  config.infer.num_threads = threads;
  config.window_capacity = window;
  config.max_sessions = sessions + 1;
  config.max_delay_us = delay_us;
  config.async = true;
  serve::InferenceService service(model.get(), config);

  std::vector<serve::SessionId> ids;
  ids.reserve(static_cast<size_t>(sessions));
  Stopwatch admit_watch;
  for (int64_t i = 0; i < sessions; ++i) {
    ids.push_back(service.Admit());
  }
  std::cout << "admitted " << sessions << " sessions in "
            << TablePrinter::Num(admit_watch.Seconds(), 2) << " s\n";

  const int64_t total_obs = sessions * rounds;
  std::vector<std::vector<double>> client_latencies(
      static_cast<size_t>(clients));
  Stopwatch load_watch;
  {
    std::vector<std::thread> workers;
    for (int64_t w = 0; w < clients; ++w) {
      workers.emplace_back([&, w] {
        Rng rng(static_cast<uint64_t>(w) * 7919 + 1);
        std::vector<double>& latencies = client_latencies[static_cast<size_t>(w)];
        latencies.reserve(static_cast<size_t>(total_obs / clients + 1));
        std::vector<std::pair<Clock::time_point, std::future<serve::StepResult>>>
            inflight;
        auto harvest_one = [&] {
          auto& [t0, fut] = inflight.front();
          fut.wait();
          latencies.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count());
          inflight.erase(inflight.begin());
        };
        for (int64_t r = 0; r < rounds; ++r) {
          // Shard sessions across clients round-robin; each session is only
          // ever touched by one client, so per-session FIFO order holds.
          for (int64_t i = w; i < sessions; i += clients) {
            if (static_cast<int64_t>(inflight.size()) >= depth) harvest_one();
            inflight.emplace_back(Clock::now(),
                                  service.ObserveAsync(ids[static_cast<size_t>(i)],
                                                       MakeObservation(&rng)));
          }
        }
        while (!inflight.empty()) harvest_one();
      });
    }
    for (std::thread& t : workers) t.join();
  }
  const double load_s = load_watch.Seconds();

  std::vector<double> all_us;
  all_us.reserve(static_cast<size_t>(total_obs));
  for (const auto& v : client_latencies) {
    all_us.insert(all_us.end(), v.begin(), v.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const double p50 = PercentileUs(all_us, 50.0);
  const double p99 = PercentileUs(all_us, 99.0);
  const double obs_per_sec = static_cast<double>(total_obs) / load_s;
  const serve::MicroBatcher::Stats stats = service.batcher_stats();

  TablePrinter load_table({"sessions", "observations", "clients", "p50 us",
                           "p99 us", "obs/sec", "mean batch"});
  load_table.AddRow({std::to_string(sessions), std::to_string(total_obs),
                     std::to_string(clients), TablePrinter::Num(p50, 1),
                     TablePrinter::Num(p99, 1),
                     TablePrinter::Num(obs_per_sec, 0),
                     TablePrinter::Num(stats.mean_batch_size, 1)});
  std::cout << load_table.ToString();

  // ---- Phase 2: latency vs history length -------------------------------
  std::vector<double> bucket_mean_us;
  int64_t bucket_width = 0;
  if (t_sweep > 0) {
    serve::ServeConfig sweep_config = config;
    sweep_config.max_sessions = 2;
    sweep_config.async = false;  // inline scoring: no linger in the numbers
    serve::InferenceService sweep(model.get(), sweep_config);
    const serve::SessionId pid = sweep.Admit("t-sweep");
    Rng rng(42);
    constexpr int64_t kBuckets = 8;
    bucket_width = (t_sweep + kBuckets - 1) / kBuckets;
    std::vector<double> sums(kBuckets, 0.0);
    std::vector<int64_t> counts(kBuckets, 0);
    for (int64_t t = 0; t < t_sweep; ++t) {
      const auto t0 = Clock::now();
      sweep.Observe(pid, MakeObservation(&rng));
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      const int64_t b = t / bucket_width;
      sums[static_cast<size_t>(b)] += us;
      ++counts[static_cast<size_t>(b)];
    }
    std::cout << "\nper-observation latency vs history length T (window "
              << window << "):\n";
    std::vector<std::string> header, row;
    for (int64_t b = 0; b < kBuckets; ++b) {
      if (counts[static_cast<size_t>(b)] == 0) continue;
      const double mean =
          sums[static_cast<size_t>(b)] / counts[static_cast<size_t>(b)];
      bucket_mean_us.push_back(mean);
      header.push_back("T<" + std::to_string((b + 1) * bucket_width) + " us");
      row.push_back(TablePrinter::Num(mean, 1));
    }
    TablePrinter sweep_table(header);
    sweep_table.AddRow(row);
    std::cout << sweep_table.ToString();
  }

  // ---- JSON (top-level keys shared with the other --json_out writers) ---
  {
    std::ofstream out(json_path);
    if (out) {
      out << "{\n  \"schema\": \"elda-bench-serve-v1\",\n"
          << "  \"threads\": " << threads << ",\n"
          << "  \"git_rev\": \"" << bench::GitRev() << "\",\n"
          << "  \"benchmarks\": [\n"
          << "    {\"name\": \"load\", \"model\": \"" << model_name
          << "\", \"incremental\": "
          << (model->has_incremental_step() ? "true" : "false")
          << ", \"sessions\": " << sessions
          << ", \"observations\": " << total_obs
          << ", \"clients\": " << clients << ", \"p50_us\": " << p50
          << ", \"p99_us\": " << p99 << ", \"obs_per_sec\": " << obs_per_sec
          << ", \"mean_batch\": " << stats.mean_batch_size << "}";
      if (!bucket_mean_us.empty()) {
        out << ",\n    {\"name\": \"t_sweep\", \"model\": \"" << model_name
            << "\", \"bucket_width\": " << bucket_width
            << ", \"bucket_mean_us\": [";
        for (size_t i = 0; i < bucket_mean_us.size(); ++i) {
          if (i) out << ", ";
          out << bucket_mean_us[i];
        }
        out << "]}";
      }
      out << "\n  ]\n}\n";
      std::cout << "wrote " << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
    }
  }
  return 0;
}
