// Load generator for elda::serve — the streaming inference service.
//
// Three phases:
//
//  1. Load, swept over worker counts (--workers, default "1,2,4"): admits
//     --sessions resident patients (default 100k, scales to 1M), then
//     --clients threads stream --rounds observations per patient through
//     ObserveAsync with a bounded pipeline of in-flight requests, so
//     concurrent singles coalesce in the sharded micro-batcher fleet
//     (sessions route to workers by id, preserving per-session FIFO).
//     Reports p50/p99 per-observation latency (submit -> future resolved)
//     and sustained observations/second per worker count. NOTE: on a
//     single-core box the worker sweep measures coordination overhead,
//     not parallel speedup — the rows are honest, the cores are absent.
//
//  2. Snapshot overhead (after the last sweep row, on the live service):
//     wall time to checkpoint every resident session's state to disk
//     (SaveSnapshotTo quiesces scoring, serializes, CRCs, atomic-renames)
//     and to restore the file into a fresh service, plus the file size.
//
//  3. T-sweep: one patient observed --t-sweep times through the sync
//     (inline, no linger) service, per-observation latency bucketed by
//     history length. For models with an incremental StepForward the
//     buckets stay flat — cost is O(1) in T; window-replay fallback models
//     grow until the rolling window caps the replay at --window steps.
//
// The service sees an untrained registry model: serving cost does not
// depend on the weights, only on the architecture's step path.
//
// Flags: --model (registry name), --sessions, --rounds, --clients,
// --workers (comma-separated scoring-worker counts), --depth (per-client
// in-flight pipeline), --batch (micro-batch cap), --window
// (rolling-window capacity), --delay-us (batcher linger), --threads
// (kernel threads inside the scoring step), --t-sweep (0 skips),
// --snapshot-path (where phase 2 writes; empty skips), --json_out PATH.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace elda {
namespace {

constexpr int64_t kNumFeatures = 37;  // PhysioNet-2012 channel count

serve::Observation MakeObservation(Rng* rng) {
  serve::Observation obs;
  obs.x.resize(kNumFeatures);
  obs.mask.resize(kNumFeatures);
  obs.delta.resize(kNumFeatures);
  for (int64_t c = 0; c < kNumFeatures; ++c) {
    const bool seen = rng->Bernoulli(0.3);
    obs.x[c] = static_cast<float>(rng->Normal());
    obs.mask[c] = seen ? 1.0f : 0.0f;
    obs.delta[c] = seen ? 0.0f : 1.0f;
  }
  return obs;
}

double PercentileUs(const std::vector<double>& sorted_us, double pct) {
  if (sorted_us.empty()) return 0.0;
  const int64_t n = static_cast<int64_t>(sorted_us.size());
  int64_t idx = static_cast<int64_t>(pct / 100.0 * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_us[idx];
}

std::vector<int64_t> ParseWorkerCounts(const std::string& spec) {
  std::vector<int64_t> counts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const int64_t w = std::atoll(item.c_str());
    if (w >= 1) counts.push_back(w);
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

struct LoadResult {
  int64_t workers = 1;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double obs_per_sec = 0.0;
  double mean_batch = 0.0;
};

struct SnapshotResult {
  bool ran = false;
  double save_ms = 0.0;
  double restore_ms = 0.0;
  int64_t bytes = 0;
  int64_t quarantined = 0;
};

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  using Clock = std::chrono::steady_clock;

  std::string model_name = "GRU";
  int64_t sessions = 100000;
  int64_t rounds = 3;
  int64_t clients = 4;
  std::string workers_spec = "1,2,4";
  int64_t depth = 64;
  int64_t batch = 64;
  int64_t window = 32;
  int64_t delay_us = 200;
  int64_t threads = 1;
  int64_t t_sweep = 256;
  std::string snapshot_path = "BENCH_serve_snapshot.ckpt";
  std::string json_path = "BENCH_serve.json";
  util::ArgParser parser("bench_serve_load",
                         "Streaming inference load generator: latency and "
                         "throughput with resident per-patient state, "
                         "multi-worker sweep, and snapshot overhead.");
  parser.String("model", &model_name, "registry model to serve")
      .Int("sessions", &sessions, "resident patients to admit")
      .Int("rounds", &rounds, "observations streamed per patient")
      .Int("clients", &clients, "client threads submitting observations")
      .String("workers", &workers_spec,
              "comma-separated scoring-worker counts to sweep")
      .Int("depth", &depth, "per-client in-flight request pipeline")
      .Int("batch", &batch, "micro-batch coalescing cap")
      .Int("window", &window, "rolling-window capacity per session")
      .Int("delay-us", &delay_us, "micro-batcher linger before partial batch")
      .Int("threads", &threads, "kernel threads inside the scoring step")
      .Int("t-sweep", &t_sweep,
           "history length for the latency-vs-T table (0: skip)")
      .String("snapshot-path", &snapshot_path,
              "session checkpoint file for the overhead phase (empty: skip)")
      .String("json_out", &json_path, "machine-readable results path");
  parser.Parse(argc, argv);

  const std::vector<int64_t> worker_counts = ParseWorkerCounts(workers_spec);
  auto model = baselines::MakeModel(model_name, kNumFeatures, /*seed=*/3);
  bench::PrintHeader(
      "serve load: " + model_name,
      model->has_incremental_step()
          ? "incremental StepForward (O(1) per observation)"
          : "window-replay fallback (O(window) per observation)");

  // ---- Phase 1: resident-session load, swept over worker counts ---------
  const int64_t total_obs = sessions * rounds;
  std::vector<LoadResult> load_results;
  SnapshotResult snapshot;
  TablePrinter load_table({"workers", "sessions", "observations", "clients",
                           "p50 us", "p99 us", "obs/sec", "mean batch"});
  for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
    const int64_t num_workers = worker_counts[wi];
    serve::ServeConfig config;
    config.infer.batch_size = batch;
    config.infer.num_threads = threads;
    config.window_capacity = window;
    config.max_sessions = sessions + 1;
    config.max_delay_us = delay_us;
    config.async = true;
    config.num_workers = num_workers;
    serve::InferenceService service(model.get(), config);

    std::vector<serve::SessionId> ids;
    ids.reserve(static_cast<size_t>(sessions));
    Stopwatch admit_watch;
    for (int64_t i = 0; i < sessions; ++i) {
      ids.push_back(service.Admit());
    }
    if (wi == 0) {
      std::cout << "admitted " << sessions << " sessions in "
                << TablePrinter::Num(admit_watch.Seconds(), 2) << " s\n";
    }

    std::vector<std::vector<double>> client_latencies(
        static_cast<size_t>(clients));
    Stopwatch load_watch;
    {
      std::vector<std::thread> client_threads;
      for (int64_t w = 0; w < clients; ++w) {
        client_threads.emplace_back([&, w] {
          Rng rng(static_cast<uint64_t>(w) * 7919 + 1);
          std::vector<double>& latencies =
              client_latencies[static_cast<size_t>(w)];
          latencies.reserve(static_cast<size_t>(total_obs / clients + 1));
          std::vector<
              std::pair<Clock::time_point, std::future<serve::StepResult>>>
              inflight;
          auto harvest_one = [&] {
            auto& [t0, fut] = inflight.front();
            fut.wait();
            latencies.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count());
            inflight.erase(inflight.begin());
          };
          for (int64_t r = 0; r < rounds; ++r) {
            // Shard sessions across clients round-robin; each session is
            // only ever touched by one client, so per-session FIFO order
            // holds.
            for (int64_t i = w; i < sessions; i += clients) {
              if (static_cast<int64_t>(inflight.size()) >= depth) {
                harvest_one();
              }
              inflight.emplace_back(
                  Clock::now(),
                  service.ObserveAsync(ids[static_cast<size_t>(i)],
                                       MakeObservation(&rng)));
            }
          }
          while (!inflight.empty()) harvest_one();
        });
      }
      for (std::thread& t : client_threads) t.join();
    }
    const double load_s = load_watch.Seconds();

    std::vector<double> all_us;
    all_us.reserve(static_cast<size_t>(total_obs));
    for (const auto& v : client_latencies) {
      all_us.insert(all_us.end(), v.begin(), v.end());
    }
    std::sort(all_us.begin(), all_us.end());
    const serve::MicroBatcher::Stats stats = service.batcher_stats();
    LoadResult result;
    result.workers = num_workers;
    result.p50_us = PercentileUs(all_us, 50.0);
    result.p99_us = PercentileUs(all_us, 99.0);
    result.obs_per_sec = static_cast<double>(total_obs) / load_s;
    result.mean_batch = stats.mean_batch_size;
    load_results.push_back(result);
    load_table.AddRow(
        {std::to_string(num_workers), std::to_string(sessions),
         std::to_string(total_obs), std::to_string(clients),
         TablePrinter::Num(result.p50_us, 1),
         TablePrinter::Num(result.p99_us, 1),
         TablePrinter::Num(result.obs_per_sec, 0),
         TablePrinter::Num(result.mean_batch, 1)});

    // ---- Phase 2: snapshot overhead on the last (still-live) service ----
    if (wi + 1 == worker_counts.size() && !snapshot_path.empty()) {
      std::string error;
      Stopwatch save_watch;
      if (!service.SaveSnapshotTo(snapshot_path, &error)) {
        std::cerr << "snapshot save failed: " << error << "\n";
      } else {
        snapshot.ran = true;
        snapshot.save_ms = save_watch.Seconds() * 1e3;
        struct stat st;
        if (::stat(snapshot_path.c_str(), &st) == 0) {
          snapshot.bytes = static_cast<int64_t>(st.st_size);
        }
        serve::InferenceService restored(model.get(), config);
        Stopwatch restore_watch;
        if (!restored.RestoreSnapshot(snapshot_path, &error)) {
          std::cerr << "snapshot restore failed: " << error << "\n";
          snapshot.ran = false;
        } else {
          snapshot.restore_ms = restore_watch.Seconds() * 1e3;
          snapshot.quarantined = restored.stats().quarantined_total;
        }
        std::remove(snapshot_path.c_str());
      }
    }
  }
  std::cout << load_table.ToString();
  if (snapshot.ran) {
    TablePrinter snap_table(
        {"snapshot sessions", "save ms", "restore ms", "file MB"});
    snap_table.AddRow(
        {std::to_string(sessions), TablePrinter::Num(snapshot.save_ms, 1),
         TablePrinter::Num(snapshot.restore_ms, 1),
         TablePrinter::Num(static_cast<double>(snapshot.bytes) / 1e6, 1)});
    std::cout << "\nsession checkpoint overhead (all resident states):\n"
              << snap_table.ToString();
  }

  // ---- Phase 3: latency vs history length -------------------------------
  std::vector<double> bucket_mean_us;
  int64_t bucket_width = 0;
  if (t_sweep > 0) {
    serve::ServeConfig sweep_config;
    sweep_config.infer.batch_size = batch;
    sweep_config.infer.num_threads = threads;
    sweep_config.window_capacity = window;
    sweep_config.max_sessions = 2;
    sweep_config.async = false;  // inline scoring: no linger in the numbers
    serve::InferenceService sweep(model.get(), sweep_config);
    const serve::SessionId pid = sweep.Admit("t-sweep");
    Rng rng(42);
    constexpr int64_t kBuckets = 8;
    bucket_width = (t_sweep + kBuckets - 1) / kBuckets;
    std::vector<double> sums(kBuckets, 0.0);
    std::vector<int64_t> counts(kBuckets, 0);
    for (int64_t t = 0; t < t_sweep; ++t) {
      const auto t0 = Clock::now();
      sweep.Observe(pid, MakeObservation(&rng));
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      const int64_t b = t / bucket_width;
      sums[static_cast<size_t>(b)] += us;
      ++counts[static_cast<size_t>(b)];
    }
    std::cout << "\nper-observation latency vs history length T (window "
              << window << "):\n";
    std::vector<std::string> header, row;
    for (int64_t b = 0; b < kBuckets; ++b) {
      if (counts[static_cast<size_t>(b)] == 0) continue;
      const double mean =
          sums[static_cast<size_t>(b)] / counts[static_cast<size_t>(b)];
      bucket_mean_us.push_back(mean);
      header.push_back("T<" + std::to_string((b + 1) * bucket_width) + " us");
      row.push_back(TablePrinter::Num(mean, 1));
    }
    TablePrinter sweep_table(header);
    sweep_table.AddRow(row);
    std::cout << sweep_table.ToString();
  }

  // ---- JSON (top-level keys shared with the other --json_out writers) ---
  {
    std::ofstream out(json_path);
    if (out) {
      out << "{\n  \"schema\": \"elda-bench-serve-v1\",\n"
          << "  \"threads\": " << threads << ",\n"
          << "  \"git_rev\": \"" << bench::GitRev() << "\",\n"
          << "  \"benchmarks\": [\n";
      bool first = true;
      for (const LoadResult& r : load_results) {
        if (!first) out << ",\n";
        first = false;
        out << "    {\"name\": \"load\", \"model\": \"" << model_name
            << "\", \"incremental\": "
            << (model->has_incremental_step() ? "true" : "false")
            << ", \"workers\": " << r.workers
            << ", \"sessions\": " << sessions
            << ", \"observations\": " << total_obs
            << ", \"clients\": " << clients << ", \"p50_us\": " << r.p50_us
            << ", \"p99_us\": " << r.p99_us
            << ", \"obs_per_sec\": " << r.obs_per_sec
            << ", \"mean_batch\": " << r.mean_batch << "}";
      }
      if (snapshot.ran) {
        if (!first) out << ",\n";
        first = false;
        out << "    {\"name\": \"snapshot\", \"model\": \"" << model_name
            << "\", \"sessions\": " << sessions
            << ", \"save_ms\": " << snapshot.save_ms
            << ", \"restore_ms\": " << snapshot.restore_ms
            << ", \"bytes\": " << snapshot.bytes
            << ", \"quarantined\": " << snapshot.quarantined << "}";
      }
      if (!bucket_mean_us.empty()) {
        if (!first) out << ",\n";
        out << "    {\"name\": \"t_sweep\", \"model\": \"" << model_name
            << "\", \"bucket_width\": " << bucket_width
            << ", \"bucket_mean_us\": [";
        for (size_t i = 0; i < bucket_mean_us.size(); ++i) {
          if (i) out << ", ";
          out << bucket_mean_us[i];
        }
        out << "]}";
      }
      out << "\n  ]\n}\n";
      std::cout << "wrote " << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
    }
  }
  return 0;
}
