// Regenerates Table I: statistics of the PhysioNet2012 and MIMIC-III
// datasets, reproduced by the synthetic cohorts SynthPhysioNet2012 and
// SynthMimicIii (see DESIGN.md "Substitutions").
//
// Default scale generates 10% of each cohort; --full generates all 12,000 /
// 21,139 admissions (a few seconds of CPU).

#include <cstdio>

#include "bench/bench_common.h"
#include "data/emr.h"

namespace elda {
namespace {

struct PaperStats {
  double admissions;
  double survivors, non_survivors;
  double los_le7, los_gt7;
  double records_per_patient;
  double missing_rate;
};

void Report(const std::string& name, const data::EmrDataset& cohort,
            const PaperStats& paper, double scale_factor) {
  TablePrinter table({"statistic", "paper", "synthetic (scaled x" +
                                       TablePrinter::Num(scale_factor, 2) +
                                       ")"});
  const double n = cohort.size();
  const double mortality = cohort.CountMortality();
  const double los_gt7 = cohort.CountLosGt7();
  table.AddRow({"# of admissions", TablePrinter::Num(paper.admissions, 0),
                TablePrinter::Num(n, 0)});
  table.AddRow({"survivor : non-survivor",
                TablePrinter::Num(paper.survivors, 0) + " : " +
                    TablePrinter::Num(paper.non_survivors, 0),
                TablePrinter::Num(n - mortality, 0) + " : " +
                    TablePrinter::Num(mortality, 0)});
  table.AddRow({"mortality rate",
                TablePrinter::Num(paper.non_survivors / paper.admissions, 4),
                TablePrinter::Num(mortality / n, 4)});
  table.AddRow({"LOS<=7 : LOS>7",
                TablePrinter::Num(paper.los_le7, 0) + " : " +
                    TablePrinter::Num(paper.los_gt7, 0),
                TablePrinter::Num(n - los_gt7, 0) + " : " +
                    TablePrinter::Num(los_gt7, 0)});
  table.AddRow(
      {"LOS>7 rate",
       TablePrinter::Num(paper.los_gt7 / (paper.los_le7 + paper.los_gt7), 4),
       TablePrinter::Num(los_gt7 / n, 4)});
  table.AddRow({"avg. # records / patient",
                TablePrinter::Num(paper.records_per_patient, 2),
                TablePrinter::Num(cohort.AvgRecordsPerPatient(), 2)});
  table.AddRow({"# of medical features", "37",
                TablePrinter::Num(cohort.num_features(), 0)});
  table.AddRow({"missing rate", TablePrinter::Num(paper.missing_rate, 4),
                TablePrinter::Num(cohort.MissingRate(), 4)});
  // Stay-length distribution. Fixed-grid cohorts collapse to a single
  // value (the paper's 48 h window); variable-length cohorts show the
  // condition-dependent spread the ragged substrate carries end-to-end.
  const data::LengthStats lengths = cohort.ComputeStayLengthStats();
  table.AddRow({"stay length h (p50 / p95 / max)", "48 / 48 / 48",
                TablePrinter::Num(static_cast<double>(lengths.p50), 0) +
                    " / " +
                    TablePrinter::Num(static_cast<double>(lengths.p95), 0) +
                    " / " +
                    TablePrinter::Num(static_cast<double>(lengths.max), 0)});
  table.AddRow({"mean stay length h", "48",
                TablePrinter::Num(lengths.mean, 1)});
  std::cout << "[" << name << "]\n" << table.ToString() << "\n";
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchScale scale;
  bench::ParseBenchFlags(argc, argv, {}, &scale, /*default_admissions=*/1200);
  bench::PrintHeader(
      "Table I: dataset statistics (paper vs synthetic substitution)",
      "Class ratios, record density and missingness are generator-calibrated;"
      "\nexact per-cohort counts are Bernoulli draws around the target rates.");

  {
    synth::CohortConfig config = synth::SynthPhysioNet2012();
    const double factor =
        static_cast<double>(scale.physionet_admissions) / 12000.0;
    config.num_admissions = scale.physionet_admissions;
    data::EmrDataset cohort = synth::GenerateCohort(config);
    Report("PhysioNet2012 -> SynthPhysioNet2012", cohort,
           {12000, 10293, 1707, 4095, 7738, 359.19, 0.7978}, factor);
  }
  {
    synth::CohortConfig config = synth::SynthMimicIii();
    const double factor =
        static_cast<double>(scale.mimic_admissions) / 21139.0;
    config.num_admissions = scale.mimic_admissions;
    data::EmrDataset cohort = synth::GenerateCohort(config);
    Report("MIMIC-III -> SynthMimicIii", cohort,
           {21139, 18342, 2797, 9134, 12005, 346.05, 0.8052}, factor);
  }
  {
    // Variable-length variant: the same PhysioNet calibration with stays
    // drawn per patient (6 h .. 30 d), exercising the ragged substrate.
    synth::CohortConfig config = synth::SynthPhysioNet2012();
    const double factor =
        static_cast<double>(scale.physionet_admissions) / 12000.0;
    config.num_admissions = scale.physionet_admissions;
    config.variable_length = true;
    data::EmrDataset cohort = synth::GenerateCohort(config);
    Report("PhysioNet2012 -> SynthPhysioNet2012 (variable-length)", cohort,
           {12000, 10293, 1707, 4095, 7738, 359.19, 0.7978}, factor);
  }
  return 0;
}
