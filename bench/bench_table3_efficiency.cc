// Regenerates Table III: number of trainable parameters, training time per
// batch (batch size 64) and single-admission prediction latency for every
// model, next to the paper's reported values.
//
// Absolute times differ by construction: the paper measured Keras/TF on a
// Xeon W-2133 + RTX 2080 Ti, this repo runs a from-scratch engine on one
// CPU core. The *relative ordering* is the reproduction target: LR ~ free;
// the FM family pays for pairwise terms; plain RNNs are fast; ELDA-Net sits
// between the plain RNNs and the heavy baselines (ConCare, GRU-D, StageNet).
//
// Inference-latency columns (B=1 and B=256) run on the graph-free no-grad
// path, the same configuration Trainer::Predict uses. Every run also writes
// a machine-readable BENCH_table3.json with the measured columns per model
// (override the path with --json_out=PATH).
//
// Beyond the paper's table, two workload-quality columns ride along: each
// model is trained once through the multi-task loop (mortality +
// phenotyping heads) and then scored on the test split for per-step
// decompensation (the parameterless DecompensationHead reuses the trained
// readout over the per-step encoding — models without one show "-") and
// phenotyping AUC-ROC. The JSON schema is "elda-bench-table3-v3"; the AUC
// fields are reported by bench/check_regression.py but never gate (quality
// at one bench epoch is noisy by design; -1 marks not-applicable).
//
// Flags: --batches N (timing batches per model), --admissions, --full,
// --json_out PATH, --threads N (thread count for the parallel
// batched-prediction columns; the table reports ms/admission at 1 thread
// and at N threads plus the speedup, exercising the elda::par
// batch-parallel Trainer::Predict path)

#include <fstream>

#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "bench/bench_common.h"
#include "mem/prof.h"
#include "optim/optimizer.h"
#include "train/experiment.h"
#include "train/task_head.h"
#include "util/stopwatch.h"

namespace elda {
namespace {

struct PaperRow {
  const char* name;
  const char* params;
  const char* train_s;
  const char* predict_ms;
};

const PaperRow kPaperRows[] = {
    {"LR", "38", "0.8", "<0.01"},
    {"FM", "630", "138", "0.70"},
    {"AFM", "718", "148", "0.72"},
    {"SAnD", "106k", "17", "0.08"},
    {"GRU", "20k", "9", "0.05"},
    {"RETAIN", "13k", "14", "0.07"},
    {"Dipole-l", "40k", "9", "0.05"},
    {"Dipole-g", "56k", "10", "0.05"},
    {"Dipole-c", "44k", "10", "0.05"},
    {"StageNet", "85k", "126", "0.92"},
    {"GRU-D", "38k", "466", "3.23"},
    {"ConCare", "183k", "118", "0.69"},
    {"ELDA-Net-T", "21k", "10", "0.05"},
    {"ELDA-Net-Fbi", "49k", "43", "0.21"},
    {"ELDA-Net-Ffm", "43k", "41", "0.22"},
    {"ELDA-Net", "53k", "44", "0.22"},
};

const PaperRow& PaperFor(const std::string& name) {
  for (const PaperRow& row : kPaperRows) {
    if (name == row.name) return row;
  }
  static const PaperRow kEmpty = {"?", "-", "-", "-"};
  return kEmpty;
}

}  // namespace
}  // namespace elda

int main(int argc, char** argv) {
  using namespace elda;
  bench::BenchFlagValues values;
  int64_t timing_batches = 5;
  std::string json_path = "BENCH_table3.json";
  util::ArgParser parser("bench_table3_efficiency",
                         "Table III: parameters, training throughput and "
                         "inference latency per model.");
  bench::RegisterBenchFlags(&parser, &values);
  parser.Int("batches", &timing_batches, "timing batches per model")
      .String("json_out", &json_path, "machine-readable results path");
  parser.Parse(argc, argv);
  bench::BenchScale scale;
  bench::ResolveBenchScale(values, &scale,
                           /*default_admissions=*/256,
                           /*default_epochs=*/1);
  bench::PrintHeader(
      "Table III: parameters and runtime",
      "Paper columns: Keras/TF on Xeon W-2133 + RTX 2080 Ti; measured\n"
      "columns: this repo's engine on one CPU core. Compare orderings, not\n"
      "absolute values. (Paper's training column is seconds per epoch-batch\n"
      "group; ours is seconds per 64-admission batch.)");

  synth::CohortConfig config = bench::ScaledPhysioNet(scale);
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);

  const int64_t par_threads = par::NumThreads();
  TablePrinter table({"model", "params (paper)", "params (ours)",
                      "train s/batch (paper)", "train s/batch (ours)",
                      "predict ms (paper)", "infer ms B=1",
                      "infer ms/adm B=256",
                      "batch ms/adm (1 thr)",
                      "batch ms/adm (" + std::to_string(par_threads) + " thr)",
                      "speedup", "decomp AUC", "pheno AUC"});
  struct JsonRow {
    std::string name;
    int64_t params = 0;
    double train_s = 0.0;
    double infer_ms_b1 = 0.0;
    double infer_ms_per_adm_b256 = 0.0;
    double batch_ms_serial = 0.0;
    double batch_ms_parallel = 0.0;
    double decomp_auc_roc = -1.0;  // -1: model has no per-step encoding
    double pheno_auc_roc = -1.0;
  };
  std::vector<JsonRow> json_rows;
  for (const std::string& name : baselines::AllModelNames()) {
    auto model = baselines::MakeModel(name, cohort.num_features(), 3);
    optim::Adam adam(model->Parameters(), 1e-3f);
    // Timed training batches (forward + backward + step) under a
    // training-mode context (dropout active where the model has it).
    Rng train_rng(17);
    nn::ForwardContext train_ctx;
    train_ctx.training = true;
    train_ctx.rng = &train_rng;
    std::vector<int64_t> indices(experiment.split().train.begin(),
                                 experiment.split().train.begin() + 64);
    data::Batch batch =
        data::MakeBatch(experiment.prepared(), indices, experiment.task());
    model->Forward(batch, &train_ctx);  // warm up
    Stopwatch train_watch;
    for (int64_t i = 0; i < timing_batches; ++i) {
      adam.ZeroGrad();
      ag::BceWithLogits(model->Forward(batch, &train_ctx), batch.y)
          .Backward();
      optim::ClipGradNorm(model->Parameters(), 5.0f);
      adam.Step();
    }
    const double train_s = train_watch.Seconds() / timing_batches;

    // Graph-free inference latency at B=1 and B=256 (no-grad, eval-mode
    // context) — the configuration Trainer::Predict runs in.
    const int64_t reps = 20;
    double predict_ms = 0.0;
    double predict_ms_b256 = 0.0;
    {
      ag::NoGradScope no_grad;
      data::Batch one = data::MakeBatch(experiment.prepared(),
                                        {experiment.split().test[0]},
                                        experiment.task());
      model->Forward(one);  // warm up
      Stopwatch predict_watch;
      for (int64_t i = 0; i < reps; ++i) model->Forward(one);
      predict_ms = predict_watch.Milliseconds() / reps;

      std::vector<int64_t> big;
      for (int64_t i = 0; i < 256; ++i) {
        const auto& test = experiment.split().test;
        big.push_back(test[i % test.size()]);
      }
      data::Batch wide =
          data::MakeBatch(experiment.prepared(), big, experiment.task());
      model->Forward(wide);  // warm up
      Stopwatch wide_watch;
      const int64_t wide_reps = 3;
      for (int64_t i = 0; i < wide_reps; ++i) model->Forward(wide);
      predict_ms_b256 = wide_watch.Milliseconds() / wide_reps / 256.0;
    }

    // Batched prediction over the whole test split through the unified
    // Trainer::Predict API, serial vs the configured thread count. Small
    // batches keep enough chunks in flight for the pool to spread out.
    const std::vector<int64_t>& test_indices = experiment.split().test;
    train::InferenceOptions predict_options;
    predict_options.batch_size = 32;
    predict_options.num_threads = 1;
    train::Trainer::Predict(model.get(), experiment.prepared(), test_indices,
                            experiment.task(), predict_options);  // warm up
    Stopwatch serial_watch;
    train::Trainer::Predict(model.get(), experiment.prepared(), test_indices,
                            experiment.task(), predict_options);
    const double serial_ms =
        serial_watch.Milliseconds() / test_indices.size();
    predict_options.num_threads = par_threads;
    Stopwatch parallel_watch;
    train::Trainer::Predict(model.get(), experiment.prepared(), test_indices,
                            experiment.task(), predict_options);
    const double parallel_ms =
        parallel_watch.Milliseconds() / test_indices.size();

    // Workload quality: train a fresh copy through the multi-task loop
    // (mortality drives the trunk readout, phenotyping adds its linear
    // head), then score the test split. Decompensation evaluates after
    // training — the head is parameterless, so the trained readout over the
    // per-step encoding is the per-step risk; training itself stays on the
    // cheap terminal path.
    double decomp_auc = -1.0;
    double pheno_auc = -1.0;
    {
      auto fresh = baselines::MakeModel(name, cohort.num_features(), 3);
      train::MultiHead heads;
      heads.Add(std::make_unique<train::BinaryTerminalHead>(), 1.0f);
      heads.Add(std::make_unique<train::PhenotypeHead>(
                    fresh->encoding_dim(), data::kNumPhenotypes, /*seed=*/41),
                0.5f);
      train::TrainerConfig trainer_config = scale.trainer;
      trainer_config.seed = 3;
      train::MultiTaskTrainResult trained =
          train::Trainer(trainer_config)
              .TrainMultiTask(fresh.get(), &heads, experiment.prepared(),
                              experiment.split(), experiment.task());
      pheno_auc = trained.test.ForTask("phenotyping").auc_roc;
      if (fresh->has_step_encoding()) {
        heads.Add(std::make_unique<train::DecompensationHead>(), 1.0f);
        train::MultiTaskEvalResult eval = train::Trainer::EvaluateMultiTask(
            fresh.get(), &heads, experiment.prepared(),
            experiment.split().test, experiment.task());
        decomp_auc = eval.ForTask("decompensation").auc_roc;
      }
    }

    const PaperRow& paper = PaperFor(name);
    table.AddRow({name, paper.params, std::to_string(model->NumParameters()),
                  paper.train_s, TablePrinter::Num(train_s, 3),
                  paper.predict_ms, TablePrinter::Num(predict_ms, 2),
                  TablePrinter::Num(predict_ms_b256, 2),
                  TablePrinter::Num(serial_ms, 2),
                  TablePrinter::Num(parallel_ms, 2),
                  TablePrinter::Num(serial_ms / parallel_ms, 2),
                  decomp_auc < 0.0 ? "-" : TablePrinter::Num(decomp_auc, 3),
                  TablePrinter::Num(pheno_auc, 3)});
    JsonRow row;
    row.name = name;
    row.params = model->NumParameters();
    row.train_s = train_s;
    row.infer_ms_b1 = predict_ms;
    row.infer_ms_per_adm_b256 = predict_ms_b256;
    row.batch_ms_serial = serial_ms;
    row.batch_ms_parallel = parallel_ms;
    row.decomp_auc_roc = decomp_auc;
    row.pheno_auc_roc = pheno_auc;
    json_rows.push_back(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << "\n" << table.ToString();
  {
    std::ofstream out(json_path);
    if (out) {
      // Top-level keys (schema/threads/git_rev/benchmarks) are shared with
      // bench_micro_substrate's --json_out so result files aggregate
      // uniformly.
      out << "{\n  \"schema\": \"elda-bench-table3-v3\",\n"
          << "  \"threads\": " << par_threads << ",\n"
          << "  \"git_rev\": \"" << bench::GitRev() << "\",\n"
          << "  \"benchmarks\": [\n";
      for (size_t i = 0; i < json_rows.size(); ++i) {
        const JsonRow& r = json_rows[i];
        out << "    {\"name\": \"" << r.name << "\", \"params\": "
            << r.params << ", \"train_s_per_batch\": " << r.train_s
            << ", \"infer_ms_b1\": " << r.infer_ms_b1
            << ", \"infer_ms_per_adm_b256\": " << r.infer_ms_per_adm_b256
            << ", \"batch_ms_per_adm_serial\": " << r.batch_ms_serial
            << ", \"batch_ms_per_adm_parallel\": " << r.batch_ms_parallel
            << ", \"decomp_auc_roc\": " << r.decomp_auc_roc
            << ", \"pheno_auc_roc\": " << r.pheno_auc_roc
            << "}" << (i + 1 < json_rows.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cout << "wrote " << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
    }
  }
  // With ELDA_PROF=1, append the op-level profile (per-op time, allocation
  // volume, pool hit rate) so efficiency numbers come with their breakdown.
  prof::ReportIfEnabled(std::cout);
  return 0;
}
