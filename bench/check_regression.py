#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against the committed baseline.

Usage:
    python3 bench/check_regression.py FRESH.json [BASELINE.json]
        [--threshold 0.15] [--all]

Reads both files (baseline defaults to the committed BENCH_micro.json next
to the repo root), joins rows by benchmark name, and fails (exit 1) when any
*key op* regressed by more than the threshold (default 15% slower in
ns_per_iter). Key ops are the single-thread rows of the performance
substrate plus the end-to-end model benches -- rows whose timing is stable
on one machine across runs. Multi-thread scaling rows are reported but not
gated: their baseline numbers depend on the core count of the machine that
recorded them.

Accepts both the v1 schema ("results") and the v2 schema ("benchmarks").
Rows present in only one file are reported and skipped. --all widens the
gate to every joined row.

Table-3 files (schema elda-bench-table3-v3) additionally carry workload
quality columns (decomp_auc_roc / pheno_auc_roc, -1 = not applicable).
Those are joined and reported as an informational section but never gate:
quality at one bench epoch is noisy by design, and the bitwise contracts
that actually pin model behaviour live in the test suite.
"""

import argparse
import json
import os
import sys

# Rows gated by default: deterministic single-thread substrate ops and the
# end-to-end model paths. A >threshold slowdown on any of these fails CI.
KEY_OPS = [
    "BM_MatMulSquare/256/1",
    "BM_MatMulBatchedSmall/1",
    "BM_SoftmaxLastAxis/1",
    "BM_BroadcastMul",
    "BM_GruForward",
    "BM_RecurrentSweep/256/0",
    "BM_RecurrentSweep/256/1",
    "BM_FeatureInteractionFactored/37",
    "BM_EldaNetForwardBackward",
    "BM_EldaNetInference/256/1",
    # Out-of-core data substrate (bench_loader --json_out, schema
    # elda-bench-loader-v1; same {name, ns_per_iter} row shape so the files
    # join here directly). ns_per_iter is ns/stay for generation and
    # ns/batch for epoch drains; gated rows are the deterministic
    # single-stream configurations.
    "BM_ShardCohortGenerate",
    "BM_ShardedLoaderEpoch/4/0",
    "BM_ShardedLoaderEpoch/4/1",
]


# Informational quality metrics (reported, never gated). Values < 0 mean
# "not applicable for this model" and are skipped.
QUALITY_METRICS = ["decomp_auc_roc", "pheno_auc_roc"]


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("benchmarks", doc.get("results", []))
    out = {}
    quality = {}
    for row in rows:
        name = row.get("name")
        if name is None:
            continue
        ns = row.get("ns_per_iter")
        if ns is not None:
            out[name] = float(ns)
        metrics = {m: float(row[m]) for m in QUALITY_METRICS
                   if row.get(m) is not None and float(row[m]) >= 0.0}
        if metrics:
            quality[name] = metrics
    if not out and not quality:
        raise SystemExit(f"{path}: no benchmark rows found "
                         "(expected 'benchmarks' or 'results')")
    return out, quality


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("fresh", help="freshly measured BENCH_micro.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, "BENCH_micro.json"),
        help="baseline json (default: committed BENCH_micro.json)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fail when ns_per_iter grows by more than this "
                             "fraction (default 0.15)")
    parser.add_argument("--all", action="store_true",
                        help="gate every joined row, not just the key ops")
    args = parser.parse_args()

    fresh, fresh_quality = load_rows(args.fresh)
    base, base_quality = load_rows(args.baseline)

    joined = sorted(set(fresh) & set(base))
    gated = set(joined) if args.all else {n for n in KEY_OPS if n in joined}
    missing_keys = [n for n in KEY_OPS if n not in joined]

    failures = []
    print(f"{'benchmark':<40} {'baseline ns':>14} {'fresh ns':>14} "
          f"{'delta':>8}  gate")
    for name in joined:
        old, new = base[name], fresh[name]
        delta = (new - old) / old if old > 0 else 0.0
        is_gated = name in gated
        verdict = ""
        if is_gated and delta > args.threshold:
            verdict = "REGRESSION"
            failures.append((name, old, new, delta))
        elif is_gated:
            verdict = "ok"
        print(f"{name:<40} {old:>14.0f} {new:>14.0f} {delta:>+7.1%}  "
              f"{verdict}")

    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<40} {'(missing from fresh run)':>30}")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<40} {'(new, no baseline)':>30}")
    if missing_keys:
        print(f"note: key ops absent from the join: {', '.join(missing_keys)}")

    quality_join = sorted(set(fresh_quality) & set(base_quality))
    if quality_join:
        print("\nworkload quality (informational, not gated):")
        print(f"{'model / metric':<40} {'baseline':>10} {'fresh':>10} "
              f"{'delta':>8}")
        for name in quality_join:
            for metric in QUALITY_METRICS:
                old = base_quality[name].get(metric)
                new = fresh_quality[name].get(metric)
                if old is None or new is None:
                    continue
                print(f"{name + ' ' + metric:<40} {old:>10.3f} {new:>10.3f} "
                      f"{new - old:>+8.3f}")

    if failures:
        print(f"\nFAIL: {len(failures)} key op(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, old, new, delta in failures:
            print(f"  {name}: {old:.0f} -> {new:.0f} ns/iter ({delta:+.1%})")
        return 1
    print(f"\nOK: no key op regressed more than {args.threshold:.0%} "
          f"({len(gated)} gated, {len(joined)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
