file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hyperparams.dir/bench_ablation_hyperparams.cc.o"
  "CMakeFiles/bench_ablation_hyperparams.dir/bench_ablation_hyperparams.cc.o.d"
  "bench_ablation_hyperparams"
  "bench_ablation_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
