# Empty dependencies file for bench_ablation_hyperparams.
# This may be replaced when dependencies are built.
