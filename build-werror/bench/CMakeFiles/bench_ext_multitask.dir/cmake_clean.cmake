file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multitask.dir/bench_ext_multitask.cc.o"
  "CMakeFiles/bench_ext_multitask.dir/bench_ext_multitask.cc.o.d"
  "bench_ext_multitask"
  "bench_ext_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
