# Empty dependencies file for bench_ext_multitask.
# This may be replaced when dependencies are built.
