file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_attention_trace.dir/bench_fig10_attention_trace.cc.o"
  "CMakeFiles/bench_fig10_attention_trace.dir/bench_fig10_attention_trace.cc.o.d"
  "bench_fig10_attention_trace"
  "bench_fig10_attention_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_attention_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
