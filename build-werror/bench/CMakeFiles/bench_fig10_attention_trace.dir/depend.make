# Empty dependencies file for bench_fig10_attention_trace.
# This may be replaced when dependencies are built.
