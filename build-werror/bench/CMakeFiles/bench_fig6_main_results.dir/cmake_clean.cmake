file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_main_results.dir/bench_fig6_main_results.cc.o"
  "CMakeFiles/bench_fig6_main_results.dir/bench_fig6_main_results.cc.o.d"
  "bench_fig6_main_results"
  "bench_fig6_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
