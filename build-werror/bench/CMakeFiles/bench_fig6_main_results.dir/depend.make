# Empty dependencies file for bench_fig6_main_results.
# This may be replaced when dependencies are built.
