file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ablation.dir/bench_fig7_ablation.cc.o"
  "CMakeFiles/bench_fig7_ablation.dir/bench_fig7_ablation.cc.o.d"
  "bench_fig7_ablation"
  "bench_fig7_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
