# Empty dependencies file for bench_fig7_ablation.
# This may be replaced when dependencies are built.
