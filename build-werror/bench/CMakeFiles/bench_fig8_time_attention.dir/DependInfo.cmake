
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_time_attention.cc" "bench/CMakeFiles/bench_fig8_time_attention.dir/bench_fig8_time_attention.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_time_attention.dir/bench_fig8_time_attention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/baselines/CMakeFiles/elda_baselines.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/core/CMakeFiles/elda_core.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/synth/CMakeFiles/elda_synth.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/par/CMakeFiles/elda_par.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/train/CMakeFiles/elda_train.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/optim/CMakeFiles/elda_optim.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/metrics/CMakeFiles/elda_metrics.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/nn/CMakeFiles/elda_nn.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/health/CMakeFiles/elda_health.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/autograd/CMakeFiles/elda_autograd.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/data/CMakeFiles/elda_data.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/tensor/CMakeFiles/elda_tensor.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/mem/CMakeFiles/elda_mem.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/elda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
