file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_time_attention.dir/bench_fig8_time_attention.cc.o"
  "CMakeFiles/bench_fig8_time_attention.dir/bench_fig8_time_attention.cc.o.d"
  "bench_fig8_time_attention"
  "bench_fig8_time_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_time_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
