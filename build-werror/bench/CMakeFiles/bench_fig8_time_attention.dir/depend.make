# Empty dependencies file for bench_fig8_time_attention.
# This may be replaced when dependencies are built.
