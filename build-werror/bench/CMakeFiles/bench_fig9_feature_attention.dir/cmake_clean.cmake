file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_feature_attention.dir/bench_fig9_feature_attention.cc.o"
  "CMakeFiles/bench_fig9_feature_attention.dir/bench_fig9_feature_attention.cc.o.d"
  "bench_fig9_feature_attention"
  "bench_fig9_feature_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_feature_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
