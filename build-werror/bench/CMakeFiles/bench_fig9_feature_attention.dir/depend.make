# Empty dependencies file for bench_fig9_feature_attention.
# This may be replaced when dependencies are built.
