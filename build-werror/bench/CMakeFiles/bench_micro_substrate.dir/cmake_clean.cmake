file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cc.o"
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cc.o.d"
  "bench_micro_substrate"
  "bench_micro_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
