# Empty dependencies file for bench_micro_substrate.
# This may be replaced when dependencies are built.
