file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dataset_stats.dir/bench_table1_dataset_stats.cc.o"
  "CMakeFiles/bench_table1_dataset_stats.dir/bench_table1_dataset_stats.cc.o.d"
  "bench_table1_dataset_stats"
  "bench_table1_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
