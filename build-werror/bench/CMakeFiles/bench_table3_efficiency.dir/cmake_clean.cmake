file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_efficiency.dir/bench_table3_efficiency.cc.o"
  "CMakeFiles/bench_table3_efficiency.dir/bench_table3_efficiency.cc.o.d"
  "bench_table3_efficiency"
  "bench_table3_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
