# Empty dependencies file for bench_table3_efficiency.
# This may be replaced when dependencies are built.
