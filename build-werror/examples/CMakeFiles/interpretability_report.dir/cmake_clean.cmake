file(REMOVE_RECURSE
  "CMakeFiles/interpretability_report.dir/interpretability_report.cc.o"
  "CMakeFiles/interpretability_report.dir/interpretability_report.cc.o.d"
  "interpretability_report"
  "interpretability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpretability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
