# Empty dependencies file for interpretability_report.
# This may be replaced when dependencies are built.
