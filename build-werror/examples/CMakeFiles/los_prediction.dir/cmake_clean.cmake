file(REMOVE_RECURSE
  "CMakeFiles/los_prediction.dir/los_prediction.cc.o"
  "CMakeFiles/los_prediction.dir/los_prediction.cc.o.d"
  "los_prediction"
  "los_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/los_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
