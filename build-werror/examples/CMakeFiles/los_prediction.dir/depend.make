# Empty dependencies file for los_prediction.
# This may be replaced when dependencies are built.
