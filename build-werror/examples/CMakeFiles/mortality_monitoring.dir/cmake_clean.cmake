file(REMOVE_RECURSE
  "CMakeFiles/mortality_monitoring.dir/mortality_monitoring.cc.o"
  "CMakeFiles/mortality_monitoring.dir/mortality_monitoring.cc.o.d"
  "mortality_monitoring"
  "mortality_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mortality_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
