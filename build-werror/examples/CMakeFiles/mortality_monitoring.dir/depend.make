# Empty dependencies file for mortality_monitoring.
# This may be replaced when dependencies are built.
