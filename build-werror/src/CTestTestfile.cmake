# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-werror/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("health")
subdirs("par")
subdirs("mem")
subdirs("tensor")
subdirs("autograd")
subdirs("nn")
subdirs("optim")
subdirs("metrics")
subdirs("data")
subdirs("synth")
subdirs("train")
subdirs("baselines")
subdirs("core")
