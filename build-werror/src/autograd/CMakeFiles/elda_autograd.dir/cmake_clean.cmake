file(REMOVE_RECURSE
  "CMakeFiles/elda_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/elda_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/elda_autograd.dir/ops.cc.o"
  "CMakeFiles/elda_autograd.dir/ops.cc.o.d"
  "CMakeFiles/elda_autograd.dir/variable.cc.o"
  "CMakeFiles/elda_autograd.dir/variable.cc.o.d"
  "libelda_autograd.a"
  "libelda_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
