file(REMOVE_RECURSE
  "libelda_autograd.a"
)
