# Empty dependencies file for elda_autograd.
# This may be replaced when dependencies are built.
