
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cc" "src/baselines/CMakeFiles/elda_baselines.dir/baselines.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/baselines.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/elda_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/concare.cc" "src/baselines/CMakeFiles/elda_baselines.dir/concare.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/concare.cc.o.d"
  "/root/repo/src/baselines/dipole.cc" "src/baselines/CMakeFiles/elda_baselines.dir/dipole.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/dipole.cc.o.d"
  "/root/repo/src/baselines/gru_classifier.cc" "src/baselines/CMakeFiles/elda_baselines.dir/gru_classifier.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/gru_classifier.cc.o.d"
  "/root/repo/src/baselines/gru_d.cc" "src/baselines/CMakeFiles/elda_baselines.dir/gru_d.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/gru_d.cc.o.d"
  "/root/repo/src/baselines/retain.cc" "src/baselines/CMakeFiles/elda_baselines.dir/retain.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/retain.cc.o.d"
  "/root/repo/src/baselines/sand.cc" "src/baselines/CMakeFiles/elda_baselines.dir/sand.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/sand.cc.o.d"
  "/root/repo/src/baselines/stagenet.cc" "src/baselines/CMakeFiles/elda_baselines.dir/stagenet.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/stagenet.cc.o.d"
  "/root/repo/src/baselines/static_models.cc" "src/baselines/CMakeFiles/elda_baselines.dir/static_models.cc.o" "gcc" "src/baselines/CMakeFiles/elda_baselines.dir/static_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/train/CMakeFiles/elda_train.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/nn/CMakeFiles/elda_nn.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/core/CMakeFiles/elda_core.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/data/CMakeFiles/elda_data.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/optim/CMakeFiles/elda_optim.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/metrics/CMakeFiles/elda_metrics.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/health/CMakeFiles/elda_health.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/autograd/CMakeFiles/elda_autograd.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/tensor/CMakeFiles/elda_tensor.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/mem/CMakeFiles/elda_mem.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/par/CMakeFiles/elda_par.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/elda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
