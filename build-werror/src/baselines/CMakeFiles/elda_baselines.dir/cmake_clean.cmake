file(REMOVE_RECURSE
  "CMakeFiles/elda_baselines.dir/baselines.cc.o"
  "CMakeFiles/elda_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/elda_baselines.dir/common.cc.o"
  "CMakeFiles/elda_baselines.dir/common.cc.o.d"
  "CMakeFiles/elda_baselines.dir/concare.cc.o"
  "CMakeFiles/elda_baselines.dir/concare.cc.o.d"
  "CMakeFiles/elda_baselines.dir/dipole.cc.o"
  "CMakeFiles/elda_baselines.dir/dipole.cc.o.d"
  "CMakeFiles/elda_baselines.dir/gru_classifier.cc.o"
  "CMakeFiles/elda_baselines.dir/gru_classifier.cc.o.d"
  "CMakeFiles/elda_baselines.dir/gru_d.cc.o"
  "CMakeFiles/elda_baselines.dir/gru_d.cc.o.d"
  "CMakeFiles/elda_baselines.dir/retain.cc.o"
  "CMakeFiles/elda_baselines.dir/retain.cc.o.d"
  "CMakeFiles/elda_baselines.dir/sand.cc.o"
  "CMakeFiles/elda_baselines.dir/sand.cc.o.d"
  "CMakeFiles/elda_baselines.dir/stagenet.cc.o"
  "CMakeFiles/elda_baselines.dir/stagenet.cc.o.d"
  "CMakeFiles/elda_baselines.dir/static_models.cc.o"
  "CMakeFiles/elda_baselines.dir/static_models.cc.o.d"
  "libelda_baselines.a"
  "libelda_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
