file(REMOVE_RECURSE
  "libelda_baselines.a"
)
