# Empty dependencies file for elda_baselines.
# This may be replaced when dependencies are built.
