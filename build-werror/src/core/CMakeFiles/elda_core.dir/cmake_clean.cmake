file(REMOVE_RECURSE
  "CMakeFiles/elda_core.dir/elda.cc.o"
  "CMakeFiles/elda_core.dir/elda.cc.o.d"
  "CMakeFiles/elda_core.dir/elda_net.cc.o"
  "CMakeFiles/elda_core.dir/elda_net.cc.o.d"
  "CMakeFiles/elda_core.dir/embedding.cc.o"
  "CMakeFiles/elda_core.dir/embedding.cc.o.d"
  "CMakeFiles/elda_core.dir/feature_interaction.cc.o"
  "CMakeFiles/elda_core.dir/feature_interaction.cc.o.d"
  "CMakeFiles/elda_core.dir/interpret.cc.o"
  "CMakeFiles/elda_core.dir/interpret.cc.o.d"
  "CMakeFiles/elda_core.dir/multitask.cc.o"
  "CMakeFiles/elda_core.dir/multitask.cc.o.d"
  "CMakeFiles/elda_core.dir/time_interaction.cc.o"
  "CMakeFiles/elda_core.dir/time_interaction.cc.o.d"
  "libelda_core.a"
  "libelda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
