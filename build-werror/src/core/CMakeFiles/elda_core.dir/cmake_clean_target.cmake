file(REMOVE_RECURSE
  "libelda_core.a"
)
