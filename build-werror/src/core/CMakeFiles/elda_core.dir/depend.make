# Empty dependencies file for elda_core.
# This may be replaced when dependencies are built.
