file(REMOVE_RECURSE
  "CMakeFiles/elda_data.dir/emr.cc.o"
  "CMakeFiles/elda_data.dir/emr.cc.o.d"
  "CMakeFiles/elda_data.dir/physionet_io.cc.o"
  "CMakeFiles/elda_data.dir/physionet_io.cc.o.d"
  "CMakeFiles/elda_data.dir/pipeline.cc.o"
  "CMakeFiles/elda_data.dir/pipeline.cc.o.d"
  "libelda_data.a"
  "libelda_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
