file(REMOVE_RECURSE
  "libelda_data.a"
)
