# Empty dependencies file for elda_data.
# This may be replaced when dependencies are built.
