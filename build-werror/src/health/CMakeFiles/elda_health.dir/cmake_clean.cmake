file(REMOVE_RECURSE
  "CMakeFiles/elda_health.dir/ckpt_io.cc.o"
  "CMakeFiles/elda_health.dir/ckpt_io.cc.o.d"
  "CMakeFiles/elda_health.dir/crc32.cc.o"
  "CMakeFiles/elda_health.dir/crc32.cc.o.d"
  "CMakeFiles/elda_health.dir/health.cc.o"
  "CMakeFiles/elda_health.dir/health.cc.o.d"
  "libelda_health.a"
  "libelda_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
