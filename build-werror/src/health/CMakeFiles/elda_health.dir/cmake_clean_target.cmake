file(REMOVE_RECURSE
  "libelda_health.a"
)
