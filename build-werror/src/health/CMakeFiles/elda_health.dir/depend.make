# Empty dependencies file for elda_health.
# This may be replaced when dependencies are built.
