# CMake generated Testfile for 
# Source directory: /root/repo/src/health
# Build directory: /root/repo/build-werror/src/health
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
