file(REMOVE_RECURSE
  "CMakeFiles/elda_mem.dir/pool.cc.o"
  "CMakeFiles/elda_mem.dir/pool.cc.o.d"
  "CMakeFiles/elda_mem.dir/prof.cc.o"
  "CMakeFiles/elda_mem.dir/prof.cc.o.d"
  "libelda_mem.a"
  "libelda_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
