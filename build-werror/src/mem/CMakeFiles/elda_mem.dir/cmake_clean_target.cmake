file(REMOVE_RECURSE
  "libelda_mem.a"
)
