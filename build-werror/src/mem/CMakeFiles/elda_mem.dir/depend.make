# Empty dependencies file for elda_mem.
# This may be replaced when dependencies are built.
