file(REMOVE_RECURSE
  "CMakeFiles/elda_metrics.dir/metrics.cc.o"
  "CMakeFiles/elda_metrics.dir/metrics.cc.o.d"
  "libelda_metrics.a"
  "libelda_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
