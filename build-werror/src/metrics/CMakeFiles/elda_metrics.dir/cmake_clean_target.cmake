file(REMOVE_RECURSE
  "libelda_metrics.a"
)
