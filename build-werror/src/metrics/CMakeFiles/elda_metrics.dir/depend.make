# Empty dependencies file for elda_metrics.
# This may be replaced when dependencies are built.
