# CMake generated Testfile for 
# Source directory: /root/repo/src/metrics
# Build directory: /root/repo/build-werror/src/metrics
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
