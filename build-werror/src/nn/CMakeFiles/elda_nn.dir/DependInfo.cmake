
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/elda_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/elda_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/elda_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/elda_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/elda_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/elda_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/elda_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/elda_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/autograd/CMakeFiles/elda_autograd.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/health/CMakeFiles/elda_health.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/tensor/CMakeFiles/elda_tensor.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/mem/CMakeFiles/elda_mem.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/par/CMakeFiles/elda_par.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/elda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
