file(REMOVE_RECURSE
  "CMakeFiles/elda_nn.dir/gru.cc.o"
  "CMakeFiles/elda_nn.dir/gru.cc.o.d"
  "CMakeFiles/elda_nn.dir/init.cc.o"
  "CMakeFiles/elda_nn.dir/init.cc.o.d"
  "CMakeFiles/elda_nn.dir/layer_norm.cc.o"
  "CMakeFiles/elda_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/elda_nn.dir/linear.cc.o"
  "CMakeFiles/elda_nn.dir/linear.cc.o.d"
  "CMakeFiles/elda_nn.dir/lstm.cc.o"
  "CMakeFiles/elda_nn.dir/lstm.cc.o.d"
  "CMakeFiles/elda_nn.dir/module.cc.o"
  "CMakeFiles/elda_nn.dir/module.cc.o.d"
  "CMakeFiles/elda_nn.dir/serialize.cc.o"
  "CMakeFiles/elda_nn.dir/serialize.cc.o.d"
  "libelda_nn.a"
  "libelda_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
