file(REMOVE_RECURSE
  "libelda_nn.a"
)
