# Empty dependencies file for elda_nn.
# This may be replaced when dependencies are built.
