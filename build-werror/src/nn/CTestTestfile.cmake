# CMake generated Testfile for 
# Source directory: /root/repo/src/nn
# Build directory: /root/repo/build-werror/src/nn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
