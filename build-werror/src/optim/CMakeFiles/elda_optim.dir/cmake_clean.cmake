file(REMOVE_RECURSE
  "CMakeFiles/elda_optim.dir/optimizer.cc.o"
  "CMakeFiles/elda_optim.dir/optimizer.cc.o.d"
  "libelda_optim.a"
  "libelda_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
