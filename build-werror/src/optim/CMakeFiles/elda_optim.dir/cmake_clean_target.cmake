file(REMOVE_RECURSE
  "libelda_optim.a"
)
