# Empty dependencies file for elda_optim.
# This may be replaced when dependencies are built.
