file(REMOVE_RECURSE
  "CMakeFiles/elda_par.dir/par.cc.o"
  "CMakeFiles/elda_par.dir/par.cc.o.d"
  "libelda_par.a"
  "libelda_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
