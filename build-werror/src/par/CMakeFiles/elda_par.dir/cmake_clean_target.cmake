file(REMOVE_RECURSE
  "libelda_par.a"
)
