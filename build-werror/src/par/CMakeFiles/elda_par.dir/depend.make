# Empty dependencies file for elda_par.
# This may be replaced when dependencies are built.
