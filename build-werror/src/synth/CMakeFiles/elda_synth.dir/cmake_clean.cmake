file(REMOVE_RECURSE
  "CMakeFiles/elda_synth.dir/features.cc.o"
  "CMakeFiles/elda_synth.dir/features.cc.o.d"
  "CMakeFiles/elda_synth.dir/simulator.cc.o"
  "CMakeFiles/elda_synth.dir/simulator.cc.o.d"
  "libelda_synth.a"
  "libelda_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
