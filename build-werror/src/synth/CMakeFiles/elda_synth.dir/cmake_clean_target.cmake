file(REMOVE_RECURSE
  "libelda_synth.a"
)
