# Empty dependencies file for elda_synth.
# This may be replaced when dependencies are built.
