# CMake generated Testfile for 
# Source directory: /root/repo/src/synth
# Build directory: /root/repo/build-werror/src/synth
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
