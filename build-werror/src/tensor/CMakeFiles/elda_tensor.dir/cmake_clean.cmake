file(REMOVE_RECURSE
  "CMakeFiles/elda_tensor.dir/tensor.cc.o"
  "CMakeFiles/elda_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/elda_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/elda_tensor.dir/tensor_ops.cc.o.d"
  "libelda_tensor.a"
  "libelda_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
