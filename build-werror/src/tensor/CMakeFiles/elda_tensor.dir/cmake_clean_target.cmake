file(REMOVE_RECURSE
  "libelda_tensor.a"
)
