# Empty dependencies file for elda_tensor.
# This may be replaced when dependencies are built.
