file(REMOVE_RECURSE
  "CMakeFiles/elda_train.dir/checkpoint.cc.o"
  "CMakeFiles/elda_train.dir/checkpoint.cc.o.d"
  "CMakeFiles/elda_train.dir/experiment.cc.o"
  "CMakeFiles/elda_train.dir/experiment.cc.o.d"
  "CMakeFiles/elda_train.dir/trainer.cc.o"
  "CMakeFiles/elda_train.dir/trainer.cc.o.d"
  "libelda_train.a"
  "libelda_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
