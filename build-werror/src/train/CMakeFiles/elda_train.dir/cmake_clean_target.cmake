file(REMOVE_RECURSE
  "libelda_train.a"
)
