# Empty dependencies file for elda_train.
# This may be replaced when dependencies are built.
