file(REMOVE_RECURSE
  "CMakeFiles/elda_util.dir/flags.cc.o"
  "CMakeFiles/elda_util.dir/flags.cc.o.d"
  "CMakeFiles/elda_util.dir/rng.cc.o"
  "CMakeFiles/elda_util.dir/rng.cc.o.d"
  "CMakeFiles/elda_util.dir/table.cc.o"
  "CMakeFiles/elda_util.dir/table.cc.o.d"
  "libelda_util.a"
  "libelda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
