file(REMOVE_RECURSE
  "libelda_util.a"
)
