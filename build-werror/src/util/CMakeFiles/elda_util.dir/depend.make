# Empty dependencies file for elda_util.
# This may be replaced when dependencies are built.
