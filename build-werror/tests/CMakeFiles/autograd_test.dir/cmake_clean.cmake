file(REMOVE_RECURSE
  "CMakeFiles/autograd_test.dir/autograd_test.cc.o"
  "CMakeFiles/autograd_test.dir/autograd_test.cc.o.d"
  "autograd_test"
  "autograd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
