# Empty dependencies file for autograd_test.
# This may be replaced when dependencies are built.
