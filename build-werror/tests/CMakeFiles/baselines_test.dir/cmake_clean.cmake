file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  "baselines_test"
  "baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
