file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_test.dir/checkpoint_test.cc.o"
  "CMakeFiles/checkpoint_test.dir/checkpoint_test.cc.o.d"
  "checkpoint_test"
  "checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
