# Empty dependencies file for checkpoint_test.
# This may be replaced when dependencies are built.
