file(REMOVE_RECURSE
  "CMakeFiles/edge_case_test.dir/edge_case_test.cc.o"
  "CMakeFiles/edge_case_test.dir/edge_case_test.cc.o.d"
  "edge_case_test"
  "edge_case_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
