# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for edge_case_test.
