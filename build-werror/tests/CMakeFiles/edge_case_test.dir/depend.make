# Empty dependencies file for edge_case_test.
# This may be replaced when dependencies are built.
