file(REMOVE_RECURSE
  "CMakeFiles/gemm_test.dir/gemm_test.cc.o"
  "CMakeFiles/gemm_test.dir/gemm_test.cc.o.d"
  "gemm_test"
  "gemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
