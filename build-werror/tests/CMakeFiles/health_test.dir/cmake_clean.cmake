file(REMOVE_RECURSE
  "CMakeFiles/health_test.dir/health_test.cc.o"
  "CMakeFiles/health_test.dir/health_test.cc.o.d"
  "health_test"
  "health_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
