# Empty dependencies file for health_test.
# This may be replaced when dependencies are built.
