file(REMOVE_RECURSE
  "CMakeFiles/interpret_test.dir/interpret_test.cc.o"
  "CMakeFiles/interpret_test.dir/interpret_test.cc.o.d"
  "interpret_test"
  "interpret_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
