# Empty dependencies file for interpret_test.
# This may be replaced when dependencies are built.
