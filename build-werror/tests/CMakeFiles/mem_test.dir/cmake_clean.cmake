file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
