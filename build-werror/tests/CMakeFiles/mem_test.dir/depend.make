# Empty dependencies file for mem_test.
# This may be replaced when dependencies are built.
