file(REMOVE_RECURSE
  "CMakeFiles/multitask_test.dir/multitask_test.cc.o"
  "CMakeFiles/multitask_test.dir/multitask_test.cc.o.d"
  "multitask_test"
  "multitask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
