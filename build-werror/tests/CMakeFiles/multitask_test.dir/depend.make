# Empty dependencies file for multitask_test.
# This may be replaced when dependencies are built.
