file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn_test.cc.o"
  "CMakeFiles/nn_test.dir/nn_test.cc.o.d"
  "nn_test"
  "nn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
