file(REMOVE_RECURSE
  "CMakeFiles/nograd_test.dir/nograd_test.cc.o"
  "CMakeFiles/nograd_test.dir/nograd_test.cc.o.d"
  "nograd_test"
  "nograd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
