# Empty dependencies file for nograd_test.
# This may be replaced when dependencies are built.
