file(REMOVE_RECURSE
  "CMakeFiles/optim_test.dir/optim_test.cc.o"
  "CMakeFiles/optim_test.dir/optim_test.cc.o.d"
  "optim_test"
  "optim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
