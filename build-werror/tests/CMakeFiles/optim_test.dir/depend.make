# Empty dependencies file for optim_test.
# This may be replaced when dependencies are built.
