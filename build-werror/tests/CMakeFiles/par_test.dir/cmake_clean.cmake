file(REMOVE_RECURSE
  "CMakeFiles/par_test.dir/par_test.cc.o"
  "CMakeFiles/par_test.dir/par_test.cc.o.d"
  "par_test"
  "par_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
