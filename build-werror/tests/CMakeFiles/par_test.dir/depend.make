# Empty dependencies file for par_test.
# This may be replaced when dependencies are built.
