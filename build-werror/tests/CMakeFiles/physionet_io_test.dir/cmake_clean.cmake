file(REMOVE_RECURSE
  "CMakeFiles/physionet_io_test.dir/physionet_io_test.cc.o"
  "CMakeFiles/physionet_io_test.dir/physionet_io_test.cc.o.d"
  "physionet_io_test"
  "physionet_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physionet_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
