# Empty dependencies file for physionet_io_test.
# This may be replaced when dependencies are built.
