file(REMOVE_RECURSE
  "CMakeFiles/reentrancy_test.dir/reentrancy_test.cc.o"
  "CMakeFiles/reentrancy_test.dir/reentrancy_test.cc.o.d"
  "reentrancy_test"
  "reentrancy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reentrancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
