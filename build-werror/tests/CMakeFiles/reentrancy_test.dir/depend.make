# Empty dependencies file for reentrancy_test.
# This may be replaced when dependencies are built.
