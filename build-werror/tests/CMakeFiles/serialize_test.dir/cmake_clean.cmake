file(REMOVE_RECURSE
  "CMakeFiles/serialize_test.dir/serialize_test.cc.o"
  "CMakeFiles/serialize_test.dir/serialize_test.cc.o.d"
  "serialize_test"
  "serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
