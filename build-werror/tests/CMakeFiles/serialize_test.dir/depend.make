# Empty dependencies file for serialize_test.
# This may be replaced when dependencies are built.
