
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor_ops_test.cc" "tests/CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cc.o" "gcc" "tests/CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/tensor/CMakeFiles/elda_tensor.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/mem/CMakeFiles/elda_mem.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/par/CMakeFiles/elda_par.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/elda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
