file(REMOVE_RECURSE
  "CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cc.o"
  "CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cc.o.d"
  "tensor_ops_test"
  "tensor_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
