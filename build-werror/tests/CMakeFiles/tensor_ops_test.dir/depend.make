# Empty dependencies file for tensor_ops_test.
# This may be replaced when dependencies are built.
