file(REMOVE_RECURSE
  "CMakeFiles/tensor_property_test.dir/tensor_property_test.cc.o"
  "CMakeFiles/tensor_property_test.dir/tensor_property_test.cc.o.d"
  "tensor_property_test"
  "tensor_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
