# Empty dependencies file for tensor_property_test.
# This may be replaced when dependencies are built.
