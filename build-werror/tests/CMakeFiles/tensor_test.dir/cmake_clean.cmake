file(REMOVE_RECURSE
  "CMakeFiles/tensor_test.dir/tensor_test.cc.o"
  "CMakeFiles/tensor_test.dir/tensor_test.cc.o.d"
  "tensor_test"
  "tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
