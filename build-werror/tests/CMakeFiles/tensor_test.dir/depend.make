# Empty dependencies file for tensor_test.
# This may be replaced when dependencies are built.
