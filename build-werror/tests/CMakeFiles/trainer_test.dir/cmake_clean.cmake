file(REMOVE_RECURSE
  "CMakeFiles/trainer_test.dir/trainer_test.cc.o"
  "CMakeFiles/trainer_test.dir/trainer_test.cc.o.d"
  "trainer_test"
  "trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
