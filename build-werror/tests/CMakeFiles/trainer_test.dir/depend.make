# Empty dependencies file for trainer_test.
# This may be replaced when dependencies are built.
