// Scenario example: a clinician-facing interpretation report for one
// admission, combining both of ELDA's interpretation surfaces (the paper's
// "Time-level Interaction Interpretation" and "Feature-level Interaction
// Interpretation" functionalities).
//
//   $ ./examples/interpretability_report [--admissions N] [--epochs E]

#include <algorithm>
#include <iostream>

#include "core/elda.h"
#include "synth/features.h"
#include "synth/simulator.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using elda::TablePrinter;

struct ScoredPair {
  int64_t row, col;
  float weight;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace elda;
  Flags flags(argc, argv, {"admissions", "epochs"});

  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = flags.GetInt("admissions", 400);
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  core::EldaConfig config;
  config.trainer.max_epochs = flags.GetInt("epochs", 6);
  core::Elda elda(config);
  elda.Fit(cohort, data::Task::kMortality);

  data::EmrSample patient = synth::MakeDlaShowcasePatient();
  core::Elda::Interpretation interp = elda.Interpret(patient);
  const auto& names = cohort.feature_names();

  std::cout << "==========================================================\n";
  std::cout << " ELDA interpretation report - patient " << patient.patient_id
            << " (" << synth::ConditionName(static_cast<synth::Condition>(
                            patient.condition))
            << ")\n";
  std::cout << " predicted in-hospital mortality risk: " << interp.risk
            << "\n";
  std::cout << "==========================================================\n\n";

  // --- Time level: which hours shaped the final assessment? ---------------
  std::vector<int64_t> hours(interp.time_attention.size());
  for (size_t t = 0; t < hours.size(); ++t) hours[t] = t;
  std::sort(hours.begin(), hours.end(), [&](int64_t a, int64_t b) {
    return interp.time_attention[a] > interp.time_attention[b];
  });
  std::cout << "Critical hours (time-level interaction attention):\n";
  TablePrinter time_table({"rank", "hour", "attention"});
  for (int64_t rank = 0; rank < 5; ++rank) {
    time_table.AddRow(
        {std::to_string(rank + 1), std::to_string(hours[rank]),
         TablePrinter::Num(100.0 * interp.time_attention[hours[rank]], 1) +
             "%"});
  }
  std::cout << time_table.ToString() << "\n";

  // --- Feature level: strongest interactions at the top critical hour. ----
  const int64_t hot = hours[0];
  std::vector<ScoredPair> pairs;
  for (int64_t i = 0; i < patient.num_features; ++i) {
    for (int64_t j = 0; j < patient.num_features; ++j) {
      if (i == j) continue;
      pairs.push_back(
          {i, j, interp.feature_attention.at({hot, i, j})});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.weight > b.weight;
            });
  std::cout << "Strongest feature interactions at hour " << hot << ":\n";
  TablePrinter pair_table(
      {"processing feature", "interacting with", "attention", "value(z)"});
  for (int64_t k = 0; k < 8; ++k) {
    const ScoredPair& p = pairs[k];
    const float z =
        (patient.value(hot, p.col) - elda.standardizer().mean(p.col)) /
        elda.standardizer().stddev(p.col);
    pair_table.AddRow({names[p.row], names[p.col],
                       TablePrinter::Num(100.0 * p.weight, 1) + "%",
                       TablePrinter::Num(z, 2)});
  }
  std::cout << pair_table.ToString() << "\n";

  // --- Narrative summary ---------------------------------------------------
  const int64_t glucose = synth::kGlucose;
  const int64_t lactate = synth::kLactate;
  std::cout << "Narrative: during hour " << hot
            << ", Glucose's attention to Lactate was "
            << TablePrinter::Num(
                   100.0 * interp.feature_attention.at({hot, glucose,
                                                        lactate}),
                   1)
            << "% (uniform level would be "
            << TablePrinter::Num(100.0 / 36.0, 1)
            << "%). Co-elevation of Glucose and Lactate with low pH is the "
               "DM+DLA signature the paper's Section V-D analyses.\n";
  return 0;
}
