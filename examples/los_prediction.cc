// Scenario example: length-of-stay (LOS > 7 days) prediction for bed
// management — the paper's second application — comparing ELDA against two
// representative baselines on the same prepared cohort.
//
//   $ ./examples/los_prediction [--admissions N] [--epochs E]

#include <iostream>

#include "baselines/baselines.h"
#include "core/elda.h"
#include "synth/simulator.h"
#include "train/experiment.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elda;
  Flags flags(argc, argv, {"admissions", "epochs"});

  synth::CohortConfig cohort_config = synth::SynthMimicIii();
  cohort_config.num_admissions = flags.GetInt("admissions", 400);
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  std::cout << "cohort: " << cohort.size() << " admissions; "
            << cohort.CountLosGt7() << " stayed > 7 days\n\n";

  train::PreparedExperiment experiment(cohort, data::Task::kLosGt7);
  train::TrainerConfig trainer_config;
  trainer_config.max_epochs = flags.GetInt("epochs", 6);

  TablePrinter table({"model", "BCE", "AUC-ROC", "AUC-PR"});
  for (const char* name : {"LR", "GRU-D", "ELDA-Net"}) {
    train::ModelStats stats = baselines::RunModelByName(
        name, experiment, trainer_config, /*num_runs=*/1);
    table.AddRow({stats.name, TablePrinter::Num(stats.bce.mean, 3),
                  TablePrinter::Num(stats.auc_roc.mean, 3),
                  TablePrinter::Num(stats.auc_pr.mean, 3)});
  }
  std::cout << table.ToString();
  std::cout << "\nGRU-D is the paper's strongest LOS baseline; ELDA-Net "
               "should match or exceed it.\n";

  // Capacity planning: expected number of beds still occupied after a week,
  // estimated from the fitted ELDA framework over the current admissions.
  core::EldaConfig elda_config;
  elda_config.trainer = trainer_config;
  core::Elda elda(elda_config);
  elda.Fit(cohort, data::Task::kLosGt7);
  synth::CohortConfig current_config = cohort_config;
  current_config.num_admissions = 50;
  current_config.seed = 271828;
  data::EmrDataset current = synth::GenerateCohort(current_config);
  std::vector<data::EmrSample> current_patients(current.samples().begin(),
                                                current.samples().end());
  std::vector<float> probabilities = elda.PredictRisk(current_patients);
  double expected_long_stays = 0.0;
  for (float p : probabilities) expected_long_stays += p;
  std::cout << "\ncapacity planning: of " << current.size()
            << " current admissions, expected " << expected_long_stays
            << " will still occupy a bed after 7 days\n";
  return 0;
}
