// Scenario example: continuous mortality-risk monitoring on an ICU ward
// (the "Predictive Analytics" functionality of the paper's Fig. 2).
//
// A model is trained on historical admissions; then, for each currently
// admitted patient, the ward is re-scored as data accrues: at hour 12, 24,
// 36 and 48 the patient's record is truncated to the data observed so far
// (later cells masked out) and ELDA re-estimates the risk. Patients whose
// risk crosses the alert threshold are flagged, and the interpretation API
// names the hour and feature interaction driving the alert.
//
//   $ ./examples/mortality_monitoring [--admissions N] [--epochs E]
//                                     [--threshold P]
//                                     [--checkpoint PATH]
//                                     [--checkpoint-every K] [--resume]
//                                     [--fault-plan SPEC]
//
// The fault-tolerance flags exercise elda::health: --checkpoint/-every
// write crash-safe training checkpoints, --resume continues a killed run
// from the checkpoint, and --fault-plan injects deterministic faults (e.g.
// "poison_grad@40" or "fail_write@0") to rehearse the recovery paths.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/elda.h"
#include "health/health.h"
#include "synth/simulator.h"
#include "util/argparse.h"

int main(int argc, char** argv) {
  using namespace elda;
  int64_t admissions = 400;
  int64_t epochs = 6;
  double threshold = 0.4;
  std::string checkpoint;
  int64_t checkpoint_every = -1;  // default derived from --checkpoint below
  bool resume = false;
  std::string fault_spec;
  util::ArgParser parser(
      "mortality_monitoring",
      "Continuous mortality-risk monitoring on a synthetic ICU ward.");
  parser.Int("admissions", &admissions, "historical training admissions")
      .Int("epochs", &epochs, "training epochs")
      .Double("threshold", &threshold, "alert threshold on predicted risk")
      .String("checkpoint", &checkpoint, "crash-safe checkpoint path")
      .Int("checkpoint-every", &checkpoint_every,
           "checkpoint every K epochs (-1: 1 when --checkpoint set)")
      .Bool("resume", &resume, "resume training from the checkpoint")
      .String("fault-plan", &fault_spec,
              "deterministic fault injection spec, e.g. poison_grad@40");
  parser.Parse(argc, argv);

  // Optional deterministic fault injection (same syntax as ELDA_FAULT_PLAN).
  if (!fault_spec.empty()) {
    health::FaultPlan plan;
    std::string parse_error;
    if (!health::FaultPlan::Parse(fault_spec, &plan, &parse_error)) {
      std::cerr << "bad --fault-plan: " << parse_error << "\n";
      return EXIT_FAILURE;
    }
    health::GlobalFaultInjector()->Arm(plan);
  }

  // Historical cohort and model training.
  synth::CohortConfig history_config = synth::SynthPhysioNet2012();
  history_config.num_admissions = admissions;
  data::EmrDataset history = synth::GenerateCohort(history_config);
  core::EldaConfig config;
  config.trainer.max_epochs = epochs;
  config.trainer.checkpoint_path = checkpoint;
  config.trainer.checkpoint_every =
      checkpoint_every >= 0 ? checkpoint_every : (checkpoint.empty() ? 0 : 1);
  config.trainer.resume = resume;
  config.alert_threshold = static_cast<float>(threshold);
  core::Elda elda(config);
  train::TrainResult fit = elda.Fit(history, data::Task::kMortality);
  if (fit.status != health::TrainStatus::kOk &&
      fit.status != health::TrainStatus::kRecovered) {
    std::cerr << "training failed (" << health::TrainStatusName(fit.status)
              << "): " << fit.status_message << "\n";
    return EXIT_FAILURE;
  }
  if (fit.status == health::TrainStatus::kRecovered) {
    std::cout << "training recovered from " << fit.recoveries
              << " rollback(s), " << fit.skipped_batches
              << " skipped batch(es)\n";
  }
  std::cout << "monitoring model ready (test AUC-PR " << fit.test.auc_pr
            << ", alert threshold " << config.alert_threshold << ")\n\n";

  // The current ward: a handful of ongoing admissions.
  synth::CohortConfig ward_config = history_config;
  ward_config.num_admissions = 8;
  ward_config.seed = 314159;
  data::EmrDataset ward = synth::GenerateCohort(ward_config);

  std::cout << "ward risk board (risk re-estimated as data accrues):\n";
  std::cout << "patient | condition |  h12 |  h24 |  h36 |  h48 | status\n";
  std::cout << "--------+-----------+------+------+------+------+-------\n";
  for (int64_t i = 0; i < ward.size(); ++i) {
    const data::EmrSample& patient = ward.sample(i);
    std::cout << "   " << i << "    | " << std::setw(9)
              << synth::ConditionName(
                     static_cast<synth::Condition>(patient.condition))
              << " |";
    bool alerted = false;
    float final_risk = 0.0f;
    for (int64_t hour : {12, 24, 36, 48}) {
      const float risk =
          elda.PredictRisk({data::TruncateToHour(patient, hour)})[0];
      std::cout << " " << std::fixed << std::setprecision(2) << risk << " |";
      alerted = alerted || risk >= config.alert_threshold;
      final_risk = risk;
    }
    std::cout << (alerted ? "  ALERT" : "  ok") << "\n";
    // For alerted patients, name the driver via the interpretation API.
    if (alerted) {
      core::Elda::Interpretation interp = elda.Interpret(patient);
      int64_t hot_hour = 0;
      for (int64_t t = 1; t < interp.time_attention.size(); ++t) {
        if (interp.time_attention[t] > interp.time_attention[hot_hour]) {
          hot_hour = t;
        }
      }
      // Strongest feature-to-feature attention at the hot hour.
      int64_t best_i = 0, best_j = 1;
      for (int64_t a = 0; a < patient.num_features; ++a) {
        for (int64_t b = 0; b < patient.num_features; ++b) {
          if (a == b) continue;
          if (interp.feature_attention.at({hot_hour, a, b}) >
              interp.feature_attention.at({hot_hour, best_i, best_j})) {
            best_i = a;
            best_j = b;
          }
        }
      }
      std::cout << "        `- risk " << std::setprecision(2) << final_risk
                << ": critical hour " << hot_hour << "; "
                << ward.feature_names()[best_i] << " <-> "
                << ward.feature_names()[best_j] << " interaction carries "
                << std::setprecision(0)
                << 100.0f *
                       interp.feature_attention.at({hot_hour, best_i, best_j})
                << "% of " << ward.feature_names()[best_i]
                << "'s attention\n";
    }
  }
  return 0;
}
