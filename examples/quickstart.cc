// Quickstart: train ELDA on a synthetic ICU cohort, predict mortality risk
// for newly admitted patients, and pull dual-level interpretations.
//
//   $ ./examples/quickstart [--admissions N] [--epochs E]

#include <iostream>

#include "core/elda.h"
#include "synth/simulator.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace elda;
  Flags flags(argc, argv, {"admissions", "epochs"});

  // 1. A cohort of ICU admissions (stand-in for a hospital EMR extract).
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = flags.GetInt("admissions", 400);
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  std::cout << "cohort: " << cohort.size() << " admissions, "
            << cohort.num_features() << " features, "
            << cohort.num_steps() << " hourly steps, "
            << 100.0 * cohort.MissingRate() << "% cells unobserved\n";

  // 2. Configure and fit ELDA for in-hospital mortality prediction.
  core::EldaConfig config;
  config.trainer.max_epochs = flags.GetInt("epochs", 6);
  config.alert_threshold = 0.5f;
  core::Elda elda(config);
  train::TrainResult result = elda.Fit(cohort, data::Task::kMortality);
  std::cout << "trained ELDA-Net (" << result.num_parameters
            << " params) in " << result.epochs_run
            << " epochs; test AUC-ROC=" << result.test.auc_roc
            << " AUC-PR=" << result.test.auc_pr << "\n";

  // 3. Score newly admitted patients and raise alerts.
  synth::CohortConfig incoming_config = cohort_config;
  incoming_config.num_admissions = 5;
  incoming_config.seed = 424242;
  data::EmrDataset incoming = synth::GenerateCohort(incoming_config);
  std::vector<data::EmrSample> new_patients(incoming.samples().begin(),
                                            incoming.samples().end());
  std::vector<float> risks = elda.PredictRisk(new_patients);
  std::vector<bool> alerts = elda.TriggerAlerts(new_patients);
  for (size_t i = 0; i < new_patients.size(); ++i) {
    std::cout << "patient " << i << ": predicted mortality risk " << risks[i]
              << (alerts[i] ? "  << ALERT" : "") << "\n";
  }

  // 4. Dual-level interpretation of a high-risk diabetic patient.
  data::EmrSample patient = synth::MakeDlaShowcasePatient();
  core::Elda::Interpretation interp = elda.Interpret(patient);
  std::cout << "showcase DM+DLA patient: risk " << interp.risk << "\n";
  // Which earlier hour interacts most with the final state?
  int64_t peak_hour = 0;
  for (int64_t t = 1; t < interp.time_attention.size(); ++t) {
    if (interp.time_attention[t] > interp.time_attention[peak_hour]) {
      peak_hour = t;
    }
  }
  std::cout << "  most attended earlier hour: " << peak_hour << " (weight "
            << interp.time_attention[peak_hour] << ")\n";
  // Which feature does Glucose interact with most at that hour?
  const int64_t glucose = synth::FeatureIndexByName("Glucose");
  int64_t partner = 0;
  for (int64_t j = 1; j < cohort.num_features(); ++j) {
    if (interp.feature_attention.at({peak_hour, glucose, j}) >
        interp.feature_attention.at({peak_hour, glucose, partner})) {
      partner = j;
    }
  }
  std::cout << "  Glucose's strongest interaction at that hour: "
            << cohort.feature_names()[partner] << " ("
            << 100.0f * interp.feature_attention.at(
                            {peak_hour, glucose, partner})
            << "% of its attention)\n";

  // 5. Persist the deployment and restore it in a fresh process/framework.
  const std::string checkpoint = "/tmp/elda_quickstart.eldaw";
  std::string error;
  if (elda.Save(checkpoint, &error)) {
    core::Elda restored(config);
    if (restored.Load(checkpoint, &error)) {
      const float again = restored.PredictRisk({patient})[0];
      std::cout << "checkpoint round trip: risk " << interp.risk << " -> "
                << again << " (identical)\n";
    }
  }
  return 0;
}
