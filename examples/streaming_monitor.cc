// Scenario example: live ward monitoring through elda::serve.
//
// Where mortality_monitoring re-scores truncated windows in batch (the
// retrospective view), this example runs the production shape: a model is
// trained once, then each ward patient is admitted to an InferenceService
// holding resident per-patient state, and every new hour of monitor data
// is pushed through a StreamingImputer (the batch pipeline, one row at a
// time) and scored incrementally — O(1) per observation for the
// incremental models, never a full-history replay. Observations for the
// whole ward are submitted concurrently each hour, so the micro-batcher
// coalesces them into single batched no-grad calls; the final stats line
// shows the realised batch size.
//
// Kill-and-resume: with --snapshot-path the service checkpoints every
// session's resident state halfway through the stream, is destroyed
// ("killed"), and a fresh service restores the file and carries on —
// session ids, observation counts, and the risk trajectory all survive.
// With --restore the example instead starts from an existing snapshot
// file (a previous run's), skipping the already-absorbed hours: the
// cross-process resume. Training is deterministic, so a restored run
// with the same flags serves the same weights the snapshot was taken
// under (the restore validates model name and window capacity).
//
//   $ ./examples/streaming_monitor [--model NAME] [--admissions N]
//                                  [--epochs E] [--threshold P] [--ward W]
//                                  [--snapshot-path F] [--restore]

#include <future>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "serve/service.h"
#include "serve/streaming_imputer.h"
#include "synth/simulator.h"
#include "train/experiment.h"
#include "util/argparse.h"

int main(int argc, char** argv) {
  using namespace elda;
  std::string model_name = "ELDA-Net";
  int64_t admissions = 300;
  int64_t epochs = 4;
  double threshold = 0.4;
  int64_t ward_size = 6;
  std::string snapshot_path;
  bool restore = false;
  util::ArgParser parser("streaming_monitor",
                         "Live ward monitoring with resident per-patient "
                         "state and step-level scoring.");
  parser.String("model", &model_name, "registry model to train and serve")
      .Int("admissions", &admissions, "historical training admissions")
      .Int("epochs", &epochs, "training epochs")
      .Double("threshold", &threshold, "alert threshold on predicted risk")
      .Int("ward", &ward_size, "patients on the live ward")
      .String("snapshot-path", &snapshot_path,
              "session checkpoint file; enables the mid-stream "
              "kill-and-resume demo")
      .Bool("restore", &restore,
            "resume from an existing --snapshot-path file instead of "
            "streaming from hour 0");
  parser.Parse(argc, argv);
  if (restore && snapshot_path.empty()) {
    std::cerr << "--restore requires --snapshot-path\n";
    return 2;
  }

  // Train on a historical cohort.
  synth::CohortConfig history_config = synth::SynthPhysioNet2012();
  history_config.num_admissions = admissions;
  const data::EmrDataset history = synth::GenerateCohort(history_config);
  train::PreparedExperiment experiment(history, data::Task::kMortality);
  auto model =
      baselines::MakeModel(model_name, history.num_features(), /*seed=*/3);
  train::TrainerConfig trainer_config;
  trainer_config.max_epochs = epochs;
  const train::TrainResult fit =
      train::Trainer(trainer_config)
          .Train(model.get(), experiment.prepared(), experiment.split(),
                 experiment.task());
  std::cout << model_name << " ready (test AUC-PR " << std::fixed
            << std::setprecision(3) << fit.test.auc_pr << ", "
            << (model->has_incremental_step()
                    ? "incremental step path"
                    : "rolling-window replay path")
            << ")\n\n";

  // Put the model behind the streaming service. Async mode: concurrent
  // observations coalesce in the micro-batcher.
  serve::ServeConfig serve_config;
  serve_config.infer.batch_size = ward_size;
  auto service =
      std::make_unique<serve::InferenceService>(model.get(), serve_config);

  // The live ward: raw admissions, observed hour by hour. Each patient
  // gets a session (resident model state) and a streaming imputer
  // (resident pipeline state).
  synth::CohortConfig ward_config = history_config;
  ward_config.num_admissions = ward_size;
  ward_config.seed = 271828;
  const data::EmrDataset ward = synth::GenerateCohort(ward_config);
  const int64_t num_features = ward.num_features();

  struct WardPatient {
    serve::SessionId id = serve::kInvalidSession;
    serve::StreamingImputer imputer;
    bool alerted = false;
    float risk = 0.0f;
    int64_t absorbed = 0;  // hours already scored before this process
  };
  std::vector<WardPatient> patients;
  int64_t hours = 0;
  if (restore) {
    // Cross-process resume: the service rehydrates every session from the
    // snapshot (same ids, same mid-stream state). Beds re-bind by tag; a
    // bed missing from the file (never admitted before the save) starts
    // cold. The client-side imputer state is rebuilt below by replaying
    // the already-absorbed hours through the imputer only — no scoring.
    std::string error;
    if (!service->RestoreSnapshot(snapshot_path, &error)) {
      std::cerr << "restore failed: " << error << "\n";
      return 1;
    }
    std::cout << "restored " << service->sessions().size() << " sessions from "
              << snapshot_path << "\n";
  }
  for (int64_t i = 0; i < ward.size(); ++i) {
    const std::string tag = "bed-" + std::to_string(i);
    serve::SessionId id = serve::kInvalidSession;
    int64_t absorbed = 0;
    float last_risk = 0.0f;
    if (restore) {
      for (const auto& session : service->sessions().Resident()) {
        if (session->tag == tag) {
          id = session->id;
          absorbed = session->observations.load();
          if (session->ever_scored.load()) last_risk = session->last_risk.load();
          break;
        }
      }
    }
    if (id == serve::kInvalidSession) id = service->Admit(tag);
    patients.push_back({id,
                        serve::StreamingImputer(&experiment.standardizer(),
                                                num_features),
                        false, last_risk, absorbed});
    hours = std::max(hours, ward.sample(i).num_steps);
  }
  // With --snapshot-path (and not restoring), checkpoint + kill + restore
  // the service halfway through the stream.
  const int64_t kill_hour =
      (!snapshot_path.empty() && !restore) ? hours / 2 : -1;

  std::cout << "streaming " << ward_size << " patients, " << hours
            << " hours; risk snapshots every 12h (* = above threshold "
            << std::setprecision(2) << threshold << "):\n";
  for (int64_t t = 0; t < hours; ++t) {
    // One wave of concurrent submissions: the whole ward's hour-t
    // observations land in the micro-batcher together and score as one
    // batched StepForward call.
    std::vector<std::pair<int64_t, std::future<serve::StepResult>>> inflight;
    for (int64_t i = 0; i < ward.size(); ++i) {
      const data::EmrSample& raw = ward.sample(i);
      if (t >= raw.num_steps) continue;
      WardPatient& patient = patients[static_cast<size_t>(i)];
      serve::Observation obs = patient.imputer.Next(
          raw.values.data() + t * num_features,
          raw.observed.data() + t * num_features);
      // Hours the restored session already scored only refresh the
      // client-side imputer; the resident model state has seen them.
      if (t < patient.absorbed) continue;
      inflight.emplace_back(i,
                            service->ObserveAsync(patient.id, std::move(obs)));
    }
    for (auto& [i, future] : inflight) {
      const serve::StepResult result = future.get();
      WardPatient& patient = patients[static_cast<size_t>(i)];
      if (!result.scored) continue;
      patient.risk = result.risk;
      if (!patient.alerted && result.risk >= threshold) {
        patient.alerted = true;
        std::cout << "  ALERT hour " << std::setw(2) << t << ": bed-" << i
                  << " risk " << std::setprecision(2) << result.risk << "\n";
      }
    }
    if ((t + 1) % 12 == 0) {
      std::cout << "  h" << std::setw(2) << (t + 1) << " |";
      for (const WardPatient& patient : patients) {
        std::cout << " " << std::setprecision(2) << patient.risk
                  << (patient.alerted ? "*" : " ");
      }
      std::cout << "\n";
    }
    if (t + 1 == kill_hour) {
      // Checkpoint every resident state, destroy the service (in-flight
      // work has drained: the wave above was harvested), and restore into
      // a brand-new one. Session ids are preserved, so the patient
      // handles above keep working and the risk trajectory continues as
      // if nothing happened.
      std::string error;
      if (!service->SaveSnapshotTo(snapshot_path, &error)) {
        std::cerr << "snapshot failed: " << error << "\n";
        return 1;
      }
      service.reset();
      service =
          std::make_unique<serve::InferenceService>(model.get(), serve_config);
      if (!service->RestoreSnapshot(snapshot_path, &error)) {
        std::cerr << "restore failed: " << error << "\n";
        return 1;
      }
      std::cout << "  -- h" << std::setw(2) << (t + 1) << " snapshot -> "
                << snapshot_path << "; service killed and restored with "
                << service->sessions().size() << " sessions (ids preserved)\n";
    }
  }

  for (WardPatient& patient : patients) service->Discharge(patient.id);
  const serve::MicroBatcher::Stats stats = service->batcher_stats();
  std::cout << "\n" << stats.observations << " observations in "
            << stats.batches << " batched calls (mean batch "
            << std::setprecision(1) << stats.mean_batch_size
            << "); sessions admitted " << service->sessions().admitted_total()
            << ", resident now " << service->sessions().size() << "\n";
  return 0;
}
