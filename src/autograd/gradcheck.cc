#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor_ops.h"

namespace elda {
namespace ag {

bool CheckGradients(const std::function<Variable()>& f,
                    const std::vector<Variable>& params,
                    const GradCheckOptions& options, std::string* error) {
  // Analytic pass.
  for (const Variable& p : params) {
    ELDA_CHECK(p.requires_grad()) << "gradcheck param without requires_grad";
    const_cast<Variable&>(p).ZeroGrad();
  }
  Variable out = f();
  ELDA_CHECK_EQ(out.value().size(), 1) << "gradcheck target must be scalar";
  out.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const Variable& p : params) {
    analytic.push_back(p.has_grad() ? p.grad().Clone()
                                    : Tensor::Zeros(p.value().shape()));
  }

  // Numeric pass per (subsampled) element.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Variable p = params[pi];
    Tensor* v = p.mutable_value();
    const int64_t n = v->size();
    int64_t stride = 1;
    if (options.max_elements_per_param > 0 &&
        n > options.max_elements_per_param) {
      stride = (n + options.max_elements_per_param - 1) /
               options.max_elements_per_param;
    }
    for (int64_t i = 0; i < n; i += stride) {
      const float original = (*v)[i];
      (*v)[i] = original + options.epsilon;
      const float f_plus = f().value()[0];
      (*v)[i] = original - options.epsilon;
      const float f_minus = f().value()[0];
      (*v)[i] = original;
      const float numeric = (f_plus - f_minus) / (2.0f * options.epsilon);
      const float analytic_value = analytic[pi][i];
      const float diff = std::fabs(analytic_value - numeric);
      if (diff > options.atol + options.rtol * std::fabs(numeric)) {
        if (error != nullptr) {
          std::ostringstream msg;
          msg << "gradient mismatch at param " << pi << " element " << i
              << ": analytic=" << analytic_value << " numeric=" << numeric
              << " (diff=" << diff << ")";
          *error = msg.str();
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace ag
}  // namespace elda
