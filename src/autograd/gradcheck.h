// Numerical gradient checking.
//
// Verifies the analytic gradients produced by the tape against central
// finite differences. Used throughout the test suite: every operator and
// every network module in this repository is grad-checked.

#ifndef ELDA_AUTOGRAD_GRADCHECK_H_
#define ELDA_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace elda {
namespace ag {

struct GradCheckOptions {
  // Central-difference step. float32 arithmetic bounds how small this can
  // usefully be; 1e-2 with the default tolerances works well for smooth ops.
  float epsilon = 1e-2f;
  // An element passes if |analytic - numeric| <= atol + rtol * |numeric|.
  float atol = 2e-3f;
  float rtol = 5e-2f;
  // Check at most this many elements per parameter (subsampled evenly);
  // <= 0 means check all.
  int64_t max_elements_per_param = 64;
};

// Evaluates `f` (which must return a scalar Variable built from `params`),
// runs Backward(), and compares each parameter's analytic gradient with a
// central finite difference of f. `f` must be deterministic and must read
// the *current* values of `params` on every call.
//
// Returns true if all checked elements pass; otherwise fills `error` (if
// non-null) with the first offending parameter/element.
bool CheckGradients(const std::function<Variable()>& f,
                    const std::vector<Variable>& params,
                    const GradCheckOptions& options = {},
                    std::string* error = nullptr);

}  // namespace ag
}  // namespace elda

#endif  // ELDA_AUTOGRAD_GRADCHECK_H_
