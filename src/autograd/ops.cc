#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"

namespace elda {
namespace ag {

using internal::AccumulateGrad;
using internal::Node;

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable ConstantScalar(float value) { return Constant(Tensor::Scalar(value)); }

Variable Add(const Variable& a, const Variable& b) {
  return MakeOpResult(elda::Add(a.value(), b.value()), {a, b}, [](Node* n) {
    AccumulateGrad(n->parents[0].get(), n->grad);
    AccumulateGrad(n->parents[1].get(), n->grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOpResult(elda::Sub(a.value(), b.value()), {a, b}, [](Node* n) {
    AccumulateGrad(n->parents[0].get(), n->grad);
    AccumulateGrad(n->parents[1].get(), elda::Neg(n->grad));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeOpResult(elda::Mul(va, vb), {a, b}, [va, vb](Node* n) {
    AccumulateGrad(n->parents[0].get(), elda::Mul(n->grad, vb));
    AccumulateGrad(n->parents[1].get(), elda::Mul(n->grad, va));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeOpResult(elda::Div(va, vb), {a, b}, [va, vb](Node* n) {
    // d/da = g / b;  d/db = -g * a / b^2
    AccumulateGrad(n->parents[0].get(), elda::Div(n->grad, vb));
    Tensor gb = elda::Neg(
        elda::Div(elda::Mul(n->grad, va), elda::Mul(vb, vb)));
    AccumulateGrad(n->parents[1].get(), gb);
  });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOpResult(elda::AddScalar(a.value(), s), {a}, [](Node* n) {
    AccumulateGrad(n->parents[0].get(), n->grad);
  });
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOpResult(elda::MulScalar(a.value(), s), {a}, [s](Node* n) {
    AccumulateGrad(n->parents[0].get(), elda::MulScalar(n->grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  Tensor y = elda::Exp(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    AccumulateGrad(n->parents[0].get(), elda::Mul(n->grad, y));
  });
}

Variable Log(const Variable& a) {
  Tensor x = a.value();
  return MakeOpResult(elda::Log(x), {a}, [x](Node* n) {
    // Matches the clamped forward: d log(max(x, eps)) / dx ~= 1/max(x, eps).
    Tensor clamped = elda::Maximum(x, Tensor::Full(x.shape(), 1e-12f));
    AccumulateGrad(n->parents[0].get(), elda::Div(n->grad, clamped));
  });
}

Variable Square(const Variable& a) {
  Tensor x = a.value();
  return MakeOpResult(elda::Square(x), {a}, [x](Node* n) {
    AccumulateGrad(n->parents[0].get(),
                   elda::Mul(n->grad, elda::MulScalar(x, 2.0f)));
  });
}

Variable Sqrt(const Variable& a) {
  Tensor y = elda::Sqrt(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    Tensor denom = elda::Maximum(elda::MulScalar(y, 2.0f),
                                 Tensor::Full(y.shape(), 1e-12f));
    AccumulateGrad(n->parents[0].get(), elda::Div(n->grad, denom));
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = elda::Sigmoid(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    // y' = y (1 - y); the fused kernel evaluates g * (y * (1 - y)) exactly
    // as the old Ones/Sub/Mul/Mul composition did, in one pass.
    AccumulateGrad(n->parents[0].get(), elda::SigmoidGrad(n->grad, y));
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = elda::Tanh(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    // y' = 1 - y^2, fused as g * (1 - y*y) — same floats as the composed
    // Ones/Square/Sub/Mul chain.
    AccumulateGrad(n->parents[0].get(), elda::TanhGrad(n->grad, y));
  });
}

Variable AddSigmoid(const Variable& a, const Variable& b) {
  Tensor y = elda::AddSigmoid(a.value(), b.value());
  return MakeOpResult(y, {a, b}, [y](Node* n) {
    // d sigmoid(a+b) is the same for both operands; AccumulateGrad reduces
    // it to each parent's shape when the forward broadcast.
    Tensor d = elda::SigmoidGrad(n->grad, y);
    AccumulateGrad(n->parents[0].get(), d);
    AccumulateGrad(n->parents[1].get(), d);
  });
}

Variable AddTanh(const Variable& a, const Variable& b) {
  Tensor y = elda::AddTanh(a.value(), b.value());
  return MakeOpResult(y, {a, b}, [y](Node* n) {
    Tensor d = elda::TanhGrad(n->grad, y);
    AccumulateGrad(n->parents[0].get(), d);
    AccumulateGrad(n->parents[1].get(), d);
  });
}

Variable ExpNegRelu(const Variable& a) {
  Tensor x = a.value();
  Tensor y = elda::ExpNegRelu(x);
  return MakeOpResult(y, {a}, [x, y](Node* n) {
    AccumulateGrad(n->parents[0].get(), elda::ExpNegReluGrad(n->grad, y, x));
  });
}

Variable Relu(const Variable& a) {
  Tensor x = a.value();
  return MakeOpResult(elda::Relu(x), {a}, [x](Node* n) {
    AccumulateGrad(n->parents[0].get(),
                   elda::Mul(n->grad, elda::GreaterThanScalar(x, 0.0f)));
  });
}

Variable Abs(const Variable& a) {
  Tensor x = a.value();
  return MakeOpResult(elda::Abs(x), {a}, [x](Node* n) {
    Tensor sign = Tensor::Empty(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) {
      sign[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
    }
    AccumulateGrad(n->parents[0].get(), elda::Mul(n->grad, sign));
  });
}

Variable Clip(const Variable& a, float lo, float hi) {
  ELDA_CHECK_LT(lo, hi);
  Tensor x = a.value();
  return MakeOpResult(elda::Clip(x, lo, hi), {a}, [x, lo, hi](Node* n) {
    Tensor inside = Tensor::Empty(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) {
      inside[i] = (x[i] > lo && x[i] < hi) ? 1.0f : 0.0f;
    }
    AccumulateGrad(n->parents[0].get(), elda::Mul(n->grad, inside));
  });
}

Variable Pow(const Variable& a, float p) {
  Tensor x = elda::Maximum(a.value(), Tensor::Full(a.value().shape(), 1e-12f));
  Tensor y = elda::Pow(x, p);
  return MakeOpResult(y, {a}, [x, p](Node* n) {
    // d(x^p)/dx = p x^(p-1) on the clamped input.
    Tensor d = elda::MulScalar(elda::Pow(x, p - 1.0f), p);
    AccumulateGrad(n->parents[0].get(), elda::Mul(n->grad, d));
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeOpResult(elda::MatMul(va, vb), {a, b}, [va, vb](Node* n) {
    // dA = dC * B^T ; dB = A^T * dC. The tensor MatMul handles batched and
    // shared-rhs layouts; ReduceToShape inside AccumulateGrad folds any
    // broadcast batch dimension back down.
    Node* pa = n->parents[0].get();
    Node* pb = n->parents[1].get();
    if (pa->requires_grad) {
      AccumulateGrad(pa, elda::MatMul(n->grad, vb, false, true));
    }
    if (pb->requires_grad) {
      if (va.dim() == 3 && vb.dim() == 2) {
        // [B,M,K]^T x [B,M,N] would give [B,K,N]; flatten the batch instead
        // so the shared rhs receives the summed gradient directly.
        Tensor a2 = va.Reshape({va.shape(0) * va.shape(1), va.shape(2)});
        Tensor g2 = n->grad.Reshape(
            {n->grad.shape(0) * n->grad.shape(1), n->grad.shape(2)});
        AccumulateGrad(pb, elda::MatMul(a2, g2, true, false));
      } else {
        AccumulateGrad(pb, elda::MatMul(va, n->grad, true, false));
      }
    }
  });
}

Variable Reshape(const Variable& a, std::vector<int64_t> shape) {
  std::vector<int64_t> old_shape = a.value().shape();
  return MakeOpResult(a.value().Reshape(std::move(shape)), {a},
                      [old_shape](Node* n) {
                        AccumulateGrad(n->parents[0].get(),
                                       n->grad.Reshape(old_shape));
                      });
}

Variable TransposeLast2(const Variable& a) {
  return MakeOpResult(elda::TransposeLast2(a.value()), {a}, [](Node* n) {
    AccumulateGrad(n->parents[0].get(), elda::TransposeLast2(n->grad));
  });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  ELDA_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  const int64_t rank = parts[0].value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  std::vector<int64_t> lens;
  lens.reserve(parts.size());
  for (const Tensor& v : values) lens.push_back(v.shape(norm_axis));
  return MakeOpResult(
      elda::Concat(values, norm_axis), parts, [norm_axis, lens](Node* n) {
        int64_t start = 0;
        for (size_t i = 0; i < n->parents.size(); ++i) {
          AccumulateGrad(n->parents[i].get(),
                         elda::Slice(n->grad, norm_axis, start, lens[i]));
          start += lens[i];
        }
      });
}

Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t len) {
  const int64_t rank = a.value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  std::vector<int64_t> in_shape = a.value().shape();
  return MakeOpResult(
      elda::Slice(a.value(), norm_axis, start, len), {a},
      [norm_axis, start, len, in_shape](Node* n) {
        // Scatter the slice gradient back into a zero tensor of input shape.
        Tensor g(in_shape);
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < norm_axis; ++i) outer *= in_shape[i];
        for (size_t i = norm_axis + 1; i < in_shape.size(); ++i) {
          inner *= in_shape[i];
        }
        const int64_t axis_len = in_shape[norm_axis];
        const float* src = n->grad.data();
        float* dst = g.data();
        for (int64_t o = 0; o < outer; ++o) {
          std::copy(src + o * len * inner, src + (o + 1) * len * inner,
                    dst + (o * axis_len + start) * inner);
        }
        AccumulateGrad(n->parents[0].get(), g);
      });
}

Variable Transpose01(const Variable& a) {
  return MakeOpResult(elda::Transpose01(a.value()), {a}, [](Node* n) {
    // The adjoint of a permutation is its inverse; swapping the first two
    // axes is an involution.
    AccumulateGrad(n->parents[0].get(), elda::Transpose01(n->grad));
  });
}

Variable ReverseAxis(const Variable& a, int64_t axis) {
  const int64_t rank = a.value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  return MakeOpResult(elda::ReverseAxis(a.value(), norm_axis), {a},
                      [norm_axis](Node* n) {
                        AccumulateGrad(n->parents[0].get(),
                                       elda::ReverseAxis(n->grad, norm_axis));
                      });
}

Variable RowsView(const Variable& a, int64_t start, int64_t len) {
  const Tensor& v = a.value();
  ELDA_CHECK_GE(v.dim(), 1);
  const int64_t row = v.size() / std::max<int64_t>(v.shape(0), 1);
  const int64_t offset = start * row;
  return MakeOpResult(v.ViewRows(start, len), {a}, [offset](Node* n) {
    internal::AccumulateGradRange(n->parents[0].get(), n->grad, offset);
  });
}

Variable StepView(const Variable& a, int64_t t) {
  const Tensor& v = a.value();
  ELDA_CHECK_GE(v.dim(), 2);
  std::vector<int64_t> step_shape(v.shape().begin() + 1, v.shape().end());
  const int64_t row = v.size() / v.shape(0);
  const int64_t offset = t * row;
  // ViewRows keeps the leading axis as [1, rest...]; Reshape on a view is a
  // shallow shape swap (same aliasing storage), so the step stays zero-copy.
  return MakeOpResult(v.ViewRows(t, 1).Reshape(std::move(step_shape)), {a},
                      [offset](Node* n) {
                        internal::AccumulateGradRange(n->parents[0].get(),
                                                      n->grad, offset);
                      });
}

Variable Stack0(const std::vector<Variable>& parts) {
  ELDA_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  std::vector<int64_t> part_shape = values[0].shape();
  return MakeOpResult(
      elda::StackRows(values), parts, [part_shape](Node* n) {
        // Each parent's gradient is a zero-copy view of one stacked row
        // block; AccumulateGrad's same-shape fast path adds it in place.
        for (size_t i = 0; i < n->parents.size(); ++i) {
          AccumulateGrad(
              n->parents[i].get(),
              n->grad.ViewRows(static_cast<int64_t>(i), 1).Reshape(part_shape));
        }
      });
}

Variable FreezeRows(const Variable& fresh, const Variable& prev,
                    std::vector<uint8_t> keep) {
  const Tensor& vf = fresh.value();
  const Tensor& vp = prev.value();
  ELDA_CHECK(vf.shape() == vp.shape());
  ELDA_CHECK_GE(vf.dim(), 2);
  const int64_t batch = vf.shape(vf.dim() - 2);
  const int64_t width = vf.shape(vf.dim() - 1);
  ELDA_CHECK_EQ(static_cast<int64_t>(keep.size()), batch);
  const int64_t slices = vf.size() / (batch * width);

  Tensor out = vf.Clone();
  for (int64_t s = 0; s < slices; ++s) {
    for (int64_t b = 0; b < batch; ++b) {
      if (keep[b]) continue;
      const int64_t offset = (s * batch + b) * width;
      std::copy(vp.data() + offset, vp.data() + offset + width,
                out.data() + offset);
    }
  }
  return MakeOpResult(
      out, {fresh, prev},
      [keep, slices, batch, width](Node* n) {
        // Each row's gradient belongs to exactly one parent: fresh where the
        // row was kept, prev where it was frozen. The complementary rows are
        // zero.
        Tensor g_fresh = Tensor::Zeros(n->grad.shape());
        Tensor g_prev = Tensor::Zeros(n->grad.shape());
        for (int64_t s = 0; s < slices; ++s) {
          for (int64_t b = 0; b < batch; ++b) {
            const int64_t offset = (s * batch + b) * width;
            Tensor& dst = keep[b] ? g_fresh : g_prev;
            std::copy(n->grad.data() + offset,
                      n->grad.data() + offset + width, dst.data() + offset);
          }
        }
        AccumulateGrad(n->parents[0].get(), g_fresh);
        AccumulateGrad(n->parents[1].get(), g_prev);
      });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdims) {
  const int64_t rank = a.value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  std::vector<int64_t> in_shape = a.value().shape();
  return MakeOpResult(
      elda::Sum(a.value(), norm_axis, keepdims), {a},
      [norm_axis, keepdims, in_shape](Node* n) {
        Tensor g = n->grad;
        if (!keepdims) {
          std::vector<int64_t> with_axis = g.shape();
          with_axis.insert(with_axis.begin() + norm_axis, 1);
          g = g.Reshape(with_axis);
        }
        // Broadcast back across the summed axis.
        AccumulateGrad(n->parents[0].get(),
                       elda::Add(g, Tensor::Zeros(in_shape)));
      });
}

Variable Mean(const Variable& a, int64_t axis, bool keepdims) {
  const int64_t rank = a.value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  const float inv = 1.0f / static_cast<float>(a.value().shape(norm_axis));
  return MulScalar(Sum(a, norm_axis, keepdims), inv);
}

Variable SumAll(const Variable& a) {
  std::vector<int64_t> in_shape = a.value().shape();
  return MakeOpResult(Tensor::Scalar(elda::SumAll(a.value())), {a},
                      [in_shape](Node* n) {
                        const float g = n->grad[0];
                        AccumulateGrad(n->parents[0].get(),
                                       Tensor::Full(in_shape, g));
                      });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return MulScalar(SumAll(a), inv);
}

Variable Softmax(const Variable& a, int64_t axis) {
  const int64_t rank = a.value().dim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  Tensor y = elda::Softmax(a.value(), norm_axis);
  const bool last_axis = norm_axis == rank - 1;
  return MakeOpResult(y, {a}, [y, norm_axis, last_axis](Node* n) {
    // dx = y * (g - sum(g * y, axis, keepdims)). On the last axis the fused
    // row kernel computes the dot under the 8-lane reduction contract in
    // one pass; other axes keep the composed Mul/Sum/Sub/Mul chain.
    if (last_axis) {
      AccumulateGrad(n->parents[0].get(),
                     elda::SoftmaxLastAxisGrad(n->grad, y));
      return;
    }
    Tensor gy = elda::Mul(n->grad, y);
    Tensor s = elda::Sum(gy, norm_axis, /*keepdims=*/true);
    AccumulateGrad(n->parents[0].get(),
                   elda::Mul(y, elda::Sub(n->grad, s)));
  });
}

Variable Dropout(const Variable& a, float rate, bool training, Rng* rng) {
  if (!training || rate <= 0.0f) return a;
  ELDA_CHECK_LT(rate, 1.0f);
  Tensor mask = Tensor::Empty(a.value().shape());
  const float scale = 1.0f / (1.0f - rate);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->Bernoulli(rate) ? 0.0f : scale;
  }
  return Mul(a, Constant(mask));
}

Variable BceWithLogits(const Variable& logits, const Tensor& targets) {
  const Tensor& z = logits.value();
  ELDA_CHECK_EQ(z.size(), targets.size());
  const int64_t n_items = z.size();
  double loss = 0.0;
  for (int64_t i = 0; i < n_items; ++i) {
    const float zi = z[i];
    const float yi = targets[i];
    loss += std::max(zi, 0.0f) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
  }
  Tensor value = Tensor::Scalar(static_cast<float>(loss / n_items));
  Tensor zt = z;
  Tensor yt = targets;
  return MakeOpResult(value, {logits}, [zt, yt, n_items](Node* n) {
    // d/dz = (sigmoid(z) - y) / N
    Tensor g = elda::Sigmoid(zt);
    float* p = g.data();
    const float scale = n->grad[0] / static_cast<float>(n_items);
    for (int64_t i = 0; i < n_items; ++i) p[i] = (p[i] - yt[i]) * scale;
    AccumulateGrad(n->parents[0].get(), g);
  });
}

Variable MaskedBceWithLogits(const Variable& logits, const Tensor& targets,
                             const std::vector<uint8_t>& valid) {
  const Tensor& z = logits.value();
  ELDA_CHECK_EQ(z.size(), targets.size());
  ELDA_CHECK_EQ(z.size(), static_cast<int64_t>(valid.size()));
  const int64_t n_items = z.size();
  double loss = 0.0;
  int64_t n_valid = 0;
  for (int64_t i = 0; i < n_items; ++i) {
    if (!valid[i]) continue;
    const float zi = z[i];
    const float yi = targets[i];
    loss += std::max(zi, 0.0f) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
    ++n_valid;
  }
  Tensor value = Tensor::Scalar(
      n_valid == 0 ? 0.0f : static_cast<float>(loss / n_valid));
  Tensor zt = z;
  Tensor yt = targets;
  std::vector<uint8_t> keep = valid;
  return MakeOpResult(
      value, {logits}, [zt, yt, keep, n_items, n_valid](Node* n) {
        if (n_valid == 0) return;
        // d/dz = (sigmoid(z) - y) / n_valid on valid cells, exactly 0 on
        // masked ones (their sigmoid may be NaN and is discarded unread).
        Tensor s = elda::Sigmoid(zt);
        Tensor g = Tensor::Zeros(zt.shape());
        float* p = g.data();
        const float* sp = s.data();
        const float scale = n->grad[0] / static_cast<float>(n_valid);
        for (int64_t i = 0; i < n_items; ++i) {
          if (keep[i]) p[i] = (sp[i] - yt[i]) * scale;
        }
        AccumulateGrad(n->parents[0].get(), g);
      });
}

}  // namespace ag
}  // namespace elda
