// Differentiable operators over ag::Variable.
//
// Each function computes its value eagerly with the kernels in
// tensor/tensor_ops.h and records a backward closure on the tape. Binary
// element-wise ops broadcast like NumPy; the adjoint reduces gradients back
// to each operand's shape.

#ifndef ELDA_AUTOGRAD_OPS_H_
#define ELDA_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace elda {
namespace ag {

// Wraps a tensor as a non-differentiable constant leaf.
Variable Constant(Tensor value);
Variable ConstantScalar(float value);

// -- Element-wise binary (broadcasting) ---------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// Scalar conveniences.
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

// -- Element-wise unary ---------------------------------------------------------
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);  // input clamped at 1e-12
Variable Square(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable Abs(const Variable& a);  // subgradient 0 at the kink
// Clamps into [lo, hi]; gradient is 1 strictly inside the interval, 0 out.
Variable Clip(const Variable& a, float lo, float hi);
// Element-wise a^p for positive inputs (clamped at 1e-12 like Log).
Variable Pow(const Variable& a, float p);

// -- Fused element-wise chains ----------------------------------------------
//
// Each runs its whole chain as one kernel pass and one tape node (no
// intermediate Variables, no pooled temporaries) with a hand-derived
// backward. Forward AND backward are bitwise identical to the composed ops
// they replace (tensor/tensor_ops.h "Fused elementwise chains"), so models
// may swap them in without perturbing checkpoint/resume or the
// streamed-vs-batch equality — as long as Forward and StepForward switch
// together.

Variable AddSigmoid(const Variable& a, const Variable& b);  // sigmoid(a + b)
Variable AddTanh(const Variable& a, const Variable& b);     // tanh(a + b)
Variable ExpNegRelu(const Variable& a);                     // exp(-relu(a))

// -- Linear algebra ---------------------------------------------------------------

// Supported operand ranks follow tensor MatMul: 2-D x 2-D, 3-D x 3-D, and
// 3-D x 2-D (shared right-hand side, e.g. a weight matrix applied per step).
Variable MatMul(const Variable& a, const Variable& b);

// -- Shape ----------------------------------------------------------------------------
Variable Reshape(const Variable& a, std::vector<int64_t> shape);
Variable TransposeLast2(const Variable& a);
// Swaps the first two axes ([B, T, ...] <-> [T, B, ...]); the relayout
// between batch-major model tensors and the time-major recurrence engine.
Variable Transpose01(const Variable& a);
// Reverses entry order along `axis` (e.g. the time axis for bidirectional
// recurrences). One tape node, unlike the old T-slices-plus-Concat idiom.
Variable ReverseAxis(const Variable& a, int64_t axis);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t len);

// -- Zero-copy views ------------------------------------------------------------------
//
// The forward values of these ops alias their input's storage (no copy, no
// allocation; see Tensor::ViewRows) and their backward adds the incoming
// gradient into just the viewed block of the parent's grad buffer
// (AccumulateGradRange) — no full-size scatter tensor is built. They are
// how the recurrence engine reads per-step inputs out of a hoisted
// time-major buffer for free.

// View of rows [start, start + len) along axis 0.
Variable RowsView(const Variable& a, int64_t start, int64_t len);
// View of entry `t` along axis 0 with the leading axis dropped:
// a [T, B, H] input yields the [B, H] step tensor.
Variable StepView(const Variable& a, int64_t t);

// Stacks N same-shaped parts into [N, shape...] (the inverse of N StepView
// reads): one tape node whose backward hands each parent a zero-copy view
// of the stacked gradient.
Variable Stack0(const std::vector<Variable>& parts);

// Row-frozen state update for ragged sweeps: row b of the result is fresh's
// row where keep[b] != 0 and prev's row otherwise. Copy semantics — kept
// rows are bitwise the fresh computation and frozen rows bitwise the prior
// state (no mask arithmetic, which would not be bitwise-safe). The batch
// axis is dim-2, covering both [B, H] and packed [S, B, H] states; the
// backward routes each row's gradient to whichever parent it was copied
// from.
Variable FreezeRows(const Variable& fresh, const Variable& prev,
                    std::vector<uint8_t> keep);

// -- Reductions --------------------------------------------------------------------------
Variable Sum(const Variable& a, int64_t axis, bool keepdims = false);
Variable Mean(const Variable& a, int64_t axis, bool keepdims = false);
Variable SumAll(const Variable& a);   // -> scalar
Variable MeanAll(const Variable& a);  // -> scalar

// Numerically stable softmax along `axis`. To mask entries out (e.g. the
// diagonal of an interaction matrix, or future time steps), add a constant
// tensor of large negative values to the logits first.
Variable Softmax(const Variable& a, int64_t axis);

// -- Regularisation ---------------------------------------------------------------------------

// Inverted dropout: scales kept activations by 1/(1-rate) in training mode,
// identity in eval mode or at rate 0.
Variable Dropout(const Variable& a, float rate, bool training, Rng* rng);

// -- Losses -------------------------------------------------------------------------------------

// Mean binary cross-entropy between logits and {0,1} targets, fused with the
// sigmoid for numerical stability:
//   mean_i [ max(z,0) - z*y + log(1+exp(-|z|)) ]
// Targets are treated as constants. Returns a scalar.
Variable BceWithLogits(const Variable& logits, const Tensor& targets);

// Masked variant for per-step losses over ragged sequences: the mean runs
// over cells with valid[i] != 0 only. Selection, not multiplication — cells
// with valid[i] == 0 are never read (they may legitimately hold the
// quiet-NaN logits a model emits below min_steps_to_score()) and receive a
// zero gradient. With every cell valid the loss and gradient are bitwise
// identical to BceWithLogits. An all-invalid mask yields loss 0 with no
// gradient. `valid` must match `logits` in size.
Variable MaskedBceWithLogits(const Variable& logits, const Tensor& targets,
                             const std::vector<uint8_t>& valid);

}  // namespace ag
}  // namespace elda

#endif  // ELDA_AUTOGRAD_OPS_H_
