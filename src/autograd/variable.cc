#include "autograd/variable.h"

#include <unordered_set>

#include "mem/prof.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace ag {
namespace {

thread_local bool tls_grad_enabled = true;
thread_local int64_t tls_tape_nodes = 0;

}  // namespace

namespace internal {

void AccumulateGrad(Node* node, const Tensor& g) {
  if (!node->requires_grad) return;
  Tensor reduced = ReduceToShape(g, node->value.shape());
  if (!node->grad.defined()) {
    node->grad = reduced.Clone();
    return;
  }
  float* dst = node->grad.data();
  const float* src = reduced.data();
  for (int64_t i = 0; i < node->grad.size(); ++i) dst[i] += src[i];
}

void AccumulateGradRange(Node* node, const Tensor& g, int64_t offset) {
  if (!node->requires_grad) return;
  if (!node->grad.defined()) {
    node->grad = Tensor(node->value.shape());  // zero-filled
  }
  ELDA_CHECK(offset >= 0 && offset + g.size() <= node->grad.size())
      << "grad range [" << offset << "," << offset + g.size() << ") of "
      << node->grad.size();
  float* dst = node->grad.data() + offset;
  const float* src = g.data();
  for (int64_t i = 0; i < g.size(); ++i) dst[i] += src[i];
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  ELDA_CHECK(defined());
  return node_->value;
}

Tensor* Variable::mutable_value() {
  ELDA_CHECK(defined());
  return &node_->value;
}

const Tensor& Variable::grad() const {
  ELDA_CHECK(defined());
  ELDA_CHECK(node_->grad.defined()) << "no gradient accumulated";
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  ELDA_CHECK(defined());
  node_->grad = Tensor();
}

void Variable::Backward() const {
  ELDA_CHECK(defined());
  ELDA_CHECK_EQ(node_->value.size(), 1)
      << "Backward() requires a scalar root";
  // Topological order by iterative post-order DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < n->parents.size()) {
      internal::Node* child = n->parents[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  node_->grad = Tensor::Ones(node_->value.shape());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward && n->grad.defined()) n->backward(n);
  }
}

Variable Variable::Detach() const {
  ELDA_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeOpResult(Tensor value, std::vector<Variable> parents,
                      std::function<void(internal::Node*)> backward) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  if (!tls_grad_enabled) {
    // Graph-free mode: the result is a detached leaf. Parents and the
    // backward closure are dropped without even inspecting requires_grad,
    // so inference through parameter-holding modules allocates no tape.
    return Variable::FromNode(std::move(node));
  }
  bool any_grad = false;
  for (const Variable& p : parents) {
    ELDA_CHECK(p.defined());
    if (p.requires_grad()) any_grad = true;
  }
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents.reserve(parents.size());
    for (const Variable& p : parents) node->parents.push_back(p.node());
    node->backward = std::move(backward);
    ++tls_tape_nodes;
    prof::RecordTapeNode();
  }
  return Variable::FromNode(std::move(node));
}

bool GradEnabled() { return tls_grad_enabled; }

NoGradScope::NoGradScope() : prev_(tls_grad_enabled) {
  tls_grad_enabled = false;
}

NoGradScope::~NoGradScope() { tls_grad_enabled = prev_; }

int64_t TapeNodesAllocated() { return tls_tape_nodes; }

}  // namespace ag
}  // namespace elda
