// Reverse-mode automatic differentiation: the Variable handle and tape node.
//
// A Variable is a cheap value-semantic handle to a tape Node holding a value
// tensor, an optional gradient tensor, and the backward closure that
// propagates gradients to the node's parents. Operators live in
// autograd/ops.h; calling them on Variables records the computation graph,
// and Variable::Backward() runs reverse-mode accumulation from a scalar root.
//
// Graph lifetime is managed by shared_ptr: the root of an expression keeps
// the whole tape alive; dropping all handles frees it. Gradients accumulate
// across backward calls until ZeroGrad().
//
// Grad mode is a thread-local flag. Under a NoGradScope every op skips the
// tape entirely — MakeOpResult returns a detached leaf with no parents and
// no backward closure — so inference pays for the value computation only.
// Values are bitwise identical to the taped path (the same kernels run);
// only the bookkeeping differs.

#ifndef ELDA_AUTOGRAD_VARIABLE_H_
#define ELDA_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace elda {
namespace ag {

class Variable;

namespace internal {

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into its parents' grads. Null for leaves.
  std::function<void(Node*)> backward;
};

// Adds `g` (reduced over broadcast dims if needed) into node->grad.
void AccumulateGrad(Node* node, const Tensor& g);

// Adds `g` into the contiguous element range [offset, offset + g.size()) of
// node->grad, allocating the grad buffer (zero-filled) on first use. This
// is the scatter-free adjoint of a zero-copy row view (ag::RowsView /
// ag::StepView): instead of materialising a full-sized zero tensor per
// step — O(T) work per step, O(T^2) per sweep — each view's backward adds
// only its own block.
void AccumulateGradRange(Node* node, const Tensor& g, int64_t offset);

}  // namespace internal

class Variable {
 public:
  // A null handle; defined() is false.
  Variable() = default;

  // Wraps a tensor as a graph leaf. Parameters pass requires_grad = true;
  // data/constants leave it false.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  // Mutable access for optimizers (in-place parameter updates).
  Tensor* mutable_value();
  // The accumulated gradient; CHECK-fails if none has been accumulated.
  const Tensor& grad() const;
  bool has_grad() const;
  bool requires_grad() const;

  // Drops the accumulated gradient (if any).
  void ZeroGrad();

  // Runs reverse-mode accumulation from this node, which must hold a scalar
  // (size-1) value; seeds its gradient with 1.
  void Backward() const;

  // Returns a leaf Variable sharing this value but cut off from the graph.
  Variable Detach() const;

  // Internal: used by ops to build the graph.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// Builds an op result node. If no parent requires a gradient — or grad mode
// is off on this thread — the parents and the backward closure are dropped
// so dead graph segments are pruned eagerly.
Variable MakeOpResult(Tensor value, std::vector<Variable> parents,
                      std::function<void(internal::Node*)> backward);

// -- Grad mode ----------------------------------------------------------------

// Whether ops on this thread record the tape. Defaults to true.
bool GradEnabled();

// RAII guard disabling tape construction on the current thread. Nestable;
// the previous mode is restored on destruction. Each worker thread carries
// its own flag, so a scope opened inside an elda::par task body only affects
// that worker.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

 private:
  bool prev_;
};

// Number of tape nodes (nodes retaining parents + a backward closure) built
// on the current thread since it started. Monotonic; tests assert on deltas
// — zero across a NoGradScope forward — and ELDA_PROF bills each node to
// the open op scope for its report.
int64_t TapeNodesAllocated();

}  // namespace ag
}  // namespace elda

#endif  // ELDA_AUTOGRAD_VARIABLE_H_
