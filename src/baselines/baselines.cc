#include "baselines/baselines.h"

#include "baselines/concare.h"
#include "baselines/dipole.h"
#include "baselines/gru_classifier.h"
#include "baselines/gru_d.h"
#include "baselines/retain.h"
#include "baselines/sand.h"
#include "baselines/stagenet.h"
#include "baselines/static_models.h"
#include "core/elda_net.h"
#include "util/logging.h"

namespace elda {
namespace baselines {

const std::vector<std::string>& BaselineNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "LR",       "FM",       "AFM",      "SAnD",     "GRU",    "RETAIN",
      "Dipole-l", "Dipole-g", "Dipole-c", "StageNet", "GRU-D",  "ConCare",
  };
  return *kNames;
}

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>(BaselineNames());
    names->push_back("ELDA-Net-T");
    names->push_back("ELDA-Net-Fbi");
    names->push_back("ELDA-Net-Ffm");
    names->push_back("ELDA-Net");
    return names;
  }();
  return *kNames;
}

std::unique_ptr<train::SequenceModel> MakeModel(const std::string& name,
                                                int64_t num_features,
                                                uint64_t seed) {
  // Hyper-parameters follow the paper's Section V-A ("Model Configurations")
  // where stated, and each baseline's published defaults otherwise, scaled
  // so parameter counts land in Table III's brackets.
  if (name == "LR") {
    return std::make_unique<LogisticRegression>(num_features, seed);
  }
  if (name == "FM") {
    return std::make_unique<FactorizationMachine>(num_features,
                                                  /*factor_dim=*/16, seed);
  }
  if (name == "AFM") {
    return std::make_unique<AttentionalFactorizationMachine>(
        num_features, /*factor_dim=*/16, /*attention_dim=*/4, seed);
  }
  if (name == "SAnD") {
    Sand::Config config;
    config.num_features = num_features;
    return std::make_unique<Sand>(config, seed);
  }
  if (name == "GRU") {
    return std::make_unique<GruClassifier>(num_features, /*hidden_dim=*/64,
                                           seed);
  }
  if (name == "RETAIN") {
    return std::make_unique<Retain>(num_features, /*embed_dim=*/24, seed);
  }
  if (name == "Dipole-l") {
    return std::make_unique<Dipole>(num_features, /*hidden_dim=*/32,
                                    DipoleAttention::kLocation, seed);
  }
  if (name == "Dipole-g") {
    return std::make_unique<Dipole>(num_features, 32,
                                    DipoleAttention::kGeneral, seed);
  }
  if (name == "Dipole-c") {
    return std::make_unique<Dipole>(num_features, 32,
                                    DipoleAttention::kConcat, seed);
  }
  if (name == "StageNet") {
    return std::make_unique<StageNet>(num_features, /*hidden_dim=*/64,
                                      /*conv_kernel=*/3,
                                      /*conv_channels=*/64, seed);
  }
  if (name == "GRU-D") {
    return std::make_unique<GruD>(num_features, /*hidden_dim=*/64, seed);
  }
  if (name == "ConCare") {
    return std::make_unique<ConCare>(num_features,
                                     /*per_feature_hidden=*/16, seed);
  }
  // ELDA-Net family.
  core::EldaNetConfig config;
  if (name == "ELDA-Net") {
    config = core::EldaNetConfig::Full();
  } else if (name == "ELDA-Net-T") {
    config = core::EldaNetConfig::VariantT();
  } else if (name == "ELDA-Net-Fbi") {
    config = core::EldaNetConfig::VariantFBi();
  } else if (name == "ELDA-Net-Fbi*") {
    config = core::EldaNetConfig::VariantFBiStar();
  } else if (name == "ELDA-Net-Ffm") {
    config = core::EldaNetConfig::VariantFFm();
  } else if (name == "ELDA-Net-Ffm*") {
    config = core::EldaNetConfig::VariantFFmStar();
  } else {
    ELDA_CHECK(false) << "unknown model" << name;
  }
  config.num_features = num_features;
  config.seed = seed;
  return std::make_unique<core::EldaNet>(config);
}

train::ModelStats RunModelByName(const std::string& name,
                                 const train::PreparedExperiment& experiment,
                                 const train::TrainerConfig& trainer_config,
                                 int64_t num_runs) {
  return train::RunRepeated(
      [&](uint64_t seed) {
        return MakeModel(name, experiment.num_features(), seed);
      },
      experiment, trainer_config, num_runs);
}

}  // namespace baselines
}  // namespace elda
