// Baseline model registry: constructs any of the paper's comparison models
// (and the ELDA-Net variants) by display name with the evaluation-section
// hyper-parameters.

#ifndef ELDA_BASELINES_BASELINES_H_
#define ELDA_BASELINES_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "train/experiment.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

// The eleven baseline display names in the paper's Fig. 6 / Table III order:
// LR, FM, AFM, SAnD, GRU, RETAIN, Dipole-l, Dipole-g, Dipole-c, StageNet,
// GRU-D, ConCare.
const std::vector<std::string>& BaselineNames();

// All model names including the ELDA-Net variants (Table III order).
const std::vector<std::string>& AllModelNames();

// Builds a model by display name (works for baselines and ELDA variants).
// CHECK-fails on an unknown name.
std::unique_ptr<train::SequenceModel> MakeModel(const std::string& name,
                                                int64_t num_features,
                                                uint64_t seed);

// Trains the named registry model `num_runs` times on a prepared experiment
// and aggregates test metrics (see train::RunRepeated).
train::ModelStats RunModelByName(const std::string& name,
                                 const train::PreparedExperiment& experiment,
                                 const train::TrainerConfig& trainer_config,
                                 int64_t num_runs);

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_BASELINES_H_
