#include "baselines/common.h"

namespace elda {
namespace baselines {

ag::Variable ReverseTime(const ag::Variable& x) {
  ELDA_CHECK_EQ(x.value().dim(), 3);
  return ag::ReverseAxis(x, /*axis=*/1);
}

}  // namespace baselines
}  // namespace elda
