#include "baselines/common.h"

namespace elda {
namespace baselines {

ag::Variable ReverseTime(const ag::Variable& x) {
  ELDA_CHECK_EQ(x.value().dim(), 3);
  const int64_t steps = x.value().shape(1);
  std::vector<ag::Variable> slices;
  slices.reserve(steps);
  for (int64_t t = steps - 1; t >= 0; --t) {
    slices.push_back(ag::Slice(x, 1, t, 1));
  }
  return ag::Concat(slices, 1);
}

}  // namespace baselines
}  // namespace elda
