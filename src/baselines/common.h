// Shared helpers for the baseline model implementations.

#ifndef ELDA_BASELINES_COMMON_H_
#define ELDA_BASELINES_COMMON_H_

#include "autograd/ops.h"

namespace elda {
namespace baselines {

// Reverses a [B, T, D] tensor along the time axis (differentiable; a single
// ag::ReverseAxis node). Models with reverse-time recurrences no longer need
// this — a reversed nn::Sweep consumes the input in place — but it remains
// for callers that want the flipped tensor itself.
ag::Variable ReverseTime(const ag::Variable& x);

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_COMMON_H_
