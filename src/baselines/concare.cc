#include "baselines/concare.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace baselines {

ConCare::ConCare(int64_t num_features, int64_t per_feature_hidden,
                 uint64_t seed)
    : rng_(seed),
      num_features_(num_features),
      hidden_(per_feature_hidden),
      wq_(per_feature_hidden, per_feature_hidden, /*use_bias=*/false, &rng_),
      wk_(per_feature_hidden, per_feature_hidden, false, &rng_),
      wv_(per_feature_hidden, per_feature_hidden, false, &rng_),
      out_(num_features * per_feature_hidden, 1, true, &rng_) {
  feature_grus_.reserve(num_features);
  for (int64_t c = 0; c < num_features; ++c) {
    feature_grus_.push_back(
        std::make_unique<nn::Gru>(1, per_feature_hidden, &rng_));
    RegisterSubmodule("gru" + std::to_string(c), feature_grus_[c].get());
  }
  RegisterSubmodule("wq", &wq_);
  RegisterSubmodule("wk", &wk_);
  RegisterSubmodule("wv", &wv_);
  RegisterSubmodule("out", &out_);
}

ag::Variable ConCare::Forward(const data::Batch& batch,
                              nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ag::Variable x = ag::Constant(batch.x);
  // Per-feature GRU encoders; keep each feature's final state.
  std::vector<ag::Variable> summaries;
  summaries.reserve(num_features_);
  for (int64_t c = 0; c < num_features_; ++c) {
    ag::Variable series = ag::Reshape(ag::Slice(x, 2, c, 1),
                                      {batch_size, steps, 1});
    std::vector<ag::Variable> states =
        feature_grus_[c]->ForwardSteps(series);
    summaries.push_back(
        ag::Reshape(states.back(), {batch_size, 1, hidden_}));
  }
  ag::Variable features = ag::Concat(summaries, 1);  // [B, C, u]

  // Cross-feature self-attention (single head).
  ag::Variable q = wq_.Forward(features);
  ag::Variable k = wk_.Forward(features);
  ag::Variable v = wv_.Forward(features);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_));
  ag::Variable attention = ag::Softmax(
      ag::MulScalar(ag::MatMul(q, ag::TransposeLast2(k)), scale), -1);
  ag::Variable mixed = ag::MatMul(attention, v);  // [B, C, u]
  // Residual connection keeps each feature's own evidence.
  ag::Variable rep = ag::Tanh(ag::Add(features, mixed));
  ag::Variable flat =
      ag::Reshape(rep, {batch_size, num_features_ * hidden_});
  return ag::Reshape(out_.Forward(flat), {batch_size});
}

}  // namespace baselines
}  // namespace elda
