#include "baselines/concare.h"

#include <cmath>
#include <cstring>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace baselines {
namespace {

struct ConCareStreamState : nn::StepState {
  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->TensorData(h);
  }
  bool Load(nn::StateReader* r) override {
    return nn::StepState::Load(r) && r->TensorInto(&h);
  }

  Tensor h;  // [C, u] — feature c's GRU state in row c
};

}  // namespace

ConCare::ConCare(int64_t num_features, int64_t per_feature_hidden,
                 uint64_t seed)
    : rng_(seed),
      num_features_(num_features),
      hidden_(per_feature_hidden),
      wq_(per_feature_hidden, per_feature_hidden, /*use_bias=*/false, &rng_),
      wk_(per_feature_hidden, per_feature_hidden, false, &rng_),
      wv_(per_feature_hidden, per_feature_hidden, false, &rng_),
      out_(num_features * per_feature_hidden, 1, true, &rng_) {
  feature_grus_.reserve(num_features);
  for (int64_t c = 0; c < num_features; ++c) {
    feature_grus_.push_back(
        std::make_unique<nn::Gru>(1, per_feature_hidden, &rng_));
    RegisterSubmodule("gru" + std::to_string(c), feature_grus_[c].get());
  }
  RegisterSubmodule("wq", &wq_);
  RegisterSubmodule("wk", &wk_);
  RegisterSubmodule("wv", &wv_);
  RegisterSubmodule("out", &out_);
}

ag::Variable ConCare::EncodeTerminal(const data::Batch& batch,
                                     nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ag::Variable x = ag::Constant(batch.x);
  // Per-feature GRU encoders; keep each feature's final state.
  std::vector<ag::Variable> summaries;
  summaries.reserve(num_features_);
  for (int64_t c = 0; c < num_features_; ++c) {
    ag::Variable series = ag::Reshape(ag::Slice(x, 2, c, 1),
                                      {batch_size, steps, 1});
    std::vector<ag::Variable> states =
        feature_grus_[c]->ForwardSteps(series);
    summaries.push_back(
        ag::Reshape(states.back(), {batch_size, 1, hidden_}));
  }
  ag::Variable features = ag::Concat(summaries, 1);  // [B, C, u]

  // Cross-feature self-attention (single head).
  ag::Variable q = wq_.Forward(features);
  ag::Variable k = wk_.Forward(features);
  ag::Variable v = wv_.Forward(features);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_));
  ag::Variable attention = ag::Softmax(
      ag::MulScalar(ag::MatMul(q, ag::TransposeLast2(k)), scale), -1);
  ag::Variable mixed = ag::MatMul(attention, v);  // [B, C, u]
  // Residual connection keeps each feature's own evidence.
  ag::Variable rep = ag::AddTanh(features, mixed);
  return ag::Reshape(rep, {batch_size, num_features_ * hidden_});
}

ag::Variable ConCare::Readout(const ag::Variable& rep,
                              nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

std::unique_ptr<nn::StepState> ConCare::MakeStepState(
    int64_t /*window_capacity*/) const {
  auto state = std::make_unique<ConCareStreamState>();
  state->h = Tensor::Zeros({num_features_, hidden_});
  return state;
}

ag::Variable ConCare::StepForward(const train::StepBatch& obs,
                                  const std::vector<nn::StepState*>& states,
                                  nn::ForwardContext*) const {
  const int64_t n = static_cast<int64_t>(states.size());
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  ELDA_CHECK_EQ(obs.x.shape(1), num_features_);
  std::vector<ConCareStreamState*> ss(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    ss[b] = dynamic_cast<ConCareStreamState*>(states[b]);
    ELDA_CHECK(ss[b] != nullptr);
  }

  // Advance every feature's cell by one step — the same PrecomputeInput /
  // Step kernels the per-feature sweeps run, on this step's scalar column.
  Tensor col = Tensor::Empty({n, 1});
  Tensor h_prev = Tensor::Empty({n, hidden_});
  for (int64_t c = 0; c < num_features_; ++c) {
    for (int64_t b = 0; b < n; ++b) {
      col.data()[b] = obs.x.data()[b * num_features_ + c];
      std::memcpy(h_prev.data() + b * hidden_,
                  ss[b]->h.data() + c * hidden_,
                  static_cast<size_t>(hidden_) * sizeof(float));
    }
    const nn::GruCell& cell = feature_grus_[c]->cell();
    ag::Variable xw = cell.PrecomputeInput(ag::Constant(col));
    ag::Variable h = cell.Step(xw, ag::Constant(h_prev));
    for (int64_t b = 0; b < n; ++b) {
      std::memcpy(ss[b]->h.data() + c * hidden_,
                  h.value().data() + b * hidden_,
                  static_cast<size_t>(hidden_) * sizeof(float));
    }
  }

  // Cross-feature attention over the updated summaries. Each session's
  // state slab is already the [C, u] features slice Forward would build.
  Tensor feat = Tensor::Empty({n, num_features_, hidden_});
  for (int64_t b = 0; b < n; ++b) {
    std::memcpy(feat.data() + b * num_features_ * hidden_, ss[b]->h.data(),
                static_cast<size_t>(num_features_ * hidden_) * sizeof(float));
    ++ss[b]->steps_seen;
  }
  ag::Variable features = ag::Constant(feat);
  ag::Variable q = wq_.Forward(features);
  ag::Variable k = wk_.Forward(features);
  ag::Variable v = wv_.Forward(features);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_));
  ag::Variable attention = ag::Softmax(
      ag::MulScalar(ag::MatMul(q, ag::TransposeLast2(k)), scale), -1);
  ag::Variable mixed = ag::MatMul(attention, v);
  ag::Variable rep = ag::AddTanh(features, mixed);
  ag::Variable flat = ag::Reshape(rep, {n, num_features_ * hidden_});
  return ag::Reshape(out_.Forward(flat), {n});
}

}  // namespace baselines
}  // namespace elda
