// ConCare (Ma et al., 2020): every medical feature's time series is encoded
// by its *own* GRU; the per-feature summaries then exchange information
// through dot-product self-attention across features before a linear head.
// (The published model adds demographics and a time-aware attention decay;
// the per-feature-GRU + cross-feature-attention core reproduced here is what
// differentiates ConCare from a pooled GRU and drives both its accuracy and
// its characteristic slowness in Table III.)

#ifndef ELDA_BASELINES_CONCARE_H_
#define ELDA_BASELINES_CONCARE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class ConCare : public train::SequenceModel {
 public:
  ConCare(int64_t num_features, int64_t per_feature_hidden, uint64_t seed);
  // Encoding: the attended per-feature summaries flattened to [B, C*u].
  // Cross-feature attention reads all feature summaries at once, so the
  // base prefix replay provides per-step encodings.
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return num_features_ * hidden_; }
  std::string name() const override { return "ConCare"; }

  // Streaming: one resident [C, u] slab of per-feature GRU states; each
  // observation advances every feature cell once and re-runs the (per-row)
  // cross-feature attention on the updated summaries.
  std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const override;
  ag::Variable StepForward(const train::StepBatch& obs,
                           const std::vector<nn::StepState*>& states,
                           nn::ForwardContext* ctx) const override;
  bool has_incremental_step() const override { return true; }

 private:
  Rng rng_;
  int64_t num_features_;
  int64_t hidden_;
  std::vector<std::unique_ptr<nn::Gru>> feature_grus_;
  nn::Linear wq_, wk_, wv_;
  nn::Linear out_;
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_CONCARE_H_
