#include "baselines/dipole.h"

#include "nn/init.h"
#include "nn/recurrent_sweep.h"

namespace elda {
namespace baselines {
namespace {
constexpr int64_t kConcatAttentionDim = 32;
}  // namespace

Dipole::Dipole(int64_t num_features, int64_t hidden_dim,
               DipoleAttention attention, uint64_t seed)
    : rng_(seed),
      attention_(attention),
      hidden_dim_(hidden_dim),
      forward_gru_(num_features, hidden_dim, &rng_),
      backward_gru_(num_features, hidden_dim, &rng_),
      combine_(4 * hidden_dim, 2 * hidden_dim, /*use_bias=*/true, &rng_),
      out_(2 * hidden_dim, 1, true, &rng_) {
  RegisterSubmodule("forward_gru", &forward_gru_);
  RegisterSubmodule("backward_gru", &backward_gru_);
  RegisterSubmodule("combine", &combine_);
  RegisterSubmodule("out", &out_);
  const int64_t state = 2 * hidden_dim;
  switch (attention_) {
    case DipoleAttention::kLocation:
      loc_w_ = RegisterParameter("loc_w",
                                 nn::XavierUniform2d(state, 1, &rng_));
      loc_b_ = RegisterParameter("loc_b", Tensor::Zeros({1}));
      break;
    case DipoleAttention::kGeneral:
      general_w_ = RegisterParameter(
          "general_w", nn::XavierUniform2d(state, state, &rng_));
      break;
    case DipoleAttention::kConcat:
      concat_w_ = RegisterParameter(
          "concat_w",
          nn::XavierUniform2d(2 * state, kConcatAttentionDim, &rng_));
      concat_v_ = RegisterParameter(
          "concat_v", nn::XavierUniform2d(kConcatAttentionDim, 1, &rng_));
      break;
  }
}

std::string Dipole::name() const {
  switch (attention_) {
    case DipoleAttention::kLocation:
      return "Dipole-l";
    case DipoleAttention::kGeneral:
      return "Dipole-g";
    case DipoleAttention::kConcat:
      return "Dipole-c";
  }
  return "Dipole";
}

ag::Variable Dipole::EncodeTerminal(const data::Batch& batch,
                                    nn::ForwardContext* ctx) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  const int64_t state = 2 * hidden_dim_;
  ag::Variable x = ag::Constant(batch.x);
  nn::SweepOptions fwd_opts;
  fwd_opts.label = "Dipole/forward-gru";
  nn::SweepOptions bwd_opts;
  bwd_opts.reversed = true;
  bwd_opts.label = "Dipole/backward-gru";
  nn::SweepResult fwd = nn::GruSweep(forward_gru_.cell(), x, fwd_opts);
  nn::SweepResult bwd = nn::GruSweep(backward_gru_.cell(), x, bwd_opts);
  ag::Variable h =
      ag::Concat({fwd.Stacked(), bwd.Stacked()}, /*axis=*/2);  // [B, T, 2H]

  // Both sweeps file states chronologically, so index T-1 is the forward
  // sweep's final state and the backward sweep's first-computed one.
  ag::Variable h_last =
      ag::Concat({fwd.steps.back(), bwd.steps.back()}, /*axis=*/1);
  ag::Variable h_prev = ag::Slice(h, 1, 0, steps - 1);  // [B, T-1, 2H]

  ag::Variable scores;  // [B, T-1]
  switch (attention_) {
    case DipoleAttention::kLocation:
      scores = ag::Reshape(ag::Add(ag::MatMul(h_prev, loc_w_), loc_b_),
                           {batch_size, steps - 1});
      break;
    case DipoleAttention::kGeneral: {
      // a_t = h_T W h_t: project h_T once, then batch dot with h_prev.
      ag::Variable query = ag::MatMul(h_last, general_w_);  // [B, 2H]
      scores = ag::Reshape(
          ag::MatMul(h_prev, ag::Reshape(query, {batch_size, state, 1})),
          {batch_size, steps - 1});
      break;
    }
    case DipoleAttention::kConcat: {
      // a_t = v . tanh(W [h_t ; h_T]).
      ag::Variable tiled = ag::Add(
          ag::Reshape(h_last, {batch_size, 1, state}),
          ag::Constant(Tensor::Zeros({batch_size, steps - 1, state})));
      ag::Variable cat = ag::Concat({h_prev, tiled}, 2);  // [B, T-1, 4H]
      ag::Variable hidden = ag::Tanh(ag::MatMul(cat, concat_w_));
      scores = ag::Reshape(ag::MatMul(hidden, concat_v_),
                           {batch_size, steps - 1});
      break;
    }
  }
  ag::Variable alpha = ag::Softmax(scores, 1);  // [B, T-1]
  if (ctx != nullptr) ctx->Capture("time_attention", alpha.value());
  ag::Variable context = ag::Reshape(
      ag::MatMul(ag::Reshape(alpha, {batch_size, 1, steps - 1}), h_prev),
      {batch_size, state});
  ag::Variable combined =
      ag::Tanh(combine_.Forward(ag::Concat({context, h_last}, 1)));
  return combined;  // [B, 2H]
}

ag::Variable Dipole::Readout(const ag::Variable& rep,
                             nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

}  // namespace baselines
}  // namespace elda
