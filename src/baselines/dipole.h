// Dipole (Ma et al., 2017): bidirectional GRU with three attention
// mechanisms over earlier steps — location-based, general and
// concatenation-based — combined with the final state through a tanh layer.
// The paper evaluates all three variants (Dipole_l, Dipole_g, Dipole_c);
// Dipole_c additionally serves as the comparison model for ELDA's
// time-level interpretability study (Fig. 8), so Forward publishes its
// attention weights to the caller's capture sink under "time_attention".

#ifndef ELDA_BASELINES_DIPOLE_H_
#define ELDA_BASELINES_DIPOLE_H_

#include <string>

#include "nn/gru.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

enum class DipoleAttention {
  kLocation,  // a_t = w . h_t + b
  kGeneral,   // a_t = h_T^T W h_t
  kConcat,    // a_t = v . tanh(W [h_t ; h_T])
};

class Dipole : public train::SequenceModel {
 public:
  Dipole(int64_t num_features, int64_t hidden_dim, DipoleAttention attention,
         uint64_t seed);
  // With a capture sink in `ctx`, records the attention over the T-1
  // earlier steps under "time_attention" as [B, T-1] (the same key
  // EldaNet's time module uses, so interpretation tooling can compare the
  // two without special-casing). The backward GRU makes the encoding
  // window-global, so per-step encodings use the base prefix replay.
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return 2 * hidden_dim_; }
  std::string name() const override;

  // Streaming: the backward GRU reads the window in reverse time, so every
  // new observation changes all earlier backward states — there is no O(1)
  // incremental update. Dipole uses the base-class rolling-window replay
  // (has_incremental_step() stays false); attention over "earlier steps"
  // needs at least two of them.
  int64_t min_steps_to_score() const override { return 2; }

 private:
  Rng rng_;
  DipoleAttention attention_;
  int64_t hidden_dim_;  // per direction; bidirectional state is 2x
  nn::Gru forward_gru_;
  nn::Gru backward_gru_;
  // Attention parameters (the unused ones stay undefined per variant).
  ag::Variable loc_w_;     // [2H, 1]
  ag::Variable loc_b_;     // [1]
  ag::Variable general_w_; // [2H, 2H]
  ag::Variable concat_w_;  // [4H, A]
  ag::Variable concat_v_;  // [A, 1]
  nn::Linear combine_;     // [4H] -> [2H], tanh
  nn::Linear out_;         // [2H] -> 1
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_DIPOLE_H_
