#include "baselines/gru_classifier.h"

#include "autograd/ops.h"

namespace elda {
namespace baselines {

GruClassifier::GruClassifier(int64_t num_features, int64_t hidden_dim,
                             uint64_t seed)
    : rng_(seed),
      gru_(num_features, hidden_dim, &rng_),
      head_(hidden_dim, 1, /*use_bias=*/true, &rng_) {
  RegisterSubmodule("gru", &gru_);
  RegisterSubmodule("head", &head_);
}

ag::Variable GruClassifier::Forward(const data::Batch& batch,
                              nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  std::vector<ag::Variable> steps =
      gru_.ForwardSteps(ag::Constant(batch.x));
  return ag::Reshape(head_.Forward(steps.back()), {batch_size});
}

}  // namespace baselines
}  // namespace elda
