#include "baselines/gru_classifier.h"

#include <cstring>

#include "autograd/ops.h"
#include "util/logging.h"

namespace elda {
namespace baselines {
namespace {

struct GruStreamState : nn::StepState {
  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->TensorData(h);
  }
  bool Load(nn::StateReader* r) override {
    return nn::StepState::Load(r) && r->TensorInto(&h);
  }

  Tensor h;  // [hidden]
};

}  // namespace

GruClassifier::GruClassifier(int64_t num_features, int64_t hidden_dim,
                             uint64_t seed)
    : rng_(seed),
      gru_(num_features, hidden_dim, &rng_),
      head_(hidden_dim, 1, /*use_bias=*/true, &rng_) {
  RegisterSubmodule("gru", &gru_);
  RegisterSubmodule("head", &head_);
}

ag::Variable GruClassifier::EncodeTerminal(const data::Batch& batch,
                                           nn::ForwardContext*) const {
  // Ragged batches freeze each row past its length, so steps.back() row b
  // is that stay's true final state (LengthsOrNull() is null when uniform).
  std::vector<ag::Variable> steps =
      gru_.ForwardSteps(ag::Constant(batch.x), batch.LengthsOrNull());
  return steps.back();
}

ag::Variable GruClassifier::Readout(const ag::Variable& rep,
                                    nn::ForwardContext*) const {
  return ag::Reshape(head_.Forward(rep), {rep.value().shape(0)});
}

int64_t GruClassifier::encoding_dim() const {
  return gru_.cell().hidden_size();
}

ag::Variable GruClassifier::EncodeSteps(const data::Batch& batch,
                                        nn::ForwardContext*) const {
  // One sweep; state t is bitwise the prefix-replay encoding because the
  // recurrence is causal and every kernel computes rows independently.
  std::vector<ag::Variable> steps =
      gru_.ForwardSteps(ag::Constant(batch.x), batch.LengthsOrNull());
  return ag::Transpose01(ag::Stack0(steps));  // [B, T, H]
}

std::unique_ptr<nn::StepState> GruClassifier::MakeStepState(
    int64_t /*window_capacity*/) const {
  auto state = std::make_unique<GruStreamState>();
  state->h = Tensor::Zeros({gru_.cell().hidden_size()});
  return state;
}

ag::Variable GruClassifier::StepForward(
    const train::StepBatch& obs, const std::vector<nn::StepState*>& states,
    nn::ForwardContext*) const {
  const int64_t n = static_cast<int64_t>(states.size());
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  const int64_t hidden = gru_.cell().hidden_size();
  Tensor h_prev = Tensor::Empty({n, hidden});
  std::vector<GruStreamState*> ss(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    ss[b] = dynamic_cast<GruStreamState*>(states[b]);
    ELDA_CHECK(ss[b] != nullptr);
    std::memcpy(h_prev.data() + b * hidden, ss[b]->h.data(),
                static_cast<size_t>(hidden) * sizeof(float));
  }
  // One observation is one sweep step: the same fused PrecomputeInput /
  // Step kernels as GruSweep, applied to this step's rows, so row b matches
  // the batched sweep over the full window bitwise.
  ag::Variable xw = gru_.cell().PrecomputeInput(ag::Constant(obs.x));
  ag::Variable h = gru_.cell().Step(xw, ag::Constant(h_prev));
  for (int64_t b = 0; b < n; ++b) {
    std::memcpy(ss[b]->h.data(), h.value().data() + b * hidden,
                static_cast<size_t>(hidden) * sizeof(float));
    ++ss[b]->steps_seen;
  }
  return ag::Reshape(head_.Forward(h), {n});
}

}  // namespace baselines
}  // namespace elda
