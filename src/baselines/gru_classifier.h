// Plain GRU baseline: a GRU over the imputed series, linear head on the
// final hidden state.

#ifndef ELDA_BASELINES_GRU_CLASSIFIER_H_
#define ELDA_BASELINES_GRU_CLASSIFIER_H_

#include <string>

#include "nn/gru.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class GruClassifier : public train::SequenceModel {
 public:
  GruClassifier(int64_t num_features, int64_t hidden_dim, uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override;
  // Single-sweep per-step encodings: the recurrence is causal, so state t of
  // one full sweep equals state t of the prefix sweep bitwise (the same
  // fused kernels visit the same rows) — no O(T^2) prefix replay.
  ag::Variable EncodeSteps(const data::Batch& batch,
                           nn::ForwardContext* ctx) const override;
  std::string name() const override { return "GRU"; }

  // Streaming: resident hidden state, one fused cell step per observation.
  std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const override;
  ag::Variable StepForward(const train::StepBatch& obs,
                           const std::vector<nn::StepState*>& states,
                           nn::ForwardContext* ctx) const override;
  bool has_incremental_step() const override { return true; }

 private:
  Rng rng_;
  nn::Gru gru_;
  nn::Linear head_;
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_GRU_CLASSIFIER_H_
