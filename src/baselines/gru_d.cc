#include "baselines/gru_d.h"

#include <cstring>

#include "autograd/ops.h"
#include "nn/recurrent_sweep.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace baselines {
namespace {

struct GruDStreamState : nn::StepState {
  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->TensorData(h);
  }
  bool Load(nn::StateReader* r) override {
    return nn::StepState::Load(r) && r->TensorInto(&h);
  }

  Tensor h;  // [hidden]
};

}  // namespace

GruD::GruD(int64_t num_features, int64_t hidden_dim, uint64_t seed)
    : rng_(seed),
      num_features_(num_features),
      hidden_dim_(hidden_dim),
      decay_h_(num_features, hidden_dim, /*use_bias=*/true, &rng_),
      cell_(2 * num_features, hidden_dim, &rng_),
      out_(hidden_dim, 1, true, &rng_) {
  decay_x_w_ = RegisterParameter("decay_x_w",
                                 Tensor::Full({num_features}, 0.1f));
  decay_x_b_ = RegisterParameter("decay_x_b", Tensor::Zeros({num_features}));
  RegisterSubmodule("decay_h", &decay_h_);
  RegisterSubmodule("cell", &cell_);
  RegisterSubmodule("out", &out_);
}

nn::SweepResult GruD::RunSweep(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  // All decay math is loop-invariant (each step reads only its own rows of
  // x/mask/delta), so it runs once over the whole [B, T, C] batch; the same
  // broadcasting pairs each element with the same weight as the old
  // per-step [B, C] version.
  ag::Variable x = ag::Constant(batch.x);
  ag::Variable m = ag::Constant(batch.mask);
  ag::Variable delta = ag::Constant(batch.delta);
  // Input decay toward the (standardised) global mean of zero.
  ag::Variable gamma_x = ag::ExpNegRelu(
      ag::Add(ag::Mul(delta, decay_x_w_), decay_x_b_));  // [B, T, C]
  ag::Variable one_minus_m =
      ag::Constant(Sub(Tensor::Ones(batch.mask.shape()), batch.mask));
  ag::Variable x_hat = ag::Add(ag::Mul(m, x),
                               ag::Mul(one_minus_m, ag::Mul(gamma_x, x)));
  // Hidden decay.
  ag::Variable gamma_h =
      ag::ExpNegRelu(decay_h_.Forward(delta));  // [B, T, H]

  // Time-major [T*B, .] blocks: the hoisted cell-input GEMM over
  // [x^ ; m], and the per-step hidden decay factors.
  ag::Variable u = ag::Reshape(ag::Transpose01(ag::Concat({x_hat, m}, 2)),
                               {steps * batch_size, 2 * num_features_});
  ag::Variable xw_all = cell_.PrecomputeInput(u);  // [T*B, 3H]
  ag::Variable gamma_h_tm = ag::Reshape(ag::Transpose01(gamma_h),
                                        {steps * batch_size, hidden_dim_});

  nn::SweepOptions opts;
  opts.label = "GruD/sweep";
  opts.lengths = batch.LengthsOrNull();
  ag::Variable h0 = ag::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  nn::SweepResult sweep = nn::Sweep(
      steps, h0,
      [&](int64_t t, const ag::Variable& h) {
        ag::Variable decayed = ag::Mul(
            ag::RowsView(gamma_h_tm, t * batch_size, batch_size), h);
        return cell_.Step(
            ag::RowsView(xw_all, t * batch_size, batch_size), decayed);
      },
      opts);
  return sweep;
}

ag::Variable GruD::EncodeTerminal(const data::Batch& batch,
                                  nn::ForwardContext*) const {
  return RunSweep(batch).last();
}

ag::Variable GruD::Readout(const ag::Variable& rep,
                           nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

ag::Variable GruD::EncodeSteps(const data::Batch& batch,
                               nn::ForwardContext*) const {
  // One sweep; state t is bitwise the prefix encoding (decay factors read
  // only step t's delta row, the cell is causal, kernels are row-strict).
  return RunSweep(batch).Stacked();  // [B, T, H]
}

std::unique_ptr<nn::StepState> GruD::MakeStepState(
    int64_t /*window_capacity*/) const {
  auto state = std::make_unique<GruDStreamState>();
  state->h = Tensor::Zeros({hidden_dim_});
  return state;
}

ag::Variable GruD::StepForward(const train::StepBatch& obs,
                               const std::vector<nn::StepState*>& states,
                               nn::ForwardContext*) const {
  const int64_t n = static_cast<int64_t>(states.size());
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  ELDA_CHECK_EQ(obs.x.shape(1), num_features_);
  Tensor h_prev = Tensor::Empty({n, hidden_dim_});
  std::vector<GruDStreamState*> ss(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    ss[b] = dynamic_cast<GruDStreamState*>(states[b]);
    ELDA_CHECK(ss[b] != nullptr);
    std::memcpy(h_prev.data() + b * hidden_dim_, ss[b]->h.data(),
                static_cast<size_t>(hidden_dim_) * sizeof(float));
  }
  // The same decay / imputation expressions as Forward, evaluated on this
  // step's [B, C] rows instead of the whole [B, T, C] batch: every op is
  // per-element or per-row, so values match the batched sweep bitwise.
  ag::Variable x = ag::Constant(obs.x);
  ag::Variable m = ag::Constant(obs.mask);
  ag::Variable delta = ag::Constant(obs.delta);
  ag::Variable gamma_x = ag::ExpNegRelu(
      ag::Add(ag::Mul(delta, decay_x_w_), decay_x_b_));  // [B, C]
  ag::Variable one_minus_m =
      ag::Constant(Sub(Tensor::Ones(obs.mask.shape()), obs.mask));
  ag::Variable x_hat = ag::Add(ag::Mul(m, x),
                               ag::Mul(one_minus_m, ag::Mul(gamma_x, x)));
  ag::Variable gamma_h =
      ag::ExpNegRelu(decay_h_.Forward(delta));  // [B, H]
  ag::Variable u = ag::Concat({x_hat, m}, 1);               // [B, 2C]
  ag::Variable xw = cell_.PrecomputeInput(u);
  ag::Variable decayed = ag::Mul(gamma_h, ag::Constant(h_prev));
  ag::Variable h = cell_.Step(xw, decayed);
  for (int64_t b = 0; b < n; ++b) {
    std::memcpy(ss[b]->h.data(), h.value().data() + b * hidden_dim_,
                static_cast<size_t>(hidden_dim_) * sizeof(float));
    ++ss[b]->steps_seen;
  }
  return ag::Reshape(out_.Forward(h), {n});
}

}  // namespace baselines
}  // namespace elda
