#include "baselines/gru_d.h"

#include "autograd/ops.h"

#include "tensor/tensor_ops.h"

namespace elda {
namespace baselines {

GruD::GruD(int64_t num_features, int64_t hidden_dim, uint64_t seed)
    : rng_(seed),
      num_features_(num_features),
      hidden_dim_(hidden_dim),
      decay_h_(num_features, hidden_dim, /*use_bias=*/true, &rng_),
      cell_(2 * num_features, hidden_dim, &rng_),
      out_(hidden_dim, 1, true, &rng_) {
  decay_x_w_ = RegisterParameter("decay_x_w",
                                 Tensor::Full({num_features}, 0.1f));
  decay_x_b_ = RegisterParameter("decay_x_b", Tensor::Zeros({num_features}));
  RegisterSubmodule("decay_h", &decay_h_);
  RegisterSubmodule("cell", &cell_);
  RegisterSubmodule("out", &out_);
}

ag::Variable GruD::Forward(const data::Batch& batch,
                              nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ag::Variable h =
      ag::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  for (int64_t t = 0; t < steps; ++t) {
    Tensor xt = Slice(batch.x, 1, t, 1).Reshape({batch_size, num_features_});
    Tensor mt =
        Slice(batch.mask, 1, t, 1).Reshape({batch_size, num_features_});
    Tensor dt =
        Slice(batch.delta, 1, t, 1).Reshape({batch_size, num_features_});
    ag::Variable x = ag::Constant(xt);
    ag::Variable m = ag::Constant(mt);
    ag::Variable delta = ag::Constant(dt);
    // Input decay toward the (standardised) global mean of zero.
    ag::Variable gamma_x = ag::Exp(ag::Neg(ag::Relu(
        ag::Add(ag::Mul(delta, decay_x_w_), decay_x_b_))));  // [B, C]
    ag::Variable one_minus_m = ag::Constant(Sub(Tensor::Ones(mt.shape()), mt));
    ag::Variable x_hat = ag::Add(ag::Mul(m, x),
                                 ag::Mul(one_minus_m, ag::Mul(gamma_x, x)));
    // Hidden decay.
    ag::Variable gamma_h =
        ag::Exp(ag::Neg(ag::Relu(decay_h_.Forward(delta))));  // [B, H]
    h = ag::Mul(gamma_h, h);
    h = cell_.Forward(ag::Concat({x_hat, m}, 1), h);
  }
  return ag::Reshape(out_.Forward(h), {batch_size});
}

}  // namespace baselines
}  // namespace elda
