// GRU-D (Che et al., 2018): a GRU whose inputs and hidden state decay
// exponentially with the time since each feature was last observed.
//
//   gamma_x_t = exp(-relu(w_x ⊙ delta_t + b_x))        (per feature)
//   x^_t      = m_t ⊙ x_t + (1 - m_t)(gamma_x_t ⊙ x_last + (1-gamma_x_t) x~)
//   gamma_h_t = exp(-relu(W_h delta_t + b_h))           (per hidden unit)
//   h_{t-1}  <- gamma_h_t ⊙ h_{t-1}
//
// In this pipeline the input series is already last-observation-carried-
// forward imputed and standardised, so x_t at an unobserved cell *is*
// x_last, and the empirical mean x~ is 0; the input decay therefore reduces
// to x^ = m ⊙ x + (1-m) gamma_x ⊙ x. The mask is concatenated to the input
// as in the original model.

#ifndef ELDA_BASELINES_GRU_D_H_
#define ELDA_BASELINES_GRU_D_H_

#include <string>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/recurrent_sweep.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class GruD : public train::SequenceModel {
 public:
  GruD(int64_t num_features, int64_t hidden_dim, uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return hidden_dim_; }
  // Single-sweep per-step encodings: decay + cell are causal, so sweep state
  // t is bitwise the prefix encoding — no O(T^2) prefix replay.
  ag::Variable EncodeSteps(const data::Batch& batch,
                           nn::ForwardContext* ctx) const override;
  std::string name() const override { return "GRU-D"; }

  // Streaming: decay factors depend only on the current delta row, so the
  // resident hidden state advances with one decay + cell step per
  // observation.
  std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const override;
  ag::Variable StepForward(const train::StepBatch& obs,
                           const std::vector<nn::StepState*>& states,
                           nn::ForwardContext* ctx) const override;
  bool has_incremental_step() const override { return true; }

 private:
  // Decay math + hoisted GEMM + decayed sweep shared by both encoders.
  nn::SweepResult RunSweep(const data::Batch& batch) const;

  Rng rng_;
  int64_t num_features_;
  int64_t hidden_dim_;
  ag::Variable decay_x_w_;  // [C]
  ag::Variable decay_x_b_;  // [C]
  nn::Linear decay_h_;      // delta [C] -> hidden decay logits [H]
  nn::GruCell cell_;        // input = [x^ ; m] (2C)
  nn::Linear out_;
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_GRU_D_H_
