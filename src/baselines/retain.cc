#include "baselines/retain.h"

#include "nn/recurrent_sweep.h"

namespace elda {
namespace baselines {

Retain::Retain(int64_t num_features, int64_t embed_dim, uint64_t seed)
    : rng_(seed),
      embed_dim_(embed_dim),
      embed_(num_features, embed_dim, /*use_bias=*/true, &rng_),
      alpha_gru_(embed_dim, embed_dim, &rng_),
      beta_gru_(embed_dim, embed_dim, &rng_),
      alpha_head_(embed_dim, 1, true, &rng_),
      beta_head_(embed_dim, embed_dim, true, &rng_),
      out_(embed_dim, 1, true, &rng_) {
  RegisterSubmodule("embed", &embed_);
  RegisterSubmodule("alpha_gru", &alpha_gru_);
  RegisterSubmodule("beta_gru", &beta_gru_);
  RegisterSubmodule("alpha_head", &alpha_head_);
  RegisterSubmodule("beta_head", &beta_head_);
  RegisterSubmodule("out", &out_);
}

ag::Variable Retain::EncodeTerminal(const data::Batch& batch,
                                    nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ag::Variable v = embed_.Forward(ag::Constant(batch.x));  // [B, T, m]
  // Reverse-time recurrences. A reversed sweep walks t = T-1 .. 0 and files
  // each state chronologically, so no ReverseTime copies are needed on
  // either side of the GRUs.
  nn::SweepOptions reversed;
  reversed.reversed = true;
  reversed.label = "Retain/reversed-gru";
  ag::Variable g =
      nn::GruSweep(alpha_gru_.cell(), v, reversed).Stacked();  // [B, T, m]
  ag::Variable h =
      nn::GruSweep(beta_gru_.cell(), v, reversed).Stacked();   // [B, T, m]
  ag::Variable alpha = ag::Softmax(
      ag::Reshape(alpha_head_.Forward(g), {batch_size, steps}), 1);
  ag::Variable beta = ag::Tanh(beta_head_.Forward(h));  // [B, T, m]
  // context = sum_t alpha_t * beta_t ⊙ v_t.
  ag::Variable gated = ag::Mul(beta, v);                // [B, T, m]
  ag::Variable context = ag::Reshape(
      ag::MatMul(ag::Reshape(alpha, {batch_size, 1, steps}), gated),
      {batch_size, embed_dim_});
  return context;
}

ag::Variable Retain::Readout(const ag::Variable& rep,
                             nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

}  // namespace baselines
}  // namespace elda
