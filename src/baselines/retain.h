// RETAIN (Choi et al., 2016): an interpretable two-level attention model.
// Events are embedded per step; two GRUs running in *reverse time* produce a
// scalar visit-level attention alpha_t and a vector variable-level gate
// beta_t; the context sum_t alpha_t (beta_t ⊙ v_t) feeds a linear head.

#ifndef ELDA_BASELINES_RETAIN_H_
#define ELDA_BASELINES_RETAIN_H_

#include <string>

#include "nn/gru.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class Retain : public train::SequenceModel {
 public:
  Retain(int64_t num_features, int64_t embed_dim, uint64_t seed);
  // The reverse-time attention reads the whole window, so the per-visit
  // context is the encoding; per-step encodings go through the base prefix
  // replay (attention over a prefix differs from a slice of the full pass).
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return embed_dim_; }
  std::string name() const override { return "RETAIN"; }

 private:
  Rng rng_;
  int64_t embed_dim_;
  nn::Linear embed_;        // x_t -> v_t
  nn::Gru alpha_gru_;       // reverse-time, scalar attention
  nn::Gru beta_gru_;        // reverse-time, gate vector
  nn::Linear alpha_head_;   // hidden -> 1
  nn::Linear beta_head_;    // hidden -> embed_dim
  nn::Linear out_;          // context -> logit
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_RETAIN_H_
