#include "baselines/sand.h"

#include <cmath>

#include "autograd/ops.h"

namespace elda {
namespace baselines {

Sand::Sand(const Config& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      embed_(config.num_features, config.model_dim, /*use_bias=*/true, &rng_),
      out_(config.interpolation_factors * config.model_dim, 1, true, &rng_) {
  RegisterSubmodule("embed", &embed_);
  blocks_.resize(config_.num_blocks);
  for (int64_t i = 0; i < config_.num_blocks; ++i) {
    Block& block = blocks_[i];
    const int64_t d = config_.model_dim;
    block.wq = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wk = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wv = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wo = std::make_unique<nn::Linear>(d, d, true, &rng_);
    block.ffn1 = std::make_unique<nn::Linear>(d, config_.ffn_dim, true, &rng_);
    block.ffn2 = std::make_unique<nn::Linear>(config_.ffn_dim, d, true, &rng_);
    block.norm1 = std::make_unique<nn::LayerNorm>(d);
    block.norm2 = std::make_unique<nn::LayerNorm>(d);
    const std::string prefix = "block" + std::to_string(i) + ".";
    RegisterSubmodule(prefix + "wq", block.wq.get());
    RegisterSubmodule(prefix + "wk", block.wk.get());
    RegisterSubmodule(prefix + "wv", block.wv.get());
    RegisterSubmodule(prefix + "wo", block.wo.get());
    RegisterSubmodule(prefix + "ffn1", block.ffn1.get());
    RegisterSubmodule(prefix + "ffn2", block.ffn2.get());
    RegisterSubmodule(prefix + "norm1", block.norm1.get());
    RegisterSubmodule(prefix + "norm2", block.norm2.get());
  }
  RegisterSubmodule("out", &out_);
}

void Sand::RebuildConstants(int64_t steps) {
  if (steps == cached_steps_) return;
  cached_steps_ = steps;
  const int64_t d = config_.model_dim;
  positional_ = Tensor({steps, d});
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t k = 0; k < d; ++k) {
      const double angle =
          t / std::pow(10000.0, 2.0 * (k / 2) / static_cast<double>(d));
      positional_.at({t, k}) =
          k % 2 == 0 ? static_cast<float>(std::sin(angle))
                     : static_cast<float>(std::cos(angle));
    }
  }
  causal_mask_ = Tensor({steps, steps});
  for (int64_t i = 0; i < steps; ++i) {
    for (int64_t j = i + 1; j < steps; ++j) causal_mask_.at({i, j}) = -1e9f;
  }
  // Dense interpolation (SAnD Alg. 1): w_{m,t} = (1 - |t/T - m/M|)^2.
  const int64_t m_factors = config_.interpolation_factors;
  interpolation_ = Tensor({m_factors, steps});
  for (int64_t m = 0; m < m_factors; ++m) {
    for (int64_t t = 0; t < steps; ++t) {
      const double pos_t = static_cast<double>(t + 1) / steps;
      const double pos_m = static_cast<double>(m + 1) / m_factors;
      const double w = 1.0 - std::fabs(pos_t - pos_m);
      interpolation_.at({m, t}) = static_cast<float>(w * w);
    }
  }
}

ag::Variable Sand::Forward(const data::Batch& batch) {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  const int64_t d = config_.model_dim;
  Tensor positional, causal_mask, interpolation;
  {
    std::lock_guard<std::mutex> lock(constants_mu_);
    RebuildConstants(steps);
    positional = positional_;
    causal_mask = causal_mask_;
    interpolation = interpolation_;
  }

  ag::Variable h = ag::Add(embed_.Forward(ag::Constant(batch.x)),
                           ag::Constant(positional));  // [B, T, D]
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (Block& block : blocks_) {
    ag::Variable q = block.wq->Forward(h);
    ag::Variable k = block.wk->Forward(h);
    ag::Variable v = block.wv->Forward(h);
    ag::Variable scores = ag::MulScalar(
        ag::MatMul(q, ag::TransposeLast2(k)), scale);  // [B, T, T]
    scores = ag::Add(scores, ag::Constant(causal_mask));
    ag::Variable attention = ag::Softmax(scores, /*axis=*/-1);
    ag::Variable attended = block.wo->Forward(ag::MatMul(attention, v));
    attended = ag::Dropout(attended, config_.dropout, training(), &rng_);
    h = block.norm1->Forward(ag::Add(h, attended));  // residual + norm
    ag::Variable ffn =
        block.ffn2->Forward(ag::Relu(block.ffn1->Forward(h)));
    ffn = ag::Dropout(ffn, config_.dropout, training(), &rng_);
    h = block.norm2->Forward(ag::Add(h, ffn));  // residual + norm
  }
  // Dense interpolation collapses time into M factors: [M,T] x [B,T,D].
  ag::Variable interpolated =
      ag::MatMul(ag::Constant(interpolation), h);  // [B, M, D] (shared lhs)
  ag::Variable flat = ag::Reshape(
      interpolated, {batch_size, config_.interpolation_factors * d});
  return ag::Reshape(out_.Forward(flat), {batch_size});
}

}  // namespace baselines
}  // namespace elda
