#include "baselines/sand.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "autograd/ops.h"

namespace elda {
namespace baselines {

namespace {

// Input-independent constants for one (model_dim, M, steps) configuration.
// Once built they are immutable, so concurrent Forward calls can share one
// entry without synchronisation; the memo itself is guarded by a mutex that
// is only contended on the first batch of a new sequence length.
struct SandConstants {
  Tensor positional;     // [T, D]
  Tensor causal_mask;    // [T, T] 0 / -1e9
  Tensor interpolation;  // [M, T] dense-interpolation weights
};

std::shared_ptr<const SandConstants> GetSandConstants(int64_t model_dim,
                                                      int64_t m_factors,
                                                      int64_t steps) {
  using Key = std::tuple<int64_t, int64_t, int64_t>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const SandConstants>>* memo =
      new std::map<Key, std::shared_ptr<const SandConstants>>();
  const Key key{model_dim, m_factors, steps};
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo->find(key);
    if (it != memo->end()) return it->second;
  }
  auto built = std::make_shared<SandConstants>();
  built->positional = Tensor({steps, model_dim});
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t k = 0; k < model_dim; ++k) {
      const double angle =
          t / std::pow(10000.0,
                       2.0 * (k / 2) / static_cast<double>(model_dim));
      built->positional.at({t, k}) =
          k % 2 == 0 ? static_cast<float>(std::sin(angle))
                     : static_cast<float>(std::cos(angle));
    }
  }
  built->causal_mask = Tensor({steps, steps});
  for (int64_t i = 0; i < steps; ++i) {
    for (int64_t j = i + 1; j < steps; ++j) {
      built->causal_mask.at({i, j}) = -1e9f;
    }
  }
  // Dense interpolation (SAnD Alg. 1): w_{m,t} = (1 - |t/T - m/M|)^2.
  built->interpolation = Tensor({m_factors, steps});
  for (int64_t m = 0; m < m_factors; ++m) {
    for (int64_t t = 0; t < steps; ++t) {
      const double pos_t = static_cast<double>(t + 1) / steps;
      const double pos_m = static_cast<double>(m + 1) / m_factors;
      const double w = 1.0 - std::fabs(pos_t - pos_m);
      built->interpolation.at({m, t}) = static_cast<float>(w * w);
    }
  }
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = memo->emplace(key, std::move(built));
  (void)inserted;  // a racing builder may have won; use whichever landed
  return it->second;
}

}  // namespace

Sand::Sand(const Config& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      embed_(config.num_features, config.model_dim, /*use_bias=*/true, &rng_),
      out_(config.interpolation_factors * config.model_dim, 1, true, &rng_) {
  RegisterSubmodule("embed", &embed_);
  blocks_.resize(config_.num_blocks);
  for (int64_t i = 0; i < config_.num_blocks; ++i) {
    Block& block = blocks_[i];
    const int64_t d = config_.model_dim;
    block.wq = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wk = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wv = std::make_unique<nn::Linear>(d, d, false, &rng_);
    block.wo = std::make_unique<nn::Linear>(d, d, true, &rng_);
    block.ffn1 = std::make_unique<nn::Linear>(d, config_.ffn_dim, true, &rng_);
    block.ffn2 = std::make_unique<nn::Linear>(config_.ffn_dim, d, true, &rng_);
    block.norm1 = std::make_unique<nn::LayerNorm>(d);
    block.norm2 = std::make_unique<nn::LayerNorm>(d);
    const std::string prefix = "block" + std::to_string(i) + ".";
    RegisterSubmodule(prefix + "wq", block.wq.get());
    RegisterSubmodule(prefix + "wk", block.wk.get());
    RegisterSubmodule(prefix + "wv", block.wv.get());
    RegisterSubmodule(prefix + "wo", block.wo.get());
    RegisterSubmodule(prefix + "ffn1", block.ffn1.get());
    RegisterSubmodule(prefix + "ffn2", block.ffn2.get());
    RegisterSubmodule(prefix + "norm1", block.norm1.get());
    RegisterSubmodule(prefix + "norm2", block.norm2.get());
  }
  RegisterSubmodule("out", &out_);
}

ag::Variable Sand::EncodeTerminal(const data::Batch& batch,
                                  nn::ForwardContext* ctx) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  const int64_t d = config_.model_dim;
  const std::shared_ptr<const SandConstants> constants =
      GetSandConstants(d, config_.interpolation_factors, steps);
  const bool dropout_on =
      ctx != nullptr && ctx->training && ctx->rng != nullptr;
  Rng* dropout_rng = dropout_on ? ctx->rng : nullptr;

  ag::Variable h = ag::Add(embed_.Forward(ag::Constant(batch.x)),
                           ag::Constant(constants->positional));  // [B, T, D]
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (const Block& block : blocks_) {
    ag::Variable q = block.wq->Forward(h);
    ag::Variable k = block.wk->Forward(h);
    ag::Variable v = block.wv->Forward(h);
    ag::Variable scores = ag::MulScalar(
        ag::MatMul(q, ag::TransposeLast2(k)), scale);  // [B, T, T]
    scores = ag::Add(scores, ag::Constant(constants->causal_mask));
    ag::Variable attention = ag::Softmax(scores, /*axis=*/-1);
    ag::Variable attended = block.wo->Forward(ag::MatMul(attention, v));
    attended = ag::Dropout(attended, config_.dropout, dropout_on, dropout_rng);
    h = block.norm1->Forward(ag::Add(h, attended));  // residual + norm
    ag::Variable ffn =
        block.ffn2->Forward(ag::Relu(block.ffn1->Forward(h)));
    ffn = ag::Dropout(ffn, config_.dropout, dropout_on, dropout_rng);
    h = block.norm2->Forward(ag::Add(h, ffn));  // residual + norm
  }
  // Dense interpolation collapses time into M factors: [M,T] x [B,T,D].
  ag::Variable interpolated =
      ag::MatMul(ag::Constant(constants->interpolation),
                 h);  // [B, M, D] (shared lhs)
  return ag::Reshape(
      interpolated, {batch_size, config_.interpolation_factors * d});
}

ag::Variable Sand::Readout(const ag::Variable& rep,
                           nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

}  // namespace baselines
}  // namespace elda
