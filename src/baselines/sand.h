// SAnD — "Simply Attend and Diagnose" (Song et al., 2018): a
// transformer-style baseline with input embedding, sinusoidal positional
// encoding, causally masked self-attention blocks, and dense interpolation
// over time instead of recurrence.

#ifndef ELDA_BASELINES_SAND_H_
#define ELDA_BASELINES_SAND_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class Sand : public train::SequenceModel {
 public:
  struct Config {
    int64_t num_features = 37;
    int64_t model_dim = 64;
    int64_t ffn_dim = 128;
    int64_t num_blocks = 2;
    int64_t interpolation_factors = 12;  // M in the SAnD paper
    float dropout = 0.1f;
  };

  Sand(const Config& config, uint64_t seed);
  ag::Variable Forward(const data::Batch& batch) override;
  std::string name() const override { return "SAnD"; }

 private:
  struct Block {
    std::unique_ptr<nn::Linear> wq, wk, wv, wo, ffn1, ffn2;
    std::unique_ptr<nn::LayerNorm> norm1, norm2;
  };

  Config config_;
  Rng rng_;
  nn::Linear embed_;
  std::vector<Block> blocks_;
  nn::Linear out_;
  // Cached constants, rebuilt when the sequence length changes. The mutex
  // makes the lazy rebuild safe under batch-parallel prediction; Forward
  // takes shallow copies under the lock so a later rebuild (different T)
  // cannot swap the tensors out from under an in-flight evaluation.
  mutable std::mutex constants_mu_;
  int64_t cached_steps_ = -1;
  Tensor positional_;     // [T, D]
  Tensor causal_mask_;    // [T, T] 0 / -1e9
  Tensor interpolation_;  // [M, T] dense-interpolation weights
  void RebuildConstants(int64_t steps);  // caller must hold constants_mu_
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_SAND_H_
