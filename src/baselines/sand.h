// SAnD — "Simply Attend and Diagnose" (Song et al., 2018): a
// transformer-style baseline with input embedding, sinusoidal positional
// encoding, causally masked self-attention blocks, and dense interpolation
// over time instead of recurrence.

#ifndef ELDA_BASELINES_SAND_H_
#define ELDA_BASELINES_SAND_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class Sand : public train::SequenceModel {
 public:
  struct Config {
    int64_t num_features = 37;
    int64_t model_dim = 64;
    int64_t ffn_dim = 128;
    int64_t num_blocks = 2;
    int64_t interpolation_factors = 12;  // M in the SAnD paper
    float dropout = 0.1f;
  };

  Sand(const Config& config, uint64_t seed);
  // Encoding: the dense-interpolation summary flattened to [B, M*D]. The
  // interpolation weights depend on the window length T, so per-step
  // encodings use the base prefix replay.
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override {
    return config_.interpolation_factors * config_.model_dim;
  }
  std::string name() const override { return "SAnD"; }

 private:
  struct Block {
    std::unique_ptr<nn::Linear> wq, wk, wv, wo, ffn1, ffn2;
    std::unique_ptr<nn::LayerNorm> norm1, norm2;
  };

  Config config_;
  Rng rng_;
  nn::Linear embed_;
  std::vector<Block> blocks_;
  nn::Linear out_;
  // Positional encoding, causal mask, and interpolation weights depend only
  // on (model_dim, interpolation_factors, steps); they live in a file-local
  // immutable memo (see sand.cc) so Forward stays const and lock-free.
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_SAND_H_
