#include "baselines/stagenet.h"

#include "autograd/ops.h"
#include "nn/recurrent_sweep.h"

namespace elda {
namespace baselines {

StageNet::StageNet(int64_t num_features, int64_t hidden_dim,
                   int64_t conv_kernel, int64_t conv_channels, uint64_t seed)
    : rng_(seed),
      hidden_dim_(hidden_dim),
      conv_kernel_(conv_kernel),
      conv_channels_(conv_channels),
      lstm_(num_features, hidden_dim, &rng_),
      stage_head_(hidden_dim, 1, /*use_bias=*/true, &rng_),
      conv_(conv_kernel * hidden_dim, conv_channels, true, &rng_),
      out_(hidden_dim + conv_channels, 1, true, &rng_) {
  RegisterSubmodule("lstm", &lstm_);
  RegisterSubmodule("stage_head", &stage_head_);
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("out", &out_);
}

ag::Variable StageNet::Forward(const data::Batch& batch,
                              nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ELDA_CHECK_GE(steps, conv_kernel_);
  nn::SweepOptions opts;
  opts.label = "StageNet/lstm";
  nn::SweepResult sweep =
      nn::LstmSweep(lstm_.cell(), ag::Constant(batch.x), opts);
  ag::Variable h = sweep.Stacked();  // [B, T, H]

  // Stage signal per step: how far the disease has progressed. It softly
  // re-weights the hidden history before the progression convolution.
  ag::Variable stage = ag::Sigmoid(stage_head_.Forward(h));  // [B, T, 1]
  ag::Variable staged = ag::Mul(h, stage);                   // [B, T, H]

  // Temporal convolution via unfolding: windows of K consecutive staged
  // states, linearly mapped to `conv_channels` progression features.
  std::vector<ag::Variable> windows;
  windows.reserve(steps - conv_kernel_ + 1);
  for (int64_t t = 0; t + conv_kernel_ <= steps; ++t) {
    // [B, K, H] -> [B, 1, K*H]
    windows.push_back(ag::Reshape(ag::Slice(staged, 1, t, conv_kernel_),
                                  {batch_size, 1, conv_kernel_ * hidden_dim_}));
  }
  ag::Variable unfolded = ag::Concat(windows, 1);  // [B, T-K+1, K*H]
  ag::Variable conv = ag::Relu(conv_.Forward(unfolded));
  // Max-pool the progression features over time: max = -min(-x) via the
  // softplus-free trick is unnecessary; mean-pool works and keeps gradients
  // dense across the stay.
  ag::Variable pooled = ag::Mean(conv, /*axis=*/1);  // [B, channels]

  ag::Variable h_last = sweep.steps.back();  // [B, H]
  ag::Variable rep = ag::Concat({h_last, pooled}, 1);
  return ag::Reshape(out_.Forward(rep), {batch_size});
}

}  // namespace baselines
}  // namespace elda
