#include "baselines/stagenet.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "autograd/ops.h"
#include "nn/recurrent_sweep.h"

namespace elda {
namespace baselines {
namespace {

struct StageNetStreamState : nn::StepState {
  explicit StageNetStreamState(int64_t ring_capacity) : staged(ring_capacity) {}

  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->TensorData(h);
    w->TensorData(c);
    w->Window(staged);
    w->TensorData(conv_sum);
    w->I64(windows);
  }
  bool Load(nn::StateReader* r) override {
    return nn::StepState::Load(r) && r->TensorInto(&h) && r->TensorInto(&c) &&
           r->WindowInto(&staged) && r->TensorInto(&conv_sum) &&
           r->I64(&windows);
  }

  Tensor h;                 // [hidden]
  Tensor c;                 // [hidden]
  nn::RollingWindow staged; // last K-1 staged states (window assembly)
  Tensor conv_sum;          // [channels], running sum of conv window outputs
  int64_t windows = 0;      // conv windows accumulated so far
};

}  // namespace

StageNet::StageNet(int64_t num_features, int64_t hidden_dim,
                   int64_t conv_kernel, int64_t conv_channels, uint64_t seed)
    : rng_(seed),
      hidden_dim_(hidden_dim),
      conv_kernel_(conv_kernel),
      conv_channels_(conv_channels),
      lstm_(num_features, hidden_dim, &rng_),
      stage_head_(hidden_dim, 1, /*use_bias=*/true, &rng_),
      conv_(conv_kernel * hidden_dim, conv_channels, true, &rng_),
      out_(hidden_dim + conv_channels, 1, true, &rng_) {
  RegisterSubmodule("lstm", &lstm_);
  RegisterSubmodule("stage_head", &stage_head_);
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("out", &out_);
}

ag::Variable StageNet::EncodeTerminal(const data::Batch& batch,
                                      nn::ForwardContext*) const {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  ELDA_CHECK_GE(steps, conv_kernel_);
  nn::SweepOptions opts;
  opts.label = "StageNet/lstm";
  nn::SweepResult sweep =
      nn::LstmSweep(lstm_.cell(), ag::Constant(batch.x), opts);
  ag::Variable h = sweep.Stacked();  // [B, T, H]

  // Stage signal per step: how far the disease has progressed. It softly
  // re-weights the hidden history before the progression convolution.
  ag::Variable stage = ag::Sigmoid(stage_head_.Forward(h));  // [B, T, 1]
  ag::Variable staged = ag::Mul(h, stage);                   // [B, T, H]

  // Temporal convolution via unfolding: windows of K consecutive staged
  // states, linearly mapped to `conv_channels` progression features.
  std::vector<ag::Variable> windows;
  windows.reserve(steps - conv_kernel_ + 1);
  for (int64_t t = 0; t + conv_kernel_ <= steps; ++t) {
    // [B, K, H] -> [B, 1, K*H]
    windows.push_back(ag::Reshape(ag::Slice(staged, 1, t, conv_kernel_),
                                  {batch_size, 1, conv_kernel_ * hidden_dim_}));
  }
  ag::Variable unfolded = ag::Concat(windows, 1);  // [B, T-K+1, K*H]
  ag::Variable conv = ag::Relu(conv_.Forward(unfolded));
  // Max-pool the progression features over time: max = -min(-x) via the
  // softplus-free trick is unnecessary; mean-pool works and keeps gradients
  // dense across the stay.
  ag::Variable pooled = ag::Mean(conv, /*axis=*/1);  // [B, channels]

  ag::Variable h_last = sweep.steps.back();  // [B, H]
  return ag::Concat({h_last, pooled}, 1);  // [B, H + channels]
}

ag::Variable StageNet::Readout(const ag::Variable& rep,
                               nn::ForwardContext*) const {
  return ag::Reshape(out_.Forward(rep), {rep.value().shape(0)});
}

std::unique_ptr<nn::StepState> StageNet::MakeStepState(
    int64_t /*window_capacity*/) const {
  auto state = std::make_unique<StageNetStreamState>(
      std::max<int64_t>(1, conv_kernel_ - 1));
  state->h = Tensor::Zeros({hidden_dim_});
  state->c = Tensor::Zeros({hidden_dim_});
  state->conv_sum = Tensor::Zeros({conv_channels_});
  return state;
}

ag::Variable StageNet::StepForward(const train::StepBatch& obs,
                                   const std::vector<nn::StepState*>& states,
                                   nn::ForwardContext*) const {
  const int64_t n = static_cast<int64_t>(states.size());
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  std::vector<StageNetStreamState*> ss(static_cast<size_t>(n));
  Tensor packed_prev = Tensor::Empty({2, n, hidden_dim_});
  for (int64_t b = 0; b < n; ++b) {
    ss[b] = dynamic_cast<StageNetStreamState*>(states[b]);
    ELDA_CHECK(ss[b] != nullptr);
    std::memcpy(packed_prev.data() + b * hidden_dim_, ss[b]->h.data(),
                static_cast<size_t>(hidden_dim_) * sizeof(float));
    std::memcpy(packed_prev.data() + (n + b) * hidden_dim_, ss[b]->c.data(),
                static_cast<size_t>(hidden_dim_) * sizeof(float));
  }

  // One fused LSTM step, then this step's stage re-weighting — the same
  // kernels the batched sweep runs on this step's rows.
  ag::Variable xw = lstm_.cell().PrecomputeInput(ag::Constant(obs.x));
  ag::Variable packed = lstm_.cell().Step(xw, ag::Constant(packed_prev));
  ag::Variable h_t = ag::StepView(packed, 0);  // [B, H]
  ag::Variable stage = ag::Sigmoid(stage_head_.Forward(h_t));
  ag::Variable staged_t = ag::Mul(h_t, stage);  // [B, H]

  const float* h_data = packed.value().data();
  const float* staged_data = staged_t.value().data();
  // Sessions whose staged ring already holds K-1 earlier states complete a
  // new conv window this step.
  std::vector<int64_t> with_window;
  for (int64_t b = 0; b < n; ++b) {
    if (ss[b]->staged.size() >= conv_kernel_ - 1) with_window.push_back(b);
  }
  if (!with_window.empty()) {
    const int64_t m = static_cast<int64_t>(with_window.size());
    Tensor wrows = Tensor::Empty({m, conv_kernel_ * hidden_dim_});
    for (int64_t i = 0; i < m; ++i) {
      const int64_t b = with_window[i];
      float* dst = wrows.data() + i * conv_kernel_ * hidden_dim_;
      for (int64_t k = 0; k < conv_kernel_ - 1; ++k) {
        std::memcpy(dst + k * hidden_dim_, ss[b]->staged.row(k),
                    static_cast<size_t>(hidden_dim_) * sizeof(float));
      }
      std::memcpy(dst + (conv_kernel_ - 1) * hidden_dim_,
                  staged_data + b * hidden_dim_,
                  static_cast<size_t>(hidden_dim_) * sizeof(float));
    }
    ag::Variable conv = ag::Relu(conv_.Forward(ag::Constant(wrows)));
    const float* conv_data = conv.value().data();
    for (int64_t i = 0; i < m; ++i) {
      StageNetStreamState* s = ss[with_window[i]];
      float* acc = s->conv_sum.data();
      const float* row = conv_data + i * conv_channels_;
      if (s->windows == 0) {
        // First window initialises the accumulator (the Mean kernel copies
        // window 0 before adding the rest).
        std::memcpy(acc, row,
                    static_cast<size_t>(conv_channels_) * sizeof(float));
      } else {
        for (int64_t ch = 0; ch < conv_channels_; ++ch) acc[ch] += row[ch];
      }
      ++s->windows;
    }
  }

  // Commit the recurrent state and this step's staged vector.
  for (int64_t b = 0; b < n; ++b) {
    std::memcpy(ss[b]->h.data(), h_data + b * hidden_dim_,
                static_cast<size_t>(hidden_dim_) * sizeof(float));
    std::memcpy(ss[b]->c.data(), h_data + (n + b) * hidden_dim_,
                static_cast<size_t>(hidden_dim_) * sizeof(float));
    ss[b]->staged.Append(staged_data + b * hidden_dim_, hidden_dim_);
    ++ss[b]->steps_seen;
  }

  // Score sessions that have at least one complete conv window: mean-pool
  // the running sum exactly as ag::Mean does (sum in window order, one
  // scale by 1/n at the end).
  Tensor logits =
      Tensor::Full({n}, std::numeric_limits<float>::quiet_NaN());
  std::vector<int64_t> scorable;
  for (int64_t b = 0; b < n; ++b) {
    if (ss[b]->windows > 0) scorable.push_back(b);
  }
  if (!scorable.empty()) {
    const int64_t g = static_cast<int64_t>(scorable.size());
    Tensor rep = Tensor::Empty({g, hidden_dim_ + conv_channels_});
    for (int64_t i = 0; i < g; ++i) {
      StageNetStreamState* s = ss[scorable[i]];
      float* dst = rep.data() + i * (hidden_dim_ + conv_channels_);
      std::memcpy(dst, s->h.data(),
                  static_cast<size_t>(hidden_dim_) * sizeof(float));
      const float inv = 1.0f / static_cast<float>(s->windows);
      for (int64_t ch = 0; ch < conv_channels_; ++ch) {
        dst[hidden_dim_ + ch] = s->conv_sum.data()[ch] * inv;
      }
    }
    ag::Variable scored = out_.Forward(ag::Constant(rep));  // [g, 1]
    for (int64_t i = 0; i < g; ++i) {
      logits.data()[scorable[i]] = scored.value().data()[i];
    }
  }
  return ag::Constant(logits);
}

}  // namespace baselines
}  // namespace elda
