// StageNet (Gao et al., 2020), implemented in its simplified faithful form
// documented in DESIGN.md: an LSTM backbone whose hidden trajectory is
// summarised by (a) a learned per-step stage signal that re-weights the
// history and (b) a temporal convolution over the stacked hidden states that
// extracts progression patterns. The published model additionally couples
// the stage variable into the LSTM's internal gates; the progression-
// convolution + stage-reweighting core that drives its reported gains is
// what this implementation reproduces.

#ifndef ELDA_BASELINES_STAGENET_H_
#define ELDA_BASELINES_STAGENET_H_

#include <string>

#include "nn/linear.h"
#include "nn/lstm.h"
#include "train/sequence_model.h"

namespace elda {
namespace baselines {

class StageNet : public train::SequenceModel {
 public:
  StageNet(int64_t num_features, int64_t hidden_dim, int64_t conv_kernel,
           int64_t conv_channels, uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override {
    return hidden_dim_ + conv_channels_;
  }
  std::string name() const override { return "StageNet"; }

  // Streaming: resident LSTM state plus a ring of the last K-1 staged
  // states and a running sum of the per-window conv outputs. The Mean
  // pooling accumulates windows left-to-right and scales once at the end,
  // so the running sum reproduces it bitwise at any horizon — the state is
  // O(K*H) regardless of stay length, with no history eviction.
  std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const override;
  ag::Variable StepForward(const train::StepBatch& obs,
                           const std::vector<nn::StepState*>& states,
                           nn::ForwardContext* ctx) const override;
  bool has_incremental_step() const override { return true; }
  int64_t min_steps_to_score() const override { return conv_kernel_; }

 private:
  Rng rng_;
  int64_t hidden_dim_;
  int64_t conv_kernel_;
  int64_t conv_channels_;
  nn::Lstm lstm_;
  nn::Linear stage_head_;  // h_t -> stage logit
  nn::Linear conv_;        // [K * H] -> conv channels (unfolded conv)
  nn::Linear out_;         // [H + channels] -> 1
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_STAGENET_H_
