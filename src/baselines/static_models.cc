#include "baselines/static_models.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace baselines {

ag::Variable TimeMeanInput(const data::Batch& batch) {
  return ag::Mean(ag::Constant(batch.x), /*axis=*/1);
}

LogisticRegression::LogisticRegression(int64_t num_features, uint64_t seed)
    : rng_(seed),
      num_features_(num_features),
      linear_(num_features, 1, /*use_bias=*/true, &rng_) {
  RegisterSubmodule("linear", &linear_);
}

ag::Variable LogisticRegression::EncodeTerminal(const data::Batch& batch,
                                                nn::ForwardContext*) const {
  return TimeMeanInput(batch);
}

ag::Variable LogisticRegression::Readout(const ag::Variable& rep,
                                         nn::ForwardContext*) const {
  return ag::Reshape(linear_.Forward(rep), {rep.value().shape(0)});
}

FactorizationMachine::FactorizationMachine(int64_t num_features,
                                           int64_t factor_dim, uint64_t seed)
    : rng_(seed), num_features_(num_features), factor_dim_(factor_dim) {
  w0_ = RegisterParameter("w0", Tensor::Zeros({1}));
  w_ = RegisterParameter("w", Tensor::Zeros({num_features, 1}));
  factors_ = RegisterParameter(
      "factors", Tensor::Normal({num_features, factor_dim}, 0.0f, 0.01f,
                                &rng_));
}

ag::Variable FactorizationMachine::EncodeTerminal(const data::Batch& batch,
                                                  nn::ForwardContext*) const {
  return TimeMeanInput(batch);
}

ag::Variable FactorizationMachine::Readout(const ag::Variable& rep,
                                           nn::ForwardContext*) const {
  const int64_t batch_size = rep.value().shape(0);
  const ag::Variable& x = rep;  // [B, C]
  // xv_i = v_i * x_i : [B, C, 1] * [C, k] -> [B, C, k].
  ag::Variable xv = ag::Mul(ag::Reshape(x, {batch_size, num_features_, 1}),
                            factors_);
  ag::Variable sum_vec = ag::Sum(xv, /*axis=*/1);            // [B, k]
  ag::Variable sum_sq = ag::Sum(ag::Square(sum_vec), 1);     // [B]
  ag::Variable sq_sum = ag::Sum(ag::Sum(ag::Square(xv), 2), 1);
  ag::Variable pairwise =
      ag::MulScalar(ag::Sub(sum_sq, sq_sum), 0.5f);          // [B]
  ag::Variable linear =
      ag::Add(ag::Reshape(ag::MatMul(x, w_), {batch_size}), w0_);
  return ag::Add(linear, pairwise);
}

AttentionalFactorizationMachine::AttentionalFactorizationMachine(
    int64_t num_features, int64_t factor_dim, int64_t attention_dim,
    uint64_t seed)
    : rng_(seed), num_features_(num_features), factor_dim_(factor_dim) {
  w0_ = RegisterParameter("w0", Tensor::Zeros({1}));
  w_ = RegisterParameter("w", Tensor::Zeros({num_features, 1}));
  factors_ = RegisterParameter(
      "factors", Tensor::Normal({num_features, factor_dim}, 0.0f, 0.01f,
                                &rng_));
  attn_w_ = RegisterParameter(
      "attn_w", nn::XavierUniform2d(factor_dim, attention_dim, &rng_));
  attn_b_ = RegisterParameter("attn_b", Tensor::Zeros({attention_dim}));
  attn_h_ = RegisterParameter(
      "attn_h", nn::XavierUniform2d(attention_dim, 1, &rng_));
  p_ = RegisterParameter("p", nn::XavierUniform2d(factor_dim, 1, &rng_));
  // Restrict attention to unordered pairs i < j.
  pair_mask_ = Tensor({num_features, num_features});
  for (int64_t i = 0; i < num_features; ++i) {
    for (int64_t j = 0; j <= i; ++j) pair_mask_.at({i, j}) = -1e9f;
  }
}

ag::Variable AttentionalFactorizationMachine::EncodeTerminal(
    const data::Batch& batch, nn::ForwardContext*) const {
  return TimeMeanInput(batch);
}

ag::Variable AttentionalFactorizationMachine::Readout(
    const ag::Variable& rep, nn::ForwardContext*) const {
  const int64_t batch_size = rep.value().shape(0);
  const int64_t c = num_features_;
  const int64_t k = factor_dim_;
  const ag::Variable& x = rep;  // [B, C]
  ag::Variable xv =
      ag::Mul(ag::Reshape(x, {batch_size, c, 1}), factors_);  // [B, C, k]
  // All pairwise element-wise products via broadcasting:
  // [B, C, 1, k] * [B, 1, C, k] -> [B, C, C, k].
  ag::Variable r = ag::Mul(ag::Reshape(xv, {batch_size, c, 1, k}),
                           ag::Reshape(xv, {batch_size, 1, c, k}));
  // Attention scores h^T relu(W r + b) per pair.
  ag::Variable flat = ag::Reshape(r, {batch_size * c * c, k});
  ag::Variable hidden =
      ag::Relu(ag::Add(ag::MatMul(flat, attn_w_), attn_b_));
  ag::Variable scores =
      ag::Reshape(ag::MatMul(hidden, attn_h_), {batch_size, c * c});
  scores = ag::Add(scores,
                   ag::Constant(pair_mask_.Reshape({c * c})));
  ag::Variable alpha = ag::Softmax(scores, /*axis=*/1);  // [B, C*C]
  // Attended interaction vector: [B, 1, C*C] x [B, C*C, k] -> [B, k].
  ag::Variable attended = ag::Reshape(
      ag::MatMul(ag::Reshape(alpha, {batch_size, 1, c * c}),
                 ag::Reshape(r, {batch_size, c * c, k})),
      {batch_size, k});
  ag::Variable pairwise =
      ag::Reshape(ag::MatMul(attended, p_), {batch_size});
  ag::Variable linear =
      ag::Add(ag::Reshape(ag::MatMul(x, w_), {batch_size}), w0_);
  return ag::Add(linear, pairwise);
}

}  // namespace baselines
}  // namespace elda
