// Non-temporal baselines (paper Section V-A): Logistic Regression, the
// Factorization Machine (Rendle, 2010) and the Attentional Factorization
// Machine (Xiao et al., 2017). All three consume the per-feature *mean over
// time* of the standardised series, exactly as the paper prescribes for its
// non-time-series baselines.

#ifndef ELDA_BASELINES_STATIC_MODELS_H_
#define ELDA_BASELINES_STATIC_MODELS_H_

#include <string>

#include "nn/linear.h"
#include "train/sequence_model.h"
#include "util/rng.h"

namespace elda {
namespace baselines {

// Collapses [B, T, C] to the time-mean [B, C].
ag::Variable TimeMeanInput(const data::Batch& batch);

// The non-temporal models share a terminal-only encoding: the time-mean of
// the input is the whole representation (encoding_dim == C), and everything
// model-specific lives in Readout. They have no per-step state, so
// has_step_encoding() is false and EncodeSteps CHECK-fails.

// y = sigmoid(w . mean_t(x) + b).
class LogisticRegression : public train::SequenceModel {
 public:
  LogisticRegression(int64_t num_features, uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return num_features_; }
  bool has_step_encoding() const override { return false; }
  std::string name() const override { return "LR"; }

 private:
  Rng rng_;
  int64_t num_features_;
  nn::Linear linear_;
};

// Second-order FM with the standard O(C k) pairwise reformulation:
//   y = w0 + sum_i w_i x_i + 0.5 (|sum_i v_i x_i|^2 - sum_i |v_i x_i|^2).
class FactorizationMachine : public train::SequenceModel {
 public:
  FactorizationMachine(int64_t num_features, int64_t factor_dim,
                       uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return num_features_; }
  bool has_step_encoding() const override { return false; }
  std::string name() const override { return "FM"; }

 protected:
  Rng rng_;
  int64_t num_features_;
  int64_t factor_dim_;
  ag::Variable w0_;       // [1]
  ag::Variable w_;        // [C, 1]
  ag::Variable factors_;  // [C, k]
};

// AFM replaces FM's uniform pairwise sum with an attention network over the
// element-wise interaction vectors (v_i x_i) ⊙ (v_j x_j).
class AttentionalFactorizationMachine : public train::SequenceModel {
 public:
  AttentionalFactorizationMachine(int64_t num_features, int64_t factor_dim,
                                  int64_t attention_dim, uint64_t seed);
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override { return num_features_; }
  bool has_step_encoding() const override { return false; }
  std::string name() const override { return "AFM"; }

 private:
  Rng rng_;
  int64_t num_features_;
  int64_t factor_dim_;
  ag::Variable w0_;
  ag::Variable w_;         // [C, 1]
  ag::Variable factors_;   // [C, k]
  ag::Variable attn_w_;    // [k, a]
  ag::Variable attn_b_;    // [a]
  ag::Variable attn_h_;    // [a, 1]
  ag::Variable p_;         // [k, 1] projection of the attended interaction
  Tensor pair_mask_;       // [C, C]: -1e9 on/below the diagonal (i < j pairs)
};

}  // namespace baselines
}  // namespace elda

#endif  // ELDA_BASELINES_STATIC_MODELS_H_
