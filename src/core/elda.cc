#include "core/elda.h"

#include <fstream>
#include <sstream>

#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

Elda::Elda(const EldaConfig& config) : config_(config) {
  net_ = std::make_unique<EldaNet>(config_.net);
}

train::TrainResult Elda::Fit(const data::EmrDataset& cohort,
                             data::Task task) {
  ELDA_CHECK_EQ(cohort.num_features(), config_.net.num_features);
  task_ = task;
  feature_names_ = cohort.feature_names();
  num_steps_ = cohort.num_steps();
  Rng split_rng(config_.split_seed);
  std::vector<float> labels;
  labels.reserve(cohort.size());
  for (const data::EmrSample& s : cohort.samples()) {
    labels.push_back(task == data::Task::kMortality ? s.mortality_label
                                                    : s.los_gt7_label);
  }
  split_ = data::StratifiedSplit(labels, config_.train_fraction,
                                 config_.val_fraction, &split_rng);
  standardizer_.Fit(cohort, split_.train);
  prepared_ = data::PrepareDataset(cohort, standardizer_);
  train::Trainer trainer(config_.trainer);
  train::TrainResult result =
      trainer.Train(net_.get(), prepared_, split_, task);
  fitted_ = true;
  return result;
}

std::vector<data::PreparedSample> Elda::PrepareRaw(
    const std::vector<data::EmrSample>& samples) const {
  ELDA_CHECK(fitted_) << "call Fit() before predicting";
  data::EmrDataset scratch(feature_names_, num_steps_);
  for (const data::EmrSample& s : samples) scratch.Add(s);
  return data::PrepareDataset(scratch, standardizer_);
}

std::vector<float> Elda::PredictRisk(
    const std::vector<data::EmrSample>& samples) {
  std::vector<data::PreparedSample> prepared = PrepareRaw(samples);
  std::vector<int64_t> indices(prepared.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  return train::Trainer::Predict(net_.get(), prepared, indices, task_).scores;
}

std::vector<bool> Elda::TriggerAlerts(
    const std::vector<data::EmrSample>& samples) {
  std::vector<float> risks = PredictRisk(samples);
  std::vector<bool> alerts(risks.size());
  for (size_t i = 0; i < risks.size(); ++i) {
    alerts[i] = risks[i] >= config_.alert_threshold;
  }
  return alerts;
}

bool Elda::Save(const std::string& path, std::string* error) const {
  if (!fitted_) {
    if (error != nullptr) *error = "cannot save an unfitted framework";
    return false;
  }
  if (!nn::SaveParameters(*net_, path, error)) return false;
  std::ofstream meta(path + ".meta", std::ios::trunc);
  if (!meta) {
    if (error != nullptr) *error = "cannot write " + path + ".meta";
    return false;
  }
  meta << "task " << (task_ == data::Task::kMortality ? "mortality" : "los")
       << "\n";
  meta << "num_steps " << num_steps_ << "\n";
  meta << "clean_negative " << (standardizer_.clean_negative() ? 1 : 0)
       << "\n";
  meta << "features " << feature_names_.size() << "\n";
  for (size_t c = 0; c < feature_names_.size(); ++c) {
    meta << feature_names_[c] << " " << standardizer_.mean(c) << " "
         << standardizer_.stddev(c) << "\n";
  }
  return static_cast<bool>(meta);
}

bool Elda::Load(const std::string& path, std::string* error) {
  if (!nn::LoadParameters(net_.get(), path, error)) return false;
  std::ifstream meta(path + ".meta");
  if (!meta) {
    if (error != nullptr) *error = "cannot read " + path + ".meta";
    return false;
  }
  std::string key, task_name;
  int64_t num_steps = 0;
  int clean_negative = 1;
  size_t num_features = 0;
  meta >> key >> task_name >> key >> num_steps >> key >> clean_negative >>
      key >> num_features;
  if (!meta || num_features == 0) {
    if (error != nullptr) *error = "corrupt metadata in " + path + ".meta";
    return false;
  }
  std::vector<std::string> names(num_features);
  std::vector<float> means(num_features), stds(num_features);
  for (size_t c = 0; c < num_features; ++c) {
    meta >> names[c] >> means[c] >> stds[c];
  }
  if (!meta) {
    if (error != nullptr) *error = "truncated metadata in " + path + ".meta";
    return false;
  }
  task_ = task_name == "mortality" ? data::Task::kMortality
                                   : data::Task::kLosGt7;
  num_steps_ = num_steps;
  feature_names_ = std::move(names);
  standardizer_.Restore(std::move(means), std::move(stds),
                        clean_negative != 0);
  fitted_ = true;
  return true;
}

Elda::Interpretation Elda::Interpret(const data::EmrSample& sample) {
  std::vector<data::PreparedSample> prepared = PrepareRaw({sample});
  data::Batch batch = data::MakeBatch(prepared, {0}, task_);
  // Interpretation is pure inference: graph-free forward, surfaces via the
  // capture sink owned by this call.
  ag::NoGradScope no_grad;
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  Interpretation out;
  Tensor logits = net_->Forward(batch, &ctx).value();
  out.risk = Sigmoid(logits)[0];
  const int64_t steps = sample.num_steps;
  const int64_t features = sample.num_features;
  if (config_.net.use_feature_module) {
    out.feature_attention =
        sink.Get("feature_attention").Reshape({steps, features, features});
  }
  if (config_.net.use_time_interactions) {
    out.time_attention = sink.Get("time_attention").Reshape({steps - 1});
  }
  return out;
}

}  // namespace core
}  // namespace elda
