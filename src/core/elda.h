// The ELDA framework (paper Section III): the clinician-facing API around
// ELDA-Net. It owns the preprocessing pipeline (cleaning, standardisation,
// imputation), trains the model with validation-based model selection, and
// exposes the three functionalities of Fig. 2:
//
//   * Predictive analytics — risk scores and threshold-based alerts for
//     newly admitted patients.
//   * Time-level interaction interpretation — attention over earlier hours
//     against the final hour (Fig. 8).
//   * Feature-level interaction interpretation — per-hour C x C attention
//     between medical features (Figs. 9-10).

#ifndef ELDA_CORE_ELDA_H_
#define ELDA_CORE_ELDA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/elda_net.h"
#include "data/emr.h"
#include "data/pipeline.h"
#include "train/trainer.h"

namespace elda {
namespace core {

struct EldaConfig {
  EldaNetConfig net;
  train::TrainerConfig trainer;
  // Risk threshold above which an alert is raised for a patient.
  float alert_threshold = 0.5f;
  // Split fractions (train / val; the remainder is the test set).
  double train_fraction = 0.8;
  double val_fraction = 0.1;
  uint64_t split_seed = 17;
};

class Elda {
 public:
  explicit Elda(const EldaConfig& config);

  // Trains ELDA-Net on a cohort for the given task. Fits the standardizer on
  // the training split only. Returns validation/test metrics and timing.
  train::TrainResult Fit(const data::EmrDataset& cohort, data::Task task);

  // Risk probabilities for new raw (unstandardised) admissions.
  std::vector<float> PredictRisk(const std::vector<data::EmrSample>& samples);

  // Alert decisions: true where predicted risk exceeds the alert threshold.
  std::vector<bool> TriggerAlerts(
      const std::vector<data::EmrSample>& samples);

  // Persists the fitted deployment (network weights + standardisation
  // statistics + task/feature metadata) to `path` and `path`.meta. Load()
  // restores onto a framework constructed with the same EldaConfig, after
  // which PredictRisk/Interpret work without re-training.
  bool Save(const std::string& path, std::string* error = nullptr) const;
  bool Load(const std::string& path, std::string* error = nullptr);

  // Dual-level interpretation for one raw admission.
  struct Interpretation {
    float risk = 0.0f;
    Tensor feature_attention;  // [T, C, C]; row i = weights when processing i
    Tensor time_attention;     // [T-1]
  };
  Interpretation Interpret(const data::EmrSample& sample);

  // -- Accessors used by the benchmark harness --------------------------------
  bool fitted() const { return fitted_; }
  EldaNet* net() { return net_.get(); }
  const data::Standardizer& standardizer() const { return standardizer_; }
  const data::SplitIndices& split() const { return split_; }
  const std::vector<data::PreparedSample>& prepared() const {
    return prepared_;
  }
  data::Task task() const { return task_; }

 private:
  std::vector<data::PreparedSample> PrepareRaw(
      const std::vector<data::EmrSample>& samples) const;

  EldaConfig config_;
  std::unique_ptr<EldaNet> net_;
  data::Standardizer standardizer_;
  data::SplitIndices split_;
  std::vector<data::PreparedSample> prepared_;
  std::vector<std::string> feature_names_;
  int64_t num_steps_ = 0;
  data::Task task_ = data::Task::kMortality;
  bool fitted_ = false;
};

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_ELDA_H_
