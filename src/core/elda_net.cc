#include "core/elda_net.h"

#include <cstring>
#include <limits>
#include <map>

#include "nn/recurrent_sweep.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {
namespace {

struct EldaNetStreamState : nn::StepState {
  explicit EldaNetStreamState(int64_t window_capacity)
      : h_prev(window_capacity), obs_x(window_capacity),
        obs_mask(window_capacity) {}

  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->TensorData(h);
    w->Window(h_prev);
    w->Window(obs_x);
    w->Window(obs_mask);
    w->Bytes(seen);
  }
  bool Load(nn::StateReader* r) override {
    const size_t seen_size = seen.size();
    return nn::StepState::Load(r) && r->TensorInto(&h) &&
           r->WindowInto(&h_prev) && r->WindowInto(&obs_x) &&
           r->WindowInto(&obs_mask) && r->Bytes(&seen) &&
           seen.size() == seen_size;
  }

  Tensor h;                  // [H] current GRU state (full history)
  nn::RollingWindow h_prev;  // earlier states, for time-attention scoring
  // Raw observation window + observed-so-far bitmask, kept only for V_m
  // variants (replay on a never->observed flip).
  nn::RollingWindow obs_x;
  nn::RollingWindow obs_mask;
  std::vector<uint8_t> seen;
};

}  // namespace

EldaNetConfig EldaNetConfig::Full() { return EldaNetConfig(); }

EldaNetConfig EldaNetConfig::VariantT() {
  EldaNetConfig config;
  config.use_feature_module = false;
  config.display_name = "ELDA-Net-T";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFBi() {
  EldaNetConfig config;
  config.use_time_interactions = false;
  config.display_name = "ELDA-Net-Fbi";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFBiStar() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kBiDirectionalStar;
  config.display_name = "ELDA-Net-Fbi*";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFFm() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kFmLinear;
  config.display_name = "ELDA-Net-Ffm";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFFmStar() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kFmLinearStar;
  config.display_name = "ELDA-Net-Ffm*";
  return config;
}

EldaNet::EldaNet(const EldaNetConfig& config)
    : config_(config), rng_(config.seed) {
  int64_t temporal_input = config_.num_features;
  if (config_.use_feature_module) {
    const bool bi_variant =
        config_.embedding == EmbeddingVariant::kBiDirectional ||
        config_.embedding == EmbeddingVariant::kBiDirectionalStar;
    embedding_ = std::make_unique<BiDirectionalEmbedding>(
        config_.num_features, config_.embed_dim, config_.embedding,
        config_.lower, config_.upper,
        /*use_missing_embedding=*/bi_variant, &rng_);
    feature_ = std::make_unique<FeatureInteraction>(
        config_.num_features, config_.embed_dim, config_.compression, &rng_);
    RegisterSubmodule("embedding", embedding_.get());
    RegisterSubmodule("feature_interaction", feature_.get());
    temporal_input = feature_->output_dim();
  }
  int64_t representation_dim;
  if (config_.use_time_interactions) {
    time_ = std::make_unique<TimeInteraction>(temporal_input,
                                              config_.hidden_dim, &rng_);
    RegisterSubmodule("time_interaction", time_.get());
    representation_dim = time_->output_dim();
  } else {
    plain_gru_ =
        std::make_unique<nn::Gru>(temporal_input, config_.hidden_dim, &rng_);
    RegisterSubmodule("gru", plain_gru_.get());
    representation_dim = config_.hidden_dim;
  }
  prediction_ = std::make_unique<nn::Linear>(representation_dim, 1,
                                             /*use_bias=*/true, &rng_);
  RegisterSubmodule("prediction", prediction_.get());
}

ag::Variable EldaNet::EncodeTerminal(const data::Batch& batch,
                                     nn::ForwardContext* ctx) const {
  ELDA_CHECK_EQ(batch.x.shape(2), config_.num_features);
  ag::Variable x = ag::Constant(batch.x);

  ag::Variable temporal_input = x;
  if (config_.use_feature_module) {
    ag::Variable e = embedding_->Forward(x, batch.mask);
    temporal_input = feature_->Forward(e, ctx);
  }

  ag::Variable representation;
  if (config_.use_time_interactions) {
    representation = time_->Forward(temporal_input, ctx);
  } else {
    // Ablations only need the final state; the sweep hands it out directly
    // instead of stacking all T states and slicing one back off.
    representation = plain_gru_->ForwardSteps(temporal_input).back();
  }
  return representation;
}

ag::Variable EldaNet::Readout(const ag::Variable& rep,
                              nn::ForwardContext*) const {
  return ag::Reshape(prediction_->Forward(rep), {rep.value().shape(0)});
}

int64_t EldaNet::encoding_dim() const {
  return config_.use_time_interactions ? time_->output_dim()
                                       : config_.hidden_dim;
}

std::unique_ptr<nn::StepState> EldaNet::MakeStepState(
    int64_t window_capacity) const {
  ELDA_CHECK_GE(window_capacity, 1);
  auto state = std::make_unique<EldaNetStreamState>(window_capacity);
  state->h = Tensor::Zeros({config_.hidden_dim});
  if (uses_missing_embedding()) {
    state->seen.assign(static_cast<size_t>(config_.num_features), 0);
  }
  return state;
}

ag::Variable EldaNet::StepForward(const train::StepBatch& obs,
                                  const std::vector<nn::StepState*>& states,
                                  nn::ForwardContext* ctx) const {
  const int64_t n = static_cast<int64_t>(states.size());
  const int64_t C = config_.num_features;
  const int64_t H = config_.hidden_dim;
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  ELDA_CHECK_EQ(obs.x.shape(1), C);
  std::vector<EldaNetStreamState*> ss(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    ss[b] = dynamic_cast<EldaNetStreamState*>(states[b]);
    ELDA_CHECK(ss[b] != nullptr);
  }
  const nn::GruCell& cell =
      config_.use_time_interactions ? time_->cell() : plain_gru_->cell();

  // Partition sessions. V_m variants replay their retained window when a
  // feature is observed for the first time after step 0 (earlier steps
  // embedded it with V_m and must be recomputed); everything else advances
  // incrementally. Each feature flips never->observed at most once, so a
  // stay replays at most C times.
  const bool vm = uses_missing_embedding();
  std::vector<int64_t> incremental, replay;
  for (int64_t b = 0; b < n; ++b) {
    bool flip = false;
    if (vm) {
      const float* mrow = obs.mask.data() + b * C;
      for (int64_t c = 0; c < C; ++c) {
        if (mrow[c] != 0.0f && !ss[b]->seen[c]) {
          if (ss[b]->steps_seen > 0) flip = true;
          ss[b]->seen[c] = 1;
        }
      }
      ss[b]->obs_x.Append(obs.x.data() + b * C, C);
      ss[b]->obs_mask.Append(mrow, C);
    }
    (flip ? replay : incremental).push_back(b);
  }

  if (!incremental.empty()) {
    const int64_t g = static_cast<int64_t>(incremental.size());
    // This step's temporal input: raw features for ELDA-Net-T, otherwise
    // embedding + feature interaction on the [g, 1, C] step slab — both
    // per-(session, step) computations.
    Tensor xs = Tensor::Empty({g, 1, C});
    for (int64_t i = 0; i < g; ++i) {
      std::memcpy(xs.data() + i * C, obs.x.data() + incremental[i] * C,
                  static_cast<size_t>(C) * sizeof(float));
    }
    ag::Variable temporal_input = ag::Constant(xs);
    if (config_.use_feature_module) {
      Tensor never;
      if (vm) {
        never = Tensor({g, 1, C, 1});
        for (int64_t i = 0; i < g; ++i) {
          const std::vector<uint8_t>& seen = ss[incremental[i]]->seen;
          for (int64_t c = 0; c < C; ++c) {
            never.data()[i * C + c] = seen[static_cast<size_t>(c)] ? 0.f : 1.f;
          }
        }
      }
      ag::Variable e = embedding_->ForwardWithNever(temporal_input, never);
      temporal_input = feature_->Forward(e, ctx);  // [g, 1, C*d]
    }
    const int64_t in_dim = temporal_input.value().shape(2);
    ag::Variable step_in =
        ag::Reshape(temporal_input, {g, in_dim});
    Tensor h_prev = Tensor::Empty({g, H});
    for (int64_t i = 0; i < g; ++i) {
      std::memcpy(h_prev.data() + i * H, ss[incremental[i]]->h.data(),
                  static_cast<size_t>(H) * sizeof(float));
    }
    ag::Variable xw = cell.PrecomputeInput(step_in);
    ag::Variable h = cell.Step(xw, ag::Constant(h_prev));
    for (int64_t i = 0; i < g; ++i) {
      EldaNetStreamState* s = ss[incremental[i]];
      if (s->steps_seen > 0) s->h_prev.Append(s->h.data(), H);
      std::memcpy(s->h.data(), h.value().data() + i * H,
                  static_cast<size_t>(H) * sizeof(float));
      ++s->steps_seen;
    }
  }

  for (int64_t b : replay) {
    // Full recompute of the retained window through the same modules the
    // batch path runs (embedding recomputes "never" from the window's own
    // mask, which now equals the session's seen bitmask).
    EldaNetStreamState* s = ss[b];
    const int64_t T = s->obs_x.size();
    Tensor xs = Tensor::Empty({1, T, C});
    Tensor ms = Tensor::Empty({1, T, C});
    s->obs_x.CopyInto(xs.data());
    s->obs_mask.CopyInto(ms.data());
    ag::Variable temporal_input = ag::Constant(xs);
    ag::Variable e = embedding_->Forward(temporal_input, ms);
    temporal_input = feature_->Forward(e, ctx);
    nn::SweepOptions opts;
    opts.label = "EldaNet/replay";
    nn::SweepResult sweep = nn::GruSweep(cell, temporal_input, opts);
    s->h_prev.Clear();
    for (int64_t t = 0; t + 1 < T; ++t) {
      s->h_prev.Append(sweep.steps[static_cast<size_t>(t)].value().data(), H);
    }
    std::memcpy(s->h.data(), sweep.last().value().data(),
                static_cast<size_t>(H) * sizeof(float));
    ++s->steps_seen;
  }

  // Scoring. Without the time module the prediction head reads the GRU
  // state directly; with it, sessions group by history length so each
  // group scores as one batched attention call.
  Tensor logits = Tensor::Full({n}, std::numeric_limits<float>::quiet_NaN());
  if (!config_.use_time_interactions) {
    Tensor rep = Tensor::Empty({n, H});
    for (int64_t b = 0; b < n; ++b) {
      std::memcpy(rep.data() + b * H, ss[b]->h.data(),
                  static_cast<size_t>(H) * sizeof(float));
    }
    ag::Variable out = prediction_->Forward(ag::Constant(rep));  // [n, 1]
    std::memcpy(logits.data(), out.value().data(),
                static_cast<size_t>(n) * sizeof(float));
  } else {
    std::map<int64_t, std::vector<int64_t>> by_hist;
    for (int64_t b = 0; b < n; ++b) {
      if (ss[b]->h_prev.size() >= 1) by_hist[ss[b]->h_prev.size()].push_back(b);
    }
    for (const auto& [p, group] : by_hist) {
      const int64_t g = static_cast<int64_t>(group.size());
      Tensor hp = Tensor::Empty({g, p, H});
      Tensor hl = Tensor::Empty({g, H});
      for (int64_t i = 0; i < g; ++i) {
        EldaNetStreamState* s = ss[group[i]];
        s->h_prev.CopyInto(hp.data() + i * p * H);
        std::memcpy(hl.data() + i * H, s->h.data(),
                    static_cast<size_t>(H) * sizeof(float));
      }
      ag::Variable rep = time_->ScoreFromStates(ag::Constant(hp),
                                                ag::Constant(hl), ctx);
      ag::Variable out = prediction_->Forward(rep);  // [g, 1]
      for (int64_t i = 0; i < g; ++i) {
        logits.data()[group[i]] = out.value().data()[i];
      }
    }
  }
  return ag::Constant(logits);
}

}  // namespace core
}  // namespace elda
