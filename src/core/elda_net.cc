#include "core/elda_net.h"

#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

EldaNetConfig EldaNetConfig::Full() { return EldaNetConfig(); }

EldaNetConfig EldaNetConfig::VariantT() {
  EldaNetConfig config;
  config.use_feature_module = false;
  config.display_name = "ELDA-Net-T";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFBi() {
  EldaNetConfig config;
  config.use_time_interactions = false;
  config.display_name = "ELDA-Net-Fbi";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFBiStar() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kBiDirectionalStar;
  config.display_name = "ELDA-Net-Fbi*";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFFm() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kFmLinear;
  config.display_name = "ELDA-Net-Ffm";
  return config;
}

EldaNetConfig EldaNetConfig::VariantFFmStar() {
  EldaNetConfig config = VariantFBi();
  config.embedding = EmbeddingVariant::kFmLinearStar;
  config.display_name = "ELDA-Net-Ffm*";
  return config;
}

EldaNet::EldaNet(const EldaNetConfig& config)
    : config_(config), rng_(config.seed) {
  int64_t temporal_input = config_.num_features;
  if (config_.use_feature_module) {
    const bool bi_variant =
        config_.embedding == EmbeddingVariant::kBiDirectional ||
        config_.embedding == EmbeddingVariant::kBiDirectionalStar;
    embedding_ = std::make_unique<BiDirectionalEmbedding>(
        config_.num_features, config_.embed_dim, config_.embedding,
        config_.lower, config_.upper,
        /*use_missing_embedding=*/bi_variant, &rng_);
    feature_ = std::make_unique<FeatureInteraction>(
        config_.num_features, config_.embed_dim, config_.compression, &rng_);
    RegisterSubmodule("embedding", embedding_.get());
    RegisterSubmodule("feature_interaction", feature_.get());
    temporal_input = feature_->output_dim();
  }
  int64_t representation_dim;
  if (config_.use_time_interactions) {
    time_ = std::make_unique<TimeInteraction>(temporal_input,
                                              config_.hidden_dim, &rng_);
    RegisterSubmodule("time_interaction", time_.get());
    representation_dim = time_->output_dim();
  } else {
    plain_gru_ =
        std::make_unique<nn::Gru>(temporal_input, config_.hidden_dim, &rng_);
    RegisterSubmodule("gru", plain_gru_.get());
    representation_dim = config_.hidden_dim;
  }
  prediction_ = std::make_unique<nn::Linear>(representation_dim, 1,
                                             /*use_bias=*/true, &rng_);
  RegisterSubmodule("prediction", prediction_.get());
}

ag::Variable EldaNet::Forward(const data::Batch& batch,
                              nn::ForwardContext* ctx) const {
  const int64_t batch_size = batch.x.shape(0);
  ELDA_CHECK_EQ(batch.x.shape(2), config_.num_features);
  ag::Variable x = ag::Constant(batch.x);

  ag::Variable temporal_input = x;
  if (config_.use_feature_module) {
    ag::Variable e = embedding_->Forward(x, batch.mask);
    temporal_input = feature_->Forward(e, ctx);
  }

  ag::Variable representation;
  if (config_.use_time_interactions) {
    representation = time_->Forward(temporal_input, ctx);
  } else {
    // Ablations only need the final state; the sweep hands it out directly
    // instead of stacking all T states and slicing one back off.
    representation = plain_gru_->ForwardSteps(temporal_input).back();
  }
  return ag::Reshape(prediction_->Forward(representation), {batch_size});
}

}  // namespace core
}  // namespace elda
