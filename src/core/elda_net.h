// ELDA-Net: the end-to-end model of the paper (Section IV), composed of the
// Bi-directional Embedding Module, the Feature-level Interaction Learning
// Module, the Time-level Interaction Learning Module and the Prediction
// Module. Config factories produce the ablation variants of Fig. 7.

#ifndef ELDA_CORE_ELDA_NET_H_
#define ELDA_CORE_ELDA_NET_H_

#include <memory>
#include <string>

#include "core/embedding.h"
#include "core/feature_interaction.h"
#include "core/time_interaction.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace core {

struct EldaNetConfig {
  int64_t num_features = 37;
  int64_t embed_dim = 24;    // e in the paper
  int64_t compression = 4;   // d, the compression factor
  int64_t hidden_dim = 64;   // l, GRU hidden size
  float lower = -3.0f;       // a, lower anchor of the embedding
  float upper = 3.0f;        // b, upper anchor
  EmbeddingVariant embedding = EmbeddingVariant::kBiDirectional;
  bool use_feature_module = true;     // off in ELDA-Net-T
  bool use_time_interactions = true;  // off in the ELDA-Net-F variants
  std::string display_name = "ELDA-Net";
  uint64_t seed = 1;

  // The full model and the ablation variants of Fig. 7 / Table III.
  static EldaNetConfig Full();
  static EldaNetConfig VariantT();        // time interactions only
  static EldaNetConfig VariantFBi();      // feature interactions, bi embed
  static EldaNetConfig VariantFBiStar();  // ... bi* embedding
  static EldaNetConfig VariantFFm();      // ... FM linear embedding
  static EldaNetConfig VariantFFmStar();  // ... FM* embedding
};

class EldaNet : public train::SequenceModel {
 public:
  explicit EldaNet(const EldaNetConfig& config);

  // With a capture sink in `ctx`, the interpretation surfaces land under
  // "feature_attention" ([B, T, C, C]; absent for ELDA-Net-T) and
  // "time_attention" ([B, T-1]; absent for the -F variants).
  //
  // The encoding is the representation the prediction head reads: the
  // time-interaction output (Full/-T) or the plain GRU's final state (the
  // -F variants). V_m (bi) embeddings are window-global — a feature's
  // first observation retroactively changes earlier embeddings — so
  // per-step encodings use the base prefix replay; a single causal sweep
  // would diverge from the streamed path.
  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext* ctx) const override;
  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext* ctx) const override;
  int64_t encoding_dim() const override;
  std::string name() const override { return config_.display_name; }

  const EldaNetConfig& config() const { return config_; }

  // Streaming: embedding + feature interaction are per-step, so each
  // observation embeds once and advances a resident GRU state; the time
  // module re-scores its attention over a bounded history of resident
  // states. The one non-causal piece is V_m (bi embeddings): a feature
  // observed for the first time after step 0 retroactively changes earlier
  // embeddings, so that session replays its retained window — bounded at
  // most C times per stay.
  std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const override;
  ag::Variable StepForward(const train::StepBatch& obs,
                           const std::vector<nn::StepState*>& states,
                           nn::ForwardContext* ctx) const override;
  bool has_incremental_step() const override { return true; }
  int64_t min_steps_to_score() const override {
    return config_.use_time_interactions ? 2 : 1;
  }

 private:
  // True when the embedding substitutes V_m for never-observed features —
  // the only window-global (non-causal) computation in the model.
  bool uses_missing_embedding() const {
    return embedding_ != nullptr && embedding_->use_missing_embedding();
  }
  EldaNetConfig config_;
  Rng rng_;
  std::unique_ptr<BiDirectionalEmbedding> embedding_;
  std::unique_ptr<FeatureInteraction> feature_;
  std::unique_ptr<TimeInteraction> time_;  // when use_time_interactions
  std::unique_ptr<nn::Gru> plain_gru_;     // otherwise
  std::unique_ptr<nn::Linear> prediction_;
};

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_ELDA_NET_H_
