#include "core/embedding.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

std::string EmbeddingVariantName(EmbeddingVariant variant) {
  switch (variant) {
    case EmbeddingVariant::kBiDirectional:
      return "bi";
    case EmbeddingVariant::kBiDirectionalStar:
      return "bi*";
    case EmbeddingVariant::kFmLinear:
      return "fm";
    case EmbeddingVariant::kFmLinearStar:
      return "fm*";
  }
  return "?";
}

BiDirectionalEmbedding::BiDirectionalEmbedding(int64_t num_features,
                                               int64_t embed_dim,
                                               EmbeddingVariant variant,
                                               float lower, float upper,
                                               bool use_missing_embedding,
                                               Rng* rng)
    : num_features_(num_features),
      embed_dim_(embed_dim),
      variant_(variant),
      lower_(lower),
      upper_(upper),
      use_missing_embedding_(use_missing_embedding) {
  ELDA_CHECK_LT(lower_, upper_);
  // Embedding tables use a unit-ish per-element scale rather than a
  // Xavier fan over [C, E]: the attention logits of the downstream
  // interaction module are *products* of two embeddings, so anchor vectors
  // that are too small collapse every softmax toward uniform and starve the
  // attention pathway of gradient.
  const float kEmbedInitRange = 0.7f;
  auto embed_init = [&] {
    return Tensor::Uniform({num_features, embed_dim}, -kEmbedInitRange,
                           kEmbedInitRange, rng);
  };
  const bool bi = variant_ == EmbeddingVariant::kBiDirectional ||
                  variant_ == EmbeddingVariant::kBiDirectionalStar;
  if (bi) {
    // Anti-symmetric anchor initialisation: V_b starts close to -V_a, so the
    // embedding's value-dependent component ((b-a)/2-scaled x' along
    // V_a - V_b) dominates its constant component ((V_a + V_b)/2) from the
    // first step. Downstream attention logits are inner products of
    // embeddings, so this makes the attention *value-sensitive* — abnormal
    // measurements reshape the softmax — which is the trained behaviour the
    // paper's interpretability study reports. A fresh noise term keeps the
    // constant component non-zero, preserving the module's defining property
    // that a standardised zero still maps to an informative vector.
    Tensor lower = embed_init();
    Tensor upper = embed_init();
    for (int64_t i = 0; i < upper.size(); ++i) {
      upper[i] = -0.55f * lower[i] + 0.45f * upper[i];
    }
    v_lower_ = RegisterParameter("v_lower", lower);
    v_upper_ = RegisterParameter("v_upper", upper);
  } else {
    v_linear_ = RegisterParameter("v_linear", embed_init());
  }
  if (use_missing_embedding_) {
    v_missing_ = RegisterParameter("v_missing", embed_init());
  }
}

ag::Variable BiDirectionalEmbedding::Forward(const ag::Variable& x,
                                             const Tensor& mask) const {
  const Tensor& xv = x.value();
  ELDA_CHECK_EQ(xv.dim(), 3);
  const int64_t batch = xv.shape(0);
  const int64_t steps = xv.shape(1);
  Tensor never;
  // Never-observed features use the learned V_m instead (paper's third
  // category of missing data). "Never" is a whole-window property of the
  // mask, computed here and applied in ForwardWithNever.
  if (use_missing_embedding_) {
    never = Tensor({batch, 1, num_features_, 1});
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t c = 0; c < num_features_; ++c) {
        bool seen = false;
        for (int64_t t = 0; t < steps && !seen; ++t) {
          seen = mask.at({b, t, c}) != 0.0f;
        }
        never.at({b, 0, c, 0}) = seen ? 0.0f : 1.0f;
      }
    }
  }
  return ForwardWithNever(x, never);
}

ag::Variable BiDirectionalEmbedding::ForwardWithNever(
    const ag::Variable& x, const Tensor& never) const {
  const Tensor& xv = x.value();
  ELDA_CHECK_EQ(xv.dim(), 3);
  ELDA_CHECK_EQ(xv.shape(2), num_features_);
  const int64_t batch = xv.shape(0);
  const int64_t steps = xv.shape(1);

  // [B, T, C] -> [B, T, C, 1] for broadcasting against [C, E] tables.
  ag::Variable x4 = ag::Reshape(x, {batch, steps, num_features_, 1});

  ag::Variable e;
  const bool bi = variant_ == EmbeddingVariant::kBiDirectional ||
                  variant_ == EmbeddingVariant::kBiDirectionalStar;
  if (bi) {
    const float inv_range = 1.0f / (upper_ - lower_);
    // Interpolation weights (x' - a)/(b - a) and (b - x')/(b - a); values
    // outside [a, b] extrapolate linearly, exactly as Eq. (2) prescribes.
    ag::Variable wa = ag::MulScalar(ag::AddScalar(x4, -lower_), inv_range);
    ag::Variable wb = ag::MulScalar(
        ag::AddScalar(ag::MulScalar(x4, -1.0f), upper_), inv_range);
    e = ag::Add(ag::Mul(wa, v_lower_), ag::Mul(wb, v_upper_));
  } else {
    e = ag::Mul(x4, v_linear_);
  }

  // Star variants: a standardised zero gets the all-ones vector instead
  // (value-dependent routing; the selector itself is not differentiated).
  if (variant_ == EmbeddingVariant::kBiDirectionalStar ||
      variant_ == EmbeddingVariant::kFmLinearStar) {
    Tensor zero_sel =
        EqualScalar(xv, 0.0f, 1e-6f).Reshape({batch, steps, num_features_, 1});
    ag::Variable keep = ag::Constant(
        Sub(Tensor::Ones(zero_sel.shape()), zero_sel));
    e = ag::Add(ag::Mul(e, keep), ag::Constant(zero_sel));
  }

  if (use_missing_embedding_) {
    ELDA_CHECK(never.defined());
    ag::Variable never_v = ag::Constant(never);
    ag::Variable keep_v = ag::Constant(
        Sub(Tensor::Ones(never.shape()), never));
    e = ag::Add(ag::Mul(e, keep_v), ag::Mul(never_v, v_missing_));
  }
  return e;
}

}  // namespace core
}  // namespace elda
