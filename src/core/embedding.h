// Bi-directional Embedding Module (paper Section IV-B, Eq. 2) and the
// FM-style embedding variants used in the ablation study.
//
// For a standardised feature value x' in [a, b] (anchors a=-3, b=3 in the
// paper), the bi-directional embedding interpolates between two learned
// per-feature anchor vectors:
//
//   e_i = ( V_a[i] * (x'_i - a) + V_b[i] * (b - x'_i) ) / (b - a)
//
// Unlike the FM linear embedding e_i = V[i] * x'_i, this keeps the embedding
// scale independent of |x'| — a standardised zero (a normal lab value) still
// maps to an informative vector, and opposite values do not collapse to
// mirrored vectors.
//
// Features that are never observed during a patient's stay (the paper's
// third category of missingness) are replaced by a learned missing-feature
// vector V_m.
//
// Ablation variants (paper Fig. 7):
//   kBiDirectional     ELDA-Net / ELDA-Net-F_bi embedding.
//   kBiDirectionalStar e = all-ones when x' == 0 (breaks continuity; -F_bi*).
//   kFmLinear          e = V[i] * x'_i                    (-F_fm).
//   kFmLinearStar      as kFmLinear but all-ones at x'==0 (-F_fm*).

#ifndef ELDA_CORE_EMBEDDING_H_
#define ELDA_CORE_EMBEDDING_H_

#include <string>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace core {

enum class EmbeddingVariant {
  kBiDirectional,
  kBiDirectionalStar,
  kFmLinear,
  kFmLinearStar,
};

std::string EmbeddingVariantName(EmbeddingVariant variant);

class BiDirectionalEmbedding : public nn::Module {
 public:
  // `lower`/`upper` are the anchors a and b. `use_missing_embedding`
  // enables V_m for never-observed features (on for the bi-directional
  // variants, off for the pure-FM ablation, matching the paper's modules).
  BiDirectionalEmbedding(int64_t num_features, int64_t embed_dim,
                         EmbeddingVariant variant, float lower, float upper,
                         bool use_missing_embedding, Rng* rng);

  // x: [B, T, C] standardised values; mask: [B, T, C] observation mask.
  // Returns embeddings [B, T, C, E].
  ag::Variable Forward(const ag::Variable& x, const Tensor& mask) const;

  // Like Forward, but with the never-observed indicator supplied by the
  // caller: `never` is [B, 1, C, 1], 1 where the feature has not been
  // observed anywhere in the window (may be undefined when the module does
  // not use V_m). The streaming path maintains this indicator per session
  // instead of rescanning a window's mask; Forward computes it from `mask`
  // and delegates here, so both paths run the same ops (bitwise).
  ag::Variable ForwardWithNever(const ag::Variable& x,
                                const Tensor& never) const;

  bool use_missing_embedding() const { return use_missing_embedding_; }

  int64_t embed_dim() const { return embed_dim_; }
  int64_t num_features() const { return num_features_; }
  EmbeddingVariant variant() const { return variant_; }

 private:
  int64_t num_features_;
  int64_t embed_dim_;
  EmbeddingVariant variant_;
  float lower_;
  float upper_;
  bool use_missing_embedding_;
  ag::Variable v_lower_;    // [C, E] anchor at x' = a (bi variants)
  ag::Variable v_upper_;    // [C, E] anchor at x' = b (bi variants)
  ag::Variable v_linear_;   // [C, E] FM embedding (fm variants)
  ag::Variable v_missing_;  // [C, E] never-observed-feature embedding
};

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_EMBEDDING_H_
