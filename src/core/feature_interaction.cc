#include "core/feature_interaction.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

FeatureInteraction::FeatureInteraction(int64_t num_features,
                                       int64_t embed_dim,
                                       int64_t compression, Rng* rng)
    : num_features_(num_features),
      embed_dim_(embed_dim),
      compression_(compression) {
  // A wider-than-Xavier init keeps the attention logits sensitive to the
  // embedding magnitudes from the first epoch: abnormal values (large |e|)
  // then visibly reshape the softmax even before W is trained, which is the
  // behaviour the paper's interpretability study exhibits.
  w_alpha_ = RegisterParameter(
      "w_alpha",
      Tensor::Uniform({num_features, embed_dim}, -0.8f, 0.8f, rng));
  b_alpha_ = RegisterParameter("b_alpha", Tensor::Zeros({num_features}));
  p_ = RegisterParameter(
      "p", nn::XavierUniform(2 * embed_dim, compression,
                             {2 * embed_dim, compression}, rng));
  diag_mask_ = Tensor({num_features, num_features});
  for (int64_t i = 0; i < num_features; ++i) {
    diag_mask_.at({i, i}) = -1e9f;
  }
}

ag::Variable FeatureInteraction::Forward(const ag::Variable& e,
                                         const nn::ForwardContext* ctx) const {
  const Tensor& ev = e.value();
  ELDA_CHECK_EQ(ev.dim(), 4);
  const int64_t batch = ev.shape(0);
  const int64_t steps = ev.shape(1);
  ELDA_CHECK_EQ(ev.shape(2), num_features_);
  ELDA_CHECK_EQ(ev.shape(3), embed_dim_);

  // Collapse (batch, time) so the pairwise work is one batched matmul.
  ag::Variable e3 =
      ag::Reshape(e, {batch * steps, num_features_, embed_dim_});

  // u_i = W_i ⊙ e_i, so that u_i . e_j = W_i . (e_i ⊙ e_j) = alpha'_ij - b_i.
  ag::Variable u = ag::Mul(e3, w_alpha_);  // [BT, C, E]
  ag::Variable scores =
      ag::MatMul(u, ag::TransposeLast2(e3));  // [BT, C, C], row i = queries
  // Per-row bias b_i and diagonal exclusion (j != i in Eq. 5).
  scores = ag::Add(scores, ag::Reshape(b_alpha_, {num_features_, 1}));
  scores = ag::Add(scores, ag::Constant(diag_mask_));
  ag::Variable alpha = ag::Softmax(scores, /*axis=*/-1);  // [BT, C, C]
  if (ctx != nullptr) {
    ctx->Capture("feature_attention", alpha.value().Reshape(
                     {batch, steps, num_features_, num_features_}));
  }

  // c_i = e_i ⊙ sum_j alpha_ij e_j.
  ag::Variable weighted = ag::MatMul(alpha, e3);       // [BT, C, E]
  ag::Variable context = ag::Mul(e3, weighted);        // [BT, C, E]

  // f_i = p^T relu([e_i ; c_i])  (Eq. 6), shared p across features.
  ag::Variable combined = ag::Concat({e3, context}, /*axis=*/-1);
  ag::Variable f = ag::MatMul(ag::Relu(combined), p_);  // [BT, C, d]
  return ag::Reshape(f, {batch, steps, num_features_ * compression_});
}

}  // namespace core
}  // namespace elda
