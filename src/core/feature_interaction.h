// Feature-level Interaction Learning Module (paper Section IV-B,
// Eqs. 3-6).
//
// For every time step, the module models the explicit pairwise interaction
// between features i and j as r_ij = e_i ⊙ e_j, scores each interaction with
// an attention network (per-feature parameters W_i, b_i), aggregates the
// interactions of feature i over all j != i into a context c_i, and
// compresses [e_i ; c_i] into a d-dimensional representation f_i.
//
// Implementation note (DESIGN.md "Factored feature-interaction
// computation"): materialising r for all pairs would need a
// [B,T,C,C,E] tensor (~400 MB at paper hyper-parameters). We use the exact
// algebraic refactoring
//     alpha'_ij = W_i . (e_i ⊙ e_j) + b_i = (W_i ⊙ e_i) . e_j
//     c_i       = sum_j alpha_ij (e_i ⊙ e_j) = e_i ⊙ sum_j alpha_ij e_j
// so two batched matmuls and a diagonal-masked softmax produce identical
// results with only a [B,T,C,C] score tensor. Tests verify the equivalence
// against the naive pairwise reference.

#ifndef ELDA_CORE_FEATURE_INTERACTION_H_
#define ELDA_CORE_FEATURE_INTERACTION_H_

#include "autograd/ops.h"
#include "nn/forward_context.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace core {

class FeatureInteraction : public nn::Module {
 public:
  // `compression` is the paper's compression factor d (4 in experiments).
  FeatureInteraction(int64_t num_features, int64_t embed_dim,
                     int64_t compression, Rng* rng);

  // e: [B, T, C, E] feature embeddings.
  // Returns the per-step patient representation x~ = [f_1; ...; f_C] of
  // shape [B, T, C*d].
  //
  // When `ctx` carries a capture sink, the attention weights alpha are
  // stored under "feature_attention" as [B, T, C, C]; row i holds the
  // weights used when processing feature i (the diagonal is masked to
  // zero). This is the feature-level interpretation surface of Figs. 9-10.
  // Stateless per call, so concurrent Forwards need no locking.
  ag::Variable Forward(const ag::Variable& e,
                       const nn::ForwardContext* ctx = nullptr) const;

  int64_t output_dim() const { return num_features_ * compression_; }

 private:
  int64_t num_features_;
  int64_t embed_dim_;
  int64_t compression_;
  ag::Variable w_alpha_;  // [C, E]  per-feature attention weight W_i
  ag::Variable b_alpha_;  // [C]     per-feature attention bias b_i
  ag::Variable p_;        // [2E, d] shared compression map (Eq. 6)
  Tensor diag_mask_;      // [C, C] constant: -1e9 on the diagonal
};

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_FEATURE_INTERACTION_H_
