#include "core/interpret.h"

#include <algorithm>
#include <cmath>

namespace elda {
namespace core {

GroupTimeAttention CollectGroupTimeAttention(
    EldaNet* net, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    int64_t batch_size) {
  ELDA_CHECK(net != nullptr);
  ELDA_CHECK(!indices.empty());
  // Pure inference: no tape, attention via the capture sink.
  ag::NoGradScope no_grad;
  GroupTimeAttention out;
  bool sized = false;
  for (size_t start = 0; start < indices.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), start + static_cast<size_t>(batch_size));
    std::vector<int64_t> chunk(indices.begin() + start,
                               indices.begin() + end);
    data::Batch batch = data::MakeBatch(prepared, chunk, task);
    nn::CaptureSink sink;
    nn::ForwardContext ctx;
    ctx.capture = &sink;
    net->Forward(batch, &ctx);
    const Tensor beta = sink.Get("time_attention");  // [B, T-1]
    const int64_t horizon = beta.shape(1);
    if (!sized) {
      out.positive_mean.assign(horizon, 0.0);
      out.negative_mean.assign(horizon, 0.0);
      sized = true;
    }
    for (int64_t b = 0; b < static_cast<int64_t>(chunk.size()); ++b) {
      const bool positive = batch.y[b] == 1.0f;
      double volatility = 0.0;
      for (int64_t t = 0; t < horizon; ++t) {
        const double a = beta.at({b, t});
        (positive ? out.positive_mean : out.negative_mean)[t] += a;
        if (t > 0) volatility += std::fabs(a - beta.at({b, t - 1}));
      }
      if (positive) {
        out.positive_volatility += volatility;
        ++out.positive_count;
      } else {
        out.negative_volatility += volatility;
        ++out.negative_count;
      }
    }
  }
  for (double& v : out.positive_mean) {
    v /= std::max<int64_t>(out.positive_count, 1);
  }
  for (double& v : out.negative_mean) {
    v /= std::max<int64_t>(out.negative_count, 1);
  }
  out.positive_volatility /= std::max<int64_t>(out.positive_count, 1);
  out.negative_volatility /= std::max<int64_t>(out.negative_count, 1);
  return out;
}

double LateAttentionMass(const std::vector<double>& curve,
                         int64_t late_hours) {
  ELDA_CHECK(!curve.empty());
  double late = 0.0, total = 0.0;
  for (size_t t = 0; t < curve.size(); ++t) {
    total += curve[t];
    if (static_cast<int64_t>(curve.size() - t) <= late_hours) {
      late += curve[t];
    }
  }
  return late / std::max(total, 1e-12);
}

std::vector<InteractionScore> TopInteractions(const Tensor& attention,
                                              int64_t hour, int64_t k) {
  ELDA_CHECK_EQ(attention.dim(), 3);
  const int64_t features = attention.shape(1);
  std::vector<InteractionScore> scores;
  scores.reserve(features * (features - 1));
  for (int64_t i = 0; i < features; ++i) {
    for (int64_t j = 0; j < features; ++j) {
      if (i == j) continue;
      scores.push_back({i, j, attention.at({hour, i, j})});
    }
  }
  std::sort(scores.begin(), scores.end(),
            [](const InteractionScore& a, const InteractionScore& b) {
              return a.weight > b.weight;
            });
  if (static_cast<int64_t>(scores.size()) > k) scores.resize(k);
  return scores;
}

std::vector<float> AttentionTrace(const Tensor& attention, int64_t source,
                                  int64_t target) {
  ELDA_CHECK_EQ(attention.dim(), 3);
  const int64_t steps = attention.shape(0);
  std::vector<float> trace(steps);
  for (int64_t t = 0; t < steps; ++t) {
    trace[t] = attention.at({t, source, target});
  }
  return trace;
}

double TraceWindowMean(const std::vector<float>& trace, int64_t from,
                       int64_t to) {
  ELDA_CHECK(from >= 0 && to > from &&
             to <= static_cast<int64_t>(trace.size()));
  double sum = 0.0;
  for (int64_t t = from; t < to; ++t) sum += trace[t];
  return sum / static_cast<double>(to - from);
}

double AttentionEntropy(const Tensor& attention, int64_t hour,
                        int64_t source) {
  ELDA_CHECK_EQ(attention.dim(), 3);
  const int64_t features = attention.shape(1);
  double entropy = 0.0;
  for (int64_t j = 0; j < features; ++j) {
    if (j == source) continue;
    const double p = attention.at({hour, source, j});
    if (p > 1e-12) entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace core
}  // namespace elda
