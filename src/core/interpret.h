// Cohort- and patient-level analyses over ELDA's attention surfaces.
//
// These are the reusable analytics behind the paper's interpretability
// study (Section V-D): aggregating time-level attention over patient groups
// (Fig. 8), ranking feature interactions (Fig. 9), and tracing one
// feature's attention across the stay (Fig. 10). The benchmark binaries and
// the examples are thin wrappers over this module.

#ifndef ELDA_CORE_INTERPRET_H_
#define ELDA_CORE_INTERPRET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/elda_net.h"
#include "data/pipeline.h"
#include "train/experiment.h"

namespace elda {
namespace core {

// -- Time level (Fig. 8) -----------------------------------------------------

// Mean attention-per-hour curves for two outcome groups, plus per-patient
// curve volatility (mean |a_t - a_{t-1}|), computed over an index set.
struct GroupTimeAttention {
  std::vector<double> positive_mean;  // label == 1 (e.g. non-survivors)
  std::vector<double> negative_mean;  // label == 0
  double positive_volatility = 0.0;
  double negative_volatility = 0.0;
  int64_t positive_count = 0;
  int64_t negative_count = 0;
};

// Runs `net` over `indices` (batched) and aggregates the time-level
// attention by label. `net` must have a time-interaction module.
GroupTimeAttention CollectGroupTimeAttention(
    EldaNet* net, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    int64_t batch_size = 128);

// Fraction of a curve's attention mass in its final `late_hours` entries.
double LateAttentionMass(const std::vector<double>& curve,
                         int64_t late_hours);

// -- Feature level (Figs. 9-10) ----------------------------------------------

struct InteractionScore {
  int64_t source = 0;  // the feature being processed (attention row)
  int64_t target = 0;  // the feature attended to (attention column)
  float weight = 0.0f;
};

// The `k` strongest off-diagonal interactions at one hour of a per-patient
// attention tensor [T, C, C], sorted descending by weight.
std::vector<InteractionScore> TopInteractions(const Tensor& attention,
                                              int64_t hour, int64_t k);

// The attention `source` pays to `target` at every hour: a length-T trace
// (the curves of Fig. 10).
std::vector<float> AttentionTrace(const Tensor& attention, int64_t source,
                                  int64_t target);

// Mean of a trace over [from, to).
double TraceWindowMean(const std::vector<float>& trace, int64_t from,
                       int64_t to);

// Entropy (nats) of row `source` at `hour`, excluding the diagonal. Uniform
// attention over C-1 targets gives log(C-1); sharp attention approaches 0.
double AttentionEntropy(const Tensor& attention, int64_t hour,
                        int64_t source);

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_INTERPRET_H_
