#include "core/multitask.h"

#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

MultiTaskEldaNet::MultiTaskEldaNet(const EldaNetConfig& config)
    : config_(config), rng_(config.seed) {
  ELDA_CHECK(config_.use_feature_module && config_.use_time_interactions)
      << "the multi-task trunk uses the full ELDA-Net";
  const bool bi_variant =
      config_.embedding == EmbeddingVariant::kBiDirectional ||
      config_.embedding == EmbeddingVariant::kBiDirectionalStar;
  embedding_ = std::make_unique<BiDirectionalEmbedding>(
      config_.num_features, config_.embed_dim, config_.embedding,
      config_.lower, config_.upper, bi_variant, &rng_);
  feature_ = std::make_unique<FeatureInteraction>(
      config_.num_features, config_.embed_dim, config_.compression, &rng_);
  time_ = std::make_unique<TimeInteraction>(feature_->output_dim(),
                                            config_.hidden_dim, &rng_);
  mortality_head_ =
      std::make_unique<nn::Linear>(time_->output_dim(), 1, true, &rng_);
  los_head_ =
      std::make_unique<nn::Linear>(time_->output_dim(), 1, true, &rng_);
  RegisterSubmodule("embedding", embedding_.get());
  RegisterSubmodule("feature_interaction", feature_.get());
  RegisterSubmodule("time_interaction", time_.get());
  RegisterSubmodule("mortality_head", mortality_head_.get());
  RegisterSubmodule("los_head", los_head_.get());
}

MultiTaskEldaNet::Logits MultiTaskEldaNet::Forward(
    const data::Batch& batch, nn::ForwardContext* ctx) const {
  const int64_t batch_size = batch.x.shape(0);
  ag::Variable x = ag::Constant(batch.x);
  ag::Variable e = embedding_->Forward(x, batch.mask);
  ag::Variable trunk = time_->Forward(feature_->Forward(e, ctx), ctx);
  Logits logits;
  logits.mortality =
      ag::Reshape(mortality_head_->Forward(trunk), {batch_size});
  logits.los_gt7 = ag::Reshape(los_head_->Forward(trunk), {batch_size});
  return logits;
}

ag::Variable MultiTaskEldaNet::JointLoss(const Logits& logits,
                                         const Tensor& mortality_labels,
                                         const Tensor& los_labels) {
  ag::Variable loss_mortality =
      ag::BceWithLogits(logits.mortality, mortality_labels);
  ag::Variable loss_los = ag::BceWithLogits(logits.los_gt7, los_labels);
  return ag::MulScalar(ag::Add(loss_mortality, loss_los), 0.5f);
}

namespace {

Tensor LosLabels(const std::vector<data::PreparedSample>& prepared,
                 const std::vector<int64_t>& indices) {
  Tensor y({static_cast<int64_t>(indices.size())});
  for (size_t i = 0; i < indices.size(); ++i) {
    y[i] = prepared[indices[i]].los_gt7_label;
  }
  return y;
}

}  // namespace

MultiTaskResult TrainMultiTask(
    MultiTaskEldaNet* net,
    const std::vector<data::PreparedSample>& prepared,
    const data::SplitIndices& split, int64_t max_epochs, int64_t batch_size,
    float learning_rate, uint64_t seed) {
  ELDA_CHECK(net != nullptr);
  MultiTaskResult result;
  result.num_parameters = net->NumParameters();
  std::vector<ag::Variable> params = net->Parameters();
  optim::Adam adam(params, learning_rate);
  Rng rng(seed);
  // Batches are drawn with mortality labels; LOS labels are looked up from
  // the prepared samples via the batch's index list.
  data::Batcher batcher(&prepared, split.train, batch_size,
                        data::Task::kMortality, &rng);
  nn::ForwardContext train_ctx;
  train_ctx.training = true;
  train_ctx.rng = &rng;
  for (int64_t epoch = 0; epoch < max_epochs; ++epoch) {
    batcher.StartEpoch();
    data::Batch batch;
    while (batcher.Next(&batch)) {
      adam.ZeroGrad();
      MultiTaskEldaNet::Logits logits = net->Forward(batch, &train_ctx);
      Tensor los = LosLabels(prepared, batch.sample_indices);
      net->JointLoss(logits, batch.y, los).Backward();
      optim::ClipGradNorm(params, 5.0f);
      adam.Step();
    }
  }
  // Test evaluation for both heads: graph-free forward passes.
  ag::NoGradScope no_grad;
  std::vector<float> mortality_scores, los_scores, mortality_labels,
      los_labels;
  for (size_t start = 0; start < split.test.size(); start += 256) {
    const size_t end = std::min(split.test.size(), start + 256);
    std::vector<int64_t> chunk(split.test.begin() + start,
                               split.test.begin() + end);
    data::Batch batch =
        data::MakeBatch(prepared, chunk, data::Task::kMortality);
    MultiTaskEldaNet::Logits logits = net->Forward(batch);
    Tensor pm = Sigmoid(logits.mortality.value());
    Tensor pl = Sigmoid(logits.los_gt7.value());
    for (int64_t i = 0; i < pm.size(); ++i) {
      mortality_scores.push_back(pm[i]);
      los_scores.push_back(pl[i]);
      mortality_labels.push_back(batch.y[i]);
      los_labels.push_back(prepared[chunk[i]].los_gt7_label);
    }
  }
  result.mortality_auc_pr = metrics::AucPr(mortality_scores, mortality_labels);
  result.mortality_auc_roc =
      metrics::AucRoc(mortality_scores, mortality_labels);
  result.los_auc_pr = metrics::AucPr(los_scores, los_labels);
  result.los_auc_roc = metrics::AucRoc(los_scores, los_labels);
  return result;
}

}  // namespace core
}  // namespace elda
