#include "core/multitask.h"

namespace elda {
namespace core {

MultiTaskElda MakeMultiTaskElda(const EldaNetConfig& config) {
  ELDA_CHECK(config.use_feature_module && config.use_time_interactions)
      << "the multi-task trunk uses the full ELDA-Net";
  MultiTaskElda elda;
  elda.trunk = std::make_unique<EldaNet>(config);
  elda.heads = std::make_unique<train::MultiHead>();
  elda.heads->Add(std::make_unique<train::BinaryTerminalHead>(), 0.5f);
  elda.heads->Add(std::make_unique<train::LosHead>(elda.trunk->encoding_dim(),
                                                   config.seed + 1),
                  0.5f);
  return elda;
}

}  // namespace core
}  // namespace elda
