// Extension beyond the paper: multi-task ELDA.
//
// The paper trains one ELDA-Net per application (in-hospital mortality,
// LOS > 7d) on the same 48-hour input. Since both tasks share the dual
// interaction structure, a single trunk (embedding + feature-level +
// time-level modules) with per-task heads amortises the expensive
// interaction computation and regularises each task with the other.
//
// This used to be a bespoke MultiTaskEldaNet class with its own two linear
// heads, a JointLoss that took the LOS labels as a side argument, and a
// standalone TrainMultiTask harness. All three folded into the general
// encoder/head framework (train/task_head.h): the trunk is a plain EldaNet,
// mortality rides through the trunk's own readout (BinaryTerminalHead), LOS
// gets a head-owned linear layer (LosHead), labels ride in the multi-task
// data::Batch slabs, and training goes through the unified
// train::Trainer::TrainMultiTask loop — checkpoint/resume, health policies
// and masked metrics included.

#ifndef ELDA_CORE_MULTITASK_H_
#define ELDA_CORE_MULTITASK_H_

#include <memory>

#include "core/elda_net.h"
#include "train/task_head.h"

namespace elda {
namespace core {

// One full ELDA-Net trunk plus its task heads. Train and evaluate with
// train::Trainer::TrainMultiTask(elda.trunk.get(), elda.heads.get(), ...).
struct MultiTaskElda {
  std::unique_ptr<EldaNet> trunk;
  std::unique_ptr<train::MultiHead> heads;
};

// Assembles the joint mortality + LOS deployment: BinaryTerminalHead
// (mortality via the trunk's readout) and LosHead, each at weight 0.5, so
// the joint loss is the mean of the two task BCEs. Requires the full
// ELDA-Net trunk (both interaction modules). The LOS head's parameters are
// initialised from config.seed + 1, leaving the trunk's own init stream
// untouched.
MultiTaskElda MakeMultiTaskElda(const EldaNetConfig& config);

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_MULTITASK_H_
