// Extension beyond the paper: multi-task ELDA.
//
// The paper trains one ELDA-Net per application (in-hospital mortality,
// LOS > 7d) on the same 48-hour input. Since both tasks share the dual
// interaction structure, a single trunk (embedding + feature-level +
// time-level modules) with two prediction heads amortises the expensive
// interaction computation and regularises each task with the other — the
// natural "future work" step for deploying ELDA on multiple endpoints.

#ifndef ELDA_CORE_MULTITASK_H_
#define ELDA_CORE_MULTITASK_H_

#include <memory>
#include <string>

#include "core/elda_net.h"
#include "nn/linear.h"
#include "optim/optimizer.h"

namespace elda {
namespace core {

class MultiTaskEldaNet : public nn::Module {
 public:
  explicit MultiTaskEldaNet(const EldaNetConfig& config);

  struct Logits {
    ag::Variable mortality;  // [B]
    ag::Variable los_gt7;    // [B]
  };

  // Shared trunk, two heads. Uses x and mask like EldaNet. With a capture
  // sink in `ctx`, the shared trunk's interpretation surfaces land under
  // "feature_attention" and "time_attention" (see EldaNet::Forward).
  Logits Forward(const data::Batch& batch,
                 nn::ForwardContext* ctx = nullptr) const;

  // Joint loss: mean of the two BCE terms; `los_labels` must be passed
  // separately because data::Batch carries one task's labels.
  ag::Variable JointLoss(const Logits& logits, const Tensor& mortality_labels,
                         const Tensor& los_labels);

 private:
  EldaNetConfig config_;
  Rng rng_;
  std::unique_ptr<BiDirectionalEmbedding> embedding_;
  std::unique_ptr<FeatureInteraction> feature_;
  std::unique_ptr<TimeInteraction> time_;
  std::unique_ptr<nn::Linear> mortality_head_;
  std::unique_ptr<nn::Linear> los_head_;
};

// Trains a MultiTaskEldaNet jointly on both labels and reports per-task test
// AUC-PR. Small, self-contained harness for the extension bench/example.
struct MultiTaskResult {
  double mortality_auc_pr = 0.0;
  double mortality_auc_roc = 0.0;
  double los_auc_pr = 0.0;
  double los_auc_roc = 0.0;
  int64_t num_parameters = 0;
};
MultiTaskResult TrainMultiTask(MultiTaskEldaNet* net,
                               const std::vector<data::PreparedSample>& prepared,
                               const data::SplitIndices& split,
                               int64_t max_epochs, int64_t batch_size,
                               float learning_rate, uint64_t seed);

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_MULTITASK_H_
