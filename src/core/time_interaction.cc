#include "core/time_interaction.h"

#include "nn/init.h"
#include "nn/recurrent_sweep.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {

TimeInteraction::TimeInteraction(int64_t input_dim, int64_t hidden_dim,
                                 Rng* rng)
    : hidden_dim_(hidden_dim), gru_(input_dim, hidden_dim, rng) {
  RegisterSubmodule("gru", &gru_);
  w_beta_ = RegisterParameter(
      "w_beta", nn::XavierUniform(hidden_dim, 1, {hidden_dim, 1}, rng));
  b_beta_ = RegisterParameter("b_beta", Tensor::Zeros({1}));
}

ag::Variable TimeInteraction::Forward(const ag::Variable& x,
                                      const nn::ForwardContext* ctx) const {
  const int64_t steps = x.value().shape(1);
  ELDA_CHECK_GE(steps, 2);

  nn::SweepOptions opts;
  opts.label = "TimeInteraction/gru";
  nn::SweepResult sweep = nn::GruSweep(gru_.cell(), x, opts);
  // The attention below needs the final state and the earlier states as
  // separate tensors; taking them straight from the sweep avoids stacking
  // all T states only to slice them apart again.
  ag::Variable h_last = sweep.steps.back();  // [B, H]
  std::vector<ag::Variable> prev(sweep.steps.begin(),
                                 sweep.steps.end() - 1);
  ag::Variable h_prev =
      ag::Transpose01(ag::Stack0(prev));  // [B, T-1, H]
  return ScoreFromStates(h_prev, h_last, ctx);
}

ag::Variable TimeInteraction::ScoreFromStates(
    const ag::Variable& h_prev, const ag::Variable& h_last,
    const nn::ForwardContext* ctx) const {
  const int64_t batch = h_prev.value().shape(0);
  const int64_t prev_steps = h_prev.value().shape(1);
  ELDA_CHECK_GE(prev_steps, 1);

  // s_i = h_i ⊙ h_T  (Eq. 8).
  ag::Variable s =
      ag::Mul(h_prev, ag::Reshape(h_last, {batch, 1, hidden_dim_}));

  // beta = softmax_i(w_beta . s_i + b_beta)  (Eqs. 9-10).
  ag::Variable logits = ag::Add(ag::MatMul(s, w_beta_), b_beta_);
  ag::Variable beta =
      ag::Softmax(ag::Reshape(logits, {batch, prev_steps}), /*axis=*/1);
  if (ctx != nullptr) ctx->Capture("time_attention", beta.value());

  // g_T = sum_i beta_i s_i  (Eq. 11), as a [B,1,P] x [B,P,H] matmul.
  ag::Variable g = ag::Reshape(
      ag::MatMul(ag::Reshape(beta, {batch, 1, prev_steps}), s),
      {batch, hidden_dim_});

  return ag::Concat({h_last, g}, /*axis=*/1);  // [B, 2H]
}

}  // namespace core
}  // namespace elda
