// Time-level Interaction Learning Module (paper Section IV-B, Eqs. 7-11).
//
// A GRU summarises the per-step patient representations; the module then
// models the explicit interaction between each earlier step and the last
// step as s_i = h_i ⊙ h_T, scores the interactions with an attention network
// (w_beta, b_beta), aggregates them into g_T, and returns the comprehensive
// representation h~_T = [h_T ; g_T].

#ifndef ELDA_CORE_TIME_INTERACTION_H_
#define ELDA_CORE_TIME_INTERACTION_H_

#include "autograd/ops.h"
#include "nn/forward_context.h"
#include "nn/gru.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace core {

class TimeInteraction : public nn::Module {
 public:
  TimeInteraction(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  // x: [B, T, input_dim] per-step representations.
  // Returns h~_T = [h_T ; g_T] of shape [B, 2*hidden].
  //
  // When `ctx` carries a capture sink, the attention weights beta are
  // stored under "time_attention" as [B, T-1]: the weight of the
  // interaction between hour i and the final hour — the time-level
  // interpretation surface of Fig. 8. Stateless per call, so concurrent
  // Forwards need no locking.
  ag::Variable Forward(const ag::Variable& x,
                       const nn::ForwardContext* ctx = nullptr) const;

  // The attention tail of Forward on already-computed GRU states: h_prev
  // [B, P, H] are the earlier states, h_last [B, H] the final one. Exposed
  // for the streaming path, which keeps the state history resident and
  // re-scores it without re-running the sweep; Forward routes through this,
  // so both paths are the same ops (bitwise).
  ag::Variable ScoreFromStates(const ag::Variable& h_prev,
                               const ag::Variable& h_last,
                               const nn::ForwardContext* ctx = nullptr) const;

  // The GRU cell, for streaming callers advancing the recurrence one
  // observation at a time.
  const nn::GruCell& cell() const { return gru_.cell(); }

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t output_dim() const { return 2 * hidden_dim_; }

 private:
  int64_t hidden_dim_;
  nn::Gru gru_;
  ag::Variable w_beta_;  // [hidden, 1]
  ag::Variable b_beta_;  // [1]
};

}  // namespace core
}  // namespace elda

#endif  // ELDA_CORE_TIME_INTERACTION_H_
