#include "data/emr.h"

#include <algorithm>
#include <numeric>

namespace elda {
namespace data {

int64_t EmrSample::NumRecords() const {
  int64_t records = 0;
  for (uint8_t o : observed) records += o != 0;
  return records;
}

EmrSample TruncateToHour(const EmrSample& sample, int64_t hours) {
  ELDA_CHECK(hours >= 0 && hours <= sample.num_steps);
  EmrSample truncated = sample;
  for (int64_t t = hours; t < truncated.num_steps; ++t) {
    for (int64_t c = 0; c < truncated.num_features; ++c) {
      truncated.set_observed(t, c, false);
      truncated.value(t, c) = 0.0f;
    }
  }
  truncated.length = std::min(sample.length, hours);
  return truncated;
}

LengthStats ComputeLengthStats(std::vector<int64_t> lengths) {
  LengthStats stats;
  if (lengths.empty()) return stats;
  std::sort(lengths.begin(), lengths.end());
  stats.count = static_cast<int64_t>(lengths.size());
  stats.min = lengths.front();
  stats.max = lengths.back();
  int64_t total = 0;
  for (int64_t len : lengths) total += len;
  stats.mean = static_cast<double>(total) / static_cast<double>(stats.count);
  auto quantile = [&](double q) {
    int64_t idx = static_cast<int64_t>(q * static_cast<double>(stats.count - 1));
    return lengths[idx];
  };
  stats.p50 = quantile(0.5);
  stats.p95 = quantile(0.95);
  return stats;
}

EmrDataset::EmrDataset(std::vector<std::string> feature_names,
                       int64_t num_steps)
    : feature_names_(std::move(feature_names)), num_steps_(num_steps) {}

void EmrDataset::Add(EmrSample sample) {
  ELDA_CHECK(sample.num_steps <= num_steps_);
  ELDA_CHECK(sample.length >= 0 && sample.length <= sample.num_steps);
  ELDA_CHECK_EQ(sample.num_features, num_features());
  samples_.push_back(std::move(sample));
}

int64_t EmrDataset::CountMortality() const {
  int64_t count = 0;
  for (const EmrSample& s : samples_) count += s.mortality_label == 1.0f;
  return count;
}

int64_t EmrDataset::CountLosGt7() const {
  int64_t count = 0;
  for (const EmrSample& s : samples_) count += s.los_gt7_label == 1.0f;
  return count;
}

double EmrDataset::AvgRecordsPerPatient() const {
  if (samples_.empty()) return 0.0;
  int64_t total = 0;
  for (const EmrSample& s : samples_) total += s.NumRecords();
  return static_cast<double>(total) / static_cast<double>(samples_.size());
}

double EmrDataset::MissingRate() const {
  if (samples_.empty()) return 0.0;
  // Count per-sample grids so ragged cohorts measure missingness over real
  // cells only. Uniform cohorts (every grid == num_steps_) are unchanged.
  int64_t cell_count = 0;
  int64_t observed = 0;
  for (const EmrSample& s : samples_) {
    cell_count += s.num_steps * s.num_features;
    observed += s.NumRecords();
  }
  return 1.0 - static_cast<double>(observed) / static_cast<double>(cell_count);
}

LengthStats EmrDataset::ComputeStayLengthStats() const {
  std::vector<int64_t> lengths;
  lengths.reserve(samples_.size());
  for (const EmrSample& s : samples_) lengths.push_back(s.length);
  return ComputeLengthStats(std::move(lengths));
}

SplitIndices SplitDataset(int64_t n, double train_fraction,
                          double val_fraction, Rng* rng) {
  ELDA_CHECK_GT(n, 0);
  ELDA_CHECK(train_fraction > 0 && val_fraction >= 0 &&
             train_fraction + val_fraction < 1.0);
  std::vector<int64_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng->Shuffle(&indices);
  const int64_t n_train = static_cast<int64_t>(n * train_fraction);
  const int64_t n_val = static_cast<int64_t>(n * val_fraction);
  SplitIndices split;
  split.train.assign(indices.begin(), indices.begin() + n_train);
  split.val.assign(indices.begin() + n_train,
                   indices.begin() + n_train + n_val);
  split.test.assign(indices.begin() + n_train + n_val, indices.end());
  return split;
}

SplitIndices StratifiedSplit(const std::vector<float>& labels,
                             double train_fraction, double val_fraction,
                             Rng* rng) {
  std::vector<int64_t> positives, negatives;
  for (size_t i = 0; i < labels.size(); ++i) {
    ELDA_CHECK(labels[i] == 0.0f || labels[i] == 1.0f);
    (labels[i] == 1.0f ? positives : negatives)
        .push_back(static_cast<int64_t>(i));
  }
  SplitIndices split;
  for (std::vector<int64_t>* group : {&positives, &negatives}) {
    rng->Shuffle(group);
    const int64_t n = static_cast<int64_t>(group->size());
    const int64_t n_train = static_cast<int64_t>(n * train_fraction);
    const int64_t n_val = static_cast<int64_t>(n * val_fraction);
    split.train.insert(split.train.end(), group->begin(),
                       group->begin() + n_train);
    split.val.insert(split.val.end(), group->begin() + n_train,
                     group->begin() + n_train + n_val);
    split.test.insert(split.test.end(), group->begin() + n_train + n_val,
                      group->end());
  }
  rng->Shuffle(&split.train);
  rng->Shuffle(&split.val);
  rng->Shuffle(&split.test);
  return split;
}

}  // namespace data
}  // namespace elda
