// Core EMR data structures.
//
// A sample is one ICU admission: a [T x C] grid of feature values on an
// hourly raster (T = 48 in the paper's setting), an observation mask
// (roughly 80% of cells are unobserved in both PhysioNet2012 and MIMIC-III),
// and labels for the two prediction tasks. Values at unobserved cells are
// meaningless until the imputation pass in pipeline.h fills them.

#ifndef ELDA_DATA_EMR_H_
#define ELDA_DATA_EMR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace elda {
namespace data {

struct EmrSample {
  int64_t num_steps = 0;     // T
  int64_t num_features = 0;  // |C|
  // Row-major [T x C] grids.
  std::vector<float> values;
  std::vector<uint8_t> observed;

  float mortality_label = 0.0f;  // 1 = died in hospital
  float los_gt7_label = 0.0f;    // 1 = length of stay > 7 days

  // Provenance fields filled by the synthetic generator; -1 when unknown.
  // `condition` holds a synth::Condition for cohort-level analyses.
  int64_t patient_id = -1;
  int64_t condition = -1;

  EmrSample() = default;
  EmrSample(int64_t steps, int64_t features)
      : num_steps(steps),
        num_features(features),
        values(steps * features, 0.0f),
        observed(steps * features, 0) {}

  float& value(int64_t t, int64_t c) {
    ELDA_DCHECK(t >= 0 && t < num_steps && c >= 0 && c < num_features);
    return values[t * num_features + c];
  }
  float value(int64_t t, int64_t c) const {
    ELDA_DCHECK(t >= 0 && t < num_steps && c >= 0 && c < num_features);
    return values[t * num_features + c];
  }
  bool is_observed(int64_t t, int64_t c) const {
    return observed[t * num_features + c] != 0;
  }
  void set_observed(int64_t t, int64_t c, bool obs) {
    observed[t * num_features + c] = obs ? 1 : 0;
  }

  // Number of observed cells ("records" in Table I's terminology).
  int64_t NumRecords() const;
};

// Returns a copy of `sample` truncated to its first `hours` of observations:
// later cells become unobserved (imputation then treats them like any other
// missing value). Used for risk re-estimation as an admission progresses.
EmrSample TruncateToHour(const EmrSample& sample, int64_t hours);

// A cohort of admissions plus feature metadata.
class EmrDataset {
 public:
  EmrDataset() = default;
  EmrDataset(std::vector<std::string> feature_names, int64_t num_steps);

  void Add(EmrSample sample);

  int64_t size() const { return static_cast<int64_t>(samples_.size()); }
  const EmrSample& sample(int64_t i) const { return samples_[i]; }
  EmrSample* mutable_sample(int64_t i) { return &samples_[i]; }
  const std::vector<EmrSample>& samples() const { return samples_; }

  int64_t num_steps() const { return num_steps_; }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  // -- Table I statistics -----------------------------------------------------
  int64_t CountMortality() const;
  int64_t CountLosGt7() const;
  double AvgRecordsPerPatient() const;
  // Fraction of grid cells with no observation.
  double MissingRate() const;

 private:
  std::vector<std::string> feature_names_;
  int64_t num_steps_ = 0;
  std::vector<EmrSample> samples_;
};

// Index sets for the paper's 80/10/10 split (shuffled with `rng`).
struct SplitIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};
SplitIndices SplitDataset(int64_t n, double train_fraction,
                          double val_fraction, Rng* rng);

// Stratified variant: splits positives and negatives separately so each
// partition preserves the class ratio (and, in particular, small validation
// sets on imbalanced cohorts still contain positives). `labels` must be
// binary and have one entry per sample.
SplitIndices StratifiedSplit(const std::vector<float>& labels,
                             double train_fraction, double val_fraction,
                             Rng* rng);

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_EMR_H_
