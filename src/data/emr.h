// Core EMR data structures.
//
// A sample is one ICU admission: a [T x C] grid of feature values on an
// hourly raster (T = 48 in the paper's setting), an observation mask
// (roughly 80% of cells are unobserved in both PhysioNet2012 and MIMIC-III),
// and labels for the two prediction tasks. Values at unobserved cells are
// meaningless until the imputation pass in pipeline.h fills them.
//
// Ragged stays (valid-prefix contract): real admissions are not all 48
// hours long, so every sample carries a `length` <= num_steps. Steps
// [0, length) are real; any rows past `length` are padding whose mask is 0
// and whose values are meaningless. A sample generated ragged allocates its
// grid at exactly its length (num_steps == length); a sample truncated on a
// fixed grid keeps the grid but shrinks `length`. Uniform-length cohorts
// (every length == num_steps) take the original dense fixed-T code paths
// bit-for-bit.

#ifndef ELDA_DATA_EMR_H_
#define ELDA_DATA_EMR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace elda {
namespace data {

// Number of phenotype labels a multi-task sample carries: the 7 condition
// archetypes one-hot, plus acute-episode-occurred, high-peak-severity, and
// prolonged-elevation flags (all derived deterministically from the
// simulator's latent trajectory; see synth/simulator.cc).
inline constexpr int64_t kNumPhenotypes = 10;

struct EmrSample {
  int64_t num_steps = 0;     // T (allocated grid rows)
  int64_t num_features = 0;  // |C|
  // Valid-prefix length: steps [0, length) are real, the tail is padding
  // (mask 0). Defaults to the full grid, which is the dense fixed-T case.
  int64_t length = 0;
  // Row-major [T x C] grids.
  std::vector<float> values;
  std::vector<uint8_t> observed;

  float mortality_label = 0.0f;  // 1 = died in hospital
  float los_gt7_label = 0.0f;    // 1 = length of stay > 7 days

  // -- Multi-task labels ------------------------------------------------------
  // Optional; empty on legacy samples (v1 shards, hand-built fixtures).
  // When present:
  //   decomp_labels  [num_steps]: step t is 1 when the patient decompensates
  //     in the near-term window after hour t (forward-looking; padding rows
  //     past `length` are meaningless and must be masked by consumers).
  //   phenotype_labels [kNumPhenotypes]: admission-level binary phenotypes.
  std::vector<float> decomp_labels;
  std::vector<float> phenotype_labels;

  bool has_multitask_labels() const {
    return !decomp_labels.empty() && !phenotype_labels.empty();
  }

  // Provenance fields filled by the synthetic generator; -1 when unknown.
  // `condition` holds a synth::Condition for cohort-level analyses.
  int64_t patient_id = -1;
  int64_t condition = -1;

  EmrSample() = default;
  EmrSample(int64_t steps, int64_t features)
      : num_steps(steps),
        num_features(features),
        length(steps),
        values(steps * features, 0.0f),
        observed(steps * features, 0) {}

  float& value(int64_t t, int64_t c) {
    ELDA_DCHECK(t >= 0 && t < num_steps && c >= 0 && c < num_features);
    return values[t * num_features + c];
  }
  float value(int64_t t, int64_t c) const {
    ELDA_DCHECK(t >= 0 && t < num_steps && c >= 0 && c < num_features);
    return values[t * num_features + c];
  }
  bool is_observed(int64_t t, int64_t c) const {
    return observed[t * num_features + c] != 0;
  }
  void set_observed(int64_t t, int64_t c, bool obs) {
    observed[t * num_features + c] = obs ? 1 : 0;
  }

  // Number of observed cells ("records" in Table I's terminology).
  int64_t NumRecords() const;
};

// Returns a copy of `sample` truncated to its first `hours` of observations:
// later cells become unobserved (imputation then treats them like any other
// missing value) and `length` becomes min(sample.length, hours), so
// early-warning evaluation windows compose with ragged stays. The grid size
// is preserved. Used for risk re-estimation as an admission progresses.
EmrSample TruncateToHour(const EmrSample& sample, int64_t hours);

// Length distribution of a set of stay lengths (bench/reporting helper).
struct LengthStats {
  int64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p95 = 0;
};
LengthStats ComputeLengthStats(std::vector<int64_t> lengths);

// A cohort of admissions plus feature metadata.
//
// `num_steps` is the grid capacity: every sample satisfies
// sample.num_steps <= num_steps (ragged cohorts hold shorter grids). A
// cohort where every sample's grid and length equal num_steps is uniform
// and takes the dense fixed-T paths unchanged.
class EmrDataset {
 public:
  EmrDataset() = default;
  EmrDataset(std::vector<std::string> feature_names, int64_t num_steps);

  void Add(EmrSample sample);

  int64_t size() const { return static_cast<int64_t>(samples_.size()); }
  const EmrSample& sample(int64_t i) const { return samples_[i]; }
  EmrSample* mutable_sample(int64_t i) { return &samples_[i]; }
  const std::vector<EmrSample>& samples() const { return samples_; }

  int64_t num_steps() const { return num_steps_; }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  // -- Table I statistics -----------------------------------------------------
  int64_t CountMortality() const;
  int64_t CountLosGt7() const;
  double AvgRecordsPerPatient() const;
  // Fraction of grid cells with no observation (per-sample grids, so ragged
  // cohorts are measured over real cells only).
  double MissingRate() const;
  // Distribution of per-stay valid-prefix lengths.
  LengthStats ComputeStayLengthStats() const;

 private:
  std::vector<std::string> feature_names_;
  int64_t num_steps_ = 0;
  std::vector<EmrSample> samples_;
};

// Index sets for the paper's 80/10/10 split (shuffled with `rng`).
struct SplitIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};
SplitIndices SplitDataset(int64_t n, double train_fraction,
                          double val_fraction, Rng* rng);

// Stratified variant: splits positives and negatives separately so each
// partition preserves the class ratio (and, in particular, small validation
// sets on imbalanced cohorts still contain positives). `labels` must be
// binary and have one entry per sample.
SplitIndices StratifiedSplit(const std::vector<float>& labels,
                             double train_fraction, double val_fraction,
                             Rng* rng);

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_EMR_H_
