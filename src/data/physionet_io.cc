#include "data/physionet_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace elda {
namespace data {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

// "HH:MM" -> hour index; returns -1 on malformed input.
int64_t ParseHour(const std::string& time) {
  const size_t colon = time.find(':');
  if (colon == std::string::npos || colon == 0) return -1;
  char* end = nullptr;
  const long hour = std::strtol(time.c_str(), &end, 10);
  if (end != time.c_str() + colon || hour < 0) return -1;
  return hour;
}

}  // namespace

bool ParsePhysioNetRecord(std::istream& in,
                          const std::vector<std::string>& feature_names,
                          const PhysioNetParseOptions& options,
                          EmrSample* sample, ParseStats* stats,
                          std::string* error) {
  ELDA_CHECK(sample != nullptr);
  ELDA_CHECK_GT(options.max_steps, 0);
  std::map<std::string, int64_t> index;
  for (size_t c = 0; c < feature_names.size(); ++c) {
    index[feature_names[c]] = static_cast<int64_t>(c);
  }

  // The ragged grid is sized by the record's true horizon, which is only
  // known at the end, so measurements buffer until then.
  struct Row {
    int64_t hour;
    int64_t feature;
    float value;
  };
  std::vector<Row> rows;
  ParseStats parsed;

  std::string line;
  if (!std::getline(in, line)) return Fail(error, "empty record");
  // Header is "Time,Parameter,Value".
  if (line.rfind("Time", 0) != 0) {
    return Fail(error, "missing Time,Parameter,Value header");
  }
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != 3) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": expected 3 cells");
    }
    const int64_t hour = ParseHour(cells[0]);
    if (hour < 0) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": bad time '" + cells[0] + "'");
    }
    auto it = index.find(cells[1]);
    if (it == index.end()) continue;  // static descriptor or unused param
    char* end = nullptr;
    const float value = std::strtof(cells[2].c_str(), &end);
    if (end == cells[2].c_str()) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": bad value '" + cells[2] + "'");
    }
    if (value == -1.0f) continue;  // PhysioNet's "not measured" sentinel
    parsed.max_hour_seen = std::max(parsed.max_hour_seen, hour);
    if (hour >= options.max_steps) {
      // Beyond the modelling window: dropped, but counted rather than
      // silently discarded.
      ++parsed.truncated_measurements;
      continue;
    }
    rows.push_back({hour, it->second, value});
  }

  const int64_t steps =
      options.ragged
          ? std::max<int64_t>(
                1, std::min(parsed.max_hour_seen + 1, options.max_steps))
          : options.max_steps;
  *sample = EmrSample(steps, static_cast<int64_t>(feature_names.size()));
  for (const Row& row : rows) {
    sample->value(row.hour, row.feature) = row.value;  // last in hour wins
    sample->set_observed(row.hour, row.feature, true);
  }
  if (stats != nullptr) *stats = parsed;
  return true;
}

bool ParsePhysioNetRecord(std::istream& in,
                          const std::vector<std::string>& feature_names,
                          int64_t num_steps, EmrSample* sample,
                          std::string* error) {
  PhysioNetParseOptions options;
  options.max_steps = num_steps;
  return ParsePhysioNetRecord(in, feature_names, options, sample,
                              /*stats=*/nullptr, error);
}

bool ParsePhysioNetOutcomes(std::istream& in,
                            std::vector<PhysioNetOutcome>* outcomes,
                            std::string* error) {
  ELDA_CHECK(outcomes != nullptr);
  outcomes->clear();
  std::string line;
  if (!std::getline(in, line) || line.rfind("RecordID", 0) != 0) {
    return Fail(error, "missing outcomes header");
  }
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() < 6) {
      return Fail(error, "outcomes line " + std::to_string(line_number) +
                             ": expected 6 cells");
    }
    PhysioNetOutcome outcome;
    outcome.record_id = std::strtoll(cells[0].c_str(), nullptr, 10);
    outcome.length_of_stay_days = std::strtof(cells[3].c_str(), nullptr);
    outcome.in_hospital_death = std::strtof(cells[5].c_str(), nullptr);
    outcomes->push_back(outcome);
  }
  return true;
}

bool ExportCohortCsv(const EmrDataset& cohort, const std::string& path,
                     std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  for (int64_t i = 0; i < cohort.size(); ++i) {
    const EmrSample& s = cohort.sample(i);
    out << "#labels," << i << "," << s.mortality_label << ","
        << s.los_gt7_label << "," << s.condition << "," << s.length << "\n";
  }
  out << "patient,hour,feature,value\n";
  const auto& names = cohort.feature_names();
  for (int64_t i = 0; i < cohort.size(); ++i) {
    const EmrSample& s = cohort.sample(i);
    for (int64_t t = 0; t < s.num_steps; ++t) {
      for (int64_t c = 0; c < s.num_features; ++c) {
        if (!s.is_observed(t, c)) continue;
        out << i << "," << t << "," << names[c] << "," << s.value(t, c)
            << "\n";
      }
    }
  }
  out.flush();
  if (!out) return Fail(error, "write failure on " + path);
  return true;
}

bool ImportCohortCsv(const std::string& path,
                     const std::vector<std::string>& feature_names,
                     int64_t num_steps, EmrDataset* cohort,
                     std::string* error) {
  ELDA_CHECK(cohort != nullptr);
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);
  std::map<std::string, int64_t> index;
  for (size_t c = 0; c < feature_names.size(); ++c) {
    index[feature_names[c]] = static_cast<int64_t>(c);
  }
  *cohort = EmrDataset(feature_names, num_steps);

  struct Labels {
    float mortality = 0.0f;
    float los = 0.0f;
    int64_t condition = -1;
    int64_t length = -1;  // -1: pre-length-column file, default to the grid
  };
  std::map<int64_t, Labels> labels;
  std::map<int64_t, EmrSample> samples;
  std::string line;
  bool saw_header = false;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line.rfind("#labels,", 0) == 0) {
      const auto cells = SplitCsvLine(line.substr(8));
      if (cells.size() != 4 && cells.size() != 5) {
        return Fail(error, "bad #labels line");
      }
      const int64_t patient = std::strtoll(cells[0].c_str(), nullptr, 10);
      Labels parsed;
      parsed.mortality = std::strtof(cells[1].c_str(), nullptr);
      parsed.los = std::strtof(cells[2].c_str(), nullptr);
      parsed.condition = std::strtoll(cells[3].c_str(), nullptr, 10);
      if (cells.size() == 5) {
        parsed.length = std::strtoll(cells[4].c_str(), nullptr, 10);
        if (parsed.length < 0 || parsed.length > num_steps) {
          return Fail(error, "length out of range on a #labels line");
        }
      }
      labels[patient] = parsed;
      continue;
    }
    if (line.rfind("patient,", 0) == 0) {
      saw_header = true;
      continue;
    }
    if (!saw_header) return Fail(error, "missing column header");
    const auto cells = SplitCsvLine(line);
    if (cells.size() != 4) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": expected 4 cells");
    }
    const int64_t patient = std::strtoll(cells[0].c_str(), nullptr, 10);
    const int64_t hour = std::strtoll(cells[1].c_str(), nullptr, 10);
    auto it = index.find(cells[2]);
    if (it == index.end()) {
      return Fail(error, "unknown feature '" + cells[2] + "'");
    }
    if (hour < 0 || hour >= num_steps) {
      return Fail(error, "hour out of range on line " +
                             std::to_string(line_number));
    }
    auto [sample_it, inserted] = samples.try_emplace(
        patient, num_steps, static_cast<int64_t>(feature_names.size()));
    sample_it->second.value(hour, it->second) =
        std::strtof(cells[3].c_str(), nullptr);
    sample_it->second.set_observed(hour, it->second, true);
  }
  for (auto& [patient, sample] : samples) {
    auto label_it = labels.find(patient);
    if (label_it != labels.end()) {
      sample.mortality_label = label_it->second.mortality;
      sample.los_gt7_label = label_it->second.los;
      sample.condition = label_it->second.condition;
      if (label_it->second.length >= 0) {
        sample.length = label_it->second.length;
      }
    }
    sample.patient_id = patient;
    cohort->Add(std::move(sample));
  }
  return true;
}

}  // namespace data
}  // namespace elda
