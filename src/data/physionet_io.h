// I/O for real and synthetic EMR cohorts.
//
// PhysioNet2012 import: the paper's first dataset ships as one CSV per ICU
// admission ("Time,Parameter,Value" rows, time as HH:MM) plus an outcomes
// table. Users with PhysioNet credentials can load the real cohort through
// these functions and run every experiment in this repository on it; the
// synthetic cohorts remain the default for users without access.
//
// Cohort CSV export/import: a single long-format file
// ("patient,hour,feature,value") plus a label header per patient, used to
// persist generated cohorts or to hand them to external tooling.

#ifndef ELDA_DATA_PHYSIONET_IO_H_
#define ELDA_DATA_PHYSIONET_IO_H_

#include <istream>
#include <string>
#include <vector>

#include "data/emr.h"

namespace elda {
namespace data {

// What a record parse dropped or saw beyond the grid. Real PhysioNet stays
// routinely chart past the 48 h modelling window; these counters make that
// truncation visible instead of silent.
struct ParseStats {
  // In-vocabulary, measured rows dropped because their hour was at or past
  // the grid cap.
  int64_t truncated_measurements = 0;
  // Largest hour seen on any in-vocabulary, measured row (kept or dropped);
  // -1 if none. The record's true horizon is max_hour_seen + 1.
  int64_t max_hour_seen = -1;
};

struct PhysioNetParseOptions {
  // Hard cap on grid rows; rows at or past this hour are counted in
  // ParseStats::truncated_measurements.
  int64_t max_steps = 48;
  // When set, the sample's grid is sized to the record's true horizon
  // (max_hour_seen + 1, capped at max_steps, at least 1) and length equals
  // that grid — the ragged contract of data/emr.h. When unset the grid is
  // fixed at max_steps with length = max_steps (the paper's dense protocol).
  bool ragged = false;
};

// Parses one PhysioNet2012 record stream into a grid sample. Rows whose
// Parameter is not in `feature_names` (RecordID, Age, Gender, Height,
// ICUType, ...) are skipped; repeated measurements within the same hour keep
// the last value; value -1 marks "not measured" in PhysioNet and is skipped.
// Measurements past the grid cap are dropped but *reported* through `stats`
// (pass nullptr to ignore). Returns false (with a message in `error`) on
// malformed input.
bool ParsePhysioNetRecord(std::istream& in,
                          const std::vector<std::string>& feature_names,
                          const PhysioNetParseOptions& options,
                          EmrSample* sample, ParseStats* stats = nullptr,
                          std::string* error = nullptr);

// Legacy fixed-grid entry point: options {num_steps, ragged=false}, no
// stats. Behaviour (including silent truncation) is unchanged.
bool ParsePhysioNetRecord(std::istream& in,
                          const std::vector<std::string>& feature_names,
                          int64_t num_steps, EmrSample* sample,
                          std::string* error = nullptr);

// Outcome row of the PhysioNet Outcomes-*.txt table.
struct PhysioNetOutcome {
  int64_t record_id = -1;
  float in_hospital_death = 0.0f;
  float length_of_stay_days = 0.0f;
};

// Parses the outcomes CSV ("RecordID,SAPS-I,SOFA,Length_of_stay,Survival,
// In-hospital_death").
bool ParsePhysioNetOutcomes(std::istream& in,
                            std::vector<PhysioNetOutcome>* outcomes,
                            std::string* error = nullptr);

// -- Cohort round-trip ---------------------------------------------------------

// Writes a cohort as a long-format CSV. Layout:
//   #labels,<patient>,<mortality>,<los_gt7>,<condition>,<length>
//   patient,hour,feature,value                            (header)
//   0,3,Glucose,188.0                                     (observed cells)
bool ExportCohortCsv(const EmrDataset& cohort, const std::string& path,
                     std::string* error = nullptr);

// Reads a file written by ExportCohortCsv. `num_steps` must be at least the
// original grid length. Imported samples use the full `num_steps` grid with
// length restored from the #labels line (files from before the length column
// load with length = num_steps), so ragged cohorts round-trip with
// valid-prefix equality.
bool ImportCohortCsv(const std::string& path,
                     const std::vector<std::string>& feature_names,
                     int64_t num_steps, EmrDataset* cohort,
                     std::string* error = nullptr);

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_PHYSIONET_IO_H_
