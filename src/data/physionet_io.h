// I/O for real and synthetic EMR cohorts.
//
// PhysioNet2012 import: the paper's first dataset ships as one CSV per ICU
// admission ("Time,Parameter,Value" rows, time as HH:MM) plus an outcomes
// table. Users with PhysioNet credentials can load the real cohort through
// these functions and run every experiment in this repository on it; the
// synthetic cohorts remain the default for users without access.
//
// Cohort CSV export/import: a single long-format file
// ("patient,hour,feature,value") plus a label header per patient, used to
// persist generated cohorts or to hand them to external tooling.

#ifndef ELDA_DATA_PHYSIONET_IO_H_
#define ELDA_DATA_PHYSIONET_IO_H_

#include <istream>
#include <string>
#include <vector>

#include "data/emr.h"

namespace elda {
namespace data {

// Parses one PhysioNet2012 record stream into a [num_steps x features] grid
// sample. Rows whose Parameter is not in `feature_names` (RecordID, Age,
// Gender, Height, ICUType, ...) are skipped; repeated measurements within
// the same hour keep the last value; measurements at or past `num_steps`
// hours are dropped. Value -1 marks "not measured" in PhysioNet and is
// skipped. Returns false (with a message in `error`) on malformed input.
bool ParsePhysioNetRecord(std::istream& in,
                          const std::vector<std::string>& feature_names,
                          int64_t num_steps, EmrSample* sample,
                          std::string* error = nullptr);

// Outcome row of the PhysioNet Outcomes-*.txt table.
struct PhysioNetOutcome {
  int64_t record_id = -1;
  float in_hospital_death = 0.0f;
  float length_of_stay_days = 0.0f;
};

// Parses the outcomes CSV ("RecordID,SAPS-I,SOFA,Length_of_stay,Survival,
// In-hospital_death").
bool ParsePhysioNetOutcomes(std::istream& in,
                            std::vector<PhysioNetOutcome>* outcomes,
                            std::string* error = nullptr);

// -- Cohort round-trip ---------------------------------------------------------

// Writes a cohort as a long-format CSV. Layout:
//   #labels,<patient>,<mortality>,<los_gt7>,<condition>   (one per patient)
//   patient,hour,feature,value                            (header)
//   0,3,Glucose,188.0                                     (observed cells)
bool ExportCohortCsv(const EmrDataset& cohort, const std::string& path,
                     std::string* error = nullptr);

// Reads a file written by ExportCohortCsv. `num_steps` must match the
// original grid length.
bool ImportCohortCsv(const std::string& path,
                     const std::vector<std::string>& feature_names,
                     int64_t num_steps, EmrDataset* cohort,
                     std::string* error = nullptr);

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_PHYSIONET_IO_H_
