#include "data/pipeline.h"

#include <algorithm>
#include <cmath>

namespace elda {
namespace data {

void Standardizer::Fit(const EmrDataset& dataset,
                       const std::vector<int64_t>& train_indices,
                       bool clean_negative) {
  clean_negative_ = clean_negative;
  const int64_t num_features = dataset.num_features();
  mean_.assign(num_features, 0.0f);
  std_.assign(num_features, 1.0f);
  std::vector<double> sum(num_features, 0.0);
  std::vector<double> sum_sq(num_features, 0.0);
  std::vector<int64_t> count(num_features, 0);
  for (int64_t idx : train_indices) {
    const EmrSample& s = dataset.sample(idx);
    for (int64_t t = 0; t < s.num_steps; ++t) {
      for (int64_t c = 0; c < num_features; ++c) {
        if (!s.is_observed(t, c)) continue;
        const float v = s.value(t, c);
        if (clean_negative_ && v < 0.0f) continue;
        sum[c] += v;
        sum_sq[c] += static_cast<double>(v) * v;
        ++count[c];
      }
    }
  }
  for (int64_t c = 0; c < num_features; ++c) {
    if (count[c] == 0) continue;  // never-observed feature keeps (0, 1)
    mean_[c] = static_cast<float>(sum[c] / count[c]);
    const double var =
        sum_sq[c] / count[c] - static_cast<double>(mean_[c]) * mean_[c];
    std_[c] = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  }
}

void Standardizer::Apply(EmrSample* sample) const {
  ELDA_CHECK(fitted());
  ELDA_CHECK_EQ(sample->num_features, static_cast<int64_t>(mean_.size()));
  for (int64_t t = 0; t < sample->num_steps; ++t) {
    for (int64_t c = 0; c < sample->num_features; ++c) {
      if (!sample->is_observed(t, c)) {
        sample->value(t, c) = 0.0f;
        continue;
      }
      const float v = sample->value(t, c);
      if (clean_negative_ && v < 0.0f) {
        // Recording error: drop the observation entirely.
        sample->set_observed(t, c, false);
        sample->value(t, c) = 0.0f;
        continue;
      }
      sample->value(t, c) = (v - mean_[c]) / std_[c];
    }
  }
}

void Standardizer::Restore(std::vector<float> means,
                           std::vector<float> stddevs, bool clean_negative) {
  ELDA_CHECK_EQ(means.size(), stddevs.size());
  ELDA_CHECK(!means.empty());
  for (float s : stddevs) ELDA_CHECK_GT(s, 0.0f);
  mean_ = std::move(means);
  std_ = std::move(stddevs);
  clean_negative_ = clean_negative;
}

std::vector<PreparedSample> PrepareDataset(const EmrDataset& dataset,
                                           const Standardizer& standardizer) {
  ELDA_CHECK(standardizer.fitted());
  const int64_t num_steps = dataset.num_steps();
  const int64_t num_features = dataset.num_features();
  std::vector<PreparedSample> prepared;
  prepared.reserve(dataset.size());
  for (int64_t i = 0; i < dataset.size(); ++i) {
    EmrSample s = dataset.sample(i);  // copy; standardisation mutates
    standardizer.Apply(&s);
    PreparedSample p;
    p.x = Tensor({num_steps, num_features});
    p.mask = Tensor({num_steps, num_features});
    p.delta = Tensor({num_steps, num_features});
    for (int64_t c = 0; c < num_features; ++c) {
      float last_value = 0.0f;  // global mean in standardised space
      float steps_since = 0.0f;
      bool seen = false;
      for (int64_t t = 0; t < num_steps; ++t) {
        const bool obs = s.is_observed(t, c);
        if (obs) {
          last_value = s.value(t, c);
          steps_since = 0.0f;
          seen = true;
        } else if (seen || t > 0) {
          steps_since += 1.0f;
        }
        p.x.at({t, c}) = obs ? s.value(t, c) : last_value;
        p.mask.at({t, c}) = obs ? 1.0f : 0.0f;
        p.delta.at({t, c}) = steps_since;
      }
    }
    p.mortality_label = s.mortality_label;
    p.los_gt7_label = s.los_gt7_label;
    p.condition = s.condition;
    p.source_index = i;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

Batch MakeBatch(const std::vector<PreparedSample>& prepared,
                const std::vector<int64_t>& indices, Task task) {
  ELDA_CHECK(!indices.empty());
  const PreparedSample& first = prepared[indices[0]];
  const int64_t steps = first.x.shape(0);
  const int64_t features = first.x.shape(1);
  const int64_t batch = static_cast<int64_t>(indices.size());
  Batch out;
  out.x = Tensor({batch, steps, features});
  out.mask = Tensor({batch, steps, features});
  out.delta = Tensor({batch, steps, features});
  out.y = Tensor({batch});
  out.sample_indices = indices;
  const int64_t grid = steps * features;
  for (int64_t b = 0; b < batch; ++b) {
    const PreparedSample& p = prepared[indices[b]];
    std::copy(p.x.data(), p.x.data() + grid, out.x.data() + b * grid);
    std::copy(p.mask.data(), p.mask.data() + grid, out.mask.data() + b * grid);
    std::copy(p.delta.data(), p.delta.data() + grid,
              out.delta.data() + b * grid);
    out.y[b] =
        task == Task::kMortality ? p.mortality_label : p.los_gt7_label;
  }
  return out;
}

Batcher::Batcher(const std::vector<PreparedSample>* prepared,
                 std::vector<int64_t> indices, int64_t batch_size, Task task,
                 Rng* rng)
    : prepared_(prepared),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      task_(task),
      rng_(rng) {
  ELDA_CHECK(prepared_ != nullptr && !indices_.empty());
  ELDA_CHECK_GT(batch_size_, 0);
}

void Batcher::StartEpoch() {
  rng_->Shuffle(&indices_);
  cursor_ = 0;
}

bool Batcher::Next(Batch* batch) {
  if (cursor_ >= static_cast<int64_t>(indices_.size())) return false;
  const int64_t end = std::min(cursor_ + batch_size_,
                               static_cast<int64_t>(indices_.size()));
  std::vector<int64_t> selection(indices_.begin() + cursor_,
                                 indices_.begin() + end);
  *batch = MakeBatch(*prepared_, selection, task_);
  cursor_ = end;
  return true;
}

void Batcher::RestoreOrder(std::vector<int64_t> order) {
  std::vector<int64_t> a = indices_, b = order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  ELDA_CHECK(a == b) << "restored order is not a permutation of the split";
  indices_ = std::move(order);
  cursor_ = 0;
}

int64_t Batcher::NumBatchesPerEpoch() const {
  return (static_cast<int64_t>(indices_.size()) + batch_size_ - 1) /
         batch_size_;
}

}  // namespace data
}  // namespace elda
