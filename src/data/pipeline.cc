#include "data/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace elda {
namespace data {

void Standardizer::Fit(const EmrDataset& dataset,
                       const std::vector<int64_t>& train_indices,
                       bool clean_negative) {
  clean_negative_ = clean_negative;
  const int64_t num_features = dataset.num_features();
  mean_.assign(num_features, 0.0f);
  std_.assign(num_features, 1.0f);
  std::vector<double> sum(num_features, 0.0);
  std::vector<double> sum_sq(num_features, 0.0);
  std::vector<int64_t> count(num_features, 0);
  for (int64_t idx : train_indices) {
    const EmrSample& s = dataset.sample(idx);
    for (int64_t t = 0; t < s.num_steps; ++t) {
      for (int64_t c = 0; c < num_features; ++c) {
        if (!s.is_observed(t, c)) continue;
        const float v = s.value(t, c);
        if (clean_negative_ && v < 0.0f) continue;
        sum[c] += v;
        sum_sq[c] += static_cast<double>(v) * v;
        ++count[c];
      }
    }
  }
  for (int64_t c = 0; c < num_features; ++c) {
    if (count[c] == 0) continue;  // never-observed feature keeps (0, 1)
    mean_[c] = static_cast<float>(sum[c] / count[c]);
    const double var =
        sum_sq[c] / count[c] - static_cast<double>(mean_[c]) * mean_[c];
    std_[c] = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  }
}

void Standardizer::Apply(EmrSample* sample) const {
  ELDA_CHECK(fitted());
  ELDA_CHECK_EQ(sample->num_features, static_cast<int64_t>(mean_.size()));
  for (int64_t t = 0; t < sample->num_steps; ++t) {
    for (int64_t c = 0; c < sample->num_features; ++c) {
      if (!sample->is_observed(t, c)) {
        sample->value(t, c) = 0.0f;
        continue;
      }
      const float v = sample->value(t, c);
      if (clean_negative_ && v < 0.0f) {
        // Recording error: drop the observation entirely.
        sample->set_observed(t, c, false);
        sample->value(t, c) = 0.0f;
        continue;
      }
      sample->value(t, c) = (v - mean_[c]) / std_[c];
    }
  }
}

void Standardizer::Restore(std::vector<float> means,
                           std::vector<float> stddevs, bool clean_negative) {
  ELDA_CHECK_EQ(means.size(), stddevs.size());
  ELDA_CHECK(!means.empty());
  for (float s : stddevs) ELDA_CHECK_GT(s, 0.0f);
  mean_ = std::move(means);
  std_ = std::move(stddevs);
  clean_negative_ = clean_negative;
}

PreparedSample PrepareOne(const EmrSample& sample,
                          const Standardizer& standardizer) {
  ELDA_CHECK(standardizer.fitted());
  EmrSample s = sample;  // copy; standardisation mutates
  standardizer.Apply(&s);
  const int64_t num_steps = s.num_steps;
  const int64_t num_features = s.num_features;
  PreparedSample p;
  p.x = Tensor({num_steps, num_features});
  p.mask = Tensor({num_steps, num_features});
  p.delta = Tensor({num_steps, num_features});
  p.length = s.length;
  for (int64_t c = 0; c < num_features; ++c) {
    float last_value = 0.0f;  // global mean in standardised space
    float steps_since = 0.0f;
    bool seen = false;
    for (int64_t t = 0; t < num_steps; ++t) {
      const bool obs = s.is_observed(t, c);
      if (obs) {
        last_value = s.value(t, c);
        steps_since = 0.0f;
        seen = true;
      } else if (seen || t > 0) {
        steps_since += 1.0f;
      }
      p.x.at({t, c}) = obs ? s.value(t, c) : last_value;
      p.mask.at({t, c}) = obs ? 1.0f : 0.0f;
      p.delta.at({t, c}) = steps_since;
    }
  }
  p.mortality_label = s.mortality_label;
  p.los_gt7_label = s.los_gt7_label;
  p.decomp_labels = s.decomp_labels;
  p.phenotype_labels = s.phenotype_labels;
  p.condition = s.condition;
  return p;
}

std::vector<PreparedSample> PrepareDataset(const EmrDataset& dataset,
                                           const Standardizer& standardizer) {
  ELDA_CHECK(standardizer.fitted());
  std::vector<PreparedSample> prepared;
  prepared.reserve(dataset.size());
  for (int64_t i = 0; i < dataset.size(); ++i) {
    PreparedSample p = PrepareOne(dataset.sample(i), standardizer);
    p.source_index = i;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

bool Batch::UniformLength() const {
  if (lengths.empty()) return true;
  const int64_t steps = x.shape(1);
  for (int64_t len : lengths) {
    if (len != steps) return false;
  }
  return true;
}

const std::vector<int64_t>* Batch::LengthsOrNull() const {
  return UniformLength() ? nullptr : &lengths;
}

Batch MakeBatch(const std::vector<PreparedSample>& prepared,
                const std::vector<int64_t>& indices, Task task) {
  ELDA_CHECK(!indices.empty());
  const int64_t features = prepared[indices[0]].x.shape(1);
  const int64_t batch = static_cast<int64_t>(indices.size());
  // Batch T is the longest grid present; shorter samples pad with zeros.
  // Uniform cohorts hit the exact pre-ragged layout (full-grid copies over a
  // zero-initialised tensor), so the dense path is bitwise unchanged.
  int64_t steps = 0;
  for (int64_t idx : indices) {
    steps = std::max(steps, prepared[idx].x.shape(0));
  }
  Batch out;
  out.x = Tensor({batch, steps, features});
  out.mask = Tensor({batch, steps, features});
  out.delta = Tensor({batch, steps, features});
  out.y = Tensor({batch});
  out.y_los = Tensor({batch});
  out.sample_indices = indices;
  out.lengths.resize(batch);
  // Multi-task slabs materialize only when every selected sample carries
  // them (a mixed batch means a legacy source; heads must not train on it).
  bool multitask = true;
  for (int64_t idx : indices) {
    const PreparedSample& p = prepared[idx];
    multitask = multitask && !p.decomp_labels.empty() &&
                static_cast<int64_t>(p.phenotype_labels.size()) ==
                    kNumPhenotypes;
  }
  if (multitask) {
    out.y_decomp = Tensor({batch, steps});
    out.y_pheno = Tensor({batch, kNumPhenotypes});
  }
  const int64_t grid = steps * features;
  bool ragged = false;
  for (int64_t b = 0; b < batch; ++b) {
    const PreparedSample& p = prepared[indices[b]];
    ELDA_CHECK_EQ(p.x.shape(1), features);
    const int64_t row_grid = p.x.shape(0) * features;
    std::copy(p.x.data(), p.x.data() + row_grid, out.x.data() + b * grid);
    std::copy(p.mask.data(), p.mask.data() + row_grid,
              out.mask.data() + b * grid);
    std::copy(p.delta.data(), p.delta.data() + row_grid,
              out.delta.data() + b * grid);
    out.y[b] =
        task == Task::kMortality ? p.mortality_label : p.los_gt7_label;
    out.y_los[b] = p.los_gt7_label;
    if (multitask) {
      const int64_t row_steps =
          std::min(steps, static_cast<int64_t>(p.decomp_labels.size()));
      std::copy(p.decomp_labels.data(), p.decomp_labels.data() + row_steps,
                out.y_decomp.data() + b * steps);
      std::copy(p.phenotype_labels.data(),
                p.phenotype_labels.data() + kNumPhenotypes,
                out.y_pheno.data() + b * kNumPhenotypes);
    }
    out.lengths[b] = p.length;
    ragged = ragged || p.length != steps;
  }
  if (ragged) {
    out.step_mask = Tensor({batch, steps});
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < out.lengths[b]; ++t) {
        out.step_mask.at({b, t}) = 1.0f;
      }
    }
  }
  return out;
}

Batcher::Batcher(const std::vector<PreparedSample>* prepared,
                 std::vector<int64_t> indices, int64_t batch_size, Task task,
                 Rng* rng)
    : prepared_(prepared),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      task_(task),
      rng_(rng) {
  ELDA_CHECK(prepared_ != nullptr && !indices_.empty());
  ELDA_CHECK_GT(batch_size_, 0);
}

void Batcher::StartEpoch() {
  rng_->Shuffle(&indices_);
  cursor_ = 0;
}

bool Batcher::Next(Batch* batch) {
  if (cursor_ >= static_cast<int64_t>(indices_.size())) return false;
  const int64_t end = std::min(cursor_ + batch_size_,
                               static_cast<int64_t>(indices_.size()));
  std::vector<int64_t> selection(indices_.begin() + cursor_,
                                 indices_.begin() + end);
  *batch = MakeBatch(*prepared_, selection, task_);
  cursor_ = end;
  return true;
}

std::string Batcher::ExportState() const {
  std::string state;
  const uint32_t magic = 0x42435253;  // "SRCB"
  state.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const uint64_t n = indices_.size();
  state.append(reinterpret_cast<const char*>(&n), sizeof(n));
  state.append(reinterpret_cast<const char*>(indices_.data()),
               n * sizeof(int64_t));
  const int64_t cursor = cursor_;
  state.append(reinterpret_cast<const char*>(&cursor), sizeof(cursor));
  return state;
}

bool Batcher::RestoreState(const std::string& state) {
  if (state.size() < sizeof(uint32_t) + sizeof(uint64_t)) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(state.data());
  uint32_t magic;
  std::memcpy(&magic, p, sizeof(magic));
  if (magic != 0x42435253) return false;
  uint64_t n;
  std::memcpy(&n, p + 4, sizeof(n));
  if (n != indices_.size() ||
      state.size() != 12 + n * sizeof(int64_t) + sizeof(int64_t)) {
    return false;
  }
  std::vector<int64_t> order(n);
  std::memcpy(order.data(), p + 12, n * sizeof(int64_t));
  {
    std::vector<int64_t> a = indices_, b = order;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  int64_t cursor;
  std::memcpy(&cursor, p + 12 + n * sizeof(int64_t), sizeof(cursor));
  if (cursor < 0 || cursor > static_cast<int64_t>(n)) return false;
  indices_ = std::move(order);
  cursor_ = cursor;
  return true;
}

void Batcher::RestoreOrder(std::vector<int64_t> order) {
  std::vector<int64_t> a = indices_, b = order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  ELDA_CHECK(a == b) << "restored order is not a permutation of the split";
  indices_ = std::move(order);
  cursor_ = 0;
}

int64_t Batcher::NumBatchesPerEpoch() const {
  return (static_cast<int64_t>(indices_.size()) + batch_size_ - 1) /
         batch_size_;
}

}  // namespace data
}  // namespace elda
