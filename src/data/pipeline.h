// Preprocessing pipeline: cleaning, standardisation, imputation, batching.
//
// Mirrors the paper's Section IV-B / V-A protocol:
//   1. Clean noisy values (negative physiological readings are treated as
//      recording errors and dropped from the observation mask).
//   2. Mean-std standardisation per feature, fitted on *observed train cells
//      only* so that no test statistics leak into training.
//   3. Imputation of unobserved cells: before a feature's first observation
//      use the global (training) mean — which is exactly 0 after
//      standardisation; afterwards carry the last observation forward.
//   4. Batching into dense tensors X[B,T,C], M[B,T,C] (observation mask) and
//      Delta[B,T,C] (steps since the feature was last observed, used by
//      GRU-D's decay mechanism), plus the task label vector y[B].

#ifndef ELDA_DATA_PIPELINE_H_
#define ELDA_DATA_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "data/emr.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace elda {
namespace data {

enum class Task {
  kMortality,  // in-hospital mortality within the admission
  kLosGt7,     // length of stay > 7 days
};

// Per-feature standardisation statistics fitted on observed training cells.
class Standardizer {
 public:
  // Fits mean/std per feature over the observed cells of `dataset` restricted
  // to `train_indices`. When `clean_negative` is set, negative observed
  // values are excluded from the statistics (and the Apply step removes them
  // from the mask), following the paper's data-cleaning note.
  void Fit(const EmrDataset& dataset,
           const std::vector<int64_t>& train_indices,
           bool clean_negative = true);

  // Standardises observed cells in place; unobserved cells are zeroed (the
  // post-standardisation global mean). Cleans negative observations if the
  // standardizer was fitted with cleaning enabled.
  void Apply(EmrSample* sample) const;

  bool fitted() const { return !mean_.empty(); }
  float mean(int64_t feature) const { return mean_[feature]; }
  float stddev(int64_t feature) const { return std_[feature]; }

  // Persistence for deployment (see core::Elda::Save/Load).
  const std::vector<float>& means() const { return mean_; }
  const std::vector<float>& stddevs() const { return std_; }
  bool clean_negative() const { return clean_negative_; }
  void Restore(std::vector<float> means, std::vector<float> stddevs,
               bool clean_negative);

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
  bool clean_negative_ = true;
};

// A dataset after standardisation and imputation, as dense per-sample
// tensors ready for batching. Tensors cover the sample's own grid (ragged
// samples stay small until batching pads them).
struct PreparedSample {
  Tensor x;      // [T, C] standardised, imputed
  Tensor mask;   // [T, C] 1 = observed
  Tensor delta;  // [T, C] steps since last observation (0 when observed now)
  int64_t length = 0;  // valid-prefix length (== T for dense samples)
  float mortality_label = 0.0f;
  float los_gt7_label = 0.0f;
  // Multi-task labels carried through from EmrSample; empty on legacy
  // samples (see data/emr.h).
  std::vector<float> decomp_labels;     // [T] per-step decompensation
  std::vector<float> phenotype_labels;  // [kNumPhenotypes]
  int64_t condition = -1;
  int64_t source_index = -1;  // index into the raw dataset
};

// Applies the pipeline (clean + standardise + impute + delta) to one sample.
// The standardizer must already be fitted. `source_index` is left at -1.
PreparedSample PrepareOne(const EmrSample& sample,
                          const Standardizer& standardizer);

// Applies the full pipeline to every sample.
std::vector<PreparedSample> PrepareDataset(const EmrDataset& dataset,
                                           const Standardizer& standardizer);

// A dense mini-batch. T is the longest grid in the batch; shorter samples
// are zero-padded on the right, with `lengths` recording each row's
// valid-prefix (the ragged contract from data/emr.h).
struct Batch {
  Tensor x;      // [B, T, C]
  Tensor mask;   // [B, T, C]
  Tensor delta;  // [B, T, C]
  Tensor y;      // [B] the primary task's labels (Task passed to MakeBatch)
  // -- Multi-task label slabs -------------------------------------------------
  // y_los is always filled (it is free). y_decomp / y_pheno materialize only
  // when every sample in the batch carries multi-task labels; otherwise they
  // stay undefined — check has_multitask_labels(). Padding cells of y_decomp
  // (t >= lengths[b]) are zero and must be masked via lengths/step_mask.
  Tensor y_los;     // [B] LOS>7d labels
  Tensor y_decomp;  // [B, T] per-step decompensation targets
  Tensor y_pheno;   // [B, kNumPhenotypes]
  // Per-row valid-prefix lengths. Always sized [B]; all-equal-to-T for
  // uniform batches, which take the dense fixed-T code paths.
  std::vector<int64_t> lengths;
  // [B, T] step-validity mask (1 for t < lengths[b]). Materialized only for
  // ragged batches; empty (0 elements) when the batch is uniform.
  Tensor step_mask;
  std::vector<int64_t> sample_indices;  // into the prepared vector

  // True when the multi-task label slabs (y_decomp / y_pheno) are present.
  bool has_multitask_labels() const {
    return y_decomp.defined() && y_pheno.defined();
  }

  // True when every row's length equals T (the dense case).
  bool UniformLength() const;
  // &lengths for ragged batches, nullptr for uniform ones — the form
  // RecurrentSweep's SweepOptions consumes (null == dense fast path).
  const std::vector<int64_t>* LengthsOrNull() const;
};

// Assembles one batch from `prepared` at the given indices for `task`.
Batch MakeBatch(const std::vector<PreparedSample>& prepared,
                const std::vector<int64_t>& indices, Task task);

// An epoch-oriented stream of mini-batches. Implemented by the in-RAM
// Batcher and the out-of-core ShardedLoader; Trainer::TrainStreamed consumes
// this interface so the two are interchangeable.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  // Starts a new epoch (reshuffles the visit order).
  virtual void StartEpoch() = 0;
  // Fills `batch` with the next mini-batch; returns false at epoch end. The
  // final partial batch is emitted.
  virtual bool Next(Batch* batch) = 0;
  virtual int64_t NumBatchesPerEpoch() const = 0;

  // Checkpoint/resume: an opaque byte string capturing the cursor (visit
  // order, position, and any rng driving future shuffles) such that
  // RestoreState + Next replays the remaining stream bit-for-bit. Exported
  // through the elda::health sectioned-container path by the trainer.
  virtual std::string ExportState() const = 0;
  // Returns false (leaving the source untouched) on a malformed or
  // incompatible state string.
  virtual bool RestoreState(const std::string& state) = 0;
};

// Iterates mini-batches over a fixed index set, reshuffling every epoch.
class Batcher : public BatchSource {
 public:
  Batcher(const std::vector<PreparedSample>* prepared,
          std::vector<int64_t> indices, int64_t batch_size, Task task,
          Rng* rng);

  // Starts a new epoch (reshuffles).
  void StartEpoch() override;
  // Fills `batch` with the next mini-batch; returns false at epoch end. The
  // final partial batch is emitted.
  bool Next(Batch* batch) override;

  int64_t NumBatchesPerEpoch() const override;

  // BatchSource state: the current permutation plus the intra-epoch cursor.
  std::string ExportState() const override;
  bool RestoreState(const std::string& state) override;

  // Checkpoint/resume support: the current index permutation. StartEpoch's
  // shuffle permutes this order in place, so restoring it (together with the
  // Rng that drives the shuffle) replays the remaining epochs bit-for-bit.
  const std::vector<int64_t>& order() const { return indices_; }
  // CHECK-fails unless `order` is a permutation of the batcher's index set.
  void RestoreOrder(std::vector<int64_t> order);

 private:
  const std::vector<PreparedSample>* prepared_;
  std::vector<int64_t> indices_;
  int64_t batch_size_;
  Task task_;
  Rng* rng_;
  int64_t cursor_ = 0;
};

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_PIPELINE_H_
