// Preprocessing pipeline: cleaning, standardisation, imputation, batching.
//
// Mirrors the paper's Section IV-B / V-A protocol:
//   1. Clean noisy values (negative physiological readings are treated as
//      recording errors and dropped from the observation mask).
//   2. Mean-std standardisation per feature, fitted on *observed train cells
//      only* so that no test statistics leak into training.
//   3. Imputation of unobserved cells: before a feature's first observation
//      use the global (training) mean — which is exactly 0 after
//      standardisation; afterwards carry the last observation forward.
//   4. Batching into dense tensors X[B,T,C], M[B,T,C] (observation mask) and
//      Delta[B,T,C] (steps since the feature was last observed, used by
//      GRU-D's decay mechanism), plus the task label vector y[B].

#ifndef ELDA_DATA_PIPELINE_H_
#define ELDA_DATA_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "data/emr.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace elda {
namespace data {

enum class Task {
  kMortality,  // in-hospital mortality within the admission
  kLosGt7,     // length of stay > 7 days
};

// Per-feature standardisation statistics fitted on observed training cells.
class Standardizer {
 public:
  // Fits mean/std per feature over the observed cells of `dataset` restricted
  // to `train_indices`. When `clean_negative` is set, negative observed
  // values are excluded from the statistics (and the Apply step removes them
  // from the mask), following the paper's data-cleaning note.
  void Fit(const EmrDataset& dataset,
           const std::vector<int64_t>& train_indices,
           bool clean_negative = true);

  // Standardises observed cells in place; unobserved cells are zeroed (the
  // post-standardisation global mean). Cleans negative observations if the
  // standardizer was fitted with cleaning enabled.
  void Apply(EmrSample* sample) const;

  bool fitted() const { return !mean_.empty(); }
  float mean(int64_t feature) const { return mean_[feature]; }
  float stddev(int64_t feature) const { return std_[feature]; }

  // Persistence for deployment (see core::Elda::Save/Load).
  const std::vector<float>& means() const { return mean_; }
  const std::vector<float>& stddevs() const { return std_; }
  bool clean_negative() const { return clean_negative_; }
  void Restore(std::vector<float> means, std::vector<float> stddevs,
               bool clean_negative);

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
  bool clean_negative_ = true;
};

// A dataset after standardisation and imputation, as dense per-sample
// tensors ready for batching.
struct PreparedSample {
  Tensor x;      // [T, C] standardised, imputed
  Tensor mask;   // [T, C] 1 = observed
  Tensor delta;  // [T, C] steps since last observation (0 when observed now)
  float mortality_label = 0.0f;
  float los_gt7_label = 0.0f;
  int64_t condition = -1;
  int64_t source_index = -1;  // index into the raw dataset
};

// Applies the full pipeline (clean + standardise + impute + delta) to every
// sample. The standardizer must already be fitted.
std::vector<PreparedSample> PrepareDataset(const EmrDataset& dataset,
                                           const Standardizer& standardizer);

// A dense mini-batch.
struct Batch {
  Tensor x;      // [B, T, C]
  Tensor mask;   // [B, T, C]
  Tensor delta;  // [B, T, C]
  Tensor y;      // [B]
  std::vector<int64_t> sample_indices;  // into the prepared vector
};

// Assembles one batch from `prepared` at the given indices for `task`.
Batch MakeBatch(const std::vector<PreparedSample>& prepared,
                const std::vector<int64_t>& indices, Task task);

// Iterates mini-batches over a fixed index set, reshuffling every epoch.
class Batcher {
 public:
  Batcher(const std::vector<PreparedSample>* prepared,
          std::vector<int64_t> indices, int64_t batch_size, Task task,
          Rng* rng);

  // Starts a new epoch (reshuffles).
  void StartEpoch();
  // Fills `batch` with the next mini-batch; returns false at epoch end. The
  // final partial batch is emitted.
  bool Next(Batch* batch);

  int64_t NumBatchesPerEpoch() const;

  // Checkpoint/resume support: the current index permutation. StartEpoch's
  // shuffle permutes this order in place, so restoring it (together with the
  // Rng that drives the shuffle) replays the remaining epochs bit-for-bit.
  const std::vector<int64_t>& order() const { return indices_; }
  // CHECK-fails unless `order` is a permutation of the batcher's index set.
  void RestoreOrder(std::vector<int64_t> order);

 private:
  const std::vector<PreparedSample>* prepared_;
  std::vector<int64_t> indices_;
  int64_t batch_size_;
  Task task_;
  Rng* rng_;
  int64_t cursor_ = 0;
};

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_PIPELINE_H_
