#include "data/shard_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "health/crc32.h"
#include "util/logging.h"

namespace elda {
namespace data {
namespace {

constexpr uint32_t kHeaderMagic = 0x53444C45;  // "ELDS" little-endian
constexpr uint32_t kMetaMagic = 0x4D444C45;    // "ELDM"
constexpr uint32_t kRecordMagic = 0x52444C45;  // "ELDR"

// header: magic | version | num_features | flags | reserved | crc
constexpr uint64_t kHeaderSize = 4 + 4 + 4 + 4 + 8 + 4;
constexpr uint64_t kFrameHeaderSize = 8;  // frame_magic | payload_size
// payload prefix before the value/observed grids:
// length | num_steps | num_features | mortality | los | patient_id | cond
constexpr uint32_t kRecordPrefixSize = 4 + 4 + 4 + 4 + 4 + 8 + 8;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

std::string ShardPath(const std::string& prefix, int64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%05lld.elds",
                static_cast<long long>(index));
  return prefix + buf;
}

std::vector<std::string> ListShards(const std::string& prefix) {
  std::vector<std::string> paths;
  for (int64_t i = 0;; ++i) {
    std::string path = ShardPath(prefix, i);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) break;
    paths.push_back(std::move(path));
  }
  return paths;
}

// ---------------------------------------------------------------------------
// ShardWriter

ShardWriter::ShardWriter(const std::string& path,
                         std::vector<std::string> feature_names)
    : path_(path), feature_names_(std::move(feature_names)) {
  file_ = std::fopen(path.c_str(), "wb");
  ELDA_CHECK(file_ != nullptr) << "cannot create shard " << path;

  std::string header;
  AppendPod<uint32_t>(&header, kHeaderMagic);
  AppendPod<uint32_t>(&header, kShardFormatVersion);
  AppendPod<uint32_t>(&header, static_cast<uint32_t>(feature_names_.size()));
  AppendPod<uint32_t>(&header, 0);  // flags
  AppendPod<uint64_t>(&header, 0);  // reserved
  AppendPod<uint32_t>(&header,
                      health::Crc32(header.data(), header.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    failed_ = true;
  }

  std::string meta;
  AppendPod<uint32_t>(&meta, static_cast<uint32_t>(feature_names_.size()));
  for (const std::string& name : feature_names_) {
    AppendPod<uint32_t>(&meta, static_cast<uint32_t>(name.size()));
    meta.append(name);
  }
  WriteFrame(kMetaMagic, meta);
}

ShardWriter::~ShardWriter() { Close(); }

void ShardWriter::WriteFrame(uint32_t frame_magic, const std::string& payload) {
  if (file_ == nullptr || failed_) return;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + 4);
  AppendPod<uint32_t>(&frame, frame_magic);
  AppendPod<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  AppendPod<uint32_t>(&frame, health::Crc32(payload.data(), payload.size()));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    failed_ = true;
  }
}

void ShardWriter::Append(const EmrSample& sample) {
  ELDA_CHECK_EQ(sample.num_features,
                static_cast<int64_t>(feature_names_.size()));
  ELDA_CHECK(sample.length >= 0 && sample.length <= sample.num_steps);
  const size_t cells = static_cast<size_t>(sample.num_steps) *
                       static_cast<size_t>(sample.num_features);
  std::string payload;
  payload.reserve(kRecordPrefixSize + cells * (sizeof(float) + 1));
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(sample.length));
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(sample.num_steps));
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(sample.num_features));
  AppendPod<float>(&payload, sample.mortality_label);
  AppendPod<float>(&payload, sample.los_gt7_label);
  AppendPod<int64_t>(&payload, sample.patient_id);
  AppendPod<int64_t>(&payload, sample.condition);
  payload.append(reinterpret_cast<const char*>(sample.values.data()),
                 cells * sizeof(float));
  payload.append(reinterpret_cast<const char*>(sample.observed.data()), cells);
  // v2 label trailer. Counts are validated here so a malformed sample fails
  // at write time, not as a quarantined record at read time.
  const uint32_t num_decomp =
      static_cast<uint32_t>(sample.decomp_labels.size());
  ELDA_CHECK(num_decomp == 0 ||
             num_decomp == static_cast<uint32_t>(sample.num_steps));
  const uint32_t num_pheno =
      static_cast<uint32_t>(sample.phenotype_labels.size());
  ELDA_CHECK(num_pheno == 0 ||
             num_pheno == static_cast<uint32_t>(kNumPhenotypes));
  AppendPod<uint32_t>(&payload, num_decomp);
  payload.append(reinterpret_cast<const char*>(sample.decomp_labels.data()),
                 num_decomp * sizeof(float));
  AppendPod<uint32_t>(&payload, num_pheno);
  payload.append(reinterpret_cast<const char*>(sample.phenotype_labels.data()),
                 num_pheno * sizeof(float));
  WriteFrame(kRecordMagic, payload);
  ++num_records_;
}

bool ShardWriter::Close() {
  if (file_ == nullptr) return !failed_;
  if (std::fflush(file_) != 0) failed_ = true;
  if (std::fclose(file_) != 0) failed_ = true;
  file_ = nullptr;
  return !failed_;
}

// ---------------------------------------------------------------------------
// ShardReader

ShardReader::ShardReader(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    Fail("cannot open shard " + path);
    return;
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Fail("cannot stat shard " + path);
    return;
  }
  map_size_ = static_cast<uint64_t>(st.st_size);
  if (map_size_ < kHeaderSize) {
    Fail("shard too short for header: " + path);
    return;
  }
  void* map = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map == MAP_FAILED) {
    map_ = nullptr;
    Fail("mmap failed for shard " + path);
    return;
  }
  map_ = static_cast<const uint8_t*>(map);

  const uint32_t magic = ReadPod<uint32_t>(map_);
  const uint32_t version = ReadPod<uint32_t>(map_ + 4);
  num_features_ = ReadPod<uint32_t>(map_ + 8);
  const uint32_t header_crc = ReadPod<uint32_t>(map_ + kHeaderSize - 4);
  if (magic != kHeaderMagic) {
    Fail("bad shard magic: " + path);
    return;
  }
  if (version < kMinShardFormatVersion || version > kShardFormatVersion) {
    Fail("unsupported shard version: " + path);
    return;
  }
  version_ = version;
  if (health::Crc32(map_, kHeaderSize - 4) != header_crc) {
    Fail("header CRC mismatch: " + path);
    return;
  }
  ScanFrames();
  ok_ = true;
}

ShardReader::~ShardReader() {
  if (map_ != nullptr) ::munmap(const_cast<uint8_t*>(map_), map_size_);
  if (fd_ >= 0) ::close(fd_);
}

void ShardReader::Fail(std::string message) {
  ok_ = false;
  if (error_.empty()) error_ = std::move(message);
}

void ShardReader::ScanFrames() {
  uint64_t offset = kHeaderSize;
  while (offset + kFrameHeaderSize <= map_size_) {
    const uint32_t frame_magic = ReadPod<uint32_t>(map_ + offset);
    const uint32_t payload_size = ReadPod<uint32_t>(map_ + offset + 4);
    if (frame_magic != kMetaMagic && frame_magic != kRecordMagic) {
      tail_truncated_ = true;  // chain broken; keep the valid prefix
      return;
    }
    const uint64_t frame_end =
        offset + kFrameHeaderSize + static_cast<uint64_t>(payload_size) + 4;
    if (frame_end > map_size_) {
      tail_truncated_ = true;  // torn tail: writer died mid-record
      return;
    }
    const uint8_t* payload = map_ + offset + kFrameHeaderSize;
    if (frame_magic == kMetaMagic) {
      const uint32_t crc = ReadPod<uint32_t>(payload + payload_size);
      if (health::Crc32(payload, payload_size) == crc) {
        ParseMeta(payload, payload_size);
      } else {
        ++num_quarantined_;
      }
    } else {
      RecordRef ref;
      ref.payload_offset = offset + kFrameHeaderSize;
      ref.payload_size = payload_size;
      records_.push_back(ref);
    }
    offset = frame_end;
  }
  if (offset != map_size_) tail_truncated_ = true;
}

bool ShardReader::ParseMeta(const uint8_t* payload, uint32_t size) {
  if (size < 4) return false;
  const uint32_t count = ReadPod<uint32_t>(payload);
  uint32_t pos = 4;
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > size) return false;
    const uint32_t len = ReadPod<uint32_t>(payload + pos);
    pos += 4;
    if (pos + len > size) return false;
    names.emplace_back(reinterpret_cast<const char*>(payload + pos), len);
    pos += len;
  }
  feature_names_ = std::move(names);
  return true;
}

int64_t ShardReader::PeekLength(int64_t i) const {
  ELDA_CHECK(i >= 0 && i < size());
  const RecordRef& ref = records_[static_cast<size_t>(i)];
  if (ref.payload_size < 4) return -1;
  return ReadPod<uint32_t>(map_ + ref.payload_offset);
}

bool ShardReader::PeekShape(int64_t i, int64_t* length,
                            int64_t* num_steps) const {
  ELDA_CHECK(i >= 0 && i < size());
  const RecordRef& ref = records_[static_cast<size_t>(i)];
  if (ref.payload_size < 8) return false;
  *length = ReadPod<uint32_t>(map_ + ref.payload_offset);
  *num_steps = ReadPod<uint32_t>(map_ + ref.payload_offset + 4);
  return true;
}

bool ShardReader::Read(int64_t i, EmrSample* out) {
  ELDA_CHECK(i >= 0 && i < size());
  const RecordRef& ref = records_[static_cast<size_t>(i)];
  const uint8_t* payload = map_ + ref.payload_offset;
  const uint32_t stored_crc =
      ReadPod<uint32_t>(payload + ref.payload_size);
  if (health::Crc32(payload, ref.payload_size) != stored_crc) {
    ++num_quarantined_;
    return false;
  }
  if (ref.payload_size < kRecordPrefixSize) {
    ++num_quarantined_;
    return false;
  }
  const int64_t length = ReadPod<uint32_t>(payload);
  const int64_t num_steps = ReadPod<uint32_t>(payload + 4);
  const int64_t num_features = ReadPod<uint32_t>(payload + 8);
  const uint64_t cells =
      static_cast<uint64_t>(num_steps) * static_cast<uint64_t>(num_features);
  const uint64_t grids_end =
      kRecordPrefixSize + cells * (sizeof(float) + 1);
  // v1 payloads end at the grids; v2 payloads carry the label trailer
  // (validated below once the counts are decoded).
  const bool size_ok = version_ == 1
                           ? ref.payload_size == grids_end
                           : ref.payload_size >= grids_end + 8;
  if (num_features != num_features_ || length > num_steps || !size_ok) {
    ++num_quarantined_;
    return false;
  }
  EmrSample sample(num_steps, num_features);
  sample.length = length;
  sample.mortality_label = ReadPod<float>(payload + 12);
  sample.los_gt7_label = ReadPod<float>(payload + 16);
  sample.patient_id = ReadPod<int64_t>(payload + 20);
  sample.condition = ReadPod<int64_t>(payload + 28);
  std::memcpy(sample.values.data(), payload + kRecordPrefixSize,
              cells * sizeof(float));
  std::memcpy(sample.observed.data(),
              payload + kRecordPrefixSize + cells * sizeof(float), cells);
  if (version_ >= 2) {
    uint64_t pos = grids_end;
    const uint32_t num_decomp = ReadPod<uint32_t>(payload + pos);
    pos += 4;
    const bool decomp_ok =
        (num_decomp == 0 ||
         num_decomp == static_cast<uint32_t>(num_steps)) &&
        pos + num_decomp * sizeof(float) + 4 <= ref.payload_size;
    if (!decomp_ok) {
      ++num_quarantined_;
      return false;
    }
    sample.decomp_labels.resize(num_decomp);
    std::memcpy(sample.decomp_labels.data(), payload + pos,
                num_decomp * sizeof(float));
    pos += num_decomp * sizeof(float);
    const uint32_t num_pheno = ReadPod<uint32_t>(payload + pos);
    pos += 4;
    const bool pheno_ok =
        (num_pheno == 0 ||
         num_pheno == static_cast<uint32_t>(kNumPhenotypes)) &&
        pos + num_pheno * sizeof(float) == ref.payload_size;
    if (!pheno_ok) {
      ++num_quarantined_;
      return false;
    }
    sample.phenotype_labels.resize(num_pheno);
    std::memcpy(sample.phenotype_labels.data(), payload + pos,
                num_pheno * sizeof(float));
  }
  *out = std::move(sample);
  return true;
}

void ShardReader::ReleasePages() {
  if (map_ == nullptr || map_size_ == 0) return;
  // Best-effort: dropping clean mapped pages only affects residency, never
  // correctness, so the return value is deliberately ignored.
  ::madvise(const_cast<uint8_t*>(map_), map_size_, MADV_DONTNEED);
}

}  // namespace data
}  // namespace elda
