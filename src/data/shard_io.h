// CRC-framed binary shard format for out-of-core cohorts.
//
// A shard is a fixed-size header followed by a sequence of CRC-framed
// records, one per EmrSample:
//
//   header : "ELDS" | u32 version | u32 num_features | u32 flags
//            | u64 reserved | u32 header_crc
//   frame  : u32 frame_magic | u32 payload_size | payload
//            | u32 crc32(payload)
//
// Frame magics: "ELDM" (shard metadata: feature names, written once right
// after the header) and "ELDR" (one sample). A sample payload is
//
//   u32 length | u32 num_steps | u32 num_features
//   | f32 mortality | f32 los_gt7 | i64 patient_id | i64 condition
//   | f32 values[num_steps * num_features]
//   | u8  observed[num_steps * num_features]
//   | u32 num_decomp  | f32 decomp[num_decomp]        (v2 label trailer)
//   | u32 num_pheno   | f32 phenotype[num_pheno]
//
// The v2 label trailer rides at the very END of the payload so the
// PeekLength / PeekShape prefix reads are layout-identical across versions.
// num_decomp is 0 or num_steps; num_pheno is 0 or kNumPhenotypes (samples
// without multi-task labels write empty counts). v1 shards have no trailer;
// readers accept both versions and surface v1 records with empty label
// vectors.
//
// Floats are stored as raw IEEE-754 bit patterns, so a write/read round
// trip is bitwise. Writers stream records through a bounded buffer
// (million-stay cohorts never materialize); readers memory-map the shard,
// so resident memory is bounded by the pages actually touched, and
// `ReleasePages()` gives them back to the OS between epochs.
//
// Failure containment:
//   - The frame chain is scanned once at open using only the 8-byte frame
//     headers; a torn tail (writer killed mid-record) ends the scan and the
//     valid prefix stays readable (`tail_truncated()` reports it).
//   - Payload CRCs are validated at decode time, not open time. A corrupt
//     record makes `Read()` return false and is counted in
//     `num_quarantined()`; it never aborts the process.

#ifndef ELDA_DATA_SHARD_IO_H_
#define ELDA_DATA_SHARD_IO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "data/emr.h"

namespace elda {
namespace data {

// v2 appended the multi-task label trailer (writers emit v2; readers accept
// v1 and v2 — v1 records simply decode with empty label vectors).
inline constexpr uint32_t kShardFormatVersion = 2;
inline constexpr uint32_t kMinShardFormatVersion = 1;

// Canonical shard file name: "<prefix>-<index padded to 5>.elds".
std::string ShardPath(const std::string& prefix, int64_t index);

// Lists existing shards "<prefix>-00000.elds", "<prefix>-00001.elds", ...
// stopping at the first missing index. Deterministic (no directory order
// dependence).
std::vector<std::string> ListShards(const std::string& prefix);

// Streaming writer. Appends one CRC-framed record per sample through a
// bounded in-process buffer; nothing about the cohort is retained.
class ShardWriter {
 public:
  // Creates/truncates `path`, writes the header and the metadata frame.
  ShardWriter(const std::string& path,
              std::vector<std::string> feature_names);
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  void Append(const EmrSample& sample);

  // Flushes and closes the file. Returns false on I/O error. Safe to call
  // more than once.
  bool Close();

  int64_t num_records() const { return num_records_; }
  const std::string& path() const { return path_; }

 private:
  void WriteFrame(uint32_t frame_magic, const std::string& payload);

  std::string path_;
  std::vector<std::string> feature_names_;
  FILE* file_ = nullptr;
  int64_t num_records_ = 0;
  bool failed_ = false;
};

// Memory-mapped reader. The frame chain is scanned once at construction;
// record payloads are decoded (and CRC-checked) on demand.
class ShardReader {
 public:
  explicit ShardReader(const std::string& path);
  ~ShardReader();

  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  int64_t size() const { return static_cast<int64_t>(records_.size()); }
  int64_t num_features() const { return num_features_; }
  // Format version of the open shard (1 = no label trailer).
  uint32_t version() const { return version_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  // Decodes record `i` into `*out`. Returns false (and bumps
  // num_quarantined) if the payload fails its CRC or shape checks; `*out`
  // is untouched in that case.
  bool Read(int64_t i, EmrSample* out);

  // Valid-prefix length of record `i` without decoding the full payload
  // (reads only the first payload word). Used for length-bucketed batching.
  // Returns -1 for a record too short to hold a header.
  int64_t PeekLength(int64_t i) const;

  // Like PeekLength but also reports the record's grid rows. Returns false
  // for a record too short to hold the shape prefix.
  bool PeekShape(int64_t i, int64_t* length, int64_t* num_steps) const;

  // True if the scan hit a torn tail (e.g. the writer was killed); the
  // records before the tear are still readable.
  bool tail_truncated() const { return tail_truncated_; }
  int64_t num_quarantined() const {
    return num_quarantined_.load(std::memory_order_relaxed);
  }

  // Advises the kernel to drop this shard's resident pages (the mapping
  // stays valid; pages fault back in on next access). Called by the loader
  // between epochs to bound RSS.
  void ReleasePages();

 private:
  struct RecordRef {
    uint64_t payload_offset = 0;
    uint32_t payload_size = 0;
  };

  void Fail(std::string message);
  void ScanFrames();
  bool ParseMeta(const uint8_t* payload, uint32_t size);

  std::string path_;
  int fd_ = -1;
  const uint8_t* map_ = nullptr;
  uint64_t map_size_ = 0;

  bool ok_ = false;
  std::string error_;
  uint32_t version_ = kShardFormatVersion;
  int64_t num_features_ = 0;
  std::vector<std::string> feature_names_;
  std::vector<RecordRef> records_;
  bool tail_truncated_ = false;
  // Atomic: loaders decode records from several threads concurrently.
  std::atomic<int64_t> num_quarantined_{0};
};

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_SHARD_IO_H_
