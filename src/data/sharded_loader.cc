#include "data/sharded_loader.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "par/par.h"
#include "util/logging.h"

namespace elda {
namespace data {
namespace {

constexpr uint32_t kLoaderStateMagic = 0x4C435253;  // "SRCL"

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& in, size_t* pos, T* value) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

bool KeepIndex(int64_t global_index, int64_t split_mod,
               const std::vector<int64_t>& split_keep) {
  if (split_mod <= 1) return true;
  const int64_t residue = global_index % split_mod;
  for (int64_t keep : split_keep) {
    if (residue == keep) return true;
  }
  return false;
}

}  // namespace

Standardizer FitStandardizerFromShards(
    const std::vector<std::string>& shard_paths, int64_t split_mod,
    const std::vector<int64_t>& split_keep, bool clean_negative) {
  ELDA_CHECK(!shard_paths.empty());
  std::vector<double> sum, sum_sq;
  std::vector<int64_t> count;
  int64_t num_features = -1;
  int64_t global_index = 0;
  for (const std::string& path : shard_paths) {
    ShardReader reader(path);
    ELDA_CHECK(reader.ok()) << reader.error();
    if (num_features < 0) {
      num_features = reader.num_features();
      sum.assign(num_features, 0.0);
      sum_sq.assign(num_features, 0.0);
      count.assign(num_features, 0);
    }
    ELDA_CHECK_EQ(reader.num_features(), num_features);
    for (int64_t i = 0; i < reader.size(); ++i, ++global_index) {
      if (!KeepIndex(global_index, split_mod, split_keep)) continue;
      EmrSample s;
      if (!reader.Read(i, &s)) continue;  // quarantined record
      for (int64_t t = 0; t < s.num_steps; ++t) {
        for (int64_t c = 0; c < num_features; ++c) {
          if (!s.is_observed(t, c)) continue;
          const float v = s.value(t, c);
          if (clean_negative && v < 0.0f) continue;
          sum[c] += v;
          sum_sq[c] += static_cast<double>(v) * v;
          ++count[c];
        }
      }
    }
  }
  // Identical arithmetic to Standardizer::Fit, so a shard round trip of an
  // in-RAM cohort fits the same statistics bit-for-bit.
  std::vector<float> mean(num_features, 0.0f);
  std::vector<float> stddev(num_features, 1.0f);
  for (int64_t c = 0; c < num_features; ++c) {
    if (count[c] == 0) continue;
    mean[c] = static_cast<float>(sum[c] / count[c]);
    const double var =
        sum_sq[c] / count[c] - static_cast<double>(mean[c]) * mean[c];
    stddev[c] = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  }
  Standardizer standardizer;
  standardizer.Restore(std::move(mean), std::move(stddev), clean_negative);
  return standardizer;
}

ShardedLoader::ShardedLoader(const std::vector<std::string>& shard_paths,
                             const Standardizer* standardizer,
                             ShardedLoaderOptions options)
    : options_(std::move(options)),
      standardizer_(standardizer),
      rng_(options_.seed) {
  ELDA_CHECK(!shard_paths.empty());
  ELDA_CHECK(standardizer_ != nullptr && standardizer_->fitted());
  ELDA_CHECK_GT(options_.batch_size, 0);
  ELDA_CHECK_GT(options_.num_buckets, 0);
  ELDA_CHECK_GT(options_.split_mod, 0);

  int64_t global_index = 0;
  for (const std::string& path : shard_paths) {
    auto reader = std::make_unique<ShardReader>(path);
    ELDA_CHECK(reader->ok()) << reader->error();
    if (feature_names_.empty()) feature_names_ = reader->feature_names();
    ELDA_CHECK_EQ(reader->num_features(),
                  static_cast<int64_t>(feature_names_.size()));
    const int32_t shard_id = static_cast<int32_t>(readers_.size());
    for (int64_t i = 0; i < reader->size(); ++i, ++global_index) {
      if (!KeepIndex(global_index, options_.split_mod, options_.split_keep)) {
        continue;
      }
      int64_t length = 0, grid_steps = 0;
      if (!reader->PeekShape(i, &length, &grid_steps) || length < 0 ||
          length > grid_steps) {
        num_quarantined_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Entry e;
      e.shard = shard_id;
      e.record = static_cast<int32_t>(i);
      e.length = static_cast<int32_t>(length);
      e.grid_steps = static_cast<int32_t>(grid_steps);
      e.global_index = global_index;
      entries_.push_back(e);
    }
    // The frame scan + per-record shape peeks fault-around most of the
    // shard's pages; drop them now so indexing N shards keeps ~one shard
    // resident instead of the whole cohort.
    reader->ReleasePages();
    readers_.push_back(std::move(reader));
  }
  ELDA_CHECK(!entries_.empty()) << "loader split selects no records";

  // Bucket boundaries are length quantiles of the kept records, so each
  // bucket holds ~1/num_buckets of the cohort and padding within a bucket
  // is bounded by the bucket's length spread.
  std::vector<int64_t> lengths;
  lengths.reserve(entries_.size());
  for (const Entry& e : entries_) lengths.push_back(e.length);
  std::sort(lengths.begin(), lengths.end());
  const int64_t n = static_cast<int64_t>(lengths.size());
  bucket_upper_.clear();
  for (int64_t b = 0; b < options_.num_buckets; ++b) {
    const int64_t hi = (b + 1) * n / options_.num_buckets;
    bucket_upper_.push_back(lengths[std::max<int64_t>(0, hi - 1)]);
  }
  bucket_upper_.back() = lengths.back();
  bucket_entries_.assign(bucket_upper_.size(), {});
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t b = 0;
    while (b + 1 < bucket_upper_.size() &&
           entries_[i].length > bucket_upper_[b]) {
      ++b;
    }
    bucket_entries_[b].push_back(static_cast<int64_t>(i));
  }
}

ShardedLoader::~ShardedLoader() { StopPrefetch(); }

int64_t ShardedLoader::NumBatchesPerEpoch() const {
  int64_t batches = 0;
  for (const std::vector<int64_t>& bucket : bucket_entries_) {
    batches += (static_cast<int64_t>(bucket.size()) + options_.batch_size - 1) /
               options_.batch_size;
  }
  return batches;
}

double ShardedLoader::PaddingWaste() const {
  // Upper bound: pad every bucket to its longest grid. Actual batches pad to
  // their own max, so any epoch plan wastes at most this fraction.
  double padded = 0.0, real = 0.0;
  for (const std::vector<int64_t>& bucket : bucket_entries_) {
    int64_t bucket_max = 0;
    int64_t bucket_real = 0;
    for (int64_t idx : bucket) {
      bucket_max = std::max<int64_t>(bucket_max, entries_[idx].grid_steps);
      bucket_real += entries_[idx].length;
    }
    padded += static_cast<double>(bucket_max) *
              static_cast<double>(bucket.size());
    real += static_cast<double>(bucket_real);
  }
  if (padded == 0.0) return 0.0;
  return 1.0 - real / padded;
}

void ShardedLoader::BuildEpochPlan(Rng* rng) {
  plan_.clear();
  for (const std::vector<int64_t>& bucket : bucket_entries_) {
    std::vector<int64_t> order = bucket;
    rng->Shuffle(&order);
    for (int64_t start = 0; start < static_cast<int64_t>(order.size());
         start += options_.batch_size) {
      const int64_t end = std::min<int64_t>(start + options_.batch_size,
                                            static_cast<int64_t>(order.size()));
      plan_.emplace_back(order.begin() + start, order.begin() + end);
    }
  }
  // Interleave buckets so the gradient stream is not sorted by length.
  rng->Shuffle(&plan_);
}

bool ShardedLoader::BuildBatch(int64_t plan_index, Batch* batch) {
  // Intra-epoch residency cap: on cohorts larger than RAM an epoch touches
  // every shard page, so without this the peak RSS is the cohort size.
  // Dropping the mappings is perf-only (rows re-fault from the page cache);
  // the decoded bytes — and therefore the batch stream — are unchanged.
  if (options_.release_pages_budget_bytes > 0 &&
      bytes_since_release_ >= options_.release_pages_budget_bytes) {
    bytes_since_release_ = 0;
    ReleasePages();
  }
  const std::vector<int64_t>& batch_entries = plan_[plan_index];
  const int64_t features = static_cast<int64_t>(feature_names_.size());
  for (int64_t entry_index : batch_entries) {
    // values (float) + observed (byte) per grid cell dominates the frame.
    bytes_since_release_ +=
        entries_[entry_index].grid_steps * features * 5 + 64;
  }
  const int64_t rows = static_cast<int64_t>(batch_entries.size());
  std::vector<PreparedSample> prepared(rows);
  std::vector<uint8_t> row_ok(rows, 0);
  // Decode + standardise + impute each row independently; rows are disjoint
  // slots, so the result is bitwise identical for any thread count.
  par::ParallelFor(0, rows, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const Entry& e = entries_[batch_entries[i]];
      EmrSample sample;
      if (!readers_[e.shard]->Read(e.record, &sample)) continue;
      prepared[i] = PrepareOne(sample, *standardizer_);
      row_ok[i] = 1;
    }
  });
  std::vector<int64_t> kept;
  kept.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (row_ok[i]) {
      kept.push_back(i);
    } else {
      num_quarantined_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (kept.empty()) return false;
  *batch = MakeBatch(prepared, kept, options_.task);
  // Report provenance as pre-filter global record indices, not positions in
  // the local `prepared` scratch vector.
  for (size_t i = 0; i < kept.size(); ++i) {
    batch->sample_indices[i] = entries_[batch_entries[kept[i]]].global_index;
  }
  return true;
}

void ShardedLoader::StartEpoch() {
  StopPrefetch();
  bytes_since_release_ = 0;
  epoch_start_rng_ = rng_.SaveState();
  BuildEpochPlan(&rng_);
  cursor_ = 0;
  epoch_active_ = true;
  if (options_.prefetch && !plan_.empty()) StartPrefetch();
}

bool ShardedLoader::Next(Batch* batch) {
  if (!epoch_active_) return false;
  const int64_t plan_size = static_cast<int64_t>(plan_.size());
  while (cursor_ < plan_size) {
    Batch candidate;
    bool have = false;
    if (prefetch_thread_.joinable()) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !ready_.empty(); });
      ELDA_CHECK_EQ(ready_.front().first, cursor_);
      candidate = std::move(ready_.front().second);
      ready_.pop_front();
      cv_.notify_all();
      have = !candidate.sample_indices.empty();
    } else {
      have = BuildBatch(cursor_, &candidate);
    }
    ++cursor_;
    if (have) {
      *batch = std::move(candidate);
      return true;
    }
    // Every row of this plan batch was quarantined; fall through to the next.
  }
  StopPrefetch();
  epoch_active_ = false;
  ReleasePages();
  return false;
}

void ShardedLoader::StartPrefetch() {
  stop_prefetch_ = false;
  ready_.clear();
  produce_next_ = cursor_;
  prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
}

void ShardedLoader::StopPrefetch() {
  if (prefetch_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_prefetch_ = true;
    }
    cv_.notify_all();
    prefetch_thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  stop_prefetch_ = false;
  ready_.clear();
}

void ShardedLoader::PrefetchLoop() {
  const int64_t plan_size = static_cast<int64_t>(plan_.size());
  while (true) {
    int64_t index;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_prefetch_ ||
               (ready_.size() < 2 && produce_next_ < plan_size);
      });
      if (stop_prefetch_) return;
      index = produce_next_++;
    }
    Batch batch;
    const bool have = BuildBatch(index, &batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_.emplace_back(index, have ? std::move(batch) : Batch());
    }
    cv_.notify_all();
    if (index + 1 >= plan_size) return;
  }
}

std::string ShardedLoader::ExportState() const {
  std::string state;
  AppendPod<uint32_t>(&state, kLoaderStateMagic);
  AppendPod<uint8_t>(&state, epoch_active_ ? 1 : 0);
  const RngState rng_state =
      epoch_active_ ? epoch_start_rng_ : rng_.SaveState();
  for (uint64_t word : rng_state.s) AppendPod<uint64_t>(&state, word);
  AppendPod<double>(&state, rng_state.cached_normal);
  AppendPod<uint8_t>(&state, rng_state.has_cached_normal ? 1 : 0);
  AppendPod<int64_t>(&state, epoch_active_ ? cursor_ : 0);
  AppendPod<int64_t>(&state, static_cast<int64_t>(entries_.size()));
  return state;
}

bool ShardedLoader::RestoreState(const std::string& state) {
  size_t pos = 0;
  uint32_t magic;
  uint8_t active, has_cached;
  RngState rng_state;
  int64_t cursor, num_entries;
  if (!ReadPod(state, &pos, &magic) || magic != kLoaderStateMagic) {
    return false;
  }
  if (!ReadPod(state, &pos, &active)) return false;
  for (uint64_t& word : rng_state.s) {
    if (!ReadPod(state, &pos, &word)) return false;
  }
  if (!ReadPod(state, &pos, &rng_state.cached_normal)) return false;
  if (!ReadPod(state, &pos, &has_cached)) return false;
  rng_state.has_cached_normal = has_cached != 0;
  if (!ReadPod(state, &pos, &cursor)) return false;
  if (!ReadPod(state, &pos, &num_entries)) return false;
  if (pos != state.size()) return false;
  if (num_entries != static_cast<int64_t>(entries_.size())) return false;

  StopPrefetch();
  rng_.RestoreState(rng_state);
  if (active) {
    // Replay the epoch shuffle from the saved snapshot; the plan is a pure
    // function of the rng, so the remaining batches are bitwise identical.
    epoch_start_rng_ = rng_state;
    BuildEpochPlan(&rng_);
    if (cursor < 0 || cursor > static_cast<int64_t>(plan_.size())) {
      epoch_active_ = false;
      plan_.clear();
      return false;
    }
    cursor_ = cursor;
    epoch_active_ = true;
    if (options_.prefetch && cursor_ < static_cast<int64_t>(plan_.size())) {
      StartPrefetch();
    }
  } else {
    epoch_active_ = false;
    plan_.clear();
    cursor_ = 0;
  }
  return true;
}

void ShardedLoader::ReleasePages() {
  for (const std::unique_ptr<ShardReader>& reader : readers_) {
    reader->ReleasePages();
  }
}

}  // namespace data
}  // namespace elda
