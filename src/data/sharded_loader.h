// Out-of-core batch loader over memory-mapped shards.
//
// The ShardedLoader is the streaming counterpart of the in-RAM Batcher: it
// implements the same BatchSource interface over shard files written by
// data::ShardWriter, so Trainer::TrainStreamed can train on cohorts that
// never fit in memory. Three mechanisms keep it fast and reproducible:
//
//   - Length-bucketed batching. Record lengths are peeked (8 bytes per
//     record) at open; bucket boundaries are length quantiles, so every
//     batch mixes only similar lengths and padding waste is bounded.
//     Batches never cross buckets.
//   - Double-buffered prefetch. A background thread materializes up to two
//     batches ahead (decode + standardise + impute via par::ParallelFor over
//     rows) while the trainer consumes the current one. The epoch plan is
//     fixed before the thread starts, so the batch stream is bitwise
//     identical with prefetch on or off and for any thread count.
//   - Deterministic checkpointable cursor. Each epoch's plan is a pure
//     function of the loader's Rng; ExportState captures the epoch-start
//     Rng snapshot plus the batch cursor, and RestoreState replays the
//     shuffle, so resume is bitwise. The state string travels through the
//     elda::health sectioned-checkpoint path.
//
// RSS stays bounded by the in-flight batches: shards are mmap'd read-only
// and their pages are dropped (madvise) per shard during index construction,
// every `release_pages_budget_bytes` decoded bytes mid-epoch, and again at
// every epoch end, so residency is capped by the release budget — not the
// cohort size. Dropped pages re-fault from the page cache on the next
// touch; values never change.

#ifndef ELDA_DATA_SHARDED_LOADER_H_
#define ELDA_DATA_SHARDED_LOADER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/pipeline.h"
#include "data/shard_io.h"
#include "util/rng.h"

namespace elda {
namespace data {

struct ShardedLoaderOptions {
  int64_t batch_size = 32;
  // Number of length buckets; 1 disables bucketing (pure shuffle).
  int64_t num_buckets = 4;
  // Background double-buffered prefetch. Never changes the batch stream.
  bool prefetch = true;
  Task task = Task::kMortality;
  // Seeds the shuffle cursor.
  uint64_t seed = 0x10ADE25ULL;
  // Deterministic split filter: keep records whose global index i satisfies
  // (i % split_mod) ∈ split_keep. The default keeps every record; e.g.
  // mod=10 keep={0..7} / {8} / {9} is an 80/10/10 split that partitions the
  // cohort exactly across three loaders.
  int64_t split_mod = 1;
  std::vector<int64_t> split_keep = {0};
  // Drop the shards' mapped pages once this many record bytes have been
  // decoded since the last drop (and always at epoch end), capping resident
  // memory on cohorts larger than RAM at roughly this budget regardless of
  // how long the stays in the current buckets are. 0 releases at epoch end
  // only. Perf-only — the batch stream is byte-identical for any value.
  int64_t release_pages_budget_bytes = 256LL << 20;
};

// Streaming mean/std fit over shards (observed cells of the kept records
// only), equivalent to Standardizer::Fit on the same records in order.
Standardizer FitStandardizerFromShards(
    const std::vector<std::string>& shard_paths, int64_t split_mod = 1,
    const std::vector<int64_t>& split_keep = {0}, bool clean_negative = true);

class ShardedLoader : public BatchSource {
 public:
  ShardedLoader(const std::vector<std::string>& shard_paths,
                const Standardizer* standardizer,
                ShardedLoaderOptions options);
  ~ShardedLoader() override;

  ShardedLoader(const ShardedLoader&) = delete;
  ShardedLoader& operator=(const ShardedLoader&) = delete;

  void StartEpoch() override;
  bool Next(Batch* batch) override;
  int64_t NumBatchesPerEpoch() const override;
  std::string ExportState() const override;
  bool RestoreState(const std::string& state) override;

  // Records kept after the split filter (and quarantine).
  int64_t num_records() const {
    return static_cast<int64_t>(entries_.size());
  }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  // Fraction of padded grid rows that carry no real data, over one epoch of
  // the current bucketing ((padded - real) / padded). Plan-independent: only
  // bucket membership matters, not shuffle order.
  double PaddingWaste() const;
  // Records skipped because their payload failed CRC/shape validation.
  int64_t num_quarantined() const {
    return num_quarantined_.load(std::memory_order_relaxed);
  }
  // Drops resident shard pages (also called automatically at epoch end).
  void ReleasePages();

 private:
  struct Entry {
    int32_t shard = 0;
    int32_t record = 0;
    int32_t length = 0;
    int32_t grid_steps = 0;
    int64_t global_index = 0;  // pre-filter index across all shards
  };

  void BuildEpochPlan(Rng* rng);
  // Materializes plan batch `plan_index`. Returns false if every row was
  // quarantined (the caller skips the batch).
  bool BuildBatch(int64_t plan_index, Batch* batch);
  void StopPrefetch();
  void StartPrefetch();
  void PrefetchLoop();

  ShardedLoaderOptions options_;
  const Standardizer* standardizer_;
  std::vector<std::unique_ptr<ShardReader>> readers_;
  std::vector<std::string> feature_names_;
  std::vector<Entry> entries_;
  std::vector<int64_t> bucket_upper_;  // inclusive length bound per bucket
  std::vector<std::vector<int64_t>> bucket_entries_;  // entry idx per bucket
  std::atomic<int64_t> num_quarantined_{0};

  Rng rng_;
  RngState epoch_start_rng_;  // snapshot taken just before the epoch shuffle
  std::vector<std::vector<int64_t>> plan_;  // entry indices per batch
  int64_t cursor_ = 0;
  bool epoch_active_ = false;
  // Record bytes decoded since the last intra-epoch madvise; only ever
  // touched by the single thread that calls BuildBatch (producer when
  // prefetching, consumer otherwise).
  int64_t bytes_since_release_ = 0;

  // Prefetch machinery. The producer thread builds plan batches in order;
  // ready_ holds at most two.
  std::thread prefetch_thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<int64_t, Batch>> ready_;
  int64_t produce_next_ = 0;
  bool stop_prefetch_ = false;
};

}  // namespace data
}  // namespace elda

#endif  // ELDA_DATA_SHARDED_LOADER_H_
