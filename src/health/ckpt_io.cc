#include "health/ckpt_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "health/crc32.h"
#include "health/health.h"

namespace elda {
namespace health {
namespace {

constexpr char kMagic[4] = {'E', 'L', 'D', 'A'};
constexpr uint32_t kMaxSections = 256;
constexpr uint64_t kMaxSectionBytes = 1ULL << 33;  // 8 GiB

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& bytes, size_t* pos, T* value) {
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

bool WriteSectionedFile(const std::string& path,
                        const std::vector<Section>& sections,
                        std::string* error) {
  std::string buffer;
  buffer.append(kMagic, sizeof(kMagic));
  AppendPod(&buffer, kSectionedFormatVersion);
  AppendPod(&buffer, static_cast<uint32_t>(sections.size()));
  for (const Section& section : sections) {
    AppendPod(&buffer, static_cast<uint32_t>(section.name.size()));
    buffer.append(section.name);
    AppendPod(&buffer, static_cast<uint64_t>(section.payload.size()));
    buffer.append(section.payload);
    AppendPod(&buffer, Crc32(section.payload));
  }

  int64_t flip_offset = 0;
  const WriteFault fault =
      GlobalFaultInjector()->NextWriteFault(&flip_offset);
  if (fault == WriteFault::kFail) {
    return Fail(error, "injected write failure for " + path);
  }
  if (fault == WriteFault::kFlipByte && !buffer.empty()) {
    // Silent corruption: the write "succeeds" but one byte is damaged; only
    // the CRC check at load time can catch it.
    buffer[static_cast<size_t>(flip_offset) % buffer.size()] ^= 0x01;
  }
  if (fault == WriteFault::kTruncate) {
    // A torn non-atomic write: half the bytes land in the final file.
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(buffer.data(),
               static_cast<std::streamsize>(buffer.size() / 2));
    return Fail(error, "injected torn write for " + path);
  }

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(error, "cannot open " + tmp_path + " for writing");
    }
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Fail(error, "write failure on " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Fail(error, "cannot rename " + tmp_path + " over " + path);
  }
  return true;
}

bool ReadSectionedFile(const std::string& path, std::vector<Section>* sections,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  size_t pos = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + " is not an ELDA checkpoint");
  }
  pos += sizeof(kMagic);
  uint32_t version = 0;
  if (!ReadPod(bytes, &pos, &version)) {
    return Fail(error, path + " is truncated in the header");
  }
  if (version != kSectionedFormatVersion) {
    return Fail(error, path + " has unsupported checkpoint version " +
                           std::to_string(version));
  }
  uint32_t num_sections = 0;
  if (!ReadPod(bytes, &pos, &num_sections) || num_sections > kMaxSections) {
    return Fail(error, path + " has a corrupt section count");
  }
  std::vector<Section> parsed;
  parsed.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    Section section;
    uint32_t name_len = 0;
    if (!ReadPod(bytes, &pos, &name_len) || name_len > 4096 ||
        pos + name_len > bytes.size()) {
      return Fail(error, path + " has a corrupt section name (section " +
                             std::to_string(i) + ")");
    }
    section.name.assign(bytes, pos, name_len);
    pos += name_len;
    uint64_t payload_size = 0;
    if (!ReadPod(bytes, &pos, &payload_size) ||
        payload_size > kMaxSectionBytes ||
        pos + payload_size > bytes.size()) {
      return Fail(error, path + " is truncated in section '" + section.name +
                             "'");
    }
    section.payload.assign(bytes, pos, payload_size);
    pos += payload_size;
    uint32_t stored_crc = 0;
    if (!ReadPod(bytes, &pos, &stored_crc)) {
      return Fail(error, path + " is truncated in section '" + section.name +
                             "'");
    }
    const uint32_t actual_crc = Crc32(section.payload);
    if (actual_crc != stored_crc) {
      return Fail(error, "checksum mismatch in section '" + section.name +
                             "' of " + path + " (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual_crc) + ")");
    }
    parsed.push_back(std::move(section));
  }
  if (pos != bytes.size()) {
    return Fail(error, path + " has trailing bytes after the last section");
  }
  *sections = std::move(parsed);
  return true;
}

const Section* FindSection(const std::vector<Section>& sections,
                           const std::string& name) {
  for (const Section& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

}  // namespace health
}  // namespace elda
