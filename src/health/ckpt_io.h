// Crash-safe sectioned checkpoint container (format v2).
//
// Layout (little-endian):
//   magic "ELDA" | uint32 version (= 2) | uint32 num_sections |
//   per section: uint32 name_len | name bytes |
//                uint64 payload_size | payload bytes | uint32 crc32(payload)
//
// Writes are atomic: the file is assembled in memory, written to
// `path + ".tmp"`, flushed, and renamed over `path`, so a crash mid-write
// leaves the previous checkpoint intact. Every section payload carries a
// CRC32 that the reader verifies, so torn writes and bit rot are rejected
// with a precise error instead of being loaded as garbage.
//
// The writer consults the global health::FaultInjector, which lets tests
// deterministically fail a write, tear the file mid-write (bypassing the
// atomic rename, as a non-atomic writer would), or flip a byte in the output
// to exercise the CRC path.

#ifndef ELDA_HEALTH_CKPT_IO_H_
#define ELDA_HEALTH_CKPT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elda {
namespace health {

inline constexpr uint32_t kSectionedFormatVersion = 2;

struct Section {
  std::string name;
  std::string payload;  // raw bytes
};

// Writes `sections` to `path` atomically (temp file + rename). Returns false
// with a message in `error` on I/O failure or an injected write fault.
bool WriteSectionedFile(const std::string& path,
                        const std::vector<Section>& sections,
                        std::string* error);

// Reads a v2 sectioned file, verifying magic, version, structure, and every
// section's CRC32. Returns false with a precise error (naming the bad
// section) on any mismatch; `sections` is only filled on success.
bool ReadSectionedFile(const std::string& path, std::vector<Section>* sections,
                       std::string* error);

// Convenience lookup; returns nullptr when absent.
const Section* FindSection(const std::vector<Section>& sections,
                           const std::string& name);

}  // namespace health
}  // namespace elda

#endif  // ELDA_HEALTH_CKPT_IO_H_
