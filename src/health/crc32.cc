#include "health/crc32.h"

#include <array>

namespace elda {
namespace health {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace health
}  // namespace elda
