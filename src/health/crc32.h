// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// checkpoint sections so that torn writes and bit rot are detected at load
// time instead of silently corrupting a training run.

#ifndef ELDA_HEALTH_CRC32_H_
#define ELDA_HEALTH_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace elda {
namespace health {

// Checksum of `size` bytes at `data`. Pass a previous result as `crc` to
// continue an incremental computation over concatenated buffers:
//   Crc32(b, nb, Crc32(a, na)) == Crc32(ab, na + nb).
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

inline uint32_t Crc32(const std::string& bytes, uint32_t crc = 0) {
  return Crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace health
}  // namespace elda

#endif  // ELDA_HEALTH_CRC32_H_
