#include "health/health.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace elda {
namespace health {

const char* TrainStatusName(TrainStatus status) {
  switch (status) {
    case TrainStatus::kOk: return "ok";
    case TrainStatus::kRecovered: return "recovered";
    case TrainStatus::kAborted: return "aborted";
    case TrainStatus::kEmptyTrainSplit: return "empty-train-split";
    case TrainStatus::kCheckpointError: return "checkpoint-error";
  }
  return "unknown";
}

const char* StepVerdictName(StepVerdict verdict) {
  switch (verdict) {
    case StepVerdict::kHealthy: return "healthy";
    case StepVerdict::kNonFinite: return "non-finite";
    case StepVerdict::kLossExplosion: return "loss-explosion";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  ELDA_CHECK_GT(config_.loss_window, 0);
}

StepVerdict HealthMonitor::Check(double loss, double grad_norm) const {
  if (!std::isfinite(loss) || !std::isfinite(grad_norm)) {
    return StepVerdict::kNonFinite;
  }
  if (config_.loss_explosion_factor > 0.0 && observed_ > 0) {
    const double mean =
        window_sum_ / static_cast<double>(window_.size());
    if (loss > config_.loss_explosion_factor * mean) {
      return StepVerdict::kLossExplosion;
    }
  }
  return StepVerdict::kHealthy;
}

void HealthMonitor::Observe(double loss) {
  if (static_cast<int64_t>(window_.size()) < config_.loss_window) {
    window_.push_back(loss);
  } else {
    const size_t slot =
        static_cast<size_t>(observed_ % config_.loss_window);
    window_sum_ -= window_[slot];
    window_[slot] = loss;
  }
  window_sum_ += loss;
  ++observed_;
}

void HealthMonitor::Reset() {
  window_.clear();
  window_sum_ = 0.0;
  observed_ = 0;
}

bool FaultPlan::Any() const {
  return poison_grad_at_step >= 0 || fail_write_at >= 0 ||
         truncate_write_at >= 0 || flip_byte_write_at >= 0 ||
         drop_snapshot_at >= 0 || poison_state_at >= 0 ||
         slow_worker_index >= 0;
}

namespace {

bool ParseIndex(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  *value = std::atoll(text.c_str());
  return true;
}

bool ParseFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  *plan = FaultPlan();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    pos = end + 1;
    if (term.empty()) continue;
    const size_t at = term.find('@');
    if (at == std::string::npos) {
      return ParseFail(error, "fault term '" + term + "' is missing '@index'");
    }
    const std::string name = term.substr(0, at);
    std::string index_text = term.substr(at + 1);
    int64_t offset = -1;
    const size_t colon = index_text.find(':');
    if (colon != std::string::npos) {
      if ((name != "flip_byte" && name != "slow_worker") ||
          !ParseIndex(index_text.substr(colon + 1), &offset)) {
        return ParseFail(error, "bad fault term '" + term + "'");
      }
      index_text = index_text.substr(0, colon);
    }
    int64_t index = -1;
    if (!ParseIndex(index_text, &index)) {
      return ParseFail(error, "bad index in fault term '" + term + "'");
    }
    if (name == "poison_grad") {
      plan->poison_grad_at_step = index;
    } else if (name == "fail_write") {
      plan->fail_write_at = index;
    } else if (name == "truncate_write") {
      plan->truncate_write_at = index;
    } else if (name == "flip_byte") {
      plan->flip_byte_write_at = index;
      if (offset >= 0) plan->flip_byte_offset = offset;
    } else if (name == "drop_snapshot") {
      plan->drop_snapshot_at = index;
    } else if (name == "poison_state") {
      plan->poison_state_at = index;
    } else if (name == "slow_worker") {
      plan->slow_worker_index = index;
      if (offset >= 0) plan->slow_worker_delay_us = offset;
    } else {
      return ParseFail(error, "unknown fault '" + name + "'");
    }
  }
  return true;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  armed_ = true;
  poison_fired_ = false;
  poison_state_fired_ = false;
  write_count_ = 0;
  snapshot_count_ = 0;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = FaultPlan();
  armed_ = false;
  poison_fired_ = false;
  poison_state_fired_ = false;
  write_count_ = 0;
  snapshot_count_ = 0;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

bool FaultInjector::ConsumePoisonGrad(int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || poison_fired_ || plan_.poison_grad_at_step < 0 ||
      step != plan_.poison_grad_at_step) {
    return false;
  }
  poison_fired_ = true;
  return true;
}

WriteFault FaultInjector::NextWriteFault(int64_t* flip_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t write = write_count_++;
  if (!armed_) return WriteFault::kNone;
  if (write == plan_.fail_write_at) return WriteFault::kFail;
  if (write == plan_.truncate_write_at) return WriteFault::kTruncate;
  if (write == plan_.flip_byte_write_at) {
    if (flip_offset != nullptr) *flip_offset = plan_.flip_byte_offset;
    return WriteFault::kFlipByte;
  }
  return WriteFault::kNone;
}

int64_t FaultInjector::writes_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_count_;
}

bool FaultInjector::ConsumeDropSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t snapshot = snapshot_count_++;
  return armed_ && snapshot == plan_.drop_snapshot_at;
}

bool FaultInjector::ConsumePoisonState(int64_t record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || poison_state_fired_ || plan_.poison_state_at < 0 ||
      record != plan_.poison_state_at) {
    return false;
  }
  poison_state_fired_ = true;
  return true;
}

int64_t FaultInjector::SlowWorkerDelayUs(int64_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || plan_.slow_worker_index < 0 ||
      worker != plan_.slow_worker_index) {
    return 0;
  }
  return plan_.slow_worker_delay_us;
}

int64_t FaultInjector::snapshots_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_count_;
}

FaultInjector* GlobalFaultInjector() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* spec = std::getenv("ELDA_FAULT_PLAN");
        spec != nullptr && spec[0] != '\0') {
      FaultPlan plan;
      std::string error;
      ELDA_CHECK(FaultPlan::Parse(spec, &plan, &error))
          << "ELDA_FAULT_PLAN:" << error;
      inj->Arm(plan);
    }
    return inj;
  }();
  return injector;
}

}  // namespace health
}  // namespace elda
