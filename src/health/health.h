// Numerical-health monitoring and deterministic fault injection for the
// training loop.
//
// Long clinical-RNN runs fail in two characteristic ways: numerically (a NaN
// batch or exploding loss poisons the parameters) and operationally (the
// process is killed mid-run, or a checkpoint is torn on disk). This header
// provides the vocabulary for both:
//
//   * TrainStatus / RecoveryPolicy — the structured outcome of a run and the
//     configured reaction to an unhealthy step (skip the batch, roll back to
//     the last good snapshot with the learning rate halved, or abort).
//   * HealthMonitor — a per-step check fusing the NaN/Inf scan over the loss
//     and post-clip gradient norm with a loss-explosion detector (trailing
//     window mean).
//   * FaultPlan / FaultInjector — deterministic fault hooks (poison the
//     gradient at step N, fail / truncate / bit-flip checkpoint write K) so
//     every recovery path is exercised by tests instead of hoped-for.
//     Armed programmatically or via the ELDA_FAULT_PLAN environment variable.

#ifndef ELDA_HEALTH_HEALTH_H_
#define ELDA_HEALTH_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace elda {
namespace health {

// Structured outcome of a training run. Anything other than kOk/kRecovered
// means the returned metrics describe a partial run (or no run at all).
enum class TrainStatus {
  kOk,              // completed with no interventions
  kRecovered,       // completed after >= 1 skip or rollback
  kAborted,         // stopped by the recovery policy; metrics are best-so-far
  kEmptyTrainSplit, // nothing to train on; no metrics
  kCheckpointError, // resume requested but the checkpoint was unusable
};

const char* TrainStatusName(TrainStatus status);

// Reaction to an unhealthy training step.
enum class RecoveryPolicy {
  kSkipBatch,  // drop the batch's update and move on
  kRollback,   // restore the last epoch-boundary snapshot, halve the LR
  kAbort,      // stop training, return best-so-far metrics
};

struct HealthConfig {
  RecoveryPolicy policy = RecoveryPolicy::kRollback;
  // A step whose loss exceeds `loss_explosion_factor` times the trailing
  // window mean is flagged as an explosion; <= 0 disables the detector.
  double loss_explosion_factor = 1e3;
  int64_t loss_window = 64;  // trailing healthy-loss window size
  int64_t max_rollbacks = 3;          // rollback budget before aborting
  int64_t max_skipped_batches = 16;   // skip budget before aborting
};

enum class StepVerdict {
  kHealthy,
  kNonFinite,      // NaN/Inf in the loss or post-clip gradient norm
  kLossExplosion,  // finite but far above the trailing mean
};

const char* StepVerdictName(StepVerdict verdict);

// Per-step monitor. Check() is pure; Observe() records a healthy step's loss
// into the trailing window; Reset() clears the window after a rollback so
// pre-rollback losses do not skew the detector.
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config);

  StepVerdict Check(double loss, double grad_norm) const;
  void Observe(double loss);
  void Reset();

  int64_t observed_steps() const { return observed_; }

 private:
  HealthConfig config_;
  std::vector<double> window_;  // ring buffer of recent healthy losses
  double window_sum_ = 0.0;
  int64_t observed_ = 0;  // total healthy steps observed since Reset
};

// A deterministic set of faults to inject into one run. All step/write
// indices are 0-based; -1 disables the fault. Each fault fires at most once,
// except slow_worker, which delays every batch its worker scores.
struct FaultPlan {
  int64_t poison_grad_at_step = -1;   // optimizer step whose gradient gets NaN
  int64_t fail_write_at = -1;         // checkpoint write that fails outright
  int64_t truncate_write_at = -1;     // write torn mid-file (non-atomic crash)
  int64_t flip_byte_write_at = -1;    // write whose output gets one bit flip
  int64_t flip_byte_offset = 24;      // byte offset flipped by the above

  // -- Serving-path faults (elda::serve) -------------------------------------
  int64_t drop_snapshot_at = -1;     // Nth session-snapshot write dropped
  int64_t poison_state_at = -1;      // session record N corrupted in snapshot
  int64_t slow_worker_index = -1;    // scoring worker delayed on every batch
  int64_t slow_worker_delay_us = 2000;  // delay injected by the above

  bool Any() const;

  // Parses a spec like "poison_grad@12,fail_write@0,flip_byte@1:40,
  // drop_snapshot@0,poison_state@2,slow_worker@1:500" — comma/semicolon-
  // separated `fault@index` terms; flip_byte takes an optional `:offset`,
  // slow_worker an optional `:delay_us`. Returns false with a message on
  // malformed input.
  static bool Parse(const std::string& spec, FaultPlan* plan,
                    std::string* error);
};

// What ckpt_io should do to the checkpoint write it is about to perform.
enum class WriteFault { kNone, kFail, kTruncate, kFlipByte };

// Holds the armed plan and the counters that decide when each fault fires.
// The training-path hooks (poison_grad, write faults) run on the driver
// thread; the serving-path hooks are called from snapshot and scoring
// worker threads, so the whole injector is mutex-guarded.
class FaultInjector {
 public:
  void Arm(const FaultPlan& plan);
  void Disarm();
  bool armed() const;

  // True exactly once, when `step` matches the planned poison step.
  bool ConsumePoisonGrad(int64_t step);

  // Consumes one checkpoint-write slot and reports the fault (if any) for
  // it. `flip_offset` receives the byte offset for kFlipByte.
  WriteFault NextWriteFault(int64_t* flip_offset);

  int64_t writes_seen() const;

  // -- Serving-path hooks ----------------------------------------------------

  // Consumes one session-snapshot write slot; true when this write is the
  // planned drop (the snapshot must fail without touching the file).
  bool ConsumeDropSnapshot();

  // True exactly once, when serializing snapshot session record `record` —
  // the writer corrupts that record's state bytes after computing their
  // CRC, simulating silent rot only the per-session checksum can catch.
  bool ConsumePoisonState(int64_t record);

  // Microseconds of delay to inject into every batch scored by micro-batch
  // worker `worker`; 0 when the fault targets another worker or is unarmed.
  int64_t SlowWorkerDelayUs(int64_t worker) const;

  int64_t snapshots_seen() const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  bool armed_ = false;
  bool poison_fired_ = false;
  bool poison_state_fired_ = false;
  int64_t write_count_ = 0;
  int64_t snapshot_count_ = 0;
};

// Process-global injector. On first access, arms itself from the
// ELDA_FAULT_PLAN environment variable if set (a malformed spec is fatal, so
// a typo cannot silently disable a planned fault).
FaultInjector* GlobalFaultInjector();

}  // namespace health
}  // namespace elda

#endif  // ELDA_HEALTH_HEALTH_H_
