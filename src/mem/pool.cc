#include "mem/pool.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "mem/prof.h"
#include "util/logging.h"

namespace elda {
namespace mem {
namespace {

constexpr std::align_val_t kAlignment{64};  // one cache line / one zmm

float* AllocRaw(int64_t floats) {
  return static_cast<float*>(::operator new(
      static_cast<size_t>(floats) * sizeof(float), kAlignment));
}

void FreeRaw(float* p) { ::operator delete(p, kAlignment); }

bool DefaultEnabled() {
  if (const char* env = std::getenv("ELDA_POOL")) {
    return !(env[0] == '0' && env[1] == '\0');
  }
#if defined(__SANITIZE_ADDRESS__)
  // Recycling hides use-after-free from ASan; default off so the sanitizer
  // suites keep full coverage. ELDA_POOL=1 re-enables explicitly.
  return false;
#else
  return true;
#endif
}

int64_t DefaultMaxCachedBytes() {
  if (const char* env = std::getenv("ELDA_POOL_MAX_MB")) {
    char* end = nullptr;
    const long long mb = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && mb >= 0) return mb * (1ll << 20);
  }
  return 1ll << 30;  // 1 GiB
}

}  // namespace

Pool::Pool()
    : enabled_(DefaultEnabled()),
      max_cached_bytes_(DefaultMaxCachedBytes()),
      free_(kNumBuckets) {}

Pool::~Pool() { Trim(); }

Pool& Pool::Global() {
  // Leaked so that buffers released during static destruction (e.g. tensors
  // held by function-local statics) still find a live pool.
  static Pool* pool = new Pool();
  return *pool;
}

int64_t Pool::BucketCapacity(int32_t bucket) {
  ELDA_CHECK(bucket >= 0 && bucket < kNumBuckets);
  return int64_t{1} << (kMinLog2 + bucket);
}

int32_t Pool::BucketFor(int64_t n) {
  if (n > (int64_t{1} << kMaxLog2)) return kHugeBucket;
  int32_t bucket = 0;
  while (BucketCapacity(bucket) < n) ++bucket;
  return bucket;
}

float* Pool::Acquire(int64_t n, int32_t* bucket) {
  ELDA_CHECK_GE(n, 0);
  if (n < kMinPooledFloats) {
    // Small tier: exact-size plain new. glibc serves this churn from
    // compact, coalesced arena memory; routing it through process-lifetime
    // freelists instead scatters a hot working set across every region the
    // process ever ran in (see the locality note in pool.h).
    *bucket = kSmallBucket;
    small_acquires_.fetch_add(1, std::memory_order_relaxed);
    const int64_t bytes =
        std::max<int64_t>(n, 1) * static_cast<int64_t>(sizeof(float));
    prof::RecordAlloc(bytes, prof::AllocKind::kSmall);
    return static_cast<float*>(::operator new(static_cast<size_t>(bytes)));
  }
  acquires_.fetch_add(1, std::memory_order_relaxed);
  const int32_t b = BucketFor(n);
  *bucket = b;
  if (b == kHugeBucket) {
    huge_acquires_.fetch_add(1, std::memory_order_relaxed);
    const int64_t bytes = n * static_cast<int64_t>(sizeof(float));
    bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
    prof::RecordAlloc(bytes, prof::AllocKind::kPoolMiss);
    return AllocRaw(n);
  }
  const int64_t capacity = BucketCapacity(b);
  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  if (enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<float*>& list = free_[static_cast<size_t>(b)];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      bytes_cached_.fetch_sub(bytes, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      prof::RecordAlloc(bytes, prof::AllocKind::kPoolHit);
      return p;
    }
  }
  bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
  prof::RecordAlloc(bytes, prof::AllocKind::kPoolMiss);
  return AllocRaw(capacity);
}

void Pool::Release(float* p, int32_t bucket) {
  if (p == nullptr) return;
  if (bucket == kSmallBucket) {
    ::operator delete(p);
    return;
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
  if (bucket != kHugeBucket && enabled()) {
    const int64_t bytes =
        BucketCapacity(bucket) * static_cast<int64_t>(sizeof(float));
    if (bytes_cached_.load(std::memory_order_relaxed) + bytes <=
        max_cached_bytes_) {
      std::lock_guard<std::mutex> lock(mu_);
      free_[static_cast<size_t>(bucket)].push_back(p);
      bytes_cached_.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
  }
  FreeRaw(p);
}

PoolStats Pool::Stats() const {
  PoolStats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.bytes_cached = bytes_cached_.load(std::memory_order_relaxed);
  s.huge_acquires = huge_acquires_.load(std::memory_order_relaxed);
  s.small_acquires = small_acquires_.load(std::memory_order_relaxed);
  return s;
}

void Pool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t b = 0; b < free_.size(); ++b) {
    const int64_t bytes = BucketCapacity(static_cast<int32_t>(b)) *
                          static_cast<int64_t>(sizeof(float));
    for (float* p : free_[b]) {
      FreeRaw(p);
      bytes_cached_.fetch_sub(bytes, std::memory_order_relaxed);
    }
    free_[b].clear();
  }
}

std::shared_ptr<float[]> AcquireShared(int64_t n) {
  int32_t bucket;
  float* p = Pool::Global().Acquire(n, &bucket);
  return std::shared_ptr<float[]>(
      p, [bucket](float* q) { Pool::Global().Release(q, bucket); });
}

}  // namespace mem
}  // namespace elda
