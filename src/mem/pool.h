// Size-bucketed buffer pool backing Tensor storage and kernel scratch space.
//
// Every tensor op in this repo allocates its result fresh (tensors are
// immutable values on the autograd tape), so a training step churns through
// thousands of identically-sized float buffers. The pool turns that churn
// into O(1) freelist hits: buffers are rounded up to power-of-two buckets,
// returned to the bucket's freelist on last release, and handed back
// *uninitialized* on the next acquire. `Tensor::Empty` exposes that directly;
// `Tensor::Zeros` (and the legacy shape constructor) memset on top.
//
// The pool is two-tier. Only requests of at least kMinPooledFloats (32 KiB)
// go through the bucket freelists; smaller requests are served exact-size by
// plain operator new (bucket id kSmallBucket). Recycling small buffers
// through a process-lifetime freelist is a measured anti-optimization: after
// a large-batch training phase the small-bucket freelists hold thousands of
// buffers scattered across hundreds of MiB of heap, and a subsequent
// single-admission predict loop that pops them walks one page per tensor —
// 3x slower from TLB/cache misses alone (ConCare B=1 forward: 30 ms -> 104
// ms). glibc malloc serves the same churn from compact, coalesced arena
// memory. Large buffers are where pooling wins: glibc mmap/munmaps them,
// so recycling saves the syscall plus the page faults on every first touch.
//
// Thread safety: Acquire/Release are callable from any thread, including
// pool workers inside a ParallelFor chunk — a buffer may be acquired on one
// thread and released on another (autograd tapes and batch-parallel
// prediction both do this). One mutex guards the freelists; statistics are
// relaxed atomics so readers never block allocation.
//
// The pool caches at most `max_cached_bytes` (ELDA_POOL_MAX_MB, default
// 1024 MiB); releases beyond the cap free eagerly. Requests above the
// largest bucket bypass the pool entirely (bucket id kHugeBucket).
// ELDA_POOL=0 disables recycling at runtime (every acquire allocates, every
// release frees) — useful for debugging lifetime bugs; under
// AddressSanitizer builds the pool defaults to disabled so ASan keeps its
// use-after-free detection power over tensor storage.

#ifndef ELDA_MEM_POOL_H_
#define ELDA_MEM_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace elda {
namespace mem {

struct PoolStats {
  int64_t acquires = 0;        // pooled (bucket-eligible) Acquire calls
  int64_t hits = 0;            // served from a freelist
  int64_t releases = 0;        // pooled Release calls
  int64_t bytes_allocated = 0; // cumulative pooled bytes obtained from the system
  int64_t bytes_cached = 0;    // bytes currently sitting in freelists
  int64_t huge_acquires = 0;   // requests above the largest bucket
  int64_t small_acquires = 0;  // requests below kMinPooledFloats (malloc'd)

  int64_t misses() const { return acquires - hits; }
  // Hit rate over the requests the freelists manage; small and huge
  // requests bypass the pool by design and are excluded.
  double hit_rate() const {
    return acquires > 0 ? static_cast<double>(hits) / acquires : 0.0;
  }
};

class Pool {
 public:
  // Buckets hold exactly 2^(kMinLog2 + b) floats, b in [0, kNumBuckets).
  static constexpr int64_t kMinLog2 = 6;   // 64 floats = 256 B
  static constexpr int64_t kMaxLog2 = 28;  // 2^28 floats = 1 GiB
  static constexpr int32_t kNumBuckets =
      static_cast<int32_t>(kMaxLog2 - kMinLog2 + 1);
  static constexpr int32_t kHugeBucket = -1;
  // Requests below this never touch the freelists (see the file comment for
  // why small-buffer recycling is a locality trap); they are served
  // exact-size by plain operator new under bucket id kSmallBucket.
  static constexpr int64_t kMinPooledFloats = int64_t{1} << 13;  // 32 KiB
  static constexpr int32_t kSmallBucket = -2;

  Pool();
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // The process-wide pool (intentionally leaked, like par::GlobalPool, so
  // buffers released during static destruction stay valid).
  static Pool& Global();

  // Returns an *uninitialized* buffer with capacity of at least `n` floats;
  // `*bucket` receives the id to pass back to Release. Pooled buffers
  // (n >= kMinPooledFloats) are 64-byte aligned; small buffers have malloc's
  // default alignment (every kernel uses unaligned vector loads). Never
  // returns nullptr.
  float* Acquire(int64_t n, int32_t* bucket);

  // Returns a buffer to its bucket's freelist (or frees it: small or huge
  // buffers, pool disabled, or cache cap reached).
  void Release(float* p, int32_t bucket);

  // Capacity in floats of a bucket id (huge buckets are exact-size and have
  // no fixed capacity; CHECK-fails on kHugeBucket).
  static int64_t BucketCapacity(int32_t bucket);

  // Bucket id that a request for `n` floats lands in.
  static int32_t BucketFor(int64_t n);

  PoolStats Stats() const;

  // Frees every cached buffer (freelists only; live buffers unaffected).
  void Trim();

  // Runtime switch; also resolved from ELDA_POOL at startup. Disabling does
  // not invalidate live buffers — they free correctly on release.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> enabled_;
  int64_t max_cached_bytes_;

  mutable std::mutex mu_;
  std::vector<std::vector<float*>> free_;  // one freelist per bucket

  std::atomic<int64_t> acquires_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> releases_{0};
  std::atomic<int64_t> bytes_allocated_{0};
  std::atomic<int64_t> bytes_cached_{0};
  std::atomic<int64_t> huge_acquires_{0};
  std::atomic<int64_t> small_acquires_{0};
};

// Shared handle over a pooled buffer: the last owner returns the memory to
// the pool. This is what Tensor stores.
std::shared_ptr<float[]> AcquireShared(int64_t n);

// RAII scratch buffer for kernels (e.g. GEMM packing panels). Cheap enough
// to acquire once per ParallelFor chunk.
class ScopedBuffer {
 public:
  explicit ScopedBuffer(int64_t n) {
    data_ = Pool::Global().Acquire(n, &bucket_);
  }
  ~ScopedBuffer() { Pool::Global().Release(data_, bucket_); }
  ScopedBuffer(const ScopedBuffer&) = delete;
  ScopedBuffer& operator=(const ScopedBuffer&) = delete;

  float* data() { return data_; }

 private:
  float* data_;
  int32_t bucket_;
};

// RAII pool enable/disable override for tests.
class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : prev_(Pool::Global().enabled()) {
    Pool::Global().SetEnabled(enabled);
  }
  ~ScopedPoolEnabled() { Pool::Global().SetEnabled(prev_); }
  ScopedPoolEnabled(const ScopedPoolEnabled&) = delete;
  ScopedPoolEnabled& operator=(const ScopedPoolEnabled&) = delete;

 private:
  bool prev_;
};

}  // namespace mem
}  // namespace elda

#endif  // ELDA_MEM_POOL_H_
