#include "mem/prof.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "mem/pool.h"
#include "par/par.h"

namespace elda {
namespace prof {
namespace {

struct OpStats {
  int64_t calls = 0;
  int64_t total_ns = 0;
  int64_t allocs = 0;
  int64_t alloc_bytes = 0;
  int64_t pool_allocs = 0;  // pool-eligible allocations (hit or miss)
  int64_t pool_hits = 0;
  int64_t tape_nodes = 0;   // autograd nodes recorded under this op
  int64_t fused_calls = 0;           // fused-kernel invocations
  int64_t fused_kernels_avoided = 0; // composed kernel passes not run
  int64_t fused_bytes_avoided = 0;   // temporary bytes not allocated
};

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_reported{false};
std::once_flag g_init_once;
std::once_flag g_atexit_once;

std::mutex g_mu;
std::map<std::string, OpStats>& Table() {
  static std::map<std::string, OpStats>* table =
      new std::map<std::string, OpStats>();
  return *table;
}

thread_local const char* tls_current_op = nullptr;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AtExitDump() {
  if (!g_reported.load(std::memory_order_relaxed) && Enabled()) {
    Report(std::cerr);
  }
}

void ArmAtExit() {
  std::call_once(g_atexit_once, [] { std::atexit(AtExitDump); });
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(u == 0 ? 0 : 1) << v << " "
      << units[u];
  return out.str();
}

}  // namespace

bool Enabled() {
  std::call_once(g_init_once, [] {
    const char* env = std::getenv("ELDA_PROF");
    const bool on = env != nullptr && !(env[0] == '0' && env[1] == '\0');
    if (on) {
      g_enabled.store(true, std::memory_order_relaxed);
      ArmAtExit();
    }
  });
  return g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  Enabled();  // resolve the env once so the flag is not overwritten later
  g_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) ArmAtExit();
}

void RecordAlloc(int64_t bytes, AllocKind kind) {
  if (!Enabled()) return;
  const char* op = tls_current_op ? tls_current_op : "(outside op)";
  std::lock_guard<std::mutex> lock(g_mu);
  OpStats& s = Table()[op];
  ++s.allocs;
  s.alloc_bytes += bytes;
  if (kind != AllocKind::kSmall) ++s.pool_allocs;
  if (kind == AllocKind::kPoolHit) ++s.pool_hits;
}

void RecordTapeNode() {
  if (!Enabled()) return;
  const char* op = tls_current_op ? tls_current_op : "(outside op)";
  std::lock_guard<std::mutex> lock(g_mu);
  ++Table()[op].tape_nodes;
}

void RecordFusion(int64_t kernels_avoided, int64_t bytes_avoided) {
  if (!Enabled()) return;
  const char* op = tls_current_op ? tls_current_op : "(outside op)";
  std::lock_guard<std::mutex> lock(g_mu);
  OpStats& s = Table()[op];
  ++s.fused_calls;
  s.fused_kernels_avoided += kernels_avoided;
  s.fused_bytes_avoided += bytes_avoided;
}

ScopedOp::ScopedOp(const char* name) {
  if (!Enabled()) return;
  name_ = name;
  prev_ = tls_current_op;
  tls_current_op = name;
  start_ns_ = NowNs();
}

ScopedOp::~ScopedOp() {
  if (name_ == nullptr) return;
  const int64_t elapsed = NowNs() - start_ns_;
  tls_current_op = prev_;
  std::lock_guard<std::mutex> lock(g_mu);
  OpStats& s = Table()[name_];
  ++s.calls;
  s.total_ns += elapsed;
}

void Report(std::ostream& os) {
  g_reported.store(true, std::memory_order_relaxed);
  std::vector<std::pair<std::string, OpStats>> rows;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    rows.assign(Table().begin(), Table().end());
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  os << "\n=== ELDA_PROF op report ===\n";
  os << std::left << std::setw(18) << "op" << std::right << std::setw(12)
     << "calls" << std::setw(12) << "total ms" << std::setw(12) << "ns/call"
     << std::setw(12) << "alloc" << std::setw(10) << "hit%" << std::setw(10)
     << "tape" << std::setw(10) << "fused" << std::setw(12) << "saved"
     << "\n";
  int64_t total_fused_calls = 0;
  int64_t total_kernels_avoided = 0;
  int64_t total_bytes_avoided = 0;
  for (const auto& [name, s] : rows) {
    os << std::left << std::setw(18) << name << std::right << std::setw(12)
       << s.calls << std::setw(12) << std::fixed << std::setprecision(2)
       << s.total_ns / 1e6 << std::setw(12)
       << (s.calls > 0 ? s.total_ns / s.calls : 0) << std::setw(12)
       << HumanBytes(s.alloc_bytes);
    // hit% is over pool-eligible allocations only; ops that allocate
    // nothing but small (malloc-tier) buffers have no pool hit rate.
    if (s.pool_allocs > 0) {
      os << std::setw(9) << std::setprecision(1)
         << 100.0 * s.pool_hits / s.pool_allocs << "%";
    } else {
      os << std::setw(10) << "-";
    }
    os << std::setw(10) << s.tape_nodes;
    // Fusion accounting: invocation count and temporary bytes the composed
    // graph would have allocated but the fused kernel did not.
    if (s.fused_calls > 0) {
      os << std::setw(10) << s.fused_calls << std::setw(12)
         << HumanBytes(s.fused_bytes_avoided);
      total_fused_calls += s.fused_calls;
      total_kernels_avoided += s.fused_kernels_avoided;
      total_bytes_avoided += s.fused_bytes_avoided;
    } else {
      os << std::setw(10) << "-" << std::setw(12) << "-";
    }
    os << "\n";
  }
  os << "fusion: " << total_fused_calls << " fused calls, "
     << total_kernels_avoided << " kernel passes avoided, "
     << HumanBytes(total_bytes_avoided) << " of temporaries not allocated\n";
  const mem::PoolStats pool = mem::Pool::Global().Stats();
  os << "pool: " << pool.acquires << " acquires, " << pool.hits << " hits ("
     << std::fixed << std::setprecision(1) << 100.0 * pool.hit_rate()
     << "% hit rate), " << HumanBytes(pool.bytes_allocated)
     << " allocated from system, " << HumanBytes(pool.bytes_cached)
     << " cached, " << pool.huge_acquires << " huge, "
     << pool.small_acquires << " small (malloc tier)\n";
  const par::ParStats dispatch = par::Stats();
  os << "par: " << dispatch.parallel_dispatches << " parallel dispatches ("
     << dispatch.chunks << " chunks), " << dispatch.inline_runs
     << " inline runs\n";
  os.flush();
}

bool ReportIfEnabled(std::ostream& os) {
  if (!Enabled()) return false;
  Report(os);
  return true;
}

void Reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  Table().clear();
}

}  // namespace prof
}  // namespace elda
