// Op-level profiling, activated by ELDA_PROF=1 in the environment.
//
// Each tensor kernel opens an ELDA_PROF_SCOPE("Name") at its entry; the
// scope records one call, the wall time of the op (inclusive of nested ops —
// e.g. a Mean that called Sum would bill the Sum time to both), and every
// pool allocation made on the same thread while the scope is open. The
// report — per-op call counts / total time / bytes allocated / pool hit
// rate, plus the global pool and dispatch statistics — is dumped to stderr
// at process exit, or earlier by calling ReportIfEnabled (the bench binaries
// do this so the numbers land next to their tables).
//
// When ELDA_PROF is unset the scope is a single branch on a cached bool;
// the kernels pay nothing measurable.

#ifndef ELDA_MEM_PROF_H_
#define ELDA_MEM_PROF_H_

#include <cstdint>
#include <iosfwd>

namespace elda {
namespace prof {

// True when profiling is active (ELDA_PROF set to anything but "0", or
// forced by SetEnabled). Cached; first call reads the environment.
bool Enabled();

// Programmatic override (tests and tools). Passing true also arms the
// at-exit dump.
void SetEnabled(bool enabled);

// How an allocation was served: from a pool freelist, fresh from the system
// for a pool-eligible size, or exact-size malloc for a small request (the
// pool's small tier; see mem/pool.h). Small allocations count toward an
// op's allocation volume but not its pool hit rate.
enum class AllocKind { kPoolHit, kPoolMiss, kSmall };

// Records a pool allocation against the current thread's open op scope (or
// the "(outside op)" row when no scope is open). Called by mem::Pool.
void RecordAlloc(int64_t bytes, AllocKind kind);

// Records one autograd tape node (node + parents + backward closure)
// against the current thread's open op scope. Called by ag::MakeOpResult;
// the per-op tape column in the report shows which ops build graph and
// confirms the no-grad inference path builds none.
void RecordTapeNode();

// Records one fused-kernel invocation against the current thread's open op
// scope: `kernels_avoided` separate kernel passes and `bytes_avoided` bytes
// of intermediate temporaries that the composed graph would have run /
// allocated but the fused kernel did not. Called by the fused elementwise
// and recurrent gate kernels; keeps the pool-hit-rate story interpretable
// after fusion removes the allocations it used to measure (a fused op's
// alloc column shrinks, and this column says where the traffic went).
void RecordFusion(int64_t kernels_avoided, int64_t bytes_avoided);

// Writes the per-op table plus pool / dispatch summaries. Unconditional:
// prints whatever has been collected (an empty table when profiling never
// ran). Marks the report as delivered so the at-exit hook stays quiet.
void Report(std::ostream& os);

// Report(os) if profiling is enabled; returns whether it printed.
bool ReportIfEnabled(std::ostream& os);

// Clears all collected statistics (test support).
void Reset();

// RAII op scope. Inactive (one branch) when profiling is disabled.
class ScopedOp {
 public:
  explicit ScopedOp(const char* name);
  ~ScopedOp();
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  const char* name_ = nullptr;  // null when inactive
  const char* prev_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace prof
}  // namespace elda

#define ELDA_PROF_CONCAT_INNER(a, b) a##b
#define ELDA_PROF_CONCAT(a, b) ELDA_PROF_CONCAT_INNER(a, b)
#define ELDA_PROF_SCOPE(name) \
  ::elda::prof::ScopedOp ELDA_PROF_CONCAT(elda_prof_scope_, __LINE__)(name)

#endif  // ELDA_MEM_PROF_H_
