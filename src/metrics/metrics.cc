#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace elda {
namespace metrics {
namespace {

int64_t CountPositives(const std::vector<float>& labels) {
  int64_t positives = 0;
  for (float y : labels) {
    ELDA_CHECK(y == 0.0f || y == 1.0f) << "labels must be binary, got" << y;
    positives += y == 1.0f;
  }
  return positives;
}

// Compacts (scores, labels) down to the entries with valid != 0 AND a finite
// score, preserving order, so the masked metrics delegate to the dense
// implementations and stay bitwise identical to scoring the kept entries
// directly. Non-finite scores are the serve path's "not scorable yet"
// sentinel (quiet-NaN logits below min_steps_to_score()); including one in a
// mean would poison the whole metric, so they are excluded like padding.
void FilterValid(const std::vector<float>& scores,
                 const std::vector<float>& labels,
                 const std::vector<uint8_t>& valid,
                 std::vector<float>* kept_scores,
                 std::vector<float>* kept_labels) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  ELDA_CHECK_EQ(scores.size(), valid.size());
  kept_scores->reserve(scores.size());
  kept_labels->reserve(labels.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (valid[i] == 0 || !std::isfinite(scores[i])) continue;
    kept_scores->push_back(scores[i]);
    kept_labels->push_back(labels[i]);
  }
}

}  // namespace

double BceLoss(const std::vector<float>& scores,
               const std::vector<float>& labels,
               const std::vector<uint8_t>& valid) {
  std::vector<float> s, y;
  FilterValid(scores, labels, valid, &s, &y);
  return BceLoss(s, y);
}

double AucRoc(const std::vector<float>& scores,
              const std::vector<float>& labels,
              const std::vector<uint8_t>& valid) {
  std::vector<float> s, y;
  FilterValid(scores, labels, valid, &s, &y);
  return AucRoc(s, y);
}

double AucPr(const std::vector<float>& scores, const std::vector<float>& labels,
             const std::vector<uint8_t>& valid) {
  std::vector<float> s, y;
  FilterValid(scores, labels, valid, &s, &y);
  return AucPr(s, y);
}

double BceLoss(const std::vector<float>& scores,
               const std::vector<float>& labels) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double p =
        std::min(std::max(static_cast<double>(scores[i]), 1e-7), 1.0 - 1e-7);
    loss -= labels[i] == 1.0f ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(scores.size());
}

double AucRoc(const std::vector<float>& scores,
              const std::vector<float>& labels) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  const int64_t positives = CountPositives(labels);
  const int64_t negatives = n - positives;
  // Degenerate label set: no positive/negative pair exists, so no ranking
  // is measurable; chance level keeps downstream aggregation NaN-free.
  if (positives == 0 || negatives == 0) return 0.5;
  // Midranks over scores.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (i + j) + 1.0;  // 1-based
    for (int64_t k = i; k <= j; ++k) rank[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    if (labels[k] == 1.0f) rank_sum_pos += rank[k];
  }
  const double u = rank_sum_pos -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

double AucPr(const std::vector<float>& scores,
             const std::vector<float>& labels) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  const int64_t positives = CountPositives(labels);
  // With no positives the PR curve has no achievable points; the positive
  // prevalence (here 0) is the defined degenerate value. The all-positive
  // case needs no special-casing: precision stays 1 and the area is 1.
  if (positives == 0) return 0.0;
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  // Walk thresholds from the highest score down; groups of tied scores move
  // together. Integrate precision over recall with the trapezoid rule, which
  // matches Davis & Goadrich's interpolation between achievable PR points.
  double area = 0.0;
  double prev_recall = 0.0;
  double prev_precision = 1.0;
  int64_t tp = 0, fp = 0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    for (int64_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1.0f) {
        ++tp;
      } else {
        ++fp;
      }
    }
    const double recall = static_cast<double>(tp) / positives;
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
    area += (recall - prev_recall) * 0.5 * (precision + prev_precision);
    prev_recall = recall;
    prev_precision = precision;
    i = j + 1;
  }
  return area;
}

double Accuracy(const std::vector<float>& scores,
                const std::vector<float>& labels, float threshold) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  ELDA_CHECK(!scores.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const float predicted = scores[i] >= threshold ? 1.0f : 0.0f;
    correct += predicted == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

double Confusion::Precision() const {
  const int64_t predicted = true_positives + false_positives;
  return predicted == 0 ? 1.0
                        : static_cast<double>(true_positives) / predicted;
}

double Confusion::Recall() const {
  const int64_t actual = true_positives + false_negatives;
  return actual == 0 ? 1.0 : static_cast<double>(true_positives) / actual;
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

Confusion ConfusionAt(const std::vector<float>& scores,
                      const std::vector<float>& labels, float threshold) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] == 1.0f;
    if (predicted && actual) ++c.true_positives;
    if (predicted && !actual) ++c.false_positives;
    if (!predicted && !actual) ++c.true_negatives;
    if (!predicted && actual) ++c.false_negatives;
  }
  return c;
}

double BrierScore(const std::vector<float>& scores,
                  const std::vector<float>& labels) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  ELDA_CHECK(!scores.empty());
  double sum = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double d = static_cast<double>(scores[i]) - labels[i];
    sum += d * d;
  }
  return sum / static_cast<double>(scores.size());
}

double ExpectedCalibrationError(const std::vector<float>& scores,
                                const std::vector<float>& labels,
                                int64_t num_bins) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  ELDA_CHECK(!scores.empty());
  ELDA_CHECK_GT(num_bins, 0);
  std::vector<double> bin_score(num_bins, 0.0);
  std::vector<double> bin_label(num_bins, 0.0);
  std::vector<int64_t> bin_count(num_bins, 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    int64_t bin = static_cast<int64_t>(scores[i] * num_bins);
    bin = std::min(std::max<int64_t>(bin, 0), num_bins - 1);
    bin_score[bin] += scores[i];
    bin_label[bin] += labels[i];
    ++bin_count[bin];
  }
  double ece = 0.0;
  for (int64_t b = 0; b < num_bins; ++b) {
    if (bin_count[b] == 0) continue;
    const double gap =
        std::fabs(bin_score[b] / bin_count[b] - bin_label[b] / bin_count[b]);
    ece += gap * bin_count[b] / static_cast<double>(scores.size());
  }
  return ece;
}

Interval BootstrapInterval(
    double (*metric)(const std::vector<float>&, const std::vector<float>&),
    const std::vector<float>& scores, const std::vector<float>& labels,
    int64_t replicates, double confidence, uint64_t seed) {
  ELDA_CHECK_EQ(scores.size(), labels.size());
  ELDA_CHECK(!scores.empty());
  ELDA_CHECK_GT(replicates, 1);
  ELDA_CHECK(confidence > 0.0 && confidence < 1.0);
  Interval out;
  out.point = metric(scores, labels);
  Rng rng(seed);
  const int64_t n = static_cast<int64_t>(scores.size());
  std::vector<double> values;
  values.reserve(replicates);
  std::vector<float> rs(n), rl(n);
  for (int64_t r = 0; r < replicates; ++r) {
    bool has_positive = false, has_negative = false;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t k = rng.UniformInt(n);
      rs[i] = scores[k];
      rl[i] = labels[k];
      has_positive = has_positive || rl[i] == 1.0f;
      has_negative = has_negative || rl[i] == 0.0f;
    }
    if (!has_positive || !has_negative) continue;  // degenerate resample
    values.push_back(metric(rs, rl));
  }
  ELDA_CHECK(!values.empty()) << "all bootstrap resamples degenerate";
  std::sort(values.begin(), values.end());
  const double tail = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const int64_t idx = static_cast<int64_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min<int64_t>(idx,
                                    static_cast<int64_t>(values.size()) - 1)];
  };
  out.lower = at(tail);
  out.upper = at(1.0 - tail);
  return out;
}

MeanStd Aggregate(const std::vector<double>& values) {
  ELDA_CHECK(!values.empty());
  MeanStd out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace metrics
}  // namespace elda
