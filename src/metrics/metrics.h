// Evaluation metrics for binary classification on imbalanced cohorts.
//
// The paper reports BCE loss, AUC-ROC and AUC-PR (Section V-A, "Evaluation").
// AUC-ROC is computed via the Mann-Whitney U statistic with midrank tie
// handling; AUC-PR follows Davis & Goadrich (2006): the area under the
// piecewise PR curve obtained by descending-score thresholding, integrated
// by the trapezoid between achievable points (equivalently, average
// precision with linear interpolation in TP).

#ifndef ELDA_METRICS_METRICS_H_
#define ELDA_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

namespace elda {
namespace metrics {

// Degenerate index sets (an all-positive, all-negative, or empty label
// vector — routine on tiny validation splits and bootstrap resamples) yield
// defined values rather than NaN or a crash:
//   BceLoss -> 0.0 on empty input;
//   AucRoc  -> 0.5 (chance) when either class is absent;
//   AucPr   -> the positive prevalence (1.0 all-positive, 0.0 all-negative).

// Mean binary cross-entropy of probability scores against {0,1} labels.
// Scores are clamped to [1e-7, 1-1e-7].
double BceLoss(const std::vector<float>& scores,
               const std::vector<float>& labels);

// Area under the ROC curve; 0.5 for a random ranking or when the labels
// contain only one class (no ranking is measurable).
double AucRoc(const std::vector<float>& scores,
              const std::vector<float>& labels);

// Area under the precision-recall curve; the positive prevalence when the
// labels are degenerate.
double AucPr(const std::vector<float>& scores,
             const std::vector<float>& labels);

// -- Mask-aware overloads ---------------------------------------------------
//
// For ragged/per-step scoring (e.g. decompensation over variable-length
// stays): entries with valid[i] == 0 are padding and are excluded before the
// metric is computed, so the result is bitwise identical to calling the
// dense overload on just the kept entries in order. Entries whose score is
// not finite are excluded too: the streaming path emits quiet-NaN risks for
// steps below a model's min_steps_to_score(), and one NaN would otherwise
// poison the mean. `valid` must match `scores`/`labels` in size.
double BceLoss(const std::vector<float>& scores,
               const std::vector<float>& labels,
               const std::vector<uint8_t>& valid);
double AucRoc(const std::vector<float>& scores,
              const std::vector<float>& labels,
              const std::vector<uint8_t>& valid);
double AucPr(const std::vector<float>& scores, const std::vector<float>& labels,
             const std::vector<uint8_t>& valid);

// Classification accuracy at the given probability threshold.
double Accuracy(const std::vector<float>& scores,
                const std::vector<float>& labels, float threshold = 0.5f);

// Confusion counts at a probability threshold.
struct Confusion {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  double Precision() const;  // 1.0 when no positive predictions were made
  double Recall() const;     // 1.0 when there are no positives
  double F1() const;
};
Confusion ConfusionAt(const std::vector<float>& scores,
                      const std::vector<float>& labels,
                      float threshold = 0.5f);

// Brier score: mean squared error of probabilities against labels. Lower is
// better; 0.25 for a constant 0.5 predictor.
double BrierScore(const std::vector<float>& scores,
                  const std::vector<float>& labels);

// Expected calibration error with equal-width probability bins: the
// prevalence-weighted mean |mean score - empirical rate| per bin.
double ExpectedCalibrationError(const std::vector<float>& scores,
                                const std::vector<float>& labels,
                                int64_t num_bins = 10);

// Percentile-bootstrap confidence interval for a metric of (scores, labels),
// e.g. AucRoc or AucPr. Resamples patients with replacement. Deterministic
// for a fixed seed. Resamples whose labels degenerate to one class are
// skipped (counted toward `replicates` attempts).
struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};
Interval BootstrapInterval(
    double (*metric)(const std::vector<float>&, const std::vector<float>&),
    const std::vector<float>& scores, const std::vector<float>& labels,
    int64_t replicates = 200, double confidence = 0.95, uint64_t seed = 1);

// Mean and (population) standard deviation over repeated runs.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Aggregate(const std::vector<double>& values);

}  // namespace metrics
}  // namespace elda

#endif  // ELDA_METRICS_METRICS_H_
