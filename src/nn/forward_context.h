// Per-call context threaded through model Forward paths.
//
// ForwardContext is what makes Forward logically const and safe to call
// concurrently: everything that used to be smuggled through mutable model
// members — the train/eval flag, the dropout RNG stream, and the attention
// surfaces models expose for interpretation — travels in the context
// instead. Each caller (a trainer loop, one Predict worker thread, an
// interpretation pass) owns its own context, so two concurrent Forwards on
// the same model never share per-call state.
//
// The capture sink is the interpretation output channel. A model writes its
// attention surfaces into the sink under stable names ("feature_attention",
// "time_attention"); a caller that wants them supplies a sink, everyone
// else passes none and the capture is skipped for free. The caller owns the
// sink and must keep it alive for the duration of the Forward call; the
// stored tensors are shallow copies whose storage stays valid after the
// call's graph is dropped.

#ifndef ELDA_NN_FORWARD_CONTEXT_H_
#define ELDA_NN_FORWARD_CONTEXT_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace elda {

class Rng;

namespace nn {

// Named tensor captures from one Forward call. Last writer wins per name,
// so running several batches through the same sink leaves the most recent
// batch's surfaces — the same semantics the old per-model caches had,
// without the shared mutable state. Not thread-safe: use one sink per
// thread.
class CaptureSink {
 public:
  void Put(std::string name, Tensor value) {
    for (auto& [key, stored] : entries_) {
      if (key == name) {
        stored = std::move(value);
        return;
      }
    }
    entries_.emplace_back(std::move(name), std::move(value));
  }

  // Null when no capture under `name` has been made.
  const Tensor* Find(const std::string& name) const {
    for (const auto& [key, stored] : entries_) {
      if (key == name) return &stored;
    }
    return nullptr;
  }

  // CHECK-fails when absent; shallow copy otherwise.
  Tensor Get(const std::string& name) const {
    const Tensor* found = Find(name);
    ELDA_CHECK(found != nullptr) << "no capture named " << name;
    return *found;
  }

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  void Clear() { entries_.clear(); }

  const std::vector<std::pair<std::string, Tensor>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Tensor>> entries_;
};

// The per-call context. Plain aggregate: cheap to build on the stack at
// every call site. `rng` must be non-null when `training` is set and the
// model uses dropout; `capture` may always be null (no interpretation
// requested).
struct ForwardContext {
  bool training = false;
  Rng* rng = nullptr;
  CaptureSink* capture = nullptr;

  // Stores `value` under `name` when a sink is attached; no-op otherwise.
  void Capture(const char* name, Tensor value) const {
    if (capture != nullptr) capture->Put(name, std::move(value));
  }
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_FORWARD_CONTEXT_H_
