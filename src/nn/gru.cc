#include "nn/gru.h"

#include "nn/init.h"

namespace elda {
namespace nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", XavierUniform(input_size, hidden_size,
                            {input_size, 3 * hidden_size}, rng));
  w_hh_ = RegisterParameter(
      "w_hh", XavierUniform(hidden_size, hidden_size,
                            {hidden_size, 3 * hidden_size}, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros({3 * hidden_size}));
}

ag::Variable GruCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  const int64_t hs = hidden_size_;
  ag::Variable xw = ag::Add(ag::MatMul(x, w_ih_), bias_);  // [B, 3H]
  ag::Variable hu = ag::MatMul(h, w_hh_);                  // [B, 3H]
  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(xw, 1, 0, hs), ag::Slice(hu, 1, 0, hs)));
  ag::Variable z = ag::Sigmoid(
      ag::Add(ag::Slice(xw, 1, hs, hs), ag::Slice(hu, 1, hs, hs)));
  ag::Variable n = ag::Tanh(ag::Add(
      ag::Slice(xw, 1, 2 * hs, hs), ag::Mul(r, ag::Slice(hu, 1, 2 * hs, hs))));
  // h' = (1 - z) * n + z * h
  ag::Variable one_minus_z =
      ag::Sub(ag::Constant(Tensor::Ones(z.value().shape())), z);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

Gru::Gru(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterSubmodule("cell", &cell_);
}

ag::Variable Gru::Forward(const ag::Variable& x) const {
  std::vector<ag::Variable> steps = ForwardSteps(x);
  const int64_t batch = x.value().shape(0);
  std::vector<ag::Variable> expanded;
  expanded.reserve(steps.size());
  for (const ag::Variable& h : steps) {
    expanded.push_back(ag::Reshape(h, {batch, 1, cell_.hidden_size()}));
  }
  return ag::Concat(expanded, 1);
}

std::vector<ag::Variable> Gru::ForwardSteps(const ag::Variable& x) const {
  ELDA_CHECK_EQ(x.value().dim(), 3);
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  const int64_t input = x.value().shape(2);
  ELDA_CHECK_EQ(input, cell_.input_size());
  ag::Variable h =
      ag::Constant(Tensor::Zeros({batch, cell_.hidden_size()}));
  std::vector<ag::Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    ag::Variable xt =
        ag::Reshape(ag::Slice(x, 1, t, 1), {batch, input});
    h = cell_.Forward(xt, h);
    outputs.push_back(h);
  }
  return outputs;
}

}  // namespace nn
}  // namespace elda
