#include "nn/gru.h"

#include "nn/init.h"
#include "nn/recurrent_sweep.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", XavierUniform(input_size, hidden_size,
                            {input_size, 3 * hidden_size}, rng));
  w_hh_ = RegisterParameter(
      "w_hh", XavierUniform(hidden_size, hidden_size,
                            {hidden_size, 3 * hidden_size}, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros({3 * hidden_size}));
}

ag::Variable GruCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  return Step(PrecomputeInput(x), h);
}

ag::Variable GruCell::PrecomputeInput(const ag::Variable& x) const {
  return ag::Add(ag::MatMul(x, w_ih_), bias_);
}

ag::Variable GruCell::Step(const ag::Variable& xw,
                           const ag::Variable& h) const {
  const int64_t hs = hidden_size_;
  const Tensor w_hh = w_hh_.value();
  const Tensor hu = elda::MatMul(h.value(), w_hh);  // [B, 3H]
  const bool taped = ag::GradEnabled();
  Tensor r, z, n;
  Tensor h_new =
      elda::GruGates(xw.value(), hu, h.value(), taped ? &r : nullptr,
                     taped ? &z : nullptr, taped ? &n : nullptr);
  const Tensor h_prev = h.value();
  return ag::MakeOpResult(
      std::move(h_new), {xw, h, w_hh_},
      [hs, hu, r, z, n, h_prev, w_hh](ag::internal::Node* node) {
        // Hand-derived adjoint of the fused step. With pre-activation
        // gradients d*_pre:
        //   dn_pre = dh' * (1-z) * (1-n^2)
        //   dz_pre = dh' * (h - n) * z * (1-z)
        //   dr_pre = dn_pre * (hU_n) * r * (1-r)
        //   dxw    = [dr_pre | dz_pre | dn_pre]
        //   dhu    = [dr_pre | dz_pre | dn_pre * r]
        //   dh     = dh' * z + dhu W_hh^T
        //   dW_hh  = h^T dhu
        const int64_t bsz = node->grad.shape(0);
        Tensor dxw({bsz, 3 * hs});
        Tensor dhu({bsz, 3 * hs});
        Tensor dh({bsz, hs});
        const float* pg = node->grad.data();
        const float* pr = r.data();
        const float* pz = z.data();
        const float* pn = n.data();
        const float* ph = h_prev.data();
        const float* phu = hu.data();
        float* pdxw = dxw.data();
        float* pdhu = dhu.data();
        float* pdh = dh.data();
        for (int64_t b = 0; b < bsz; ++b) {
          const int64_t rh = b * hs;
          const int64_t rg = b * 3 * hs;
          for (int64_t k = 0; k < hs; ++k) {
            const float gv = pg[rh + k];
            const float rv = pr[rh + k];
            const float zv = pz[rh + k];
            const float nv = pn[rh + k];
            const float dn_pre = gv * (1.0f - zv) * (1.0f - nv * nv);
            const float dz_pre =
                gv * (ph[rh + k] - nv) * zv * (1.0f - zv);
            const float dr_pre =
                dn_pre * phu[rg + 2 * hs + k] * rv * (1.0f - rv);
            pdxw[rg + k] = dr_pre;
            pdxw[rg + hs + k] = dz_pre;
            pdxw[rg + 2 * hs + k] = dn_pre;
            pdhu[rg + k] = dr_pre;
            pdhu[rg + hs + k] = dz_pre;
            pdhu[rg + 2 * hs + k] = dn_pre * rv;
            pdh[rh + k] = gv * zv;
          }
        }
        ag::internal::Node* p_xw = node->parents[0].get();
        ag::internal::Node* p_h = node->parents[1].get();
        ag::internal::Node* p_whh = node->parents[2].get();
        if (p_xw->requires_grad) ag::internal::AccumulateGrad(p_xw, dxw);
        if (p_h->requires_grad) {
          const Tensor dh_hu = elda::MatMul(dhu, w_hh, false, true);
          float* dst = dh.data();
          const float* src = dh_hu.data();
          for (int64_t i = 0; i < dh.size(); ++i) dst[i] += src[i];
          ag::internal::AccumulateGrad(p_h, dh);
        }
        if (p_whh->requires_grad) {
          ag::internal::AccumulateGrad(
              p_whh, elda::MatMul(h_prev, dhu, true, false));
        }
      });
}

Gru::Gru(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterSubmodule("cell", &cell_);
}

ag::Variable Gru::Forward(const ag::Variable& x,
                          const std::vector<int64_t>* lengths) const {
  SweepOptions options;
  options.lengths = lengths;
  return GruSweep(cell_, x, options).Stacked();
}

std::vector<ag::Variable> Gru::ForwardSteps(
    const ag::Variable& x, const std::vector<int64_t>* lengths) const {
  SweepOptions options;
  options.lengths = lengths;
  return GruSweep(cell_, x, options).steps;
}

}  // namespace nn
}  // namespace elda
