// Gated Recurrent Unit (Cho et al., 2014), the temporal backbone of
// ELDA-Net's Time-level Interaction Learning Module and of several baselines.
//
// Update equations (gate order r, z, n in the packed weights):
//   r_t = sigmoid(x_t W_r + h_{t-1} U_r + b_r)
//   z_t = sigmoid(x_t W_z + h_{t-1} U_z + b_z)
//   n_t = tanh  (x_t W_n + r_t * (h_{t-1} U_n) + b_n)
//   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
//
// The cell exposes the recurrence split the sweep engine
// (nn/recurrent_sweep.h) is built on: PrecomputeInput hoists the
// input-to-gates transform x W_ih + b out of the time loop (one GEMM over
// all steps instead of T small ones — bitwise identical under the strict-k
// MatMul contract, since each output row depends only on its own input
// row), and Step consumes one precomputed [B, 3H] block per timestep as a
// single fused tape node covering the recurrent GEMM and all gate math.

#ifndef ELDA_NN_GRU_H_
#define ELDA_NN_GRU_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace nn {

class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, input], h: [B, hidden] -> new hidden [B, hidden].
  // Equivalent to Step(PrecomputeInput(x), h).
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h) const;

  // Input-to-gates transform x W_ih + b for any batch of inputs
  // ([N, input] -> [N, 3*hidden], gate order r|z|n). Time-independent, so a
  // sweep computes it once for all steps ([T*B, input] rows) and feeds Step
  // zero-copy row views of the result.
  ag::Variable PrecomputeInput(const ag::Variable& x) const;

  // One timestep as a single fused tape node: xw = precomputed gate inputs
  // for this step ([B, 3*hidden]), h = previous hidden ([B, hidden]) ->
  // next hidden. Runs the recurrent GEMM h W_hh and all gate math in one
  // kernel pass (tensor GruGates); values are bitwise identical to the
  // op-by-op composition.
  ag::Variable Step(const ag::Variable& xw, const ag::Variable& h) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  const ag::Variable& w_ih() const { return w_ih_; }
  const ag::Variable& w_hh() const { return w_hh_; }
  const ag::Variable& bias() const { return bias_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Variable w_ih_;  // [input, 3*hidden]
  ag::Variable w_hh_;  // [hidden, 3*hidden]
  ag::Variable bias_;  // [3*hidden]
};

// Runs a GruCell across the time axis (via nn::GruSweep).
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, T, input] -> all hidden states [B, T, hidden]; the initial state
  // is zero. The last step's state is Slice(result, 1, T-1, 1). `lengths`
  // (optional, [B] valid-prefix lengths) freezes each row's state past its
  // length — see SweepOptions::lengths for the bitwise contract.
  ag::Variable Forward(const ag::Variable& x,
                       const std::vector<int64_t>* lengths = nullptr) const;

  // As Forward but exposes the per-step states, which some models (RETAIN,
  // ELDA's time module) consume individually without re-slicing. With
  // `lengths`, row b of every step t >= lengths[b] carries its frozen final
  // state, so .back() rows equal solo runs at each row's true length.
  std::vector<ag::Variable> ForwardSteps(
      const ag::Variable& x,
      const std::vector<int64_t>* lengths = nullptr) const;

  const GruCell& cell() const { return cell_; }

 private:
  GruCell cell_;
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_GRU_H_
