#include "nn/init.h"

#include <cmath>

namespace elda {
namespace nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out,
                     std::vector<int64_t> shape, Rng* rng) {
  ELDA_CHECK_GT(fan_in + fan_out, 0);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(std::move(shape), -limit, limit, rng);
}

Tensor XavierUniform2d(int64_t rows, int64_t cols, Rng* rng) {
  return XavierUniform(rows, cols, {rows, cols}, rng);
}

Tensor HeNormal(int64_t fan_in, std::vector<int64_t> shape, Rng* rng) {
  ELDA_CHECK_GT(fan_in, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Normal(std::move(shape), 0.0f, stddev, rng);
}

}  // namespace nn
}  // namespace elda
