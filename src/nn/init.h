// Parameter initialisation schemes.

#ifndef ELDA_NN_INIT_H_
#define ELDA_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace elda {
namespace nn {

// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
// This is the Keras default and what the paper's implementation would use.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out,
                     std::vector<int64_t> shape, Rng* rng);

// Convenience for 2-D weights where the shape determines the fans.
Tensor XavierUniform2d(int64_t rows, int64_t cols, Rng* rng);

// He/Kaiming normal: N(0, sqrt(2 / fan_in)); used for ReLU stacks.
Tensor HeNormal(int64_t fan_in, std::vector<int64_t> shape, Rng* rng);

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_INIT_H_
