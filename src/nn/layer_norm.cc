#include "nn/layer_norm.h"

namespace elda {
namespace nn {

LayerNorm::LayerNorm(int64_t dim, float epsilon)
    : dim_(dim), epsilon_(epsilon) {
  gain_ = RegisterParameter("gain", Tensor::Ones({dim}));
  bias_ = RegisterParameter("bias", Tensor::Zeros({dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  ELDA_CHECK_EQ(x.value().shape(-1), dim_);
  const int64_t axis = x.value().dim() - 1;
  ag::Variable mean = ag::Mean(x, axis, /*keepdims=*/true);
  ag::Variable centred = ag::Sub(x, mean);
  ag::Variable variance =
      ag::Mean(ag::Square(centred), axis, /*keepdims=*/true);
  ag::Variable normalised =
      ag::Div(centred, ag::Sqrt(ag::AddScalar(variance, epsilon_)));
  return ag::Add(ag::Mul(normalised, gain_), bias_);
}

}  // namespace nn
}  // namespace elda
