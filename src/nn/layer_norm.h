// Layer normalisation (Ba et al., 2016) over the last axis, with learned
// gain and bias. Required by the transformer-style SAnD baseline, whose
// residual stacks diverge without it.

#ifndef ELDA_NN_LAYER_NORM_H_
#define ELDA_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace elda {
namespace nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float epsilon = 1e-5f);

  // Normalises the last axis of x (any rank >= 1 with shape(-1) == dim).
  ag::Variable Forward(const ag::Variable& x) const;

 private:
  int64_t dim_;
  float epsilon_;
  ag::Variable gain_;  // [dim], init 1
  ag::Variable bias_;  // [dim], init 0
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_LAYER_NORM_H_
