#include "nn/linear.h"

#include "nn/init.h"

namespace elda {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool use_bias,
               Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ =
      RegisterParameter("weight", XavierUniform2d(in_features, out_features,
                                                  rng));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  ELDA_CHECK_EQ(x.value().shape(-1), in_features_);
  ag::Variable y = ag::MatMul(x, weight_);
  if (bias_.defined()) y = ag::Add(y, bias_);
  return y;
}

}  // namespace nn
}  // namespace elda
