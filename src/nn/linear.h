// Fully connected layer: y = x W + b.

#ifndef ELDA_NN_LINEAR_H_
#define ELDA_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace nn {

class Linear : public Module {
 public:
  // W is [in_features, out_features], Xavier-uniform initialised; the bias
  // (if present) starts at zero.
  Linear(int64_t in_features, int64_t out_features, bool use_bias, Rng* rng);

  // x: [B, in] or [B, T, in] (the weight is shared across leading dims).
  ag::Variable Forward(const ag::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;
  ag::Variable bias_;  // undefined when use_bias is false
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_LINEAR_H_
