#include "nn/lstm.h"

#include "nn/init.h"

namespace elda {
namespace nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", XavierUniform(input_size, hidden_size,
                            {input_size, 4 * hidden_size}, rng));
  w_hh_ = RegisterParameter(
      "w_hh", XavierUniform(hidden_size, hidden_size,
                            {hidden_size, 4 * hidden_size}, rng));
  // Forget-gate bias of 1 keeps early gradients flowing (standard practice).
  Tensor b = Tensor::Zeros({4 * hidden_size});
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b[i] = 1.0f;
  bias_ = RegisterParameter("bias", b);
}

LstmCell::State LstmCell::Forward(const ag::Variable& x,
                                  const State& state) const {
  const int64_t hs = hidden_size_;
  ag::Variable gates =
      ag::Add(ag::Add(ag::MatMul(x, w_ih_), ag::MatMul(state.h, w_hh_)),
              bias_);  // [B, 4H]
  ag::Variable i = ag::Sigmoid(ag::Slice(gates, 1, 0, hs));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, 1, hs, hs));
  ag::Variable g = ag::Tanh(ag::Slice(gates, 1, 2 * hs, hs));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, 1, 3 * hs, hs));
  ag::Variable c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  ag::Variable h = ag::Mul(o, ag::Tanh(c));
  return {h, c};
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterSubmodule("cell", &cell_);
}

ag::Variable Lstm::Forward(const ag::Variable& x) const {
  ELDA_CHECK_EQ(x.value().dim(), 3);
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  const int64_t input = x.value().shape(2);
  ELDA_CHECK_EQ(input, cell_.input_size());
  LstmCell::State state{
      ag::Constant(Tensor::Zeros({batch, cell_.hidden_size()})),
      ag::Constant(Tensor::Zeros({batch, cell_.hidden_size()}))};
  std::vector<ag::Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    ag::Variable xt = ag::Reshape(ag::Slice(x, 1, t, 1), {batch, input});
    state = cell_.Forward(xt, state);
    outputs.push_back(
        ag::Reshape(state.h, {batch, 1, cell_.hidden_size()}));
  }
  return ag::Concat(outputs, 1);
}

}  // namespace nn
}  // namespace elda
