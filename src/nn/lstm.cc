#include "nn/lstm.h"

#include <algorithm>

#include "nn/init.h"
#include "nn/recurrent_sweep.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", XavierUniform(input_size, hidden_size,
                            {input_size, 4 * hidden_size}, rng));
  w_hh_ = RegisterParameter(
      "w_hh", XavierUniform(hidden_size, hidden_size,
                            {hidden_size, 4 * hidden_size}, rng));
  // Forget-gate bias of 1 keeps early gradients flowing (standard practice).
  Tensor b = Tensor::Zeros({4 * hidden_size});
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b[i] = 1.0f;
  bias_ = RegisterParameter("bias", b);
}

ag::Variable LstmCell::Pack(const State& state) const {
  return ag::Stack0({state.h, state.c});
}

LstmCell::State LstmCell::Unpack(const ag::Variable& packed) const {
  return {ag::StepView(packed, 0), ag::StepView(packed, 1)};
}

LstmCell::State LstmCell::Forward(const ag::Variable& x,
                                  const State& state) const {
  return Unpack(Step(PrecomputeInput(x), Pack(state)));
}

ag::Variable LstmCell::PrecomputeInput(const ag::Variable& x) const {
  return ag::MatMul(x, w_ih_);
}

ag::Variable LstmCell::Step(const ag::Variable& xw,
                            const ag::Variable& packed) const {
  const int64_t hs = hidden_size_;
  const Tensor& pv = packed.value();
  ELDA_CHECK_EQ(pv.dim(), 3);
  ELDA_CHECK_EQ(pv.shape(0), 2);
  const int64_t bsz = pv.shape(1);
  const Tensor h_prev = pv.ViewRows(0, 1).Reshape({bsz, hs});
  const Tensor c_prev = pv.ViewRows(1, 1).Reshape({bsz, hs});
  const Tensor w_hh = w_hh_.value();
  const Tensor hu = elda::MatMul(h_prev, w_hh);  // [B, 4H]
  const bool taped = ag::GradEnabled();
  Tensor i, f, g, o, tc;
  Tensor packed_new = elda::LstmGates(
      xw.value(), hu, bias_.value(), c_prev, taped ? &i : nullptr,
      taped ? &f : nullptr, taped ? &g : nullptr, taped ? &o : nullptr,
      taped ? &tc : nullptr);
  return ag::MakeOpResult(
      std::move(packed_new), {xw, packed, w_hh_, bias_},
      [hs, bsz, i, f, g, o, tc, h_prev, c_prev, w_hh](
          ag::internal::Node* node) {
        // Hand-derived adjoint. Incoming grad is packed [2, B, H]:
        // gh = rows 0, gc = rows 1.
        //   do_pre = gh * tanh(c') * o * (1-o)
        //   dc     = gh * o * (1 - tanh(c')^2) + gc
        //   di_pre = dc * g * i * (1-i)
        //   df_pre = dc * c * f * (1-f)
        //   dg_pre = dc * i * (1-g^2)
        //   dpre   = [di_pre | df_pre | dg_pre | do_pre]   (= dxw = dhu)
        //   dh     = dpre W_hh^T ; dc_prev = dc * f ; db = sum_B dpre
        Tensor dpre({bsz, 4 * hs});
        Tensor dstate({2, bsz, hs});
        const float* pgh = node->grad.data();
        const float* pgc = node->grad.data() + bsz * hs;
        const float* pi = i.data();
        const float* pf = f.data();
        const float* pg = g.data();
        const float* po = o.data();
        const float* ptc = tc.data();
        const float* pc = c_prev.data();
        float* pd = dpre.data();
        float* pdc_prev = dstate.data() + bsz * hs;
        for (int64_t b = 0; b < bsz; ++b) {
          const int64_t rh = b * hs;
          const int64_t rg = b * 4 * hs;
          for (int64_t k = 0; k < hs; ++k) {
            const float ghv = pgh[rh + k];
            const float iv = pi[rh + k];
            const float fv = pf[rh + k];
            const float gv = pg[rh + k];
            const float ov = po[rh + k];
            const float tcv = ptc[rh + k];
            const float dc = ghv * ov * (1.0f - tcv * tcv) + pgc[rh + k];
            pd[rg + k] = dc * gv * iv * (1.0f - iv);
            pd[rg + hs + k] = dc * pc[rh + k] * fv * (1.0f - fv);
            pd[rg + 2 * hs + k] = dc * iv * (1.0f - gv * gv);
            pd[rg + 3 * hs + k] = ghv * tcv * ov * (1.0f - ov);
            pdc_prev[rh + k] = dc * fv;
          }
        }
        ag::internal::Node* p_xw = node->parents[0].get();
        ag::internal::Node* p_state = node->parents[1].get();
        ag::internal::Node* p_whh = node->parents[2].get();
        ag::internal::Node* p_bias = node->parents[3].get();
        if (p_xw->requires_grad) ag::internal::AccumulateGrad(p_xw, dpre);
        if (p_state->requires_grad) {
          const Tensor dh = elda::MatMul(dpre, w_hh, false, true);
          std::copy(dh.data(), dh.data() + bsz * hs, dstate.data());
          ag::internal::AccumulateGrad(p_state, dstate);
        }
        if (p_whh->requires_grad) {
          ag::internal::AccumulateGrad(
              p_whh, elda::MatMul(h_prev, dpre, true, false));
        }
        // ReduceToShape inside AccumulateGrad sums [B,4H] -> [4H].
        if (p_bias->requires_grad) {
          ag::internal::AccumulateGrad(p_bias, dpre);
        }
      });
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterSubmodule("cell", &cell_);
}

ag::Variable Lstm::Forward(const ag::Variable& x) const {
  return LstmSweep(cell_, x).Stacked();
}

}  // namespace nn
}  // namespace elda
