// Long Short-Term Memory cell and layer (Hochreiter & Schmidhuber, 1997).
// Used by the StageNet baseline, which builds its stage-aware recurrence on
// an LSTM backbone.
//
// Gate order in the packed weights: i, f, g, o.
//   i = sigmoid(x W_i + h U_i + b_i)
//   f = sigmoid(x W_f + h U_f + b_f)   (forget bias initialised to 1)
//   g = tanh  (x W_g + h U_g + b_g)
//   o = sigmoid(x W_o + h U_o + b_o)
//   c' = f * c + i * g ;  h' = o * tanh(c')
//
// Like GruCell, the cell splits into PrecomputeInput (the hoistable
// input-to-gates GEMM — here withOUT the bias, which the original
// composition adds after the recurrent GEMM as (xW + hU) + b, an order the
// fused step preserves for bitwise identity) and Step. Step carries both
// recurrent tensors as one packed state [2, B, H] (h in row block 0, c in
// row block 1) so a whole timestep is a single fused tape node; the h half
// is exposed as a zero-copy row view.

#ifndef ELDA_NN_LSTM_H_
#define ELDA_NN_LSTM_H_

#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace nn {

class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  struct State {
    ag::Variable h;  // [B, hidden]
    ag::Variable c;  // [B, hidden]
  };

  // Packs h and c (pure copy) / views them back out (zero-copy).
  ag::Variable Pack(const State& state) const;
  State Unpack(const ag::Variable& packed) const;

  State Forward(const ag::Variable& x, const State& state) const;

  // Input-to-gates transform x W_ih, no bias ([N, input] -> [N, 4*hidden],
  // gate order i|f|g|o).
  ag::Variable PrecomputeInput(const ag::Variable& x) const;

  // One timestep as a single fused tape node: xw [B, 4*hidden], packed
  // state [2, B, hidden] -> next packed state. Covers the recurrent GEMM,
  // the bias add, and all gate math (tensor LstmGates).
  ag::Variable Step(const ag::Variable& xw, const ag::Variable& packed) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  const ag::Variable& w_ih() const { return w_ih_; }
  const ag::Variable& w_hh() const { return w_hh_; }
  const ag::Variable& bias() const { return bias_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Variable w_ih_;  // [input, 4*hidden]
  ag::Variable w_hh_;  // [hidden, 4*hidden]
  ag::Variable bias_;  // [4*hidden]
};

class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, T, input] -> all hidden states [B, T, hidden]; zero initial state.
  ag::Variable Forward(const ag::Variable& x) const;

  const LstmCell& cell() const { return cell_; }

 private:
  LstmCell cell_;
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_LSTM_H_
