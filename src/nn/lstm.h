// Long Short-Term Memory cell and layer (Hochreiter & Schmidhuber, 1997).
// Used by the StageNet baseline, which builds its stage-aware recurrence on
// an LSTM backbone.
//
// Gate order in the packed weights: i, f, g, o.
//   i = sigmoid(x W_i + h U_i + b_i)
//   f = sigmoid(x W_f + h U_f + b_f)   (forget bias initialised to 1)
//   g = tanh  (x W_g + h U_g + b_g)
//   o = sigmoid(x W_o + h U_o + b_o)
//   c' = f * c + i * g ;  h' = o * tanh(c')

#ifndef ELDA_NN_LSTM_H_
#define ELDA_NN_LSTM_H_

#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace elda {
namespace nn {

class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  struct State {
    ag::Variable h;  // [B, hidden]
    ag::Variable c;  // [B, hidden]
  };

  State Forward(const ag::Variable& x, const State& state) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Variable w_ih_;  // [input, 4*hidden]
  ag::Variable w_hh_;  // [hidden, 4*hidden]
  ag::Variable bias_;  // [4*hidden]
};

class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, T, input] -> all hidden states [B, T, hidden]; zero initial state.
  ag::Variable Forward(const ag::Variable& x) const;

  const LstmCell& cell() const { return cell_; }

 private:
  LstmCell cell_;
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_LSTM_H_
