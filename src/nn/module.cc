#include "nn/module.h"

namespace elda {
namespace nn {

const std::vector<ag::Variable>& Module::Parameters() const {
  // A fresh module's empty cache is valid at tree version 0; any
  // registration bumps the version and forces a rebuild.
  const uint64_t version = TreeVersion();
  if (param_cache_version_ != version || param_cache_.empty()) {
    param_cache_.clear();
    CollectParams(&param_cache_);
    param_cache_version_ = version;
  }
  return param_cache_;
}

void Module::CollectParams(std::vector<ag::Variable>* out) const {
  for (const auto& [name, var] : params_) out->push_back(var);
  for (const auto& [name, child] : submodules_) child->CollectParams(out);
}

uint64_t Module::TreeVersion() const {
  uint64_t version = version_;
  for (const auto& [name, child] : submodules_) {
    version += child->TreeVersion();
  }
  return version;
}

std::vector<std::pair<std::string, ag::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : submodules_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const ag::Variable& var : Parameters()) total += var.value().size();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : submodules_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (const ag::Variable& var : Parameters()) {
    ag::Variable v = var;
    v.ZeroGrad();
  }
}

ag::Variable Module::RegisterParameter(std::string name, Tensor value) {
  ag::Variable var(std::move(value), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  ++version_;
  return var;
}

void Module::RegisterSubmodule(std::string name, Module* module) {
  ELDA_CHECK(module != nullptr);
  submodules_.emplace_back(std::move(name), module);
  ++version_;
}

}  // namespace nn
}  // namespace elda
