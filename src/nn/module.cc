#include "nn/module.h"

namespace elda {
namespace nn {

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, var] : NamedParameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : submodules_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& [name, var] : NamedParameters()) total += var.value().size();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : submodules_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& [name, var] : NamedParameters()) {
    ag::Variable v = var;
    v.ZeroGrad();
  }
}

ag::Variable Module::RegisterParameter(std::string name, Tensor value) {
  ag::Variable var(std::move(value), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  return var;
}

void Module::RegisterSubmodule(std::string name, Module* module) {
  ELDA_CHECK(module != nullptr);
  submodules_.emplace_back(std::move(name), module);
}

}  // namespace nn
}  // namespace elda
