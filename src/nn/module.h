// Base class for neural-network modules.
//
// A Module owns trainable parameters (as ag::Variables with
// requires_grad=true) and may own submodules; Parameters() flattens the
// whole tree for the optimizer. Training mode (dropout on/off) propagates
// recursively through SetTraining().

#ifndef ELDA_NN_MODULE_H_
#define ELDA_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace elda {
namespace nn {

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its submodules. The
  // flattened list is cached and invalidated by structural mutation
  // (RegisterParameter/RegisterSubmodule anywhere in the tree), so the
  // optimizer loop and per-step gradient clipping don't re-walk the module
  // tree on every call. Not thread-safe: construction and training are
  // single-threaded by design (concurrent Forward never touches it).
  const std::vector<ag::Variable>& Parameters() const;

  // Parameters with hierarchical names ("gru.w_ih", ...), for debugging and
  // the parameter-count report in Table III.
  std::vector<std::pair<std::string, ag::Variable>> NamedParameters() const;

  // Total number of trainable scalars.
  int64_t NumParameters() const;

  // Switches train/eval mode for this module and all submodules.
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Clears accumulated gradients on every parameter.
  void ZeroGrad();

 protected:
  Module() = default;

  // Wraps `value` as a trainable parameter and registers it.
  ag::Variable RegisterParameter(std::string name, Tensor value);

  // Registers a child; the pointer must outlive this module (children are
  // typically direct members of the parent).
  void RegisterSubmodule(std::string name, Module* module);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, ag::Variable>>* out)
      const;
  void CollectParams(std::vector<ag::Variable>* out) const;
  // Sum of structural versions over this module and all submodules; any
  // registration anywhere in the tree changes it, invalidating caches.
  uint64_t TreeVersion() const;

  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
  uint64_t version_ = 0;  // bumped by RegisterParameter/RegisterSubmodule
  mutable std::vector<ag::Variable> param_cache_;
  mutable uint64_t param_cache_version_ = 0;  // TreeVersion at last rebuild
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_MODULE_H_
