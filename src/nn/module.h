// Base class for neural-network modules.
//
// A Module owns trainable parameters (as ag::Variables with
// requires_grad=true) and may own submodules; Parameters() flattens the
// whole tree for the optimizer. Training mode (dropout on/off) propagates
// recursively through SetTraining().

#ifndef ELDA_NN_MODULE_H_
#define ELDA_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace elda {
namespace nn {

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its submodules.
  std::vector<ag::Variable> Parameters() const;

  // Parameters with hierarchical names ("gru.w_ih", ...), for debugging and
  // the parameter-count report in Table III.
  std::vector<std::pair<std::string, ag::Variable>> NamedParameters() const;

  // Total number of trainable scalars.
  int64_t NumParameters() const;

  // Switches train/eval mode for this module and all submodules.
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Clears accumulated gradients on every parameter.
  void ZeroGrad();

 protected:
  Module() = default;

  // Wraps `value` as a trainable parameter and registers it.
  ag::Variable RegisterParameter(std::string name, Tensor value);

  // Registers a child; the pointer must outlive this module (children are
  // typically direct members of the parent).
  void RegisterSubmodule(std::string name, Module* module);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, ag::Variable>>* out)
      const;

  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_MODULE_H_
