#include "nn/recurrent_sweep.h"

#include "mem/prof.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace nn {
namespace {

// [B, T, C] -> precomputed gate block [T*B, gH] plus the loop bounds.
// The flattened time-major layout makes step t the contiguous row range
// [t*B, (t+1)*B), which RowsView hands out without copying.
ag::Variable HoistInput(
    const ag::Variable& x, int64_t expected_input,
    const std::function<ag::Variable(const ag::Variable&)>& precompute) {
  ELDA_CHECK_EQ(x.value().dim(), 3);
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  const int64_t input = x.value().shape(2);
  ELDA_CHECK_EQ(input, expected_input);
  ag::Variable time_major =
      ag::Reshape(ag::Transpose01(x), {steps * batch, input});
  return precompute(time_major);
}

}  // namespace

ag::Variable SweepResult::Stacked() const {
  return ag::Transpose01(ag::Stack0(steps));
}

const ag::Variable& SweepResult::last() const {
  ELDA_CHECK(!steps.empty());
  return reversed ? steps.front() : steps.back();
}

SweepResult Sweep(
    int64_t num_steps, const ag::Variable& initial_state,
    const std::function<ag::Variable(int64_t, const ag::Variable&)>& step,
    const SweepOptions& options) {
  ELDA_PROF_SCOPE(options.label);
  ELDA_CHECK_GE(num_steps, 1);
  // Uniform batches (every row runs the full horizon) take the dense path:
  // no per-step keep masks, no FreezeRows nodes, bitwise the pre-ragged
  // sweep.
  const std::vector<int64_t>* lengths = options.lengths;
  if (lengths != nullptr) {
    bool uniform = true;
    for (int64_t len : *lengths) {
      ELDA_CHECK(len >= 0 && len <= num_steps);
      uniform = uniform && len == num_steps;
    }
    if (uniform) lengths = nullptr;
  }
  const int64_t batch =
      lengths == nullptr
          ? 0
          : initial_state.value().shape(initial_state.value().dim() - 2);
  if (lengths != nullptr) {
    ELDA_CHECK_EQ(static_cast<int64_t>(lengths->size()), batch);
  }
  SweepResult result;
  result.reversed = options.reversed;
  result.steps.resize(num_steps);
  ag::Variable state = initial_state;
  for (int64_t s = 0; s < num_steps; ++s) {
    const int64_t t = options.reversed ? num_steps - 1 - s : s;
    if (lengths == nullptr) {
      state = step(t, state);
    } else {
      std::vector<uint8_t> keep(batch);
      int64_t num_kept = 0;
      for (int64_t b = 0; b < batch; ++b) {
        keep[b] = t < (*lengths)[b] ? 1 : 0;
        num_kept += keep[b];
      }
      if (num_kept == batch) {
        state = step(t, state);
      } else if (num_kept > 0) {
        state = ag::FreezeRows(step(t, state), state, std::move(keep));
      }
      // num_kept == 0: every row is past its length at this step; the state
      // (and the filed step) carry forward unchanged.
    }
    result.steps[t] = state;
  }
  return result;
}

SweepResult GruSweep(const GruCell& cell, const ag::Variable& x,
                     const SweepOptions& options) {
  ELDA_PROF_SCOPE(options.label);
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  ag::Variable xw_all = HoistInput(
      x, cell.input_size(),
      [&cell](const ag::Variable& rows) { return cell.PrecomputeInput(rows); });
  ag::Variable h0 =
      ag::Constant(Tensor::Zeros({batch, cell.hidden_size()}));
  SweepOptions inner = options;
  inner.label = "GruSweep/steps";
  return Sweep(
      steps, h0,
      [&cell, &xw_all, batch](int64_t t, const ag::Variable& h) {
        return cell.Step(ag::RowsView(xw_all, t * batch, batch), h);
      },
      inner);
}

SweepResult LstmSweep(const LstmCell& cell, const ag::Variable& x,
                      const SweepOptions& options) {
  ELDA_PROF_SCOPE(options.label);
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  ag::Variable xw_all = HoistInput(
      x, cell.input_size(),
      [&cell](const ag::Variable& rows) { return cell.PrecomputeInput(rows); });
  ag::Variable s0 =
      ag::Constant(Tensor::Zeros({2, batch, cell.hidden_size()}));
  SweepOptions inner = options;
  inner.label = "LstmSweep/steps";
  SweepResult packed = Sweep(
      steps, s0,
      [&cell, &xw_all, batch](int64_t t, const ag::Variable& s) {
        return cell.Step(ag::RowsView(xw_all, t * batch, batch), s);
      },
      inner);
  SweepResult result;
  result.reversed = packed.reversed;
  result.steps.reserve(packed.steps.size());
  for (const ag::Variable& s : packed.steps) {
    result.steps.push_back(ag::StepView(s, 0));
  }
  return result;
}

}  // namespace nn
}  // namespace elda
