// The time-major recurrence engine: one place that owns the time loop for
// every sequence model in the repo (GRU, LSTM, RETAIN/Dipole's reversed
// passes, GRU-D's decayed steps, ConCare's per-feature recurrences).
//
// A sweep relayouts the input batch-major -> time-major ([B, T, C] ->
// [T, B, C]), hoists the input-to-gates GEMM over all T steps at once
// ([T*B, C] x [C, gH] — bitwise identical to T per-step GEMMs under the
// strict-k MatMul contract, because each output row depends only on its own
// input row), then walks the steps feeding the cell zero-copy row views of
// the precomputed block. Each step is a constant, small number of tape
// nodes (a view + one fused cell op) instead of the ~20 the op-by-op
// composition recorded.
//
// Reversed sweeps iterate t = T-1 .. 0 but still file each state under its
// chronological index, which is exactly the
// ReverseTime -> forward sweep -> ReverseTime composition without either
// copy.
//
// Every sweep opens an ELDA_PROF scope (options.label), so ELDA_PROF=1
// reports per-sweep call counts, wall time, allocation volume, and tape
// nodes as one row.

#ifndef ELDA_NN_RECURRENT_SWEEP_H_
#define ELDA_NN_RECURRENT_SWEEP_H_

#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "nn/gru.h"
#include "nn/lstm.h"

namespace elda {
namespace nn {

struct SweepOptions {
  // Iterate t = T-1 .. 0. States in SweepResult::steps stay chronological;
  // last() is the final state the sweep computed (steps.front() when
  // reversed).
  bool reversed = false;
  // Optional per-row valid-prefix lengths [B] for ragged batches. Row b's
  // state freezes at steps t >= lengths[b]: the kept rows run the normal
  // cell step while frozen rows copy their prior state (ag::FreezeRows), so
  // row b of the final state is bitwise identical to sweeping that row
  // alone at its true length. Reversed sweeps hold frozen rows at the
  // initial state until t < lengths[b], matching a solo reversed run.
  // nullptr — or every length equal to the step count — takes the dense
  // fixed-T path with zero extra tape nodes. The pointee must outlive the
  // sweep call.
  const std::vector<int64_t>* lengths = nullptr;
  // ELDA_PROF scope name billed with the whole sweep (forward pass only).
  const char* label = "RecurrentSweep";
};

struct SweepResult {
  // Per-step hidden states [B, H], indexed by chronological time.
  std::vector<ag::Variable> steps;
  bool reversed = false;

  // All states stacked batch-major [B, T, H] (one Stack0 + one Transpose01
  // node; element-for-element identical to the old per-step
  // Reshape-and-Concat).
  ag::Variable Stacked() const;

  // The state the sweep computed last: steps.back() forward, steps.front()
  // reversed.
  const ag::Variable& last() const;
};

// Runs `cell` over x [B, T, input] with a zero initial state.
SweepResult GruSweep(const GruCell& cell, const ag::Variable& x,
                     const SweepOptions& options = {});

// LSTM sweep; steps are the h halves of the packed per-step state
// (zero-copy views).
SweepResult LstmSweep(const LstmCell& cell, const ag::Variable& x,
                      const SweepOptions& options = {});

// Generic sweep for cells with extra per-step inputs (e.g. GRU-D's decay):
// `step` maps (chronological index t, previous state) -> next state; the
// engine owns iteration order, chronological filing, and profiling. The
// state can be any per-step tensor shape (GRU's [B, H], LSTM's packed
// [2, B, H]).
SweepResult Sweep(
    int64_t num_steps, const ag::Variable& initial_state,
    const std::function<ag::Variable(int64_t, const ag::Variable&)>& step,
    const SweepOptions& options = {});

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_RECURRENT_SWEEP_H_
