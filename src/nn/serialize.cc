#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

namespace elda {
namespace nn {
namespace {

constexpr char kMagic[4] = {'E', 'L', 'D', 'A'};
constexpr uint32_t kVersion = 1;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

bool SaveParameters(const Module& module, const std::string& path,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  const auto named = module.NamedParameters();
  WritePod(out, static_cast<uint64_t>(named.size()));
  for (const auto& [name, var] : named) {
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& value = var.value();
    WritePod(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d : value.shape()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size() * sizeof(float)));
  }
  out.flush();
  if (!out) return Fail(error, "write failure on " + path);
  return true;
}

bool LoadParameters(Module* module, const std::string& path,
                    std::string* error) {
  ELDA_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + " is not an ELDA checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Fail(error, "unsupported checkpoint version");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Fail(error, "truncated checkpoint");

  std::map<std::string, ag::Variable> targets;
  for (const auto& [name, var] : module->NamedParameters()) {
    targets.emplace(name, var);
  }
  if (count != targets.size()) {
    return Fail(error, "checkpoint holds " + std::to_string(count) +
                           " parameters, module declares " +
                           std::to_string(targets.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Fail(error, "corrupt parameter name");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank > 8) {
      return Fail(error, "corrupt parameter header for " + name);
    }
    std::vector<int64_t> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d])) return Fail(error, "truncated shape");
    }
    auto it = targets.find(name);
    if (it == targets.end()) {
      return Fail(error, "checkpoint parameter " + name +
                             " not declared by the module");
    }
    ag::Variable var = it->second;
    if (var.value().shape() != shape) {
      return Fail(error, "shape mismatch for " + name);
    }
    Tensor loaded(shape);
    in.read(reinterpret_cast<char*>(loaded.data()),
            static_cast<std::streamsize>(loaded.size() * sizeof(float)));
    if (!in) return Fail(error, "truncated data for " + name);
    *var.mutable_value() = loaded;
  }
  return true;
}

}  // namespace nn
}  // namespace elda
