#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "health/ckpt_io.h"

namespace elda {
namespace nn {
namespace {

constexpr char kMagic[4] = {'E', 'L', 'D', 'A'};
constexpr uint32_t kLegacyVersion = 1;
constexpr char kParamsSection[] = "params";

// Corrupt files must not drive allocation: per-tensor volume is capped (2^28
// floats = 1 GiB) on top of the positive-dims check.
constexpr int64_t kMaxTensorElements = int64_t{1} << 28;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Bounds-checked little-endian reader over an in-memory blob.
class BlobReader {
 public:
  explicit BlobReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Pod(T* value) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool String(size_t length, std::string* out) {
    if (pos_ + length > bytes_.size()) return false;
    out->assign(bytes_, pos_, length);
    pos_ += length;
    return true;
  }

  bool Floats(float* dst, int64_t count) {
    const size_t n = static_cast<size_t>(count) * sizeof(float);
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool Done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

// Validates dims read from an untrusted file and returns the volume, or -1
// when the shape is rejected (non-positive dim, overflow, or over the cap).
int64_t CheckedVolume(const std::vector<int64_t>& shape) {
  int64_t volume = 1;
  for (int64_t d : shape) {
    if (d <= 0) return -1;
    if (volume > kMaxTensorElements / d) return -1;
    volume *= d;
  }
  return volume;
}

}  // namespace

std::string EncodeParameters(const Module& module) {
  std::string blob;
  const auto named = module.NamedParameters();
  AppendPod(&blob, static_cast<uint64_t>(named.size()));
  for (const auto& [name, var] : named) {
    AppendPod(&blob, static_cast<uint32_t>(name.size()));
    blob.append(name);
    const Tensor& value = var.value();
    AppendPod(&blob, static_cast<uint32_t>(value.dim()));
    for (int64_t d : value.shape()) AppendPod(&blob, d);
    blob.append(reinterpret_cast<const char*>(value.data()),
                static_cast<size_t>(value.size()) * sizeof(float));
  }
  return blob;
}

bool DecodeParameters(Module* module, const std::string& blob,
                      std::string* error) {
  ELDA_CHECK(module != nullptr);
  BlobReader reader(blob);
  uint64_t count = 0;
  if (!reader.Pod(&count)) return Fail(error, "truncated checkpoint");

  std::map<std::string, ag::Variable> targets;
  for (const auto& [name, var] : module->NamedParameters()) {
    targets.emplace(name, var);
  }
  if (count != targets.size()) {
    return Fail(error, "checkpoint holds " + std::to_string(count) +
                           " parameters, module declares " +
                           std::to_string(targets.size()));
  }
  // Decode into staging tensors first so a failure partway through leaves
  // the module untouched.
  std::vector<std::pair<ag::Variable, Tensor>> staged;
  staged.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!reader.Pod(&name_len) || name_len > 4096) {
      return Fail(error, "corrupt parameter name");
    }
    std::string name;
    if (!reader.String(name_len, &name)) {
      return Fail(error, "truncated parameter name");
    }
    uint32_t rank = 0;
    if (!reader.Pod(&rank) || rank > 8) {
      return Fail(error, "corrupt parameter header for " + name);
    }
    std::vector<int64_t> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!reader.Pod(&shape[d])) return Fail(error, "truncated shape");
    }
    const int64_t volume = CheckedVolume(shape);
    if (volume < 0) {
      return Fail(error, "rejected dimensions for " + name +
                             " (non-positive or oversized)");
    }
    auto it = targets.find(name);
    if (it == targets.end()) {
      return Fail(error, "checkpoint parameter " + name +
                             " not declared by the module");
    }
    if (it->second.value().shape() != shape) {
      return Fail(error, "shape mismatch for " + name);
    }
    Tensor loaded(shape);
    if (!reader.Floats(loaded.data(), volume)) {
      return Fail(error, "truncated data for " + name);
    }
    staged.emplace_back(it->second, std::move(loaded));
  }
  for (auto& [var, tensor] : staged) {
    *var.mutable_value() = tensor;
  }
  return true;
}

bool SaveParameters(const Module& module, const std::string& path,
                    std::string* error) {
  std::vector<health::Section> sections;
  sections.push_back({kParamsSection, EncodeParameters(module)});
  return health::WriteSectionedFile(path, sections, error);
}

bool LoadParameters(Module* module, const std::string& path,
                    std::string* error) {
  ELDA_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + " is not an ELDA checkpoint");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) return Fail(error, path + " is truncated in the header");

  if (version == kLegacyVersion) {
    // v1: the rest of the file is the raw parameter blob, unchecksummed.
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return DecodeParameters(module, blob, error);
  }
  in.close();

  std::vector<health::Section> sections;
  if (!health::ReadSectionedFile(path, &sections, error)) return false;
  const health::Section* params =
      health::FindSection(sections, kParamsSection);
  if (params == nullptr) {
    return Fail(error, path + " has no '" + kParamsSection + "' section");
  }
  return DecodeParameters(module, params->payload, error);
}

}  // namespace nn
}  // namespace elda
