// Parameter checkpointing: save/load a module's named parameters to a
// binary container so a trained ELDA deployment can persist its model
// between the offline-training and online-prediction phases of the paper's
// Fig. 2 workflow.
//
// Format v2 wraps the parameter blob in the crash-safe sectioned container
// of health/ckpt_io.h (atomic temp-file + rename writes, per-section CRC32
// verified at load), under a single "params" section:
//
//   blob: uint64 count |
//         per parameter: uint32 name_len | name bytes |
//                        uint32 rank | int64 dims[rank] | float data[volume]
//
// Format v1 (magic "ELDA" | uint32 1 | blob, no checksums, non-atomic
// write) is still read for backward compatibility with old checkpoints.
//
// Loading is strict: the target module must declare exactly the same
// parameter names and shapes (architecture must match the checkpoint), and
// dims read from the file are validated (positive, capped volume) before any
// allocation so a corrupt file cannot trigger a huge or negative allocation.

#ifndef ELDA_NN_SERIALIZE_H_
#define ELDA_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace elda {
namespace nn {

// Writes all named parameters of `module` to `path` (format v2, atomic).
// Returns false (with a message in `error` if non-null) on I/O failure.
bool SaveParameters(const Module& module, const std::string& path,
                    std::string* error = nullptr);

// Reads a checkpoint written by SaveParameters (v2) or by the legacy v1
// writer into `module`. Returns false on I/O failure, checksum mismatch,
// unknown/missing parameters, or shape mismatches.
bool LoadParameters(Module* module, const std::string& path,
                    std::string* error = nullptr);

// The raw parameter blob used inside checkpoints (see format above). The
// trainer's full-run checkpoints embed model snapshots with these.
std::string EncodeParameters(const Module& module);
bool DecodeParameters(Module* module, const std::string& blob,
                      std::string* error = nullptr);

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_SERIALIZE_H_
