// Parameter checkpointing: save/load a module's named parameters to a
// simple binary container so a trained ELDA deployment can persist its
// model between the offline-training and online-prediction phases of the
// paper's Fig. 2 workflow.
//
// Format (little-endian):
//   magic "ELDA" | uint32 version | uint64 count |
//   per parameter: uint32 name_len | name bytes |
//                  uint32 rank | int64 dims[rank] | float data[volume]
//
// Loading is strict: the target module must declare exactly the same
// parameter names and shapes (architecture must match the checkpoint).

#ifndef ELDA_NN_SERIALIZE_H_
#define ELDA_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace elda {
namespace nn {

// Writes all named parameters of `module` to `path`. Returns false (with a
// message in `error` if non-null) on I/O failure.
bool SaveParameters(const Module& module, const std::string& path,
                    std::string* error = nullptr);

// Reads a checkpoint written by SaveParameters into `module`. Returns false
// on I/O failure, unknown/missing parameters, or shape mismatches.
bool LoadParameters(Module* module, const std::string& path,
                    std::string* error = nullptr);

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_SERIALIZE_H_
