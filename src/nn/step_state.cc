#include "nn/step_state.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace elda {
namespace nn {

StepState::~StepState() = default;

RollingWindow::RollingWindow(int64_t capacity) : capacity_(capacity) {
  ELDA_CHECK_GE(capacity, 1);
}

void RollingWindow::Append(const float* row, int64_t width) {
  ELDA_CHECK_GE(width, 1);
  if (width_ == 0) {
    width_ = width;
    data_.resize(static_cast<size_t>(capacity_ * width_));
  }
  ELDA_CHECK_EQ(width, width_);
  const int64_t slot =
      size_ < capacity_ ? (start_ + size_) % capacity_ : start_;
  std::memcpy(data_.data() + slot * width_, row,
              static_cast<size_t>(width_) * sizeof(float));
  if (size_ < capacity_) {
    ++size_;
  } else {
    start_ = (start_ + 1) % capacity_;  // evicted the oldest row
  }
}

const float* RollingWindow::row(int64_t i) const {
  ELDA_CHECK_GE(i, 0);
  ELDA_CHECK_LT(i, size_);
  return data_.data() + ((start_ + i) % capacity_) * width_;
}

void RollingWindow::CopyInto(float* dst) const {
  for (int64_t i = 0; i < size_; ++i) {
    std::memcpy(dst + i * width_, row(i),
                static_cast<size_t>(width_) * sizeof(float));
  }
}

Tensor RollingWindow::Materialize() const {
  Tensor out = Tensor::Empty({size_, width_ == 0 ? 0 : width_});
  if (size_ > 0) CopyInto(out.data());
  return out;
}

void RollingWindow::Clear() {
  start_ = 0;
  size_ = 0;
}

}  // namespace nn
}  // namespace elda
