#include "nn/step_state.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace elda {
namespace nn {

StepState::~StepState() = default;

void StepState::Save(StateWriter* writer) const { writer->I64(steps_seen); }

bool StepState::Load(StateReader* reader) { return reader->I64(&steps_seen); }

RollingWindow::RollingWindow(int64_t capacity) : capacity_(capacity) {
  ELDA_CHECK_GE(capacity, 1);
}

void RollingWindow::Append(const float* row, int64_t width) {
  ELDA_CHECK_GE(width, 1);
  if (width_ == 0) {
    width_ = width;
    data_.resize(static_cast<size_t>(capacity_ * width_));
  }
  ELDA_CHECK_EQ(width, width_);
  const int64_t slot =
      size_ < capacity_ ? (start_ + size_) % capacity_ : start_;
  std::memcpy(data_.data() + slot * width_, row,
              static_cast<size_t>(width_) * sizeof(float));
  if (size_ < capacity_) {
    ++size_;
  } else {
    start_ = (start_ + 1) % capacity_;  // evicted the oldest row
  }
}

const float* RollingWindow::row(int64_t i) const {
  ELDA_CHECK_GE(i, 0);
  ELDA_CHECK_LT(i, size_);
  return data_.data() + ((start_ + i) % capacity_) * width_;
}

void RollingWindow::CopyInto(float* dst) const {
  for (int64_t i = 0; i < size_; ++i) {
    std::memcpy(dst + i * width_, row(i),
                static_cast<size_t>(width_) * sizeof(float));
  }
}

Tensor RollingWindow::Materialize() const {
  Tensor out = Tensor::Empty({size_, width_ == 0 ? 0 : width_});
  if (size_ > 0) CopyInto(out.data());
  return out;
}

void RollingWindow::Clear() {
  start_ = 0;
  size_ = 0;
}

void StateWriter::I64(int64_t value) {
  out_.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void StateWriter::F32(float value) {
  out_.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void StateWriter::TensorData(const Tensor& tensor) {
  I64(tensor.size());
  out_.append(reinterpret_cast<const char*>(tensor.data()),
              static_cast<size_t>(tensor.size()) * sizeof(float));
}

void StateWriter::Window(const RollingWindow& window) {
  I64(window.width());
  I64(window.size());
  for (int64_t i = 0; i < window.size(); ++i) {
    out_.append(reinterpret_cast<const char*>(window.row(i)),
                static_cast<size_t>(window.width()) * sizeof(float));
  }
}

void StateWriter::Bytes(const std::vector<uint8_t>& bytes) {
  I64(static_cast<int64_t>(bytes.size()));
  out_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

StateReader::StateReader(const char* data, size_t size)
    : data_(data), size_(size) {}

bool StateReader::Raw(void* dst, size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool StateReader::I64(int64_t* value) { return Raw(value, sizeof(*value)); }

bool StateReader::F32(float* value) { return Raw(value, sizeof(*value)); }

bool StateReader::TensorInto(Tensor* tensor) {
  int64_t count = 0;
  if (!I64(&count)) return false;
  if (count != tensor->size()) {
    ok_ = false;
    return false;
  }
  return Raw(tensor->data(), static_cast<size_t>(count) * sizeof(float));
}

bool StateReader::WindowInto(RollingWindow* window) {
  int64_t width = 0;
  int64_t size = 0;
  if (!I64(&width) || !I64(&size)) return false;
  if (width < 0 || size < 0 || size > window->capacity() ||
      (size > 0 && width == 0) ||
      (window->width() != 0 && width != 0 && width != window->width())) {
    ok_ = false;
    return false;
  }
  window->Clear();
  if (size == 0) return true;
  std::vector<float> row(static_cast<size_t>(width));
  for (int64_t i = 0; i < size; ++i) {
    if (!Raw(row.data(), static_cast<size_t>(width) * sizeof(float))) {
      return false;
    }
    window->Append(row.data(), width);
  }
  return true;
}

bool StateReader::Bytes(std::vector<uint8_t>* bytes) {
  int64_t count = 0;
  if (!I64(&count)) return false;
  if (count < 0 || static_cast<size_t>(count) > size_ - pos_) {
    ok_ = false;
    return false;
  }
  bytes->resize(static_cast<size_t>(count));
  return count == 0 || Raw(bytes->data(), static_cast<size_t>(count));
}

}  // namespace nn
}  // namespace elda
