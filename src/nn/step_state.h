// Resident per-sequence state for step-level (streaming) inference.
//
// A StepState is the opaque memory one live sequence carries between
// observations: recurrent hidden vectors for models with an O(1) step,
// bounded rolling windows of raw observations for models that can only
// score a whole window. Each model allocates its own concrete state via
// train::SequenceModel::MakeStepState() and advances it in StepForward();
// callers (the serve session table, tests, benches) treat it as a black
// box with a step counter.

#ifndef ELDA_NN_STEP_STATE_H_
#define ELDA_NN_STEP_STATE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace elda {
namespace nn {

// Base class for model-specific streaming state. Polymorphic so model
// implementations can downcast to their own concrete type (checked).
struct StepState {
  virtual ~StepState();

  // Observations consumed so far, maintained by StepForward.
  int64_t steps_seen = 0;
};

// Bounded chronological ring buffer of fixed-width float rows — the storage
// behind every windowed StepState (raw-observation windows for replay
// models, hidden-state histories for attention scoring). Appending beyond
// `capacity` evicts the oldest row, so resident memory is O(capacity) no
// matter how long the stay runs.
//
// The row width is fixed by the first Append, which keeps window states
// usable from code that cannot know the model's input width up front.
class RollingWindow {
 public:
  explicit RollingWindow(int64_t capacity);

  // Copies `width` floats. The first call fixes the row width; later calls
  // must pass the same width. Evicts the oldest row when full.
  void Append(const float* row, int64_t width);

  int64_t size() const { return size_; }
  int64_t capacity() const { return capacity_; }
  int64_t width() const { return width_; }

  // Row i in chronological order (0 = oldest retained).
  const float* row(int64_t i) const;

  // Copies all retained rows, oldest first, into dst (size()*width()
  // floats) — the layout of one [T, width] slab of a batch tensor.
  void CopyInto(float* dst) const;

  // The retained window as a fresh [size, width] tensor.
  Tensor Materialize() const;

  void Clear();

 private:
  int64_t capacity_;
  int64_t width_ = 0;  // fixed by the first Append
  int64_t start_ = 0;  // ring index of the oldest row
  int64_t size_ = 0;
  std::vector<float> data_;  // capacity * width floats once width is known
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_STEP_STATE_H_
