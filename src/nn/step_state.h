// Resident per-sequence state for step-level (streaming) inference.
//
// A StepState is the opaque memory one live sequence carries between
// observations: recurrent hidden vectors for models with an O(1) step,
// bounded rolling windows of raw observations for models that can only
// score a whole window. Each model allocates its own concrete state via
// train::SequenceModel::MakeStepState() and advances it in StepForward();
// callers (the serve session table, tests, benches) treat it as a black
// box with a step counter.
//
// Every concrete state also knows how to serialize itself (Save/Load via
// StateWriter/StateReader), which is what makes the serving layer's
// session checkpoint/restore possible: a state written by Save and read
// back by Load into a fresh MakeStepState allocation carries bitwise the
// same tensors, rings, and counters, so post-restore StepForward calls
// score exactly as the uninterrupted stream would have.

#ifndef ELDA_NN_STEP_STATE_H_
#define ELDA_NN_STEP_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace elda {
namespace nn {

// Bounded chronological ring buffer of fixed-width float rows — the storage
// behind every windowed StepState (raw-observation windows for replay
// models, hidden-state histories for attention scoring). Appending beyond
// `capacity` evicts the oldest row, so resident memory is O(capacity) no
// matter how long the stay runs.
//
// The row width is fixed by the first Append, which keeps window states
// usable from code that cannot know the model's input width up front.
class RollingWindow {
 public:
  explicit RollingWindow(int64_t capacity);

  // Copies `width` floats. The first call fixes the row width; later calls
  // must pass the same width. Evicts the oldest row when full.
  void Append(const float* row, int64_t width);

  int64_t size() const { return size_; }
  int64_t capacity() const { return capacity_; }
  int64_t width() const { return width_; }

  // Row i in chronological order (0 = oldest retained).
  const float* row(int64_t i) const;

  // Copies all retained rows, oldest first, into dst (size()*width()
  // floats) — the layout of one [T, width] slab of a batch tensor.
  void CopyInto(float* dst) const;

  // The retained window as a fresh [size, width] tensor.
  Tensor Materialize() const;

  void Clear();

 private:
  int64_t capacity_;
  int64_t width_ = 0;  // fixed by the first Append
  int64_t start_ = 0;  // ring index of the oldest row
  int64_t size_ = 0;
  std::vector<float> data_;  // capacity * width floats once width is known
};

// Append-only byte sink the StepState::Save overrides write into. Raw
// little-endian float/int payloads: the values are copied bit-for-bit, so
// a round trip through Save/Load cannot perturb any score.
class StateWriter {
 public:
  void I64(int64_t value);
  void F32(float value);
  // Element count followed by the raw float payload. Shapes are implied by
  // the model's MakeStepState allocation, so only the flat data travels.
  void TensorData(const Tensor& tensor);
  // Width, retained row count, then the rows in chronological order. The
  // ring's internal rotation is not persisted — a restored window holds the
  // same rows starting at slot 0, which behaves identically.
  void Window(const RollingWindow& window);
  void Bytes(const std::vector<uint8_t>& bytes);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Bounds-checked reader over one Save payload. Every accessor returns
// false (and poisons the reader) instead of reading past the end or into a
// mismatched destination, so a truncated or corrupt state payload is
// rejected rather than loaded as garbage.
class StateReader {
 public:
  StateReader(const char* data, size_t size);
  explicit StateReader(const std::string& bytes)
      : StateReader(bytes.data(), bytes.size()) {}

  bool I64(int64_t* value);
  bool F32(float* value);
  // Fails unless the stored element count equals tensor->size(); the
  // destination keeps the shape MakeStepState gave it.
  bool TensorInto(Tensor* tensor);
  // Clears `window` and re-appends the stored rows. Fails when the stored
  // row count exceeds the window's capacity or the widths conflict.
  bool WindowInto(RollingWindow* window);
  bool Bytes(std::vector<uint8_t>* bytes);

  // True when every read so far succeeded.
  bool ok() const { return ok_; }
  // True when the whole payload was consumed (trailing garbage check).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Raw(void* dst, size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Base class for model-specific streaming state. Polymorphic so model
// implementations can downcast to their own concrete type (checked).
struct StepState {
  virtual ~StepState();

  // Serializes everything the state carries. Concrete states must override
  // both Save and Load together and call the base implementation first
  // (it persists `steps_seen`).
  virtual void Save(StateWriter* writer) const;

  // Restores from a Save payload into a state freshly allocated by the
  // same model's MakeStepState with the same window capacity. Returns
  // false on truncated or mismatched input, leaving the state unusable —
  // callers must discard it (the serve layer quarantines the session).
  virtual bool Load(StateReader* reader);

  // Observations consumed so far, maintained by StepForward.
  int64_t steps_seen = 0;
};

}  // namespace nn
}  // namespace elda

#endif  // ELDA_NN_STEP_STATE_H_
