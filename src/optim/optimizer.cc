#include "optim/optimizer.h"

#include <cmath>

namespace elda {
namespace optim {

Optimizer::Optimizer(std::vector<ag::Variable> params)
    : params_(std::move(params)) {
  for (const ag::Variable& p : params_) {
    ELDA_CHECK(p.defined() && p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (ag::Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const ag::Variable& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    float* w = p.mutable_value()->data();
    const float* gp = g.data();
    if (momentum_ == 0.0f) {
      for (int64_t j = 0; j < g.size(); ++j) w[j] -= lr_ * gp[j];
    } else {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < g.size(); ++j) {
        vel[j] = momentum_ * vel[j] + gp[j];
        w[j] -= lr_ * vel[j];
      }
    }
  }
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* w = p.mutable_value()->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.value().size();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + epsilon_);
      if (weight_decay_ != 0.0f) w[j] -= lr_ * weight_decay_ * w[j];
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.lr = lr_;
  state.m.reserve(m_.size());
  state.v.reserve(v_.size());
  for (const Tensor& t : m_) state.m.push_back(t.Clone());
  for (const Tensor& t : v_) state.v.push_back(t.Clone());
  return state;
}

void Adam::RestoreState(const AdamState& state) {
  ELDA_CHECK_EQ(state.m.size(), m_.size());
  ELDA_CHECK_EQ(state.v.size(), v_.size());
  for (size_t i = 0; i < m_.size(); ++i) {
    ELDA_CHECK(state.m[i].shape() == m_[i].shape());
    ELDA_CHECK(state.v[i].shape() == v_[i].shape());
    m_[i] = state.m[i].Clone();
    v_[i] = state.v[i].Clone();
  }
  step_count_ = state.step_count;
  lr_ = state.lr;
}

StepDecaySchedule::StepDecaySchedule(Adam* optimizer, int64_t step_size,
                                     float gamma)
    : optimizer_(optimizer), step_size_(step_size), gamma_(gamma) {
  ELDA_CHECK(optimizer_ != nullptr);
  ELDA_CHECK_GT(step_size_, 0);
  ELDA_CHECK_GT(gamma_, 0.0f);
}

void StepDecaySchedule::OnEpochEnd() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    optimizer_->set_lr(optimizer_->lr() * gamma_);
  }
}

float GlobalGradNorm(const std::vector<ag::Variable>& params) {
  double sum_sq = 0.0;
  for (const ag::Variable& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.grad().size(); ++j) {
      sum_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  return static_cast<float>(std::sqrt(sum_sq));
}

float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm) {
  ELDA_CHECK_GT(max_norm, 0.0f);
  const float norm = GlobalGradNorm(params);
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const ag::Variable& p : params) {
      if (!p.has_grad()) continue;
      // Gradients are logically mutable state owned by the optimizer loop.
      float* g = const_cast<float*>(p.grad().data());
      for (int64_t j = 0; j < p.grad().size(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace elda
