// First-order optimizers over ag::Variable parameters.
//
// The training protocol in the paper is Adam with lr=1e-3 and batch size 64;
// SGD is provided for tests and ablations. Optimizers mutate parameter
// values in place and read the gradients accumulated by Backward().

#ifndef ELDA_OPTIM_OPTIMIZER_H_
#define ELDA_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace elda {
namespace optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the currently accumulated gradients. Parameters
  // without an accumulated gradient are skipped.
  virtual void Step() = 0;

  // Clears gradients on all managed parameters.
  void ZeroGrad();

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Complete serialisable Adam state, for crash-safe checkpoint/resume and
// the trainer's rollback snapshots: restoring it makes subsequent steps
// bitwise identical to an optimizer that never stopped.
struct AdamState {
  int64_t step_count = 0;
  float lr = 0.0f;
  std::vector<Tensor> m;  // first moments, deep copies
  std::vector<Tensor> v;  // second moments, deep copies
};

// Adam (Kingma & Ba, 2015) with bias correction. A non-zero `weight_decay`
// applies decoupled decay (AdamW, Loshchilov & Hutter 2019): parameters
// shrink by lr * decay per step independent of the adaptive moments.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  // Deep-copies the moment tensors, step counter and learning rate out of /
  // back into the optimizer. RestoreState CHECK-fails on a parameter-count
  // or shape mismatch (the state must come from an identical architecture).
  AdamState ExportState() const;
  void RestoreState(const AdamState& state);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Multiplies an optimizer's learning rate by `gamma` every `step_size`
// epochs: call OnEpochEnd() once per epoch.
class StepDecaySchedule {
 public:
  StepDecaySchedule(Adam* optimizer, int64_t step_size, float gamma);

  void OnEpochEnd();
  int64_t epoch() const { return epoch_; }

 private:
  Adam* optimizer_;
  int64_t step_size_;
  float gamma_;
  int64_t epoch_ = 0;
};

// Scales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm. A no-op (returning the norm) if already within
// bounds. Parameters without gradients contribute zero.
//
// Note for health monitoring: a NaN/Inf gradient makes the returned norm
// non-finite and leaves the gradients unscaled, so the returned value doubles
// as a fused NaN/Inf scan over the post-clip gradients.
float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm);

// Global L2 norm of the accumulated gradients without clipping (the scan
// half of ClipGradNorm, for runs that disable clipping).
float GlobalGradNorm(const std::vector<ag::Variable>& params);

}  // namespace optim
}  // namespace elda

#endif  // ELDA_OPTIM_OPTIMIZER_H_
