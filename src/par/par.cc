#include "par/par.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace elda {
namespace par {
namespace {

// Hard ceiling on worker threads, guarding against pathological
// ELDA_THREADS values; well above any sensible oversubscription factor.
constexpr int64_t kMaxWorkers = 256;

std::atomic<int64_t> g_num_threads_override{0};

std::atomic<int64_t> g_parallel_dispatches{0};
std::atomic<int64_t> g_chunks{0};
std::atomic<int64_t> g_inline_runs{0};

thread_local bool tls_in_parallel_region = false;

struct InParallelScope {
  bool prev;
  InParallelScope() : prev(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~InParallelScope() { tls_in_parallel_region = prev; }
};

int64_t DefaultNumThreads() {
  static const int64_t cached = [] {
    if (const char* env = std::getenv("ELDA_THREADS")) {
      char* end = nullptr;
      const long value = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && value > 0) {
        return std::min<int64_t>(value, kMaxWorkers);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int64_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

}  // namespace

int64_t NumThreads() {
  const int64_t override = g_num_threads_override.load(std::memory_order_relaxed);
  return override > 0 ? override : DefaultNumThreads();
}

void SetNumThreads(int64_t n) {
  g_num_threads_override.store(n > 0 ? std::min(n, kMaxWorkers) : 0,
                               std::memory_order_relaxed);
}

int64_t ConfiguredNumThreads() {
  return g_num_threads_override.load(std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_in_parallel_region; }

ParStats Stats() {
  ParStats s;
  s.parallel_dispatches = g_parallel_dispatches.load(std::memory_order_relaxed);
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.inline_runs = g_inline_runs.load(std::memory_order_relaxed);
  return s;
}

Pool::Pool(int64_t num_workers) { EnsureWorkers(num_workers); }

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int64_t Pool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(workers_.size());
}

void Pool::EnsureWorkers(int64_t n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int64_t>(workers_.size()) < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Pool::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_seq_ != seen_seq);
      });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;
      ++workers_inside_;
    }
    RunChunks(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_inside_;
    }
    done_cv_.notify_all();
  }
}

void Pool::RunChunks(Job* job) {
  InParallelScope scope;
  for (;;) {
    const int64_t chunk = job->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    try {
      (*job->fn)(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job->error) job->error = std::current_exception();
    }
    if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Acquire/release mu_ before notifying so a waiter that just checked
      // the predicate is guaranteed to be asleep (no lost wakeup).
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void Pool::Run(int64_t num_chunks, const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.fn = &fn;
  job.num_chunks = num_chunks;
  job.pending.store(num_chunks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  RunChunks(&job);
  {
    // Wait until every chunk has finished AND every worker has left the
    // claim loop — `job` lives on this stack frame.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.pending.load(std::memory_order_acquire) == 0 &&
             workers_inside_ == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

Pool& GlobalPool() {
  // Leaked deliberately: joining worker threads during static destruction
  // deadlocks on some platforms, and the OS reclaims them anyway.
  static Pool* pool = new Pool(0);
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t max_threads) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t g = std::max<int64_t>(1, grain);
  const int64_t max_chunks = (n + g - 1) / g;
  int64_t threads = NumThreads();
  if (max_threads > 0) threads = std::min(threads, max_threads);
  threads = std::min(threads, max_chunks);
  if (threads <= 1 || InParallelRegion()) {
    // Exact serial fallback: one chunk over the whole range, same functor.
    g_inline_runs.fetch_add(1, std::memory_order_relaxed);
    InParallelScope scope;
    fn(begin, end);
    return;
  }
  // Over-decompose mildly (4 chunks per thread) so an unlucky slow chunk
  // does not stall the whole dispatch; chunk layout does not affect results
  // because every parallelized functor writes disjoint outputs.
  const int64_t chunks = std::min(max_chunks, threads * 4);
  g_parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
  g_chunks.fetch_add(chunks, std::memory_order_relaxed);
  const int64_t base = n / chunks;
  const int64_t remainder = n % chunks;
  Pool& pool = GlobalPool();
  pool.EnsureWorkers(threads - 1);
  pool.Run(chunks, [&](int64_t chunk) {
    const int64_t extra = std::min(chunk, remainder);
    const int64_t lo = begin + chunk * base + extra;
    const int64_t hi = lo + base + (chunk < remainder ? 1 : 0);
    fn(lo, hi);
  });
}

}  // namespace par
}  // namespace elda
