// Data-parallel execution substrate: a lazily-initialized global thread pool
// with ParallelFor / ParallelReduce helpers used by the tensor kernels and
// the trainer's batched prediction path.
//
// Design constraints (see DESIGN.md "Threading model"):
//   - Determinism. Every parallelized kernel partitions *output* elements
//     into disjoint chunks and computes each element with exactly the same
//     instruction sequence as the serial code, so results are bitwise
//     identical for any thread count. Reductions go through ParallelReduce,
//     whose chunk layout depends only on the grain (never on the thread
//     count) and whose partials are combined in chunk order; only reductions
//     with an exact combine (max, logical and) are parallelized.
//   - `num_threads == 1` is an exact serial fallback on the same code path:
//     the chunk functor runs inline on the calling thread.
//   - Nested ParallelFor calls run inline on the worker that issued them, so
//     batch-level parallelism (Trainer::Predict) composes with kernel-level
//     parallelism without oversubscription or deadlock.
//   - Exceptions thrown by a chunk are captured and rethrown on the calling
//     thread after all chunks finish (the repo's own code CHECK-aborts
//     rather than throwing, but the pool must not silently eat errors from
//     user-supplied functors).
//
// Thread count resolution, in decreasing priority: SetNumThreads(n > 0)
// (the `--threads` flag and TrainerConfig::num_threads end up here), the
// ELDA_THREADS environment variable, std::thread::hardware_concurrency().

#ifndef ELDA_PAR_PAR_H_
#define ELDA_PAR_PAR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace elda {
namespace par {

// Configured thread count: override > ELDA_THREADS > hardware_concurrency.
// Always >= 1.
int64_t NumThreads();

// Sets the global thread-count override; n <= 0 restores automatic
// resolution (ELDA_THREADS / hardware_concurrency).
void SetNumThreads(int64_t n);

// The raw override as last set by SetNumThreads (0 when automatic).
int64_t ConfiguredNumThreads();

// True when called from inside a ParallelFor chunk (worker or participating
// caller). Nested parallel calls detect this and run inline.
bool InParallelRegion();

// Dispatch counters since process start (relaxed atomics; surfaced by the
// ELDA_PROF report so pool-vs-inline behaviour is visible next to the
// per-op numbers).
struct ParStats {
  int64_t parallel_dispatches = 0;  // ParallelFor calls that used the pool
  int64_t chunks = 0;               // chunks executed by those dispatches
  int64_t inline_runs = 0;          // serial fallbacks (1 thread, small
                                    // range, or nested region)
};
ParStats Stats();

// RAII override of the global thread count; n <= 0 leaves it untouched.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int64_t n)
      : active_(n > 0), prev_(ConfiguredNumThreads()) {
    if (active_) SetNumThreads(n);
  }
  ~ScopedNumThreads() {
    if (active_) SetNumThreads(prev_);
  }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  bool active_;
  int64_t prev_;
};

// A persistent worker pool. The calling thread of Run() participates, so a
// pool with W workers executes jobs on W+1 threads. Pools are independent;
// the process-wide instance used by ParallelFor lives behind GlobalPool().
class Pool {
 public:
  explicit Pool(int64_t num_workers);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int64_t num_workers() const;

  // Grows the pool to at least `n` workers (never shrinks).
  void EnsureWorkers(int64_t n);

  // Executes fn(chunk) for every chunk in [0, num_chunks) across the workers
  // and the calling thread; blocks until all chunks finish. Rethrows the
  // first exception thrown by any chunk. Concurrent Run() calls from
  // different threads are serialized.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

 private:
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next{0};     // next unclaimed chunk
    std::atomic<int64_t> pending{0};  // chunks not yet finished
    std::exception_ptr error;         // first failure; guarded by pool mu_
  };

  void WorkerLoop();
  void RunChunks(Job* job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job / stop
  std::condition_variable done_cv_;  // Run() waits for completion
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;        // current job; null when idle
  uint64_t job_seq_ = 0;      // bumped per job so workers see new work
  int64_t workers_inside_ = 0;  // workers currently touching job_
  bool stop_ = false;
  std::mutex run_mu_;  // serializes concurrent Run() callers
};

// The process-wide pool used by ParallelFor. Created on first use, grown on
// demand, intentionally leaked (worker threads must not be joined during
// static destruction).
Pool& GlobalPool();

// Splits [begin, end) into contiguous chunks of at least `grain` elements
// and runs fn(chunk_begin, chunk_end) for each, possibly concurrently.
// Runs fn(begin, end) inline when the effective thread count is 1, the
// range fits in one grain, or the caller is already inside a parallel
// region. `max_threads` caps the thread count for this call only
// (0 = use the global setting).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t max_threads = 0);

// Deterministic partitioned reduction. The range is cut into fixed chunks
// of `grain` elements — the layout depends only on `grain`, never on the
// thread count — `map(chunk_begin, chunk_end) -> T` computes each partial,
// and `combine` folds the partials left-to-right in chunk order. With an
// exact combine (max, min, logical and/or) the result is bitwise identical
// to a serial loop for every thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 MapFn map, CombineFn combine) {
  const int64_t n = end - begin;
  if (n <= 0) return identity;
  const int64_t g = std::max<int64_t>(1, grain);
  const int64_t chunks = (n + g - 1) / g;
  if (chunks == 1) return combine(identity, map(begin, end));
  std::vector<T> partials(static_cast<size_t>(chunks), identity);
  ParallelFor(0, chunks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t lo = begin + c * g;
      const int64_t hi = std::min(end, lo + g);
      partials[static_cast<size_t>(c)] = map(lo, hi);
    }
  });
  T acc = identity;
  for (int64_t c = 0; c < chunks; ++c) {
    acc = combine(acc, partials[static_cast<size_t>(c)]);
  }
  return acc;
}

// Default grain for cheap element-wise loops: small enough to spread work,
// large enough that chunk dispatch (~1 us) stays negligible.
inline constexpr int64_t kElementGrain = 1 << 15;

// Caps the number of chunks a ParallelFor produces at a few per thread.
// Work-size-derived grains (e.g. "one chunk per N flops") can degenerate to
// grain 1 on large batches of small items, producing thousands of chunks
// whose dispatch and per-chunk setup (pool buffers, packing) swamp the
// work — and get *worse* with more threads contending on the chunk queue.
// Returns max(min_grain, ceil(items / (threads * kChunksPerThread))): the
// work-derived floor is kept for load-balancing heavy items, but the chunk
// count never exceeds kChunksPerThread per thread. Chunk layout affects
// only scheduling, never per-element arithmetic, so kernels stay bitwise
// identical across thread counts even though the grain depends on
// NumThreads().
inline constexpr int64_t kChunksPerThread = 4;
inline int64_t BalancedGrain(int64_t items, int64_t min_grain) {
  const int64_t target_chunks = NumThreads() * kChunksPerThread;
  const int64_t cap_grain = (items + target_chunks - 1) / target_chunks;
  return std::max<int64_t>(1, std::max(min_grain, cap_grain));
}

}  // namespace par
}  // namespace elda

#endif  // ELDA_PAR_PAR_H_
