#include "serve/micro_batcher.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "autograd/variable.h"
#include "health/health.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace serve {

namespace {

StepResult FailedResult(StepStatus status) {
  StepResult result;
  result.ok = false;
  result.status = status;
  return result;
}

}  // namespace

MicroBatcher::MicroBatcher(const train::SequenceModel* model,
                           const train::InferenceOptions& options,
                           int64_t max_delay_us, int64_t worker_index,
                           int64_t max_queue, bool block_when_full)
    : model_(model),
      options_(options),
      max_delay_us_(max_delay_us),
      worker_index_(worker_index),
      max_queue_(max_queue),
      block_when_full_(block_when_full) {
  ELDA_CHECK(model != nullptr);
  ELDA_CHECK_GE(options.batch_size, 1);
  ELDA_CHECK_GE(max_delay_us, 0);
  ELDA_CHECK_GE(worker_index, 0);
  ELDA_CHECK_GE(max_queue, 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  worker_.join();
}

std::future<StepResult> MicroBatcher::Submit(std::shared_ptr<Session> session,
                                             Observation obs,
                                             nn::CaptureSink* capture,
                                             Deadline deadline) {
  ELDA_CHECK(session != nullptr);
  ELDA_CHECK_EQ(obs.x.size(), obs.mask.size());
  ELDA_CHECK_EQ(obs.x.size(), obs.delta.size());
  Request request;
  request.session = std::move(session);
  request.obs = std::move(obs);
  request.capture = capture;
  request.deadline = deadline;
  std::future<StepResult> future = request.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    ELDA_CHECK(!stopping_) << "Submit after MicroBatcher shutdown";
    if (max_queue_ > 0 &&
        static_cast<int64_t>(queue_.size()) >= max_queue_) {
      if (!block_when_full_) {
        ++rejected_;
        request.promise.set_value(FailedResult(StepStatus::kRejected));
        return future;
      }
      space_cv_.wait(lock, [this] {
        return stopping_ ||
               static_cast<int64_t>(queue_.size()) < max_queue_;
      });
      if (stopping_) {
        ++rejected_;
        request.promise.set_value(FailedResult(StepStatus::kRejected));
        return future;
      }
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

void MicroBatcher::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  ++pause_depth_;
  // A worker lingering in its coalesce wait must wake and re-check the
  // pause before it assembles a batch; kick it now so the quiescence this
  // Pause establishes is not outrun by a linger timeout.
  cv_.notify_all();
  quiesce_cv_.wait(lock, [this] { return !worker_busy_; });
}

void MicroBatcher::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ELDA_CHECK_GT(pause_depth_, 0) << "Resume without matching Pause";
    if (--pause_depth_ > 0) return;  // an outer quiesce window still holds
  }
  cv_.notify_all();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.observations = observations_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(observations_) / batches_;
  s.queue_depth = static_cast<int64_t>(queue_.size());
  s.rejected = rejected_;
  s.expired = expired_;
  return s;
}

void MicroBatcher::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    int64_t captured_in_batch = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      worker_busy_ = false;
      quiesce_cv_.notify_all();
      // stopping_ overrides the pause so destruction always drains.
      cv_.wait(lock, [this] {
        return stopping_ || (pause_depth_ == 0 && !queue_.empty());
      });
      if (queue_.empty() && stopping_) return;
      // Linger briefly for arrivals to coalesce — a full batch, a pause,
      // or shutdown proceeds immediately.
      if (max_delay_us_ > 0 && !stopping_ &&
          static_cast<int64_t>(queue_.size()) < options_.batch_size) {
        cv_.wait_for(lock, std::chrono::microseconds(max_delay_us_),
                     [this] {
                       return stopping_ || pause_depth_ > 0 ||
                              static_cast<int64_t>(queue_.size()) >=
                                  options_.batch_size;
                     });
      }
      // A Pause may have landed (and returned — worker_busy_ is false)
      // while the mutex was released inside the linger wait. Assembling a
      // batch now would score concurrently with whatever the pause holder
      // is doing to session states, so park again instead.
      if (pause_depth_ > 0 && !stopping_) continue;
      // Take up to batch_size requests for distinct sessions; a second
      // request for a session already in this batch stays queued (FIFO),
      // preserving its per-session order. Requests past their deadline
      // resolve as expired here, without advancing their session; requests
      // for a session the table evicted while they queued resolve as
      // unknown — the evicted state must not advance past its parked
      // bytes (eviction is quiesced, so the flag is always set before
      // this assembly runs).
      const Deadline now = std::chrono::steady_clock::now();
      std::unordered_set<SessionId> in_batch;
      std::deque<Request> deferred;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < options_.batch_size) {
        Request r = std::move(queue_.front());
        queue_.pop_front();
        if (r.session->retired.load(std::memory_order_acquire)) {
          r.promise.set_value(FailedResult(StepStatus::kUnknownSession));
        } else if (r.deadline != kNoDeadline && now >= r.deadline) {
          ++expired_;
          r.promise.set_value(FailedResult(StepStatus::kExpired));
        } else if (in_batch.count(r.session->id) > 0) {
          deferred.push_back(std::move(r));
        } else {
          in_batch.insert(r.session->id);
          if (r.capture != nullptr) ++captured_in_batch;
          batch.push_back(std::move(r));
        }
      }
      while (!deferred.empty()) {
        queue_.push_front(std::move(deferred.back()));
        deferred.pop_back();
      }
      if (!batch.empty()) {
        // Account before fulfilling any promise: a caller who observed
        // its future resolve must find its observation already counted.
        // Each capture-carrying request scores as its own B = 1 call.
        observations_ += static_cast<int64_t>(batch.size());
        batches_ += captured_in_batch;
        if (static_cast<int64_t>(batch.size()) > captured_in_batch) {
          ++batches_;
        }
        worker_busy_ = true;
      }
    }
    space_cv_.notify_all();
    if (!batch.empty()) {
      RunBatch(&batch);
    }
  }
}

void MicroBatcher::RunBatch(std::vector<Request>* batch) {
  // A fault-planned slow worker drags every batch it scores; the service
  // around it must stay correct (ordering, stats, shutdown), just slower.
  if (const int64_t delay_us =
          health::GlobalFaultInjector()->SlowWorkerDelayUs(worker_index_);
      delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  // Capture-carrying requests cannot share one forward context (a
  // CaptureSink is single-threaded, last-writer-wins), so partition:
  // sink-less requests coalesce into one call, each captured request
  // scores alone with its sink. Row independence makes both paths
  // bitwise-identical for every request.
  const auto mid = std::stable_partition(
      batch->begin(), batch->end(),
      [](const Request& r) { return r.capture == nullptr; });
  const size_t plain = static_cast<size_t>(mid - batch->begin());
  if (plain > 0) ScoreSlice(batch, 0, plain, options_.capture);
  for (size_t i = plain; i < batch->size(); ++i) {
    ScoreSlice(batch, i, i + 1, (*batch)[i].capture);
  }
}

void MicroBatcher::ScoreSlice(std::vector<Request>* batch, size_t begin,
                              size_t end, nn::CaptureSink* sink) {
  const int64_t n = static_cast<int64_t>(end - begin);
  const int64_t cols = static_cast<int64_t>((*batch)[begin].obs.x.size());
  train::StepBatch sb;
  sb.x = Tensor::Empty({n, cols});
  sb.mask = Tensor::Empty({n, cols});
  sb.delta = Tensor::Empty({n, cols});
  std::vector<nn::StepState*> states(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    const Observation& obs = (*batch)[begin + static_cast<size_t>(b)].obs;
    ELDA_CHECK_EQ(static_cast<int64_t>(obs.x.size()), cols);
    std::memcpy(sb.x.data() + b * cols, obs.x.data(),
                static_cast<size_t>(cols) * sizeof(float));
    std::memcpy(sb.mask.data() + b * cols, obs.mask.data(),
                static_cast<size_t>(cols) * sizeof(float));
    std::memcpy(sb.delta.data() + b * cols, obs.delta.data(),
                static_cast<size_t>(cols) * sizeof(float));
    states[static_cast<size_t>(b)] =
        (*batch)[begin + static_cast<size_t>(b)].session->state.get();
  }
  par::ScopedNumThreads scoped_threads(options_.num_threads);
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = sink;
  ag::Variable logits = model_->StepForward(sb, states, &ctx);
  // The same sigmoid kernel Trainer::Predict applies, so a streamed risk
  // equals the batch-scored risk for the same window bitwise.
  Tensor probs = Sigmoid(logits.value());
  for (int64_t b = 0; b < n; ++b) {
    Request& r = (*batch)[begin + static_cast<size_t>(b)];
    StepResult result;
    result.risk = probs[b];
    result.scored = !std::isnan(result.risk);
    result.step = states[static_cast<size_t>(b)]->steps_seen;
    r.session->observations.store(result.step, std::memory_order_relaxed);
    if (result.scored) {
      r.session->last_risk.store(result.risk, std::memory_order_relaxed);
      r.session->ever_scored.store(true, std::memory_order_relaxed);
    }
    r.promise.set_value(result);
  }
}

}  // namespace serve
}  // namespace elda
