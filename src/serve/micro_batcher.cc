#include "serve/micro_batcher.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "autograd/variable.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace serve {

MicroBatcher::MicroBatcher(const train::SequenceModel* model,
                           const train::InferenceOptions& options,
                           int64_t max_delay_us)
    : model_(model), options_(options), max_delay_us_(max_delay_us) {
  ELDA_CHECK(model != nullptr);
  ELDA_CHECK_GE(options.batch_size, 1);
  ELDA_CHECK_GE(max_delay_us, 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<StepResult> MicroBatcher::Submit(std::shared_ptr<Session> session,
                                             Observation obs) {
  ELDA_CHECK(session != nullptr);
  ELDA_CHECK_EQ(obs.x.size(), obs.mask.size());
  ELDA_CHECK_EQ(obs.x.size(), obs.delta.size());
  Request request;
  request.session = std::move(session);
  request.obs = std::move(obs);
  std::future<StepResult> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ELDA_CHECK(!stopping_) << "Submit after MicroBatcher shutdown";
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.observations = observations_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(observations_) / batches_;
  return s;
}

void MicroBatcher::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      // Linger briefly for arrivals to coalesce — a full batch (or
      // shutdown) proceeds immediately.
      if (max_delay_us_ > 0 && !stopping_ &&
          static_cast<int64_t>(queue_.size()) < options_.batch_size) {
        cv_.wait_for(lock, std::chrono::microseconds(max_delay_us_),
                     [this] {
                       return stopping_ ||
                              static_cast<int64_t>(queue_.size()) >=
                                  options_.batch_size;
                     });
      }
      // Take up to batch_size requests for distinct sessions; a second
      // request for a session already in this batch stays queued (FIFO),
      // preserving its per-session order.
      std::unordered_set<SessionId> in_batch;
      std::deque<Request> deferred;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < options_.batch_size) {
        Request r = std::move(queue_.front());
        queue_.pop_front();
        if (in_batch.count(r.session->id) > 0) {
          deferred.push_back(std::move(r));
        } else {
          in_batch.insert(r.session->id);
          batch.push_back(std::move(r));
        }
      }
      while (!deferred.empty()) {
        queue_.push_front(std::move(deferred.back()));
        deferred.pop_back();
      }
    }
    if (!batch.empty()) {
      // Account before fulfilling any promise: a caller who observed its
      // future resolve must find its observation already counted.
      {
        std::lock_guard<std::mutex> lock(mu_);
        observations_ += static_cast<int64_t>(batch.size());
        ++batches_;
      }
      RunBatch(&batch);
    }
  }
}

void MicroBatcher::RunBatch(std::vector<Request>* batch) {
  const int64_t n = static_cast<int64_t>(batch->size());
  const int64_t cols = static_cast<int64_t>((*batch)[0].obs.x.size());
  train::StepBatch sb;
  sb.x = Tensor::Empty({n, cols});
  sb.mask = Tensor::Empty({n, cols});
  sb.delta = Tensor::Empty({n, cols});
  std::vector<nn::StepState*> states(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    const Observation& obs = (*batch)[static_cast<size_t>(b)].obs;
    ELDA_CHECK_EQ(static_cast<int64_t>(obs.x.size()), cols);
    std::memcpy(sb.x.data() + b * cols, obs.x.data(),
                static_cast<size_t>(cols) * sizeof(float));
    std::memcpy(sb.mask.data() + b * cols, obs.mask.data(),
                static_cast<size_t>(cols) * sizeof(float));
    std::memcpy(sb.delta.data() + b * cols, obs.delta.data(),
                static_cast<size_t>(cols) * sizeof(float));
    states[static_cast<size_t>(b)] =
        (*batch)[static_cast<size_t>(b)].session->state.get();
  }
  par::ScopedNumThreads scoped_threads(options_.num_threads);
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = options_.capture;
  ag::Variable logits = model_->StepForward(sb, states, &ctx);
  // The same sigmoid kernel Trainer::Predict applies, so a streamed risk
  // equals the batch-scored risk for the same window bitwise.
  Tensor probs = Sigmoid(logits.value());
  for (int64_t b = 0; b < n; ++b) {
    Request& r = (*batch)[static_cast<size_t>(b)];
    StepResult result;
    result.risk = probs[b];
    result.scored = !std::isnan(result.risk);
    result.step = states[static_cast<size_t>(b)]->steps_seen;
    r.session->observations.store(result.step, std::memory_order_relaxed);
    if (result.scored) {
      r.session->last_risk.store(result.risk, std::memory_order_relaxed);
      r.session->ever_scored.store(true, std::memory_order_relaxed);
    }
    r.promise.set_value(result);
  }
}

}  // namespace serve
}  // namespace elda
