// Dynamic micro-batcher: coalesces concurrent single-patient scoring
// requests into one batched StepForward call.
//
// Clients submit (session, observation) pairs from any thread and get a
// future; a single worker thread drains the queue, groups up to
// `max_batch` requests for *distinct* sessions into one StepBatch, runs
// the model once under ag::NoGradScope, and fulfils the futures. Because
// every kernel on the step path computes output rows independently, a
// coalesced batch scores each session bitwise-identically to a serial
// B=1 call — batching is purely a throughput optimisation.
//
// Two requests for the same session are never placed in one batch (a
// session advances one step per call); the later one stays queued in FIFO
// order, so per-session observation order equals submission order.

#ifndef ELDA_SERVE_MICRO_BATCHER_H_
#define ELDA_SERVE_MICRO_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/session.h"
#include "train/trainer.h"

namespace elda {
namespace serve {

class MicroBatcher {
 public:
  // `options.batch_size` caps the coalesced batch; `options.num_threads`
  // bounds the elda::par kernels inside the batched call. `max_delay_us`
  // is the linger: how long the worker waits for more requests to coalesce
  // before scoring a non-full batch (0 = score whatever is queued).
  MicroBatcher(const train::SequenceModel* model,
               const train::InferenceOptions& options, int64_t max_delay_us);
  ~MicroBatcher();  // drains the queue, then joins the worker

  // Enqueues one observation for `session`. The observation slabs must all
  // be the model's feature width. Thread-safe.
  std::future<StepResult> Submit(std::shared_ptr<Session> session,
                                 Observation obs);

  struct Stats {
    int64_t observations = 0;  // requests scored
    int64_t batches = 0;       // StepForward calls issued
    double mean_batch_size = 0.0;
  };
  Stats stats() const;

 private:
  struct Request {
    std::shared_ptr<Session> session;
    Observation obs;
    std::promise<StepResult> promise;
  };

  void WorkerLoop();
  void RunBatch(std::vector<Request>* batch);

  const train::SequenceModel* model_;
  const train::InferenceOptions options_;
  const int64_t max_delay_us_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  int64_t observations_ = 0;
  int64_t batches_ = 0;

  std::thread worker_;
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_MICRO_BATCHER_H_
