// Dynamic micro-batcher: coalesces concurrent single-patient scoring
// requests into one batched StepForward call.
//
// Clients submit (session, observation) pairs from any thread and get a
// future; a single worker thread drains the queue, groups up to
// `max_batch` requests for *distinct* sessions into one StepBatch, runs
// the model once under ag::NoGradScope, and fulfils the futures. Because
// every kernel on the step path computes output rows independently, a
// coalesced batch scores each session bitwise-identically to a serial
// B=1 call — batching is purely a throughput optimisation.
//
// Two requests for the same session are never placed in one batch (a
// session advances one step per call); the later one stays queued in FIFO
// order, so per-session observation order equals submission order.
//
// Overload handling (see DESIGN.md "Serving path"):
//
//  * Bounded queue. With `max_queue > 0` a Submit that finds the queue
//    full either resolves immediately with StepStatus::kRejected
//    (explicit backpressure the caller can act on) or, with
//    `block_when_full`, parks the caller until the worker drains space.
//  * Deadlines. A request carrying a deadline that passes while it sits
//    in the queue resolves with StepStatus::kExpired at batch assembly;
//    the session does NOT advance, so an expired observation can be
//    resubmitted.
//  * Pause/Resume. Pause() parks the worker between batches and returns
//    once scoring is quiesced — the window in which the snapshot writer
//    may read resident session states.
//
// Per-request capture: a Submit carrying a CaptureSink scores as its own
// B = 1 StepForward with that sink wired into the forward context (row
// independence keeps the score bitwise-identical to the coalesced path);
// sink-less requests keep coalescing with the batcher-level capture from
// InferenceOptions. The sink must stay alive until the future resolves.

#ifndef ELDA_SERVE_MICRO_BATCHER_H_
#define ELDA_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/forward_context.h"
#include "serve/session.h"
#include "train/trainer.h"

namespace elda {
namespace serve {

// Deadline type for Submit; kNoDeadline means "never expires".
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

class MicroBatcher {
 public:
  // `options.batch_size` caps the coalesced batch; `options.num_threads`
  // bounds the elda::par kernels inside the batched call. `max_delay_us`
  // is the linger: how long the worker waits for more requests to coalesce
  // before scoring a non-full batch (0 = score whatever is queued).
  // `worker_index` identifies this batcher in a sharded fleet — it is the
  // target the slow_worker fault plan addresses. `max_queue` bounds the
  // request queue (0 = unbounded); `block_when_full` picks blocking over
  // rejection when the bound is hit.
  MicroBatcher(const train::SequenceModel* model,
               const train::InferenceOptions& options, int64_t max_delay_us,
               int64_t worker_index = 0, int64_t max_queue = 0,
               bool block_when_full = false);
  ~MicroBatcher();  // drains the queue, then joins the worker

  // Enqueues one observation for `session`. The observation slabs must all
  // be the model's feature width. Thread-safe. `capture`, when non-null,
  // receives this request's attention/interpretation surfaces (the request
  // scores as its own B = 1 call). A request still queued at `deadline`
  // resolves with kExpired instead of scoring.
  std::future<StepResult> Submit(std::shared_ptr<Session> session,
                                 Observation obs,
                                 nn::CaptureSink* capture = nullptr,
                                 Deadline deadline = kNoDeadline);

  // Parks the worker between batches; returns once no batch is in flight,
  // so resident session states are safe to read until Resume(). Queued
  // requests wait (Submit stays open, subject to the queue bound).
  // Pause/Resume nest (a depth count, not a flag): overlapping quiesce
  // windows — a snapshot inside an eviction sweep, say — each stay in
  // force until their own Resume, so one window's end cannot un-pause
  // another still reading session states.
  void Pause();
  void Resume();

  struct Stats {
    int64_t observations = 0;  // requests scored
    int64_t batches = 0;       // StepForward calls issued
    double mean_batch_size = 0.0;
    int64_t queue_depth = 0;   // requests waiting right now
    int64_t rejected = 0;      // bounced by the full-queue bound
    int64_t expired = 0;       // dropped at assembly past their deadline
  };
  Stats stats() const;

  int64_t worker_index() const { return worker_index_; }

 private:
  struct Request {
    std::shared_ptr<Session> session;
    Observation obs;
    std::promise<StepResult> promise;
    nn::CaptureSink* capture = nullptr;
    Deadline deadline = kNoDeadline;
  };

  void WorkerLoop();
  void RunBatch(std::vector<Request>* batch);
  // Scores `batch` rows [begin, end) as one StepForward call with `sink`
  // wired into the context, and resolves their promises.
  void ScoreSlice(std::vector<Request>* batch, size_t begin, size_t end,
                  nn::CaptureSink* sink);

  const train::SequenceModel* model_;
  const train::InferenceOptions options_;
  const int64_t max_delay_us_;
  const int64_t worker_index_;
  const int64_t max_queue_;
  const bool block_when_full_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // worker wake-up
  std::condition_variable space_cv_;  // blocked Submits wait for drain
  std::condition_variable quiesce_cv_;  // Pause waits for batch-in-flight
  std::deque<Request> queue_;
  bool stopping_ = false;
  int64_t pause_depth_ = 0;   // > 0: worker parked between batches
  bool worker_busy_ = false;  // a batch is being scored outside mu_
  int64_t observations_ = 0;
  int64_t batches_ = 0;
  int64_t rejected_ = 0;
  int64_t expired_ = 0;

  std::thread worker_;
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_MICRO_BATCHER_H_
