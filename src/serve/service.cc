#include "serve/service.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "autograd/variable.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace serve {

InferenceService::InferenceService(const train::SequenceModel* model,
                                   ServeConfig config)
    : model_(model),
      config_(std::move(config)),
      table_(model, config_.window_capacity, config_.max_sessions) {
  ELDA_CHECK(model != nullptr);
  if (config_.async) {
    batcher_ = std::make_unique<MicroBatcher>(model_, config_.infer,
                                              config_.max_delay_us);
  }
}

SessionId InferenceService::Admit(std::string tag) {
  std::shared_ptr<Session> session = table_.Admit(std::move(tag));
  return session == nullptr ? kInvalidSession : session->id;
}

bool InferenceService::Discharge(SessionId id) { return table_.Discharge(id); }

StepResult InferenceService::Observe(SessionId id, Observation obs) {
  std::shared_ptr<Session> session = table_.Get(id);
  if (session == nullptr) {
    StepResult result;
    result.ok = false;
    return result;
  }
  if (config_.async) {
    return batcher_->Submit(std::move(session), std::move(obs)).get();
  }
  return ObserveInline(session, obs);
}

std::future<StepResult> InferenceService::ObserveAsync(SessionId id,
                                                       Observation obs) {
  std::shared_ptr<Session> session = table_.Get(id);
  if (session == nullptr) {
    std::promise<StepResult> failed;
    StepResult result;
    result.ok = false;
    failed.set_value(result);
    return failed.get_future();
  }
  if (config_.async) {
    return batcher_->Submit(std::move(session), std::move(obs));
  }
  std::promise<StepResult> done;
  done.set_value(ObserveInline(session, obs));
  return done.get_future();
}

StepResult InferenceService::ObserveInline(
    const std::shared_ptr<Session>& session, const Observation& obs) {
  std::lock_guard<std::mutex> lock(inline_mu_);
  const int64_t cols = static_cast<int64_t>(obs.x.size());
  ELDA_CHECK_EQ(obs.mask.size(), obs.x.size());
  ELDA_CHECK_EQ(obs.delta.size(), obs.x.size());
  train::StepBatch sb;
  sb.x = Tensor::Empty({1, cols});
  sb.mask = Tensor::Empty({1, cols});
  sb.delta = Tensor::Empty({1, cols});
  std::memcpy(sb.x.data(), obs.x.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::memcpy(sb.mask.data(), obs.mask.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::memcpy(sb.delta.data(), obs.delta.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::vector<nn::StepState*> states = {session->state.get()};
  par::ScopedNumThreads scoped_threads(config_.infer.num_threads);
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = config_.infer.capture;
  ag::Variable logits = model_->StepForward(sb, states, &ctx);
  Tensor probs = Sigmoid(logits.value());
  StepResult result;
  result.risk = probs[0];
  result.scored = !std::isnan(result.risk);
  result.step = session->state->steps_seen;
  session->observations.store(result.step, std::memory_order_relaxed);
  if (result.scored) {
    session->last_risk.store(result.risk, std::memory_order_relaxed);
    session->ever_scored.store(true, std::memory_order_relaxed);
  }
  return result;
}

MicroBatcher::Stats InferenceService::batcher_stats() const {
  return batcher_ == nullptr ? MicroBatcher::Stats() : batcher_->stats();
}

}  // namespace serve
}  // namespace elda
