#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "autograd/variable.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace elda {
namespace serve {

InferenceService::InferenceService(const train::SequenceModel* model,
                                   ServeConfig config)
    : model_(model),
      config_(std::move(config)),
      table_(model, config_.window_capacity, config_.max_sessions,
             config_.eviction) {
  ELDA_CHECK(model != nullptr);
  ELDA_CHECK_GE(config_.num_workers, 1);
  if (config_.async) {
    batchers_.reserve(static_cast<size_t>(config_.num_workers));
    for (int64_t w = 0; w < config_.num_workers; ++w) {
      batchers_.push_back(std::make_unique<MicroBatcher>(
          model_, config_.infer, config_.max_delay_us, w, config_.max_queue,
          config_.block_when_full));
    }
  }
  // The table quiesces scoring around any eviction that serializes live
  // state (at-capacity Admit, TTL sweep): an evicted session's StepState
  // must never be Save()d while a worker is mid-StepForward on it. The
  // hooks nest, so an eviction inside an already-paused window is fine.
  table_.SetQuiesceHooks([this] { PauseScoring(); },
                         [this] { ResumeScoring(); });
  const bool periodic_snapshot =
      !config_.snapshot_path.empty() && config_.snapshot_every_ms > 0;
  const bool idle_sweep = config_.idle_ttl > 0 &&
                          config_.eviction != EvictionPolicy::kRejectAdmits;
  if (periodic_snapshot || idle_sweep) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

InferenceService::~InferenceService() {
  if (maintenance_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_stop_ = true;
    }
    maint_cv_.notify_all();
    maintenance_.join();
  }
  // batchers_ drain and join in their destructors.
}

SessionId InferenceService::Admit(std::string tag) {
  std::shared_ptr<Session> session = table_.Admit(std::move(tag));
  if (session == nullptr) return kInvalidSession;
  session->last_observed.store(table_.Tick(), std::memory_order_relaxed);
  return session->id;
}

bool InferenceService::Discharge(SessionId id) { return table_.Discharge(id); }

MicroBatcher* InferenceService::ShardFor(SessionId id) const {
  // Session-affine routing: one session always lands on one worker, so
  // per-session FIFO (and bitwise reproducibility) survives the fan-out.
  const size_t shard = static_cast<size_t>(
      id % static_cast<SessionId>(batchers_.size()));
  return batchers_[shard].get();
}

StepResult InferenceService::Observe(SessionId id, Observation obs,
                                     nn::CaptureSink* capture) {
  return ObserveAsync(id, std::move(obs), capture).get();
}

std::future<StepResult> InferenceService::ObserveAsync(
    SessionId id, Observation obs, nn::CaptureSink* capture,
    Deadline deadline) {
  std::shared_ptr<Session> session = table_.Get(id);
  if (session == nullptr) {
    std::promise<StepResult> failed;
    StepResult result;
    result.ok = false;
    result.status = StepStatus::kUnknownSession;
    failed.set_value(result);
    return failed.get_future();
  }
  session->last_observed.store(table_.Tick(), std::memory_order_relaxed);
  if (config_.async) {
    if (deadline == kNoDeadline && config_.deadline_us > 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(config_.deadline_us);
    }
    return ShardFor(id)->Submit(std::move(session), std::move(obs), capture,
                                deadline);
  }
  std::promise<StepResult> done;
  done.set_value(ObserveInline(session, obs, capture));
  return done.get_future();
}

StepResult InferenceService::ObserveInline(
    const std::shared_ptr<Session>& session, const Observation& obs,
    nn::CaptureSink* capture) {
  std::unique_lock<std::mutex> lock(inline_mu_);
  inline_cv_.wait(lock, [this] { return inline_pause_depth_ == 0; });
  const int64_t cols = static_cast<int64_t>(obs.x.size());
  ELDA_CHECK_EQ(obs.mask.size(), obs.x.size());
  ELDA_CHECK_EQ(obs.delta.size(), obs.x.size());
  train::StepBatch sb;
  sb.x = Tensor::Empty({1, cols});
  sb.mask = Tensor::Empty({1, cols});
  sb.delta = Tensor::Empty({1, cols});
  std::memcpy(sb.x.data(), obs.x.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::memcpy(sb.mask.data(), obs.mask.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::memcpy(sb.delta.data(), obs.delta.data(),
              static_cast<size_t>(cols) * sizeof(float));
  std::vector<nn::StepState*> states = {session->state.get()};
  par::ScopedNumThreads scoped_threads(config_.infer.num_threads);
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = capture != nullptr ? capture : config_.infer.capture;
  ag::Variable logits = model_->StepForward(sb, states, &ctx);
  Tensor probs = Sigmoid(logits.value());
  StepResult result;
  result.risk = probs[0];
  result.scored = !std::isnan(result.risk);
  result.step = session->state->steps_seen;
  session->observations.store(result.step, std::memory_order_relaxed);
  if (result.scored) {
    session->last_risk.store(result.risk, std::memory_order_relaxed);
    session->ever_scored.store(true, std::memory_order_relaxed);
  }
  return result;
}

void InferenceService::PauseScoring() {
  if (config_.async) {
    for (auto& batcher : batchers_) batcher->Pause();
  } else {
    std::lock_guard<std::mutex> lock(inline_mu_);
    ++inline_pause_depth_;
  }
}

void InferenceService::ResumeScoring() {
  if (config_.async) {
    for (auto& batcher : batchers_) batcher->Resume();
  } else {
    {
      std::lock_guard<std::mutex> lock(inline_mu_);
      ELDA_CHECK_GT(inline_pause_depth_, 0)
          << "ResumeScoring without matching PauseScoring";
      if (--inline_pause_depth_ > 0) return;
    }
    inline_cv_.notify_all();
  }
}

bool InferenceService::SaveSnapshotTo(const std::string& path,
                                      std::string* error) {
  std::lock_guard<std::mutex> op_lock(table_op_mu_);
  PauseScoring();
  SnapshotStats snap;
  std::string local_error;
  const bool ok = SaveSessionSnapshot(table_, path, &snap, &local_error);
  ResumeScoring();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (ok) {
      ++snapshots_written_;
      has_snapshot_ = true;
      last_snapshot_ = std::chrono::steady_clock::now();
    } else {
      ++snapshot_failures_;
    }
  }
  if (!ok && error != nullptr) *error = local_error;
  return ok;
}

bool InferenceService::SaveSnapshot(std::string* error) {
  ELDA_CHECK(!config_.snapshot_path.empty())
      << "SaveSnapshot without ServeConfig::snapshot_path";
  return SaveSnapshotTo(config_.snapshot_path, error);
}

bool InferenceService::RestoreSnapshot(const std::string& path,
                                       std::string* error) {
  std::lock_guard<std::mutex> op_lock(table_op_mu_);
  PauseScoring();
  SnapshotStats snap;
  const bool ok = RestoreSessionSnapshot(&table_, path, &snap, error);
  ResumeScoring();
  if (ok) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    quarantined_total_ += snap.quarantined;
  }
  return ok;
}

int64_t InferenceService::SweepIdle() {
  if (config_.idle_ttl <= 0) return 0;
  // EvictIdle quiesces via the table's hooks only when it actually sheds
  // sessions; no extra pause here, just the op serialisation.
  std::lock_guard<std::mutex> op_lock(table_op_mu_);
  return table_.EvictIdle(config_.idle_ttl);
}

void InferenceService::MaintenanceLoop() {
  const bool periodic_snapshot =
      !config_.snapshot_path.empty() && config_.snapshot_every_ms > 0;
  const bool idle_sweep = config_.idle_ttl > 0 &&
                          config_.eviction != EvictionPolicy::kRejectAdmits;
  // Wake at the snapshot period, or a short sweep cadence when only the
  // idle sweep is on (the sweep itself is cheap: one pass over the table).
  int64_t period_ms = periodic_snapshot ? config_.snapshot_every_ms : 50;
  if (periodic_snapshot && idle_sweep) {
    period_ms = std::min<int64_t>(period_ms, 50);
  }
  auto next_snapshot = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(config_.snapshot_every_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                         [this] { return maint_stop_; });
      if (maint_stop_) return;
    }
    if (idle_sweep) SweepIdle();
    if (periodic_snapshot &&
        std::chrono::steady_clock::now() >= next_snapshot) {
      std::string error;
      if (!SaveSnapshot(&error)) {
        // A dropped/failed periodic snapshot is an operational event, not
        // a service failure: the previous file is intact, the failure
        // counter ticks, and the next period retries.
        std::fprintf(stderr, "[elda::serve] periodic snapshot failed: %s\n",
                     error.c_str());
      }
      next_snapshot = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config_.snapshot_every_ms);
    }
  }
}

MicroBatcher::Stats InferenceService::batcher_stats() const {
  MicroBatcher::Stats total;
  for (const auto& batcher : batchers_) {
    const MicroBatcher::Stats s = batcher->stats();
    total.observations += s.observations;
    total.batches += s.batches;
    total.queue_depth += s.queue_depth;
    total.rejected += s.rejected;
    total.expired += s.expired;
  }
  total.mean_batch_size =
      total.batches == 0
          ? 0.0
          : static_cast<double>(total.observations) / total.batches;
  return total;
}

ServiceStats InferenceService::stats() const {
  ServiceStats s;
  s.resident_sessions = table_.size();
  s.max_idle_age = table_.MaxIdleAge();
  s.evicted = table_.evicted_total();
  s.parked = table_.parked_count();
  s.rehydrated = table_.rehydrated_total();
  const MicroBatcher::Stats b = batcher_stats();
  s.queue_depth = b.queue_depth;
  s.rejected = b.rejected;
  s.expired = b.expired;
  s.observations = b.observations;
  s.batches = b.batches;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    s.snapshots_written = snapshots_written_;
    s.snapshot_failures = snapshot_failures_;
    s.quarantined_total = quarantined_total_;
    if (has_snapshot_) {
      s.snapshot_age_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - last_snapshot_)
              .count();
    }
  }
  return s;
}

std::vector<float> StreamDecompensation(InferenceService* service,
                                        SessionId id,
                                        const data::PreparedSample& sample,
                                        int64_t num_steps) {
  ELDA_CHECK(service != nullptr);
  const int64_t features = sample.x.shape(1);
  const int64_t steps =
      num_steps < 0 ? sample.x.shape(0)
                    : std::min<int64_t>(num_steps, sample.x.shape(0));
  std::vector<float> risks;
  risks.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    Observation obs;
    obs.x.assign(sample.x.data() + t * features,
                 sample.x.data() + (t + 1) * features);
    obs.mask.assign(sample.mask.data() + t * features,
                    sample.mask.data() + (t + 1) * features);
    obs.delta.assign(sample.delta.data() + t * features,
                     sample.delta.data() + (t + 1) * features);
    const StepResult result = service->Observe(id, std::move(obs));
    if (!result.ok) break;
    risks.push_back(result.risk);
  }
  return risks;
}

}  // namespace serve
}  // namespace elda
