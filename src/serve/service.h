// elda::serve::InferenceService — the streaming inference front door.
//
// Wraps a trained SequenceModel behind an admit / observe / discharge API:
// each admitted patient carries resident step state (allocated via the
// model's MakeStepState), every new observation advances it one step via
// StepForward — O(1) per observation for incremental models instead of an
// O(T) window replay — and concurrent observations coalesce through the
// micro-batcher into batched no-grad calls. See DESIGN.md "Serving path".

#ifndef ELDA_SERVE_SERVICE_H_
#define ELDA_SERVE_SERVICE_H_

#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "serve/micro_batcher.h"
#include "serve/session.h"
#include "train/trainer.h"

namespace elda {
namespace serve {

struct ServeConfig {
  // Shared inference knobs (train/trainer.h): batch_size caps the
  // micro-batch, num_threads bounds the kernels, capture taps attention
  // surfaces. `parallel` is ignored here (one scoring thread).
  train::InferenceOptions infer;
  // Bound on any per-session history (replay windows, attention
  // histories). Stays beyond it score on the retained suffix window.
  int64_t window_capacity = 64;
  // Admission capacity of the session table.
  int64_t max_sessions = 1 << 20;
  // Micro-batcher linger before scoring a non-full batch.
  int64_t max_delay_us = 200;
  // true: requests queue through the micro-batcher's worker thread
  // (thread-safe, coalescing). false: Observe scores inline on the caller
  // thread under a service mutex — lower fixed latency for
  // single-threaded callers, no coalescing.
  bool async = true;
};

class InferenceService {
 public:
  InferenceService(const train::SequenceModel* model, ServeConfig config);

  // Admission: allocates resident state. kInvalidSession when the table is
  // full.
  SessionId Admit(std::string tag = std::string());

  // Discharge: evicts the session; its memory is freed once in-flight
  // requests drain. Later Observe calls on the id fail (ok = false).
  bool Discharge(SessionId id);

  // Scores one new observation for an admitted patient (blocking).
  StepResult Observe(SessionId id, Observation obs);

  // As Observe, without blocking the caller. In sync mode (async = false)
  // the future is already resolved on return.
  std::future<StepResult> ObserveAsync(SessionId id, Observation obs);

  const SessionTable& sessions() const { return table_; }
  MicroBatcher::Stats batcher_stats() const;
  const ServeConfig& config() const { return config_; }

 private:
  StepResult ObserveInline(const std::shared_ptr<Session>& session,
                           const Observation& obs);

  const train::SequenceModel* model_;
  const ServeConfig config_;
  SessionTable table_;
  std::unique_ptr<MicroBatcher> batcher_;  // async mode only
  std::mutex inline_mu_;                   // sync mode serialisation
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_SERVICE_H_
