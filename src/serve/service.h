// elda::serve::InferenceService — the streaming inference front door.
//
// Wraps a trained SequenceModel behind an admit / observe / discharge API:
// each admitted patient carries resident step state (allocated via the
// model's MakeStepState), every new observation advances it one step via
// StepForward — O(1) per observation for incremental models instead of an
// O(T) window replay — and concurrent observations coalesce through the
// micro-batcher into batched no-grad calls. See DESIGN.md "Serving path".
//
// Fleet hardening on top of the PR-6 core:
//
//  * Sharded scoring. `num_workers` micro-batchers score in parallel;
//    session-affine routing (id mod N) keeps every session on one worker,
//    so per-session FIFO order — and therefore bitwise reproducibility —
//    survives the fan-out. N workers score exactly what 1 worker would.
//  * Checkpoint/restore. SaveSnapshot() quiesces scoring and persists the
//    whole session table (resident + parked states) through the
//    CRC-checksummed container; RestoreSnapshot() rebuilds it so
//    post-restore scores are bitwise-identical to the uninterrupted
//    stream. A maintenance thread snapshots periodically.
//  * Idle eviction. Sessions idle past `idle_ttl` logical ticks are swept
//    per the table's EvictionPolicy (evict cold, or park their serialized
//    state so re-admission under the same tag resumes mid-stream).
//  * Backpressure. Bounded per-worker queues reject (or block) overload
//    explicitly; per-request deadlines expire work that queued too long.
//    stats() surfaces queue depth, evictions, snapshot age, and reject/
//    expire counts so saturation is visible, not silent.

#ifndef ELDA_SERVE_SERVICE_H_
#define ELDA_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "train/trainer.h"

namespace elda {
namespace serve {

struct ServeConfig {
  // Shared inference knobs (train/trainer.h): batch_size caps the
  // micro-batch, num_threads bounds the kernels, capture taps attention
  // surfaces. `parallel` is ignored here (the workers are the threads).
  train::InferenceOptions infer;
  // Bound on any per-session history (replay windows, attention
  // histories). Stays beyond it score on the retained suffix window.
  int64_t window_capacity = 64;
  // Admission capacity of the session table.
  int64_t max_sessions = 1 << 20;
  // Micro-batcher linger before scoring a non-full batch.
  int64_t max_delay_us = 200;
  // true: requests queue through micro-batcher worker threads
  // (thread-safe, coalescing). false: Observe scores inline on the caller
  // thread under a service mutex — lower fixed latency for
  // single-threaded callers, no coalescing.
  bool async = true;

  // Scoring workers (async mode). Sessions shard by id mod num_workers.
  int64_t num_workers = 1;
  // Per-worker queue bound; 0 = unbounded. When full, Submit rejects with
  // StepStatus::kRejected, or blocks if block_when_full.
  int64_t max_queue = 0;
  bool block_when_full = false;
  // Default per-request deadline, microseconds from submission; 0 = none.
  // A request still queued past it resolves kExpired without advancing
  // its session (an explicit ObserveAsync deadline overrides this).
  int64_t deadline_us = 0;

  // What the table does at capacity and on idle sweeps.
  EvictionPolicy eviction = EvictionPolicy::kRejectAdmits;
  // Sessions idle more than this many logical ticks (one tick per
  // admission/observation fleet-wide) are swept by the maintenance
  // thread; 0 disables the sweep. Ignored under kRejectAdmits.
  int64_t idle_ttl = 0;

  // Periodic session snapshots: every `snapshot_every_ms` the maintenance
  // thread writes the table to `snapshot_path`. Empty path or 0 period
  // disables; SaveSnapshotTo() always works regardless.
  std::string snapshot_path;
  int64_t snapshot_every_ms = 0;
};

// Operational counters for dashboards and tests. All values are
// point-in-time reads; the service keeps running while you look.
struct ServiceStats {
  int64_t resident_sessions = 0;
  // Ticks since the least-recently-observed resident session last scored
  // — a pinned stale admission shows up here even with eviction disabled.
  int64_t max_idle_age = 0;
  int64_t evicted = 0;
  int64_t parked = 0;
  int64_t rehydrated = 0;
  int64_t queue_depth = 0;  // summed over workers
  int64_t rejected = 0;     // backpressure bounces, summed over workers
  int64_t expired = 0;      // deadline drops, summed over workers
  int64_t observations = 0;
  int64_t batches = 0;
  int64_t snapshots_written = 0;
  int64_t snapshot_failures = 0;
  // Milliseconds since the last successful snapshot; -1 before the first.
  double snapshot_age_ms = -1.0;
  int64_t quarantined_total = 0;  // corrupt records quarantined on restore
};

class InferenceService {
 public:
  InferenceService(const train::SequenceModel* model, ServeConfig config);
  ~InferenceService();

  // Admission: allocates resident state (or rehydrates a parked session
  // under the same tag). kInvalidSession when the table is full and the
  // policy rejects.
  SessionId Admit(std::string tag = std::string());

  // Discharge: evicts the session; its memory is freed once in-flight
  // requests drain. Later Observe calls on the id fail (ok = false).
  bool Discharge(SessionId id);

  // Scores one new observation for an admitted patient (blocking).
  // `capture`, when non-null, receives this request's attention surfaces
  // (the caller owns the sink; one per thread).
  StepResult Observe(SessionId id, Observation obs,
                     nn::CaptureSink* capture = nullptr);

  // As Observe, without blocking the caller. In sync mode (async = false)
  // the future is already resolved on return. `deadline` defaults to the
  // config's deadline_us (kNoDeadline + deadline_us == 0 means none).
  std::future<StepResult> ObserveAsync(SessionId id, Observation obs,
                                       nn::CaptureSink* capture = nullptr,
                                       Deadline deadline = kNoDeadline);

  // -- Checkpoint/restore ----------------------------------------------------

  // Quiesces scoring, writes the session table to `path`, resumes.
  // Returns false with `error` set on failure (including an injected
  // drop_snapshot fault); the previous file stays intact.
  bool SaveSnapshotTo(const std::string& path, std::string* error = nullptr);

  // SaveSnapshotTo(config.snapshot_path) — what the maintenance thread
  // calls on its period.
  bool SaveSnapshot(std::string* error = nullptr);

  // Restores `path` into this service's (empty) session table. Corrupt
  // session records quarantine instead of failing the restore.
  bool RestoreSnapshot(const std::string& path,
                       std::string* error = nullptr);

  // Parks every scoring worker between batches (async) or locks out
  // inline scoring (sync); Resume undoes it. Pause/Resume nest: scoring
  // restarts only when every outstanding Pause has been Resumed, so
  // overlapping quiesce windows (a user pause over the maintenance
  // thread's snapshot, an eviction inside a sweep) cannot cancel each
  // other. Exposed for tests and external sweeps; SaveSnapshotTo and the
  // eviction paths pause internally.
  void PauseScoring();
  void ResumeScoring();

  // Runs one idle sweep immediately (quiesced), returning the number of
  // sessions evicted. The maintenance thread calls this on its period
  // when idle_ttl > 0.
  int64_t SweepIdle();

  const SessionTable& sessions() const { return table_; }
  MicroBatcher::Stats batcher_stats() const;  // summed over workers
  ServiceStats stats() const;
  const ServeConfig& config() const { return config_; }

 private:
  StepResult ObserveInline(const std::shared_ptr<Session>& session,
                           const Observation& obs, nn::CaptureSink* capture);
  MicroBatcher* ShardFor(SessionId id) const;
  void MaintenanceLoop();

  const train::SequenceModel* model_;
  const ServeConfig config_;
  SessionTable table_;
  std::vector<std::unique_ptr<MicroBatcher>> batchers_;  // async mode only
  // Sync-mode serialisation: inline scoring holds inline_mu_ for the whole
  // call and waits out inline_pause_depth_, so PauseScoring's increment
  // under the lock guarantees quiescence (refcounted, like the batcher's).
  std::mutex inline_mu_;
  std::condition_variable inline_cv_;
  int64_t inline_pause_depth_ = 0;
  // Serialises the whole-table operations (SaveSnapshotTo/RestoreSnapshot/
  // SweepIdle) against each other: each is a multi-step read-or-rebuild of
  // the table, and interleaving two of them — even fully quiesced — could
  // observe the table mid-rebuild.
  std::mutex table_op_mu_;

  // Snapshot bookkeeping (guarded by snap_mu_).
  mutable std::mutex snap_mu_;
  int64_t snapshots_written_ = 0;
  int64_t snapshot_failures_ = 0;
  int64_t quarantined_total_ = 0;
  bool has_snapshot_ = false;
  std::chrono::steady_clock::time_point last_snapshot_;

  // Maintenance thread (periodic snapshot + idle sweep).
  std::thread maintenance_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
};

// -- Decompensation routing --------------------------------------------------
//
// Streamed per-step decompensation rides the existing StepForward path: the
// batch DecompensationHead (train/task_head.h) scores step t of row b as the
// model's readout over the prefix encoding — exactly what StepForward emits
// for the same window. This helper replays one prepared sample's first
// `num_steps` rows (its full grid when num_steps < 0) through an admitted
// session and returns the per-step risk trajectory [T]: entry t is
// bitwise-equal to the sigmoid of the batch head's (b, t) logit, with quiet
// NaN on warm-up steps below min_steps_to_score(), provided the stay fits
// the session's window capacity (past it, replay models score the retained
// suffix). Scores through Observe, so it works in sync and async modes and
// respects backpressure; a non-kOk step aborts and returns the risks so far.
std::vector<float> StreamDecompensation(InferenceService* service,
                                        SessionId id,
                                        const data::PreparedSample& sample,
                                        int64_t num_steps = -1);

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_SERVICE_H_
