#include "serve/session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "nn/step_state.h"
#include "util/logging.h"

namespace elda {
namespace serve {

const char* StepStatusName(StepStatus status) {
  switch (status) {
    case StepStatus::kOk: return "ok";
    case StepStatus::kUnknownSession: return "unknown-session";
    case StepStatus::kRejected: return "rejected";
    case StepStatus::kExpired: return "expired";
  }
  return "unknown";
}

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kRejectAdmits: return "reject-admits";
    case EvictionPolicy::kEvict: return "evict";
    case EvictionPolicy::kCheckpointThenEvict: return "checkpoint-then-evict";
  }
  return "unknown";
}

SessionTable::SessionTable(const train::SequenceModel* model,
                           int64_t window_capacity, int64_t max_sessions,
                           EvictionPolicy policy)
    : model_(model),
      window_capacity_(window_capacity),
      max_sessions_(max_sessions),
      policy_(policy) {
  ELDA_CHECK(model != nullptr);
  ELDA_CHECK_GE(window_capacity, 1);
  ELDA_CHECK_GE(max_sessions, 1);
}

void SessionTable::SetQuiesceHooks(std::function<void()> pause,
                                   std::function<void()> resume) {
  ELDA_CHECK(static_cast<bool>(pause) == static_cast<bool>(resume));
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_pause_ = std::move(pause);
  quiesce_resume_ = std::move(resume);
}

std::shared_ptr<Session> SessionTable::Admit(std::string tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(sessions_.size()) >= max_sessions_) {
    if (policy_ == EvictionPolicy::kRejectAdmits) return nullptr;
    // The shed session's state may be mid-StepForward on a worker (Admit
    // does not pause the fleet on its own), so quiesce scoring around the
    // eviction — EvictLocked serializes live state under
    // kCheckpointThenEvict, and retiring the session must not race the
    // batch that still holds it.
    if (quiesce_pause_) quiesce_pause_();
    const bool made_room = EvictLruLocked();
    if (quiesce_resume_) quiesce_resume_();
    if (!made_room) return nullptr;
  }
  auto session = std::make_shared<Session>();
  session->tag = std::move(tag);
  session->state = model_->MakeStepState(window_capacity_);
  // A tag matching a parked (checkpoint-then-evicted) session resumes it
  // mid-stream: same id, state rehydrated from the parked bytes.
  bool rehydrated = false;
  if (!session->tag.empty()) {
    auto parked_it = parked_.find(session->tag);
    if (parked_it != parked_.end()) {
      // Same strictness as snapshot restore: the payload must decode AND
      // consume every byte — trailing garbage means the bytes are not the
      // state that was parked.
      nn::StateReader reader(parked_it->second.state);
      if (session->state->Load(&reader) && reader.AtEnd()) {
        session->id = parked_it->second.id;
        session->observations.store(session->state->steps_seen,
                                    std::memory_order_relaxed);
        session->last_risk.store(parked_it->second.last_risk,
                                 std::memory_order_relaxed);
        session->ever_scored.store(parked_it->second.ever_scored,
                                   std::memory_order_relaxed);
        rehydrated = true;
      } else {
        // Unreadable parked bytes: fall through to a cold admission
        // rather than refusing the patient.
        session->state = model_->MakeStepState(window_capacity_);
      }
      parked_.erase(parked_it);
    }
  }
  if (!rehydrated) {
    session->id = next_id_++;
  }
  session->last_observed.store(clock_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  sessions_.emplace(session->id, session);
  ++admitted_;
  if (rehydrated) ++rehydrated_;
  high_water_ =
      std::max(high_water_, static_cast<int64_t>(sessions_.size()));
  return session;
}

std::shared_ptr<Session> SessionTable::Get(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionTable::Discharge(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (!it->second->tag.empty()) parked_.erase(it->second->tag);
  sessions_.erase(it);
  ++discharged_;
  return true;
}

int64_t SessionTable::Tick() {
  return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

int64_t SessionTable::clock() const {
  return clock_.load(std::memory_order_relaxed);
}

bool SessionTable::EvictLruLocked() {
  if (sessions_.empty()) return false;
  SessionId lru = kInvalidSession;
  int64_t oldest = std::numeric_limits<int64_t>::max();
  for (const auto& [id, session] : sessions_) {
    const int64_t seen =
        session->last_observed.load(std::memory_order_relaxed);
    if (seen < oldest || (seen == oldest && id < lru)) {
      oldest = seen;
      lru = id;
    }
  }
  EvictLocked(lru);
  return true;
}

void SessionTable::EvictLocked(SessionId id) {
  auto it = sessions_.find(id);
  ELDA_CHECK(it != sessions_.end());
  Session& session = *it->second;
  if (policy_ == EvictionPolicy::kCheckpointThenEvict &&
      !session.tag.empty()) {
    nn::StateWriter writer;
    session.state->Save(&writer);
    ParkedSession parked;
    parked.id = session.id;
    parked.last_observed =
        session.last_observed.load(std::memory_order_relaxed);
    parked.state = writer.Take();
    parked.last_risk = session.last_risk.load(std::memory_order_relaxed);
    parked.ever_scored =
        session.ever_scored.load(std::memory_order_relaxed);
    parked_[session.tag] = std::move(parked);
  }
  // Requests already queued for this session still hold its shared_ptr;
  // retiring it makes them resolve kUnknownSession at batch assembly
  // instead of advancing a state that was just parked (or dropped).
  session.retired.store(true, std::memory_order_release);
  sessions_.erase(it);
  ++evicted_;
}

int64_t SessionTable::EvictIdle(int64_t ttl) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policy_ == EvictionPolicy::kRejectAdmits) return 0;
  const int64_t now = clock_.load(std::memory_order_relaxed);
  std::vector<SessionId> expired;
  for (const auto& [id, session] : sessions_) {
    const int64_t seen =
        session->last_observed.load(std::memory_order_relaxed);
    if (now - seen > ttl) expired.push_back(id);
  }
  if (expired.empty()) return 0;
  if (quiesce_pause_) quiesce_pause_();
  for (SessionId id : expired) EvictLocked(id);
  if (quiesce_resume_) quiesce_resume_();
  return static_cast<int64_t>(expired.size());
}

int64_t SessionTable::MaxIdleAge() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_.load(std::memory_order_relaxed);
  int64_t max_age = 0;
  for (const auto& [id, session] : sessions_) {
    (void)id;
    const int64_t age =
        now - session->last_observed.load(std::memory_order_relaxed);
    max_age = std::max(max_age, age);
  }
  return max_age;
}

int64_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t SessionTable::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t SessionTable::discharged_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discharged_;
}

int64_t SessionTable::evicted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

int64_t SessionTable::rehydrated_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rehydrated_;
}

int64_t SessionTable::parked_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(parked_.size());
}

int64_t SessionTable::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::vector<std::shared_ptr<Session>> SessionTable::ResidentLocked() const {
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    (void)id;
    out.push_back(session);
  }
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<Session>& a,
               const std::shared_ptr<Session>& b) { return a->id < b->id; });
  return out;
}

std::vector<std::shared_ptr<Session>> SessionTable::Resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ResidentLocked();
}

std::unordered_map<std::string, ParkedSession> SessionTable::Parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_;
}

SessionTable::View SessionTable::SnapshotView() const {
  std::lock_guard<std::mutex> lock(mu_);
  View view;
  view.resident = ResidentLocked();
  view.parked = parked_;
  view.next_id = next_id_;
  view.clock = clock_.load(std::memory_order_relaxed);
  return view;
}

void SessionTable::RestoreSession(std::shared_ptr<Session> session) {
  ELDA_CHECK(session != nullptr);
  ELDA_CHECK(session->state != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const SessionId id = session->id;
  ELDA_CHECK(sessions_.find(id) == sessions_.end())
      << "duplicate session id " << id << " during restore";
  sessions_.emplace(id, std::move(session));
  high_water_ =
      std::max(high_water_, static_cast<int64_t>(sessions_.size()));
}

void SessionTable::RestoreParked(std::string tag, ParkedSession parked) {
  std::lock_guard<std::mutex> lock(mu_);
  parked_[std::move(tag)] = std::move(parked);
}

SessionId SessionTable::next_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

void SessionTable::set_next_id(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = id;
}

void SessionTable::set_clock(int64_t clock) {
  clock_.store(clock, std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace elda
