#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace elda {
namespace serve {

SessionTable::SessionTable(const train::SequenceModel* model,
                           int64_t window_capacity, int64_t max_sessions)
    : model_(model),
      window_capacity_(window_capacity),
      max_sessions_(max_sessions) {
  ELDA_CHECK(model != nullptr);
  ELDA_CHECK_GE(window_capacity, 1);
  ELDA_CHECK_GE(max_sessions, 1);
}

std::shared_ptr<Session> SessionTable::Admit(std::string tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(sessions_.size()) >= max_sessions_) {
    return nullptr;
  }
  auto session = std::make_shared<Session>();
  session->id = next_id_++;
  session->tag = std::move(tag);
  session->state = model_->MakeStepState(window_capacity_);
  sessions_.emplace(session->id, session);
  ++admitted_;
  high_water_ =
      std::max(high_water_, static_cast<int64_t>(sessions_.size()));
  return session;
}

std::shared_ptr<Session> SessionTable::Get(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionTable::Discharge(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  sessions_.erase(it);
  ++discharged_;
  return true;
}

int64_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t SessionTable::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t SessionTable::discharged_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discharged_;
}

int64_t SessionTable::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace serve
}  // namespace elda
