// Per-patient session lifecycle for the streaming inference service.
//
// A Session owns the resident StepState one admitted patient carries
// between observations; the SessionTable maps admissions to sessions,
// enforces a capacity bound, and frees state on discharge. Sessions are
// handed out as shared_ptrs so an in-flight scoring request finishes
// safely even if the patient is discharged concurrently — discharge
// removes the table entry (new requests fail), the last holder frees it.

#ifndef ELDA_SERVE_SESSION_H_
#define ELDA_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "train/sequence_model.h"

namespace elda {
namespace serve {

using SessionId = int64_t;
inline constexpr SessionId kInvalidSession = -1;

// One prepared observation row (C entries per slab): standardized LOCF
// value, observation mask, steps since last observation — the same
// semantics as one timestep of a data::Batch. StreamingImputer produces
// these from raw monitor readings.
struct Observation {
  std::vector<float> x;
  std::vector<float> mask;
  std::vector<float> delta;
};

// Outcome of scoring one observation.
struct StepResult {
  // Sigmoid risk probability; quiet NaN while the model cannot score yet.
  float risk = 0.0f;
  // False while the session has fewer observations than the model's
  // minimum scorable window.
  bool scored = false;
  // 1-based observation count after this update.
  int64_t step = 0;
  // False when the session was unknown or already discharged (risk/step
  // are meaningless then).
  bool ok = true;
};

struct Session {
  SessionId id = kInvalidSession;
  std::string tag;  // caller-supplied patient identifier, for display
  std::unique_ptr<nn::StepState> state;
  // Monitoring mirrors of the state, readable without touching `state`
  // (which only the scoring thread may access).
  std::atomic<int64_t> observations{0};
  std::atomic<float> last_risk{0.0f};
  std::atomic<bool> ever_scored{false};
};

// Thread-safe admission/discharge registry with bounded occupancy.
class SessionTable {
 public:
  // `model` supplies MakeStepState for admissions; `window_capacity` is
  // passed through to it; `max_sessions` bounds resident memory.
  SessionTable(const train::SequenceModel* model, int64_t window_capacity,
               int64_t max_sessions);

  // Admits a new patient and allocates their resident state. Returns
  // nullptr when the table is at capacity.
  std::shared_ptr<Session> Admit(std::string tag);

  // nullptr when unknown or discharged.
  std::shared_ptr<Session> Get(SessionId id) const;

  // Removes the session; its state memory is freed once in-flight requests
  // drain. Returns false when unknown.
  bool Discharge(SessionId id);

  int64_t size() const;
  int64_t max_sessions() const { return max_sessions_; }
  int64_t admitted_total() const;
  int64_t discharged_total() const;
  int64_t high_water() const;

 private:
  const train::SequenceModel* model_;
  const int64_t window_capacity_;
  const int64_t max_sessions_;
  mutable std::mutex mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  int64_t admitted_ = 0;
  int64_t discharged_ = 0;
  int64_t high_water_ = 0;
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_SESSION_H_
