// Per-patient session lifecycle for the streaming inference service.
//
// A Session owns the resident StepState one admitted patient carries
// between observations; the SessionTable maps admissions to sessions,
// enforces a capacity bound, and frees state on discharge. Sessions are
// handed out as shared_ptrs so an in-flight scoring request finishes
// safely even if the patient is discharged concurrently — discharge
// removes the table entry (new requests fail), the last holder frees it.
//
// Fleet hardening (see DESIGN.md "Serving path"):
//
//  * Logical clock. The table carries a monotonic tick advanced on every
//    admission and observation; each session records the tick it last
//    scored at. `clock - last_observed` is a session's idle age — the
//    signal both the TTL sweep and the at-capacity LRU eviction use, and
//    a stat operators can watch even with eviction disabled (a pinned
//    stale admission shows up as an ever-growing max idle age).
//  * Eviction policy. At capacity (or on an idle sweep) the table either
//    rejects new admissions (the PR-6 behavior), evicts the
//    least-recently-observed session outright, or parks its serialized
//    StepState first so a later re-admission under the same tag
//    rehydrates mid-stream instead of starting cold.
//  * Snapshot plumbing. Resident() / RestoreSession() / parked-state
//    accessors expose exactly what serve/snapshot.cc needs to persist the
//    whole table through the CRC-checksummed checkpoint container.

#ifndef ELDA_SERVE_SESSION_H_
#define ELDA_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "train/sequence_model.h"

namespace elda {
namespace serve {

using SessionId = int64_t;
inline constexpr SessionId kInvalidSession = -1;

// One prepared observation row (C entries per slab): standardized LOCF
// value, observation mask, steps since last observation — the same
// semantics as one timestep of a data::Batch. StreamingImputer produces
// these from raw monitor readings.
struct Observation {
  std::vector<float> x;
  std::vector<float> mask;
  std::vector<float> delta;
};

// Fine-grained outcome of one scoring request.
enum class StepStatus {
  kOk = 0,
  kUnknownSession,  // id never admitted, discharged, or evicted
  kRejected,        // bounded queue full and the batcher rejects overload
  kExpired,         // request's deadline passed while it sat in the queue
};

const char* StepStatusName(StepStatus status);

// Outcome of scoring one observation.
struct StepResult {
  // Sigmoid risk probability; quiet NaN while the model cannot score yet.
  float risk = 0.0f;
  // False while the session has fewer observations than the model's
  // minimum scorable window.
  bool scored = false;
  // 1-based observation count after this update.
  int64_t step = 0;
  // False when the request did not score at all — see `status` for why
  // (risk/step are meaningless then).
  bool ok = true;
  StepStatus status = StepStatus::kOk;
};

struct Session {
  SessionId id = kInvalidSession;
  std::string tag;  // caller-supplied patient identifier, for display
  std::unique_ptr<nn::StepState> state;
  // Monitoring mirrors of the state, readable without touching `state`
  // (which only the scoring thread may access).
  std::atomic<int64_t> observations{0};
  std::atomic<float> last_risk{0.0f};
  std::atomic<bool> ever_scored{false};
  // Logical-clock tick of the last admission/observation touch; the
  // eviction sweep and the idle-age stats read it.
  std::atomic<int64_t> last_observed{0};
  // Set when the table evicts this session. A queued request that still
  // holds the shared_ptr resolves kUnknownSession at batch assembly
  // instead of scoring — an evicted session's state must never advance
  // past its parked bytes. (Discharge does NOT set this: an in-flight
  // request for a discharged patient finishes normally, as documented.)
  std::atomic<bool> retired{false};
};

// What the table does when it must shed a session: at-capacity admission
// and the idle-TTL sweep both consult this.
enum class EvictionPolicy {
  // Admissions beyond max_sessions fail; the idle sweep is a no-op. A
  // stale admission pins its state until explicitly discharged (its idle
  // age stays visible in the stats).
  kRejectAdmits,
  // The least-recently-observed (or TTL-expired) session is discharged
  // and its state dropped; re-admission starts cold.
  kEvict,
  // As kEvict, but the session's serialized StepState is parked first;
  // re-admission under the same tag rehydrates it mid-stream.
  kCheckpointThenEvict,
};

const char* EvictionPolicyName(EvictionPolicy policy);

// A parked (checkpoint-then-evicted) session: everything needed to
// rehydrate it on re-admission, keyed by tag in the table. The monitoring
// mirrors (last_risk/ever_scored) ride along so a rehydrated session's
// stats resume where the evicted one left off.
struct ParkedSession {
  SessionId id = kInvalidSession;
  int64_t last_observed = 0;
  std::string state;  // StateWriter payload of the evicted StepState
  float last_risk = 0.0f;
  bool ever_scored = false;
};

// Thread-safe admission/discharge registry with bounded occupancy.
class SessionTable {
 public:
  // `model` supplies MakeStepState for admissions; `window_capacity` is
  // passed through to it; `max_sessions` bounds resident memory; `policy`
  // decides what happens at the bound and on idle sweeps.
  SessionTable(const train::SequenceModel* model, int64_t window_capacity,
               int64_t max_sessions,
               EvictionPolicy policy = EvictionPolicy::kRejectAdmits);

  // Registers the pause/resume pair the table invokes around any eviction
  // that serializes live state (at-capacity admission, TTL sweep), so an
  // evicted session's StepState is never Save()d while a scoring worker
  // may be writing it. The hooks must be nestable (refcounted pause): an
  // eviction can fire inside an already-quiesced window. Call once, before
  // any concurrent use of the table.
  void SetQuiesceHooks(std::function<void()> pause,
                       std::function<void()> resume);

  // Admits a patient and allocates (or rehydrates) their resident state.
  // A non-empty tag matching a parked session resumes it: same id, same
  // serialized mid-stream state. At capacity, kRejectAdmits returns
  // nullptr; the eviction policies shed the least-recently-observed
  // session to make room (under the quiesce hooks, when registered).
  std::shared_ptr<Session> Admit(std::string tag);

  // nullptr when unknown, discharged, or evicted.
  std::shared_ptr<Session> Get(SessionId id) const;

  // Removes the session; its state memory is freed once in-flight requests
  // drain. Returns false when unknown. Also drops any parked state under
  // the session's tag.
  bool Discharge(SessionId id);

  // Advances the logical clock by one tick and returns the new value.
  // The service calls this once per observation submission (and per
  // admission) and stores the tick into the session's last_observed.
  int64_t Tick();
  int64_t clock() const;

  // Evicts every session idle for more than `ttl` ticks, per the table's
  // policy (no-op under kRejectAdmits). Returns the number evicted.
  // Evictions run under the quiesce hooks; without hooks the caller must
  // guarantee no in-flight scoring touches the evicted sessions' states.
  int64_t EvictIdle(int64_t ttl);

  // Largest idle age (clock - last_observed) over resident sessions; 0
  // when the table is empty. A monotonically growing value under load is
  // a pinned stale admission.
  int64_t MaxIdleAge() const;

  int64_t size() const;
  int64_t max_sessions() const { return max_sessions_; }
  EvictionPolicy policy() const { return policy_; }
  const train::SequenceModel* model() const { return model_; }
  int64_t window_capacity() const { return window_capacity_; }
  int64_t admitted_total() const;
  int64_t discharged_total() const;
  int64_t evicted_total() const;
  int64_t rehydrated_total() const;
  int64_t parked_count() const;
  int64_t high_water() const;

  // -- Snapshot/restore plumbing (serve/snapshot.cc) -------------------------

  // All resident sessions, in ascending id order (deterministic snapshot
  // record numbering). The states behind the pointers are only safe to
  // read while scoring is quiesced.
  std::vector<std::shared_ptr<Session>> Resident() const;

  // Copy of the parked-state map (tag -> ParkedSession).
  std::unordered_map<std::string, ParkedSession> Parked() const;

  // Everything the snapshot writer needs, copied under ONE lock hold so a
  // concurrent eviction cannot leave a session both resident and parked
  // in the same snapshot.
  struct View {
    std::vector<std::shared_ptr<Session>> resident;  // ascending id
    std::unordered_map<std::string, ParkedSession> parked;
    SessionId next_id = 1;
    int64_t clock = 0;
  };
  View SnapshotView() const;

  // Inserts a fully-built session during restore. CHECK-fails on a
  // duplicate id; the caller (snapshot restore) guarantees an empty table.
  void RestoreSession(std::shared_ptr<Session> session);

  // Re-parks a serialized state during restore.
  void RestoreParked(std::string tag, ParkedSession parked);

  SessionId next_id() const;
  void set_next_id(SessionId id);
  void set_clock(int64_t clock);

 private:
  // Sheds the least-recently-observed session under an eviction policy.
  // Returns false when the table is empty. mu_ must be held.
  bool EvictLruLocked();
  void EvictLocked(SessionId id);
  // Sorted copy of sessions_. mu_ must be held.
  std::vector<std::shared_ptr<Session>> ResidentLocked() const;

  const train::SequenceModel* model_;
  const int64_t window_capacity_;
  const int64_t max_sessions_;
  const EvictionPolicy policy_;
  // Invoked (while mu_ is held; the hooks must not re-enter the table)
  // around state-serializing evictions. Empty hooks mean the caller
  // guarantees quiescence itself.
  std::function<void()> quiesce_pause_;
  std::function<void()> quiesce_resume_;
  mutable std::mutex mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  std::unordered_map<std::string, ParkedSession> parked_;
  std::atomic<int64_t> clock_{0};
  SessionId next_id_ = 1;
  int64_t admitted_ = 0;
  int64_t discharged_ = 0;
  int64_t evicted_ = 0;
  int64_t rehydrated_ = 0;
  int64_t high_water_ = 0;
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_SESSION_H_
