#include "serve/snapshot.h"

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "health/ckpt_io.h"
#include "health/crc32.h"
#include "health/health.h"
#include "nn/step_state.h"
#include "util/logging.h"

namespace elda {
namespace serve {

namespace {

constexpr const char kMetaSection[] = "serve_meta";
constexpr const char kSessionsSection[] = "serve_sessions";
constexpr const char kParkedSection[] = "serve_parked";

// -- Flat little-endian record encoding over std::string ----------------------

void PutI64(std::string* out, int64_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutU32(std::string* out, uint32_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutF32(std::string* out, float value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutString(std::string* out, const std::string& value) {
  PutI64(out, static_cast<int64_t>(value.size()));
  out->append(value);
}

class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  bool I64(int64_t* value) { return Raw(value, sizeof(*value)); }
  bool U32(uint32_t* value) { return Raw(value, sizeof(*value)); }
  bool F32(float* value) { return Raw(value, sizeof(*value)); }

  bool String(std::string* value) {
    int64_t size = 0;
    if (!I64(&size) || size < 0 ||
        static_cast<size_t>(size) > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    value->assign(bytes_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Raw(void* dst, size_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// One serialized state payload with its own CRC: length, bytes, crc32.
// `record` numbers sessions for the poison_state fault, which flips a byte
// AFTER the CRC is computed — the mismatch is what restore must catch.
void PutStateRecord(std::string* out, std::string state, int64_t record) {
  const uint32_t crc = health::Crc32(state);
  if (record >= 0 &&
      health::GlobalFaultInjector()->ConsumePoisonState(record) &&
      !state.empty()) {
    state[state.size() / 2] ^= 0x40;
  }
  PutString(out, state);
  PutU32(out, crc);
}

// Reads a state record and verifies its CRC; `*intact` reports whether the
// bytes survived.
bool GetStateRecord(Cursor* cursor, std::string* state, bool* intact) {
  uint32_t crc = 0;
  if (!cursor->String(state) || !cursor->U32(&crc)) return false;
  *intact = health::Crc32(*state) == crc;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool SaveSessionSnapshot(const SessionTable& table, const std::string& path,
                         SnapshotStats* stats, std::string* error) {
  if (health::GlobalFaultInjector()->ConsumeDropSnapshot()) {
    return Fail(error, "fault-injected snapshot drop (drop_snapshot)");
  }
  // One-lock copy: a concurrent eviction can move a session from resident
  // to parked, and separate Resident()/Parked() reads could catch it in
  // both lists (or neither). The view is the point-in-time truth.
  const SessionTable::View view = table.SnapshotView();
  const std::vector<std::shared_ptr<Session>>& resident = view.resident;
  const std::unordered_map<std::string, ParkedSession>& parked =
      view.parked;

  std::string meta;
  PutString(&meta, table.model()->name());
  PutI64(&meta, table.window_capacity());
  PutI64(&meta, view.next_id);
  PutI64(&meta, view.clock);

  std::string sessions;
  PutI64(&sessions, static_cast<int64_t>(resident.size()));
  int64_t record = 0;
  for (const std::shared_ptr<Session>& session : resident) {
    PutI64(&sessions, session->id);
    PutString(&sessions, session->tag);
    PutI64(&sessions,
           session->last_observed.load(std::memory_order_relaxed));
    PutI64(&sessions,
           session->observations.load(std::memory_order_relaxed));
    PutF32(&sessions, session->last_risk.load(std::memory_order_relaxed));
    PutI64(&sessions,
           session->ever_scored.load(std::memory_order_relaxed) ? 1 : 0);
    nn::StateWriter writer;
    session->state->Save(&writer);
    PutStateRecord(&sessions, writer.Take(), record++);
  }

  // Parked states already passed through Save at eviction; persist them so
  // a restored service still rehydrates returning patients.
  std::string parked_payload;
  PutI64(&parked_payload, static_cast<int64_t>(parked.size()));
  for (const auto& [tag, park] : parked) {
    PutString(&parked_payload, tag);
    PutI64(&parked_payload, park.id);
    PutI64(&parked_payload, park.last_observed);
    PutF32(&parked_payload, park.last_risk);
    PutI64(&parked_payload, park.ever_scored ? 1 : 0);
    PutStateRecord(&parked_payload, park.state, -1);
  }

  std::vector<health::Section> sections;
  sections.push_back({kMetaSection, std::move(meta)});
  sections.push_back({kSessionsSection, std::move(sessions)});
  sections.push_back({kParkedSection, std::move(parked_payload)});
  if (!health::WriteSectionedFile(path, sections, error)) return false;
  if (stats != nullptr) {
    stats->sessions = static_cast<int64_t>(resident.size());
    stats->parked = static_cast<int64_t>(parked.size());
    stats->quarantined = 0;
  }
  return true;
}

bool RestoreSessionSnapshot(SessionTable* table, const std::string& path,
                            SnapshotStats* stats, std::string* error) {
  ELDA_CHECK(table != nullptr);
  if (table->size() != 0) {
    return Fail(error, "snapshot restore requires an empty session table");
  }
  std::vector<health::Section> sections;
  if (!health::ReadSectionedFile(path, &sections, error)) return false;
  const health::Section* meta = health::FindSection(sections, kMetaSection);
  const health::Section* sess =
      health::FindSection(sections, kSessionsSection);
  const health::Section* park =
      health::FindSection(sections, kParkedSection);
  if (meta == nullptr || sess == nullptr || park == nullptr) {
    return Fail(error, "snapshot is missing a serve section");
  }

  Cursor meta_cursor(meta->payload);
  std::string model_name;
  int64_t window_capacity = 0;
  int64_t next_id = 0;
  int64_t clock = 0;
  if (!meta_cursor.String(&model_name) ||
      !meta_cursor.I64(&window_capacity) || !meta_cursor.I64(&next_id) ||
      !meta_cursor.I64(&clock) || !meta_cursor.AtEnd()) {
    return Fail(error, "snapshot meta section is malformed");
  }
  if (model_name != table->model()->name()) {
    return Fail(error, "snapshot was written by model '" + model_name +
                           "', table serves '" + table->model()->name() +
                           "'");
  }
  if (window_capacity != table->window_capacity()) {
    return Fail(error, "snapshot window capacity mismatch");
  }

  SnapshotStats local;
  Cursor cursor(sess->payload);
  int64_t count = 0;
  if (!cursor.I64(&count) || count < 0) {
    return Fail(error, "snapshot sessions section is malformed");
  }
  if (count > table->max_sessions()) {
    // Restoring past the bound would silently overshoot capacity — and
    // the next Admit under an eviction policy would immediately shed
    // freshly-restored sessions. Make the mismatch explicit instead.
    return Fail(error, "snapshot holds " + std::to_string(count) +
                           " sessions, table capacity is " +
                           std::to_string(table->max_sessions()));
  }
  for (int64_t i = 0; i < count; ++i) {
    auto session = std::make_shared<Session>();
    int64_t last_observed = 0;
    int64_t observations = 0;
    float last_risk = 0.0f;
    int64_t ever_scored = 0;
    std::string state_bytes;
    bool intact = false;
    if (!cursor.I64(&session->id) || !cursor.String(&session->tag) ||
        !cursor.I64(&last_observed) || !cursor.I64(&observations) ||
        !cursor.F32(&last_risk) || !cursor.I64(&ever_scored) ||
        !GetStateRecord(&cursor, &state_bytes, &intact)) {
      return Fail(error, "snapshot sessions section is truncated");
    }
    session->state = table->model()->MakeStepState(window_capacity);
    bool loaded = false;
    if (intact) {
      nn::StateReader reader(state_bytes);
      loaded = session->state->Load(&reader) && reader.AtEnd();
    }
    if (loaded) {
      session->observations.store(observations, std::memory_order_relaxed);
      session->last_risk.store(last_risk, std::memory_order_relaxed);
      session->ever_scored.store(ever_scored != 0,
                                 std::memory_order_relaxed);
    } else {
      // Quarantine: the record failed its CRC (or decoded inconsistently).
      // The patient stays admitted under the same id/tag but scores from
      // fresh state — a cold restart for one session, not a poisoned
      // fleet and not an aborted restore.
      session->state = table->model()->MakeStepState(window_capacity);
      ++local.quarantined;
    }
    session->last_observed.store(last_observed, std::memory_order_relaxed);
    table->RestoreSession(std::move(session));
    ++local.sessions;
  }
  if (!cursor.AtEnd()) {
    return Fail(error, "snapshot sessions section has trailing bytes");
  }

  Cursor park_cursor(park->payload);
  int64_t park_count = 0;
  if (!park_cursor.I64(&park_count) || park_count < 0) {
    return Fail(error, "snapshot parked section is malformed");
  }
  for (int64_t i = 0; i < park_count; ++i) {
    std::string tag;
    ParkedSession parked;
    int64_t ever_scored = 0;
    bool intact = false;
    if (!park_cursor.String(&tag) || !park_cursor.I64(&parked.id) ||
        !park_cursor.I64(&parked.last_observed) ||
        !park_cursor.F32(&parked.last_risk) ||
        !park_cursor.I64(&ever_scored) ||
        !GetStateRecord(&park_cursor, &parked.state, &intact)) {
      return Fail(error, "snapshot parked section is truncated");
    }
    parked.ever_scored = ever_scored != 0;
    // A rotten parked record is simply dropped: its patient re-admits cold,
    // the same outcome Admit falls back to on unreadable parked bytes.
    if (!intact) {
      ++local.quarantined;
      continue;
    }
    table->RestoreParked(std::move(tag), std::move(parked));
    ++local.parked;
  }
  if (!park_cursor.AtEnd()) {
    return Fail(error, "snapshot parked section has trailing bytes");
  }

  table->set_next_id(next_id);
  table->set_clock(clock);
  if (stats != nullptr) *stats = local;
  return true;
}

}  // namespace serve
}  // namespace elda
