// Session-table checkpoint/restore for the streaming inference service.
//
// SaveSessionSnapshot serializes every resident session's StepState (plus
// the parked checkpoint-then-evicted states and the table's lifecycle
// counters) through the crash-safe sectioned container of health/ckpt_io
// — atomic tmp+rename, CRC32 per section. Because ckpt_io bounds the
// section count, all sessions travel inside ONE "serve_sessions" section
// as repeated records, each record carrying its own CRC32 over its state
// bytes: the outer section CRC catches a torn file, the per-record CRC
// localises silent rot to one patient.
//
// RestoreSessionSnapshot rebuilds an empty table so post-restore scores
// are bitwise-identical to the uninterrupted stream (the StepState
// Save/Load contract). A session record whose CRC or Load fails is
// QUARANTINED — re-admitted under its id/tag with fresh state, counted in
// SnapshotStats::quarantined — rather than aborting the restore or
// silently scoring from garbage.
//
// Fault hooks (health::FaultPlan): drop_snapshot@N fails the Nth save
// without touching the file (the previous snapshot stays valid);
// poison_state@N corrupts session record N's state bytes after its CRC is
// computed, exercising the quarantine path end-to-end.

#ifndef ELDA_SERVE_SNAPSHOT_H_
#define ELDA_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "serve/session.h"

namespace elda {
namespace serve {

struct SnapshotStats {
  int64_t sessions = 0;     // resident session records written/read
  int64_t parked = 0;       // parked (evicted-with-checkpoint) records
  int64_t quarantined = 0;  // restore only: records re-admitted cold
};

// Writes the table to `path`. The caller must guarantee scoring is
// quiesced (the service pauses its workers first) — resident states are
// read directly. Returns false with `error` set on I/O failure or an
// injected drop_snapshot fault; the previous file at `path` is untouched
// either way. `stats`, when non-null, receives the record counts.
bool SaveSessionSnapshot(const SessionTable& table, const std::string& path,
                         SnapshotStats* stats, std::string* error);

// Restores `path` into `table`, which must be empty and built over the
// same model name and window capacity the snapshot records (validated).
// Corrupt session records quarantine (fresh state, same id/tag) instead
// of failing the restore. Returns false with `error` set only when the
// container itself is unreadable or the meta section mismatches.
bool RestoreSessionSnapshot(SessionTable* table, const std::string& path,
                            SnapshotStats* stats, std::string* error);

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_SNAPSHOT_H_
