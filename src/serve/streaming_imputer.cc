#include "serve/streaming_imputer.h"

#include "util/logging.h"

namespace elda {
namespace serve {

StreamingImputer::StreamingImputer(const data::Standardizer* standardizer,
                                   int64_t num_features)
    : standardizer_(standardizer), num_features_(num_features) {
  ELDA_CHECK(standardizer != nullptr);
  ELDA_CHECK(standardizer->fitted());
  ELDA_CHECK_EQ(static_cast<int64_t>(standardizer->means().size()),
                num_features);
  Reset();
}

void StreamingImputer::Reset() {
  t_ = 0;
  last_value_.assign(static_cast<size_t>(num_features_), 0.0f);
  steps_since_.assign(static_cast<size_t>(num_features_), 0.0f);
  seen_.assign(static_cast<size_t>(num_features_), 0);
}

Observation StreamingImputer::Next(const float* values,
                                   const uint8_t* observed) {
  Observation row;
  row.x.resize(static_cast<size_t>(num_features_));
  row.mask.resize(static_cast<size_t>(num_features_));
  row.delta.resize(static_cast<size_t>(num_features_));
  const bool clean_negative = standardizer_->clean_negative();
  for (int64_t c = 0; c < num_features_; ++c) {
    const size_t ci = static_cast<size_t>(c);
    bool obs = observed[ci] != 0;
    float v = values[ci];
    // Same cleaning rule as Standardizer::Apply: a negative observed value
    // is a recording error and drops from the mask entirely.
    if (obs && clean_negative && v < 0.0f) obs = false;
    if (obs) {
      // Identical expression to Apply, so the standardised value is
      // bitwise what the batch pipeline produces.
      v = (v - standardizer_->mean(c)) / standardizer_->stddev(c);
      last_value_[ci] = v;
      steps_since_[ci] = 0.0f;
      seen_[ci] = 1;
    } else if (seen_[ci] != 0 || t_ > 0) {
      steps_since_[ci] += 1.0f;
    }
    row.x[ci] = obs ? v : last_value_[ci];
    row.mask[ci] = obs ? 1.0f : 0.0f;
    row.delta[ci] = steps_since_[ci];
  }
  ++t_;
  return row;
}

}  // namespace serve
}  // namespace elda
