// StreamingImputer: converts one patient's raw monitor readings, arriving
// one step at a time, into the prepared observation rows the models
// consume — the streaming twin of the batch pipeline's clean /
// standardise / LOCF-impute / delta stage (data/pipeline.cc).
//
// The arithmetic is kept operation-for-operation identical to
// Standardizer::Apply + PrepareDataset, so feeding a sample's T raw steps
// through Next() yields exactly (bitwise) the T rows PrepareDataset emits
// for that sample; serve_test asserts this.

#ifndef ELDA_SERVE_STREAMING_IMPUTER_H_
#define ELDA_SERVE_STREAMING_IMPUTER_H_

#include <cstdint>
#include <vector>

#include "data/pipeline.h"
#include "serve/session.h"

namespace elda {
namespace serve {

class StreamingImputer {
 public:
  // `standardizer` must be fitted (the one fitted at training time,
  // persisted with the model) and outlive the imputer.
  StreamingImputer(const data::Standardizer* standardizer,
                   int64_t num_features);

  // One raw step: `values[c]` is the reading for feature c, `observed[c]`
  // non-zero when it was actually measured. Returns the prepared row
  // (standardised LOCF value, mask, steps-since-observation).
  Observation Next(const float* values, const uint8_t* observed);

  // Forgets all carried state (new patient).
  void Reset();

  int64_t steps() const { return t_; }

 private:
  const data::Standardizer* standardizer_;
  const int64_t num_features_;
  int64_t t_ = 0;
  std::vector<float> last_value_;   // per feature, standardised space
  std::vector<float> steps_since_;  // per feature
  std::vector<uint8_t> seen_;
};

}  // namespace serve
}  // namespace elda

#endif  // ELDA_SERVE_STREAMING_IMPUTER_H_
