#include "synth/features.h"

#include "util/logging.h"

namespace elda {
namespace synth {

const std::vector<FeatureSpec>& FeatureTable() {
  // Baselines approximate healthy adult ICU admission values; observation
  // rates are tuned so a cohort matches Table I's ~20% observed-cell density
  // (~359 records per patient over 48 h x 37 features).
  static const std::vector<FeatureSpec>* kTable = new std::vector<FeatureSpec>{
      // name          mean    std    rate   sev    floor
      {"Albumin",      3.4f,   0.5f,  0.035f, -0.25f, 0.5f},
      {"ALP",          90.0f,  40.0f, 0.035f, 0.15f,  5.0f},
      {"ALT",          35.0f,  25.0f, 0.035f, 0.30f,  2.0f},
      {"AST",          40.0f,  30.0f, 0.035f, 0.30f,  2.0f},
      {"Bilirubin",    0.9f,   0.5f,  0.035f, 0.30f,  0.05f},
      {"BUN",          18.0f,  7.0f,  0.070f, 0.35f,  1.0f},
      {"Cholesterol",  160.0f, 35.0f, 0.015f, -0.05f, 40.0f},
      {"Creatinine",   1.0f,   0.3f,  0.070f, 0.35f,  0.1f},
      {"DiasABP",      60.0f,  10.0f, 0.450f, -0.30f, 15.0f},
      {"FiO2",         0.30f,  0.10f, 0.200f, 0.40f,  0.21f},
      {"GCS",          14.0f,  1.5f,  0.250f, -0.60f, 3.0f},
      {"Glucose",      125.0f, 35.0f, 0.080f, 0.20f,  20.0f},
      {"HCO3",         24.0f,  3.0f,  0.070f, -0.30f, 4.0f},
      {"HCT",          32.0f,  4.5f,  0.080f, -0.10f, 10.0f},
      {"HR",           86.0f,  14.0f, 0.550f, 0.45f,  20.0f},
      {"K",            4.1f,   0.5f,  0.070f, 0.15f,  1.5f},
      {"Lactate",      1.6f,   0.8f,  0.045f, 0.45f,  0.2f},
      {"Mg",           2.0f,   0.3f,  0.060f, 0.05f,  0.5f},
      {"MAP",          78.0f,  11.0f, 0.450f, -0.40f, 20.0f},
      {"MechVent",     0.30f,  0.46f, 0.200f, 0.40f,  0.0f},
      {"Na",           139.0f, 4.0f,  0.070f, 0.05f,  110.0f},
      {"NIDiasABP",    59.0f,  11.0f, 0.300f, -0.28f, 15.0f},
      {"NIMAP",        77.0f,  12.0f, 0.300f, -0.38f, 20.0f},
      {"NISysABP",     119.0f, 18.0f, 0.300f, -0.35f, 40.0f},
      {"PaCO2",        40.0f,  6.0f,  0.060f, 0.10f,  10.0f},
      {"PaO2",         150.0f, 60.0f, 0.060f, -0.30f, 30.0f},
      {"pH",           7.40f,  0.05f, 0.070f, -0.25f, 6.8f},
      {"Platelets",    220.0f, 80.0f, 0.060f, -0.20f, 10.0f},
      {"RespRate",     18.0f,  4.0f,  0.400f, 0.45f,  4.0f},
      {"SaO2",         97.0f,  1.8f,  0.250f, -0.35f, 60.0f},
      {"SysABP",       120.0f, 17.0f, 0.450f, -0.35f, 40.0f},
      {"Temp",         37.0f,  0.6f,  0.300f, 0.15f,  30.0f},
      {"TroponinI",    0.4f,   0.7f,  0.020f, 0.25f,  0.0f},
      {"TroponinT",    0.05f,  0.10f, 0.020f, 0.25f,  0.0f},
      {"Urine",        110.0f, 55.0f, 0.450f, -0.40f, 0.0f},
      {"WBC",          9.5f,   3.0f,  0.070f, 0.35f,  0.5f},
      {"Weight",       80.0f,  16.0f, 0.060f, 0.00f,  30.0f},
  };
  ELDA_CHECK_EQ(static_cast<int64_t>(kTable->size()), kNumFeatures);
  return *kTable;
}

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const FeatureSpec& spec : FeatureTable()) {
      names->push_back(spec.name);
    }
    return names;
  }();
  return *kNames;
}

int64_t FeatureIndexByName(const std::string& name) {
  const std::vector<std::string>& names = FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int64_t>(i);
  }
  ELDA_CHECK(false) << "unknown feature" << name;
  return -1;
}

}  // namespace synth
}  // namespace elda
