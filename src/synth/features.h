// The 37 medical features of the PhysioNet2012 challenge set and their
// physiological priors used by the patient simulator.
//
// Each feature has a plausible ICU baseline (mean, stddev), an hourly base
// observation rate (vitals are charted near-hourly, labs every 8-12 hours),
// and a generic severity loading: the direction the feature drifts as a
// patient's latent severity rises, independent of the specific condition.
// Condition-specific couplings (DKA, DLA, sepsis, ...) live in simulator.cc.

#ifndef ELDA_SYNTH_FEATURES_H_
#define ELDA_SYNTH_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elda {
namespace synth {

struct FeatureSpec {
  const char* name;
  float baseline_mean;
  float baseline_std;
  // Probability that the feature is charted in a given hour for a calm
  // patient; scaled up with acuity by the observation process.
  float base_obs_rate;
  // Generic severity loading in z-units per unit of latent severity.
  float severity_loading;
  // Values below this are physiologically impossible and clipped.
  float floor;
};

// Index constants for the features referenced by condition couplings and the
// interpretability experiments (Figs. 9-10, Table II).
enum FeatureIndex : int64_t {
  kAlbumin = 0,
  kAlp,
  kAlt,
  kAst,
  kBilirubin,
  kBun,
  kCholesterol,
  kCreatinine,
  kDiasAbp,
  kFiO2,
  kGcs,
  kGlucose,
  kHco3,
  kHct,
  kHr,
  kK,
  kLactate,
  kMg,
  kMap,
  kMechVent,
  kNa,
  kNiDiasAbp,
  kNiMap,
  kNiSysAbp,
  kPaCo2,
  kPaO2,
  kPh,
  kPlatelets,
  kRespRate,
  kSaO2,
  kSysAbp,
  kTemp,
  kTroponinI,
  kTroponinT,
  kUrine,
  kWbc,
  kWeight,
  kNumFeatures,  // == 37
};

// The full feature table, indexed by FeatureIndex.
const std::vector<FeatureSpec>& FeatureTable();

// Feature names in index order (length 37).
const std::vector<std::string>& FeatureNames();

// Index of a feature by name; CHECK-fails if unknown.
int64_t FeatureIndexByName(const std::string& name);

}  // namespace synth
}  // namespace elda

#endif  // ELDA_SYNTH_FEATURES_H_
