#include "synth/simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "data/shard_io.h"

namespace elda {
namespace synth {
namespace {

using internal::RiskFeatures;
using internal::Trajectory;

float Sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float Reluf(float x) { return x > 0.0f ? x : 0.0f; }

struct ConditionParams {
  float base_severity;   // severity at admission
  float reversion_mean;  // OU long-run mean (before per-patient drift)
  bool has_episode;      // acute episode machinery on/off
};

const ConditionParams& ParamsFor(Condition condition) {
  static const ConditionParams kParams[] = {
      /*kStable*/ {0.45f, 0.35f, false},
      /*kDm*/ {0.70f, 0.55f, false},
      /*kDmDka*/ {1.15f, 0.90f, true},
      /*kDmDla*/ {1.20f, 0.95f, true},
      /*kSepsis*/ {1.30f, 1.05f, true},
      /*kCardiac*/ {1.05f, 0.85f, true},
      /*kRenal*/ {0.95f, 0.85f, false},
  };
  return kParams[static_cast<int64_t>(condition)];
}

// True (pre-missingness) z-scores for every cell, plus the latent
// trajectory; shared by cohort generation and the showcase patient.
struct PatientDraw {
  Trajectory trajectory;
  std::vector<float> z;  // [T x C]
  RiskFeatures risk;
};

PatientDraw DrawPatient(Condition condition, int64_t num_steps, Rng* rng) {
  PatientDraw draw;
  draw.trajectory = internal::SimulateTrajectory(condition, num_steps, rng);
  const auto& table = FeatureTable();
  draw.z.assign(num_steps * kNumFeatures, 0.0f);

  // AR(1) measurement noise per feature keeps consecutive hours coherent.
  std::vector<float> noise(kNumFeatures, 0.0f);
  for (int64_t c = 0; c < kNumFeatures; ++c) {
    noise[c] = static_cast<float>(rng->Normal(0.0, 0.5));
  }
  // Per-patient constitution: stable offsets (body weight, baseline HCT...).
  std::vector<float> constitution(kNumFeatures, 0.0f);
  for (int64_t c = 0; c < kNumFeatures; ++c) {
    constitution[c] = static_cast<float>(rng->Normal(0.0, 0.45));
  }

  for (int64_t t = 0; t < num_steps; ++t) {
    const float severity = draw.trajectory.severity[t];
    const float episode = draw.trajectory.episode[t];
    for (int64_t c = 0; c < kNumFeatures; ++c) {
      noise[c] = 0.8f * noise[c] +
                 static_cast<float>(rng->Normal(0.0, 0.3));
      const float z = table[c].severity_loading * severity +
                      internal::ConditionShift(condition, c, severity,
                                               episode) +
                      constitution[c] + noise[c];
      draw.z[t * kNumFeatures + c] = z;
    }
  }

  // Outcome-model risk features from the true latent values.
  const int64_t tail = std::max<int64_t>(1, num_steps / 6);
  float terminal = 0.0f;
  float mean_sev = 0.0f;
  float max_sev = 0.0f;
  for (int64_t t = 0; t < num_steps; ++t) {
    const float s = draw.trajectory.severity[t];
    mean_sev += s;
    max_sev = std::max(max_sev, s);
    if (t >= num_steps - tail) terminal += s;
  }
  draw.risk.terminal_severity = terminal / static_cast<float>(tail);
  draw.risk.mean_severity = mean_sev / static_cast<float>(num_steps);
  draw.risk.max_severity = max_sev;
  for (int64_t t = 0; t < num_steps; ++t) {
    const float* zt = draw.z.data() + t * kNumFeatures;
    draw.risk.glucose_lactate =
        std::max(draw.risk.glucose_lactate,
                 Reluf(zt[kGlucose]) * Reluf(zt[kLactate]) * 0.25f);
    draw.risk.glucose_acidosis =
        std::max(draw.risk.glucose_acidosis,
                 Reluf(zt[kGlucose]) * Reluf(-zt[kPh]) * 0.25f);
    draw.risk.lactate_shock =
        std::max(draw.risk.lactate_shock,
                 Reluf(zt[kLactate]) * Reluf(-zt[kMap]) * 0.25f);
    draw.risk.troponin_strain =
        std::max(draw.risk.troponin_strain,
                 Reluf(zt[kTroponinI]) * Reluf(zt[kHr]) * 0.25f);
  }
  return draw;
}

// Multi-task labels derived deterministically from the latent trajectory —
// no rng draws, so the fixed-length path, the ragged path, and both passes
// of the sharded generator keep their existing streams bitwise-unchanged.
void AttachTrajectoryLabels(const Trajectory& trajectory,
                            data::EmrSample* sample) {
  const int64_t num_steps =
      static_cast<int64_t>(trajectory.severity.size());
  // Per-step decompensation: does latent severity cross the crisis band in
  // the near-term window after hour t? Forward-looking over (t, t+6]; the
  // final hour, with no lookahead left, labels its own state.
  constexpr int64_t kHorizon = 6;
  constexpr float kCrisisSeverity = 2.0f;
  sample->decomp_labels.assign(static_cast<size_t>(num_steps), 0.0f);
  for (int64_t t = 0; t < num_steps; ++t) {
    float peak = t + 1 < num_steps ? 0.0f : trajectory.severity[t];
    const int64_t hi = std::min(t + kHorizon, num_steps - 1);
    for (int64_t u = t + 1; u <= hi; ++u) {
      peak = std::max(peak, trajectory.severity[u]);
    }
    sample->decomp_labels[static_cast<size_t>(t)] =
        peak >= kCrisisSeverity ? 1.0f : 0.0f;
  }
  // Admission-level phenotypes: condition archetype one-hot plus three
  // trajectory-shape flags (acute episode, high peak, prolonged elevation).
  sample->phenotype_labels.assign(
      static_cast<size_t>(data::kNumPhenotypes), 0.0f);
  const int64_t condition = static_cast<int64_t>(trajectory.condition);
  if (condition >= 0 &&
      condition < static_cast<int64_t>(Condition::kNumConditions)) {
    sample->phenotype_labels[static_cast<size_t>(condition)] = 1.0f;
  }
  float max_episode = 0.0f;
  float max_severity = 0.0f;
  int64_t elevated_steps = 0;
  for (int64_t t = 0; t < num_steps; ++t) {
    max_episode = std::max(max_episode, trajectory.episode[t]);
    max_severity = std::max(max_severity, trajectory.severity[t]);
    elevated_steps += trajectory.severity[t] >= 1.5f;
  }
  const size_t base = static_cast<size_t>(Condition::kNumConditions);
  sample->phenotype_labels[base + 0] = max_episode > 0.5f ? 1.0f : 0.0f;
  sample->phenotype_labels[base + 1] = max_severity >= 2.5f ? 1.0f : 0.0f;
  sample->phenotype_labels[base + 2] =
      2 * elevated_steps >= num_steps ? 1.0f : 0.0f;
}

// Converts a z grid into raw feature values with the observation process
// applied. `obs_scale` calibrates density; `dense` forces near-complete
// observation (used by the showcase patient).
data::EmrSample RealisePatient(const PatientDraw& draw, int64_t num_steps,
                               double obs_scale, bool dense, Rng* rng) {
  const auto& table = FeatureTable();
  data::EmrSample sample(num_steps, kNumFeatures);
  sample.condition = static_cast<int64_t>(draw.trajectory.condition);
  AttachTrajectoryLabels(draw.trajectory, &sample);
  for (int64_t t = 0; t < num_steps; ++t) {
    const float severity = draw.trajectory.severity[t];
    const float episode = draw.trajectory.episode[t];
    for (int64_t c = 0; c < kNumFeatures; ++c) {
      const float z = draw.z[t * kNumFeatures + c];
      float value = table[c].baseline_mean + table[c].baseline_std * z;
      if (c == kMechVent) {
        // Binary flag: ventilated when respiratory support demand is high.
        value = Sigmoidf(2.0f * (severity + episode) - 2.5f) >
                        static_cast<float>(rng->Uniform())
                    ? 1.0f
                    : 0.0f;
      } else if (c == kGcs) {
        value = std::round(std::min(15.0f, std::max(3.0f, value)));
      } else {
        value = std::max(value, table[c].floor);
      }
      // Observation probability: base rate, scaled by acuity, and boosted
      // for the features a clinician would examine during this condition's
      // episode (the paper's "suddenly increased glucose -> immediately
      // examine related features" workflow).
      float rate = table[c].base_obs_rate *
                   (1.0f + 0.6f * std::min(severity, 3.0f) / 3.0f);
      const float shift =
          internal::ConditionShift(draw.trajectory.condition, c, severity,
                                   episode);
      if (episode > 0.3f && std::fabs(shift) > 0.45f) rate *= 3.0f;
      rate = std::min(rate * static_cast<float>(obs_scale), 0.95f);
      const bool observed = dense || rng->Bernoulli(rate);
      sample.set_observed(t, c, observed);
      sample.value(t, c) = observed ? value : 0.0f;
    }
  }
  return sample;
}

// Samples a condition from the (unnormalised) mix. One parent-rng Uniform.
Condition SampleCondition(const CohortConfig& config, double mix_total,
                          Rng* rng) {
  double u = rng->Uniform() * mix_total;
  int64_t condition_index = 0;
  for (size_t k = 0; k < config.condition_mix.size(); ++k) {
    u -= config.condition_mix[k];
    if (u <= 0.0) {
      condition_index = static_cast<int64_t>(k);
      break;
    }
  }
  return static_cast<Condition>(condition_index);
}

// Condition-dependent stay length: log-normal around a typical stay that
// scales with the archetype's admission severity (sicker archetypes stay
// longer), clamped to [min_steps, max_steps]. Drawn from the patient's own
// rng so the fixed-length path never consumes it.
int64_t DrawStayLength(Condition condition, const CohortConfig& config,
                       Rng* rng) {
  const ConditionParams& params = ParamsFor(condition);
  const double mean_log =
      std::log(42.0) + 0.8 * (params.base_severity - 0.45);
  const double hours = std::exp(mean_log + 0.55 * rng->Normal(0.0, 1.0));
  const int64_t steps = static_cast<int64_t>(std::llround(hours));
  return std::min(std::max(steps, config.min_steps), config.max_steps);
}

int64_t StepsForPatient(const CohortConfig& config, Condition condition,
                        Rng* patient_rng) {
  return config.variable_length
             ? DrawStayLength(condition, config, patient_rng)
             : config.num_steps;
}

// The outcome-model risk expressions, factored so the in-RAM and sharded
// generators compute bitwise-identical values.
double MortalityRisk(const RiskFeatures& r, double frailty) {
  return 0.9 * r.terminal_severity + 0.45 * r.max_severity +
         0.8 * std::min(r.glucose_lactate, 4.0f) +
         0.6 * std::min(r.glucose_acidosis, 4.0f) +
         0.7 * std::min(r.lactate_shock, 4.0f) +
         0.5 * std::min(r.troponin_strain, 4.0f) + frailty;
}

double LosRisk(const RiskFeatures& r, double noise) {
  return 1.0 * r.mean_severity + 0.35 * r.max_severity +
         0.4 * std::min(r.glucose_lactate, 4.0f) +
         0.3 * std::min(r.lactate_shock, 4.0f) + noise;
}

// Solves for the intercept b such that mean(sigmoid(scale*risk + b)) hits
// the target rate, then returns per-patient probabilities.
std::vector<double> CalibrateProbabilities(const std::vector<double>& risks,
                                           double scale, double target) {
  double lo = -20.0, hi = 20.0;
  std::vector<double> probs(risks.size());
  for (int iter = 0; iter < 60; ++iter) {
    const double b = 0.5 * (lo + hi);
    double mean = 0.0;
    for (double r : risks) mean += 1.0 / (1.0 + std::exp(-(scale * r + b)));
    mean /= static_cast<double>(risks.size());
    if (mean < target) {
      lo = b;
    } else {
      hi = b;
    }
  }
  const double b = 0.5 * (lo + hi);
  for (size_t i = 0; i < risks.size(); ++i) {
    probs[i] = 1.0 / (1.0 + std::exp(-(scale * risks[i] + b)));
  }
  return probs;
}

}  // namespace

std::string ConditionName(Condition condition) {
  switch (condition) {
    case Condition::kStable:
      return "Stable";
    case Condition::kDm:
      return "DM";
    case Condition::kDmDka:
      return "DM+DKA";
    case Condition::kDmDla:
      return "DM+DLA";
    case Condition::kSepsis:
      return "Sepsis";
    case Condition::kCardiac:
      return "Cardiac";
    case Condition::kRenal:
      return "Renal";
    default:
      return "Unknown";
  }
}

namespace internal {

Trajectory SimulateTrajectory(Condition condition, int64_t num_steps,
                              Rng* rng) {
  const ConditionParams& params = ParamsFor(condition);
  Trajectory trajectory;
  trajectory.condition = condition;
  trajectory.severity.resize(num_steps);
  trajectory.episode.assign(num_steps, 0.0f);

  // Per-patient recovery (drift < 0) or deterioration (drift > 0).
  const float drift = static_cast<float>(rng->Normal(0.0, 0.25)) +
                      (params.base_severity - 0.8f) * 0.08f;
  float severity =
      params.base_severity + static_cast<float>(rng->Normal(0.0, 0.3));
  const float mean = params.reversion_mean + drift;
  for (int64_t t = 0; t < num_steps; ++t) {
    severity += 0.10f * (mean - severity) +
                static_cast<float>(rng->Normal(0.0, 0.12));
    severity = std::min(std::max(severity, 0.0f), 4.0f);
    trajectory.severity[t] = severity;
  }

  if (params.has_episode && rng->Bernoulli(0.85)) {
    const int64_t onset = 4 + rng->UniformInt(std::max<int64_t>(
                                  1, num_steps * 2 / 3 - 4));
    const int64_t ramp = 3 + rng->UniformInt(4);      // hours to peak
    const int64_t plateau = 4 + rng->UniformInt(7);   // hours at peak
    const float decay_tau = 4.0f + static_cast<float>(rng->Uniform(0, 4));
    const float peak = 0.7f + static_cast<float>(rng->Uniform(0, 0.3));
    for (int64_t t = onset; t < num_steps; ++t) {
      float intensity;
      if (t < onset + ramp) {
        intensity = peak * static_cast<float>(t - onset + 1) / ramp;
      } else if (t < onset + ramp + plateau) {
        intensity = peak;
      } else {
        intensity = peak * std::exp(-static_cast<float>(
                               t - onset - ramp - plateau) /
                           decay_tau);
      }
      trajectory.episode[t] = intensity;
      // The episode also pushes latent severity up while active.
      trajectory.severity[t] =
          std::min(trajectory.severity[t] + 0.8f * intensity, 4.0f);
    }
  }
  return trajectory;
}

float ConditionShift(Condition condition, int64_t feature, float severity,
                     float episode) {
  float shift = 0.0f;
  const bool diabetic = condition == Condition::kDm ||
                        condition == Condition::kDmDka ||
                        condition == Condition::kDmDla;
  if (diabetic && feature == kGlucose) shift += 1.4f;
  switch (condition) {
    // Crisis excursions are deliberately extreme in baseline-z units: real
    // ICU crises run many standard deviations from the admission norm
    // (lactate 10x, troponin 50x), and the value-dependent attention of
    // Section V-D only has something to react to if that is true here too.
    case Condition::kDmDka:
      switch (feature) {
        case kGlucose: shift += 4.5f * episode; break;
        case kPh: shift -= 3.2f * episode; break;
        case kHco3: shift -= 3.6f * episode; break;
        case kRespRate: shift += 2.4f * episode; break;  // Kussmaul breathing
        case kK: shift += 1.2f * episode; break;
        default: break;
      }
      break;
    case Condition::kDmDla:
      switch (feature) {
        case kGlucose: shift += 3.5f * episode; break;
        case kLactate: shift += 5.0f * episode; break;
        case kPh: shift -= 3.0f * episode; break;
        case kHco3: shift -= 2.8f * episode; break;
        case kTemp: shift -= 2.0f * episode; break;
        case kMap: shift -= 2.0f * episode; break;
        case kSysAbp: shift -= 1.4f * episode; break;
        case kDiasAbp: shift -= 1.4f * episode; break;
        case kFiO2: shift += 2.5f * episode; break;
        case kHr: shift += 2.0f * episode; break;
        default: break;
      }
      break;
    case Condition::kSepsis:
      switch (feature) {
        case kTemp: shift += 2.5f * episode; break;
        case kWbc: shift += 3.0f * episode; break;
        case kLactate: shift += 2.4f * episode; break;
        case kMap: shift -= 2.0f * episode; break;
        case kHr: shift += 2.4f * episode; break;
        case kRespRate: shift += 2.0f * episode; break;
        case kFiO2: shift += 1.8f * episode; break;
        default: break;
      }
      break;
    case Condition::kCardiac:
      switch (feature) {
        case kTroponinI: shift += 5.0f * episode; break;
        case kTroponinT: shift += 5.0f * episode; break;
        case kHr: shift += 2.2f * episode; break;
        case kMap: shift -= 1.6f * episode; break;
        case kPaO2: shift -= 1.6f * episode; break;
        default: break;
      }
      break;
    case Condition::kRenal: {
      // Chronic derangement scales with severity instead of an episode.
      const float s = 0.5f * severity;
      switch (feature) {
        case kCreatinine: shift += 1.8f * s; break;
        case kBun: shift += 1.6f * s; break;
        case kK: shift += 0.9f * s; break;
        case kUrine: shift -= 1.5f * s; break;
        case kMg: shift += 0.5f * s; break;
        default: break;
      }
      break;
    }
    default:
      break;
  }
  return shift;
}

}  // namespace internal

CohortConfig SynthPhysioNet2012() {
  CohortConfig config;
  config.name = "SynthPhysioNet2012";
  config.num_admissions = 12000;
  // Table I: 10293 survivors : 1707 non-survivors; 4095 LOS<=7 : 7738 LOS>7.
  config.target_mortality_rate = 1707.0 / 12000.0;
  config.target_los_gt7_rate = 7738.0 / (4095.0 + 7738.0);
  config.obs_rate_scale = 1.0;
  config.seed = 20120001;
  return config;
}

CohortConfig SynthMimicIii() {
  CohortConfig config;
  config.name = "SynthMimicIii";
  config.num_admissions = 21139;
  // Table I: 18342 : 2797 and 9134 : 12005.
  config.target_mortality_rate = 2797.0 / 21139.0;
  config.target_los_gt7_rate = 12005.0 / (9134.0 + 12005.0);
  // MIMIC-III is slightly sparser (80.52% vs 79.78% missing).
  config.obs_rate_scale = 0.955;
  // A different case mix: more sepsis/cardiac, fewer uncomplicated stays.
  config.condition_mix = {0.34, 0.13, 0.08, 0.08, 0.17, 0.12, 0.08};
  config.seed = 30001;
  return config;
}

data::EmrDataset GenerateCohort(const CohortConfig& config) {
  ELDA_CHECK_GT(config.num_admissions, 0);
  Rng rng(config.seed);
  const int64_t grid =
      config.variable_length ? config.max_steps : config.num_steps;
  data::EmrDataset dataset(FeatureNames(), grid);

  // Normalise the condition mix into a CDF.
  double mix_total = 0.0;
  for (double w : config.condition_mix) mix_total += w;
  ELDA_CHECK_GT(mix_total, 0.0);

  std::vector<double> mortality_risks;
  std::vector<double> los_risks;
  mortality_risks.reserve(config.num_admissions);
  los_risks.reserve(config.num_admissions);

  for (int64_t i = 0; i < config.num_admissions; ++i) {
    const Condition condition = SampleCondition(config, mix_total, &rng);
    Rng patient_rng = rng.Fork();
    const int64_t steps = StepsForPatient(config, condition, &patient_rng);
    PatientDraw draw = DrawPatient(condition, steps, &patient_rng);
    data::EmrSample sample =
        RealisePatient(draw, steps, config.obs_rate_scale,
                       /*dense=*/false, &patient_rng);
    sample.patient_id = i;

    // Unobserved heterogeneity (comorbidities, age, ...) keeps outcomes
    // realistically noisy: models should land in the paper's AUC band, not
    // near-perfect separation.
    const double frailty = rng.Normal(0.0, 1.2);
    mortality_risks.push_back(MortalityRisk(draw.risk, frailty));
    los_risks.push_back(LosRisk(draw.risk, rng.Normal(0.0, 0.9)));
    dataset.Add(std::move(sample));
  }

  const std::vector<double> p_mort = CalibrateProbabilities(
      mortality_risks, /*scale=*/1.6, config.target_mortality_rate);
  const std::vector<double> p_los = CalibrateProbabilities(
      los_risks, /*scale=*/1.6, config.target_los_gt7_rate);
  for (int64_t i = 0; i < dataset.size(); ++i) {
    data::EmrSample* s = dataset.mutable_sample(i);
    s->mortality_label = rng.Bernoulli(p_mort[i]) ? 1.0f : 0.0f;
    s->los_gt7_label = rng.Bernoulli(p_los[i]) ? 1.0f : 0.0f;
  }
  return dataset;
}

ShardedCohortInfo GenerateCohortToShards(const CohortConfig& config,
                                         const std::string& path_prefix,
                                         int64_t samples_per_shard) {
  ELDA_CHECK_GT(config.num_admissions, 0);
  ELDA_CHECK_GT(samples_per_shard, 0);
  double mix_total = 0.0;
  for (double w : config.condition_mix) mix_total += w;
  ELDA_CHECK_GT(mix_total, 0.0);

  // Pass 1: replay the cohort rng stream computing risk features only (the
  // realised grids are discarded), then continue the *same* stream through
  // the calibrated label Bernoullis — exactly the draw order GenerateCohort
  // uses. Each patient's rng is re-forked identically in pass 2, so values,
  // lengths, and labels are all bitwise-identical to the in-RAM generator
  // while only O(num_admissions) scalars stay resident.
  std::vector<double> mortality_risks;
  std::vector<double> los_risks;
  mortality_risks.reserve(config.num_admissions);
  los_risks.reserve(config.num_admissions);
  std::vector<uint8_t> mortality_labels(config.num_admissions, 0);
  std::vector<uint8_t> los_labels(config.num_admissions, 0);
  {
    Rng rng(config.seed);
    for (int64_t i = 0; i < config.num_admissions; ++i) {
      const Condition condition = SampleCondition(config, mix_total, &rng);
      Rng patient_rng = rng.Fork();
      const int64_t steps = StepsForPatient(config, condition, &patient_rng);
      const PatientDraw draw = DrawPatient(condition, steps, &patient_rng);
      const double frailty = rng.Normal(0.0, 1.2);
      mortality_risks.push_back(MortalityRisk(draw.risk, frailty));
      los_risks.push_back(LosRisk(draw.risk, rng.Normal(0.0, 0.9)));
    }
    const std::vector<double> p_mort = CalibrateProbabilities(
        mortality_risks, /*scale=*/1.6, config.target_mortality_rate);
    const std::vector<double> p_los = CalibrateProbabilities(
        los_risks, /*scale=*/1.6, config.target_los_gt7_rate);
    for (int64_t i = 0; i < config.num_admissions; ++i) {
      mortality_labels[i] = rng.Bernoulli(p_mort[i]) ? 1 : 0;
      los_labels[i] = rng.Bernoulli(p_los[i]) ? 1 : 0;
    }
  }

  // Pass 2: regenerate the values from a fresh replay of the same seed and
  // stream them straight to shards, one resident sample at a time.
  ShardedCohortInfo info;
  std::vector<int64_t> lengths;
  lengths.reserve(config.num_admissions);
  Rng rng(config.seed);
  std::unique_ptr<data::ShardWriter> writer;
  int64_t shard_index = 0;
  for (int64_t i = 0; i < config.num_admissions; ++i) {
    if (writer == nullptr || writer->num_records() == samples_per_shard) {
      if (writer != nullptr) {
        ELDA_CHECK(writer->Close()) << "shard write failed: "
                                    << writer->path();
      }
      writer = std::make_unique<data::ShardWriter>(
          data::ShardPath(path_prefix, shard_index), FeatureNames());
      info.paths.push_back(writer->path());
      ++shard_index;
    }
    const Condition condition = SampleCondition(config, mix_total, &rng);
    Rng patient_rng = rng.Fork();
    const int64_t steps = StepsForPatient(config, condition, &patient_rng);
    const PatientDraw draw = DrawPatient(condition, steps, &patient_rng);
    data::EmrSample sample =
        RealisePatient(draw, steps, config.obs_rate_scale,
                       /*dense=*/false, &patient_rng);
    sample.patient_id = i;
    sample.mortality_label = mortality_labels[i] ? 1.0f : 0.0f;
    sample.los_gt7_label = los_labels[i] ? 1.0f : 0.0f;
    // Keep the parent stream aligned with pass 1 (next patient's condition
    // draw depends on it).
    (void)rng.Normal(0.0, 1.2);
    (void)rng.Normal(0.0, 0.9);
    lengths.push_back(sample.length);
    writer->Append(sample);
  }
  ELDA_CHECK(writer->Close()) << "shard write failed: " << writer->path();
  info.num_samples = config.num_admissions;
  info.length_stats = data::ComputeLengthStats(std::move(lengths));
  return info;
}

data::EmrSample MakeDlaShowcasePatient(uint64_t seed) {
  // A scripted DM+DLA course matching the narrative of Section V-D:
  // Glucose starts climbing at hour ~12 (episode onset), the acidosis peaks
  // through hours ~15-30, treatment takes hold and values restabilise by
  // hour ~35.
  const int64_t num_steps = 48;
  Rng rng(seed);
  Trajectory trajectory;
  trajectory.condition = Condition::kDmDla;
  trajectory.severity.resize(num_steps);
  trajectory.episode.assign(num_steps, 0.0f);
  for (int64_t t = 0; t < num_steps; ++t) {
    float episode = 0.0f;
    if (t >= 12 && t < 16) {
      episode = 0.95f * static_cast<float>(t - 11) / 4.0f;
    } else if (t >= 16 && t < 30) {
      episode = 0.95f;
    } else if (t >= 30) {
      episode = 0.95f * std::exp(-static_cast<float>(t - 30) / 3.0f);
    }
    trajectory.episode[t] = episode;
    trajectory.severity[t] = 0.9f + 1.2f * episode +
                             static_cast<float>(rng.Normal(0.0, 0.05));
  }

  PatientDraw draw;
  draw.trajectory = trajectory;
  draw.z.assign(num_steps * kNumFeatures, 0.0f);
  const auto& table = FeatureTable();
  // The cohort's standardisation statistics are inflated by the acute
  // episodes it contains, so a paper-grade severe crisis needs a stronger
  // raw excursion to register as an extreme *standardised* value; Patient A
  // is scripted as such a severe case.
  constexpr float kCrisisIntensity = 1.2f;
  std::vector<float> noise(kNumFeatures, 0.0f);
  for (int64_t t = 0; t < num_steps; ++t) {
    for (int64_t c = 0; c < kNumFeatures; ++c) {
      noise[c] = 0.7f * noise[c] + static_cast<float>(rng.Normal(0.0, 0.15));
      draw.z[t * kNumFeatures + c] =
          table[c].severity_loading * trajectory.severity[t] +
          internal::ConditionShift(Condition::kDmDla, c,
                                   trajectory.severity[t],
                                   kCrisisIntensity * trajectory.episode[t]) +
          noise[c];
    }
  }
  Rng obs_rng(seed + 1);
  data::EmrSample sample =
      RealisePatient(draw, num_steps, /*obs_scale=*/1.0, /*dense=*/true,
                     &obs_rng);
  sample.patient_id = 0;
  sample.mortality_label = 1.0f;  // Patient A is a high-risk case
  sample.los_gt7_label = 1.0f;
  return sample;
}

}  // namespace synth
}  // namespace elda
