// Mechanistic ICU patient simulator.
//
// This is the repository's substitution for the access-gated PhysioNet2012
// and MIMIC-III datasets (see DESIGN.md, "Substitutions"). It generates
// admissions whose statistics match Table I of the paper and whose signal
// structure exercises exactly what the paper's models compete on:
//
//   * Latent severity: each patient carries an Ornstein-Uhlenbeck severity
//     trajectory with a per-patient recovery/deterioration drift; acute
//     conditions add an episode (onset -> peak -> treatment decay). Temporal
//     models can exploit these dynamics; time-collapsed models cannot.
//   * Conditions: the paper's DM complication taxonomy (DM only, DM+DKA,
//     DM+DLA) plus sepsis, cardiac and renal archetypes. Each condition
//     couples a characteristic *set* of features (e.g. DLA: Lactate up, pH
//     down, HCO3 down, Temp down, MAP down alongside high Glucose), so
//     pairwise feature interactions carry label information beyond any
//     single marginal value.
//   * Outcome model: mortality and LOS>7d probabilities depend on terminal/
//     integrated severity *and on explicit pairwise interaction terms*
//     (Glucose x Lactate, Glucose x low-pH, Lactate x low-MAP, Troponin x
//     HR). Interaction-learning models therefore have real headroom.
//   * Observation process: vitals chart near-hourly, labs sparsely, and
//     acutely ill patients are measured more (informative missingness, the
//     signal GRU-D exploits). Overall density calibrates to ~20% observed
//     cells (~80% missing, ~359 records/patient as in Table I).

#ifndef ELDA_SYNTH_SIMULATOR_H_
#define ELDA_SYNTH_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/emr.h"
#include "synth/features.h"
#include "util/rng.h"

namespace elda {
namespace synth {

enum class Condition : int64_t {
  kStable = 0,
  kDm,        // diabetes mellitus, uncomplicated
  kDmDka,     // DM + diabetic ketoacidosis
  kDmDla,     // DM + diabetic lactic acidosis
  kSepsis,
  kCardiac,
  kRenal,
  kNumConditions,
};

std::string ConditionName(Condition condition);

struct CohortConfig {
  std::string name;
  int64_t num_admissions = 0;
  int64_t num_steps = 48;
  double target_mortality_rate = 0.14;
  double target_los_gt7_rate = 0.65;
  // Global multiplier on observation rates; calibrates the missing rate.
  double obs_rate_scale = 1.0;
  // Sampling weights over Condition (normalised internally).
  std::array<double, static_cast<size_t>(Condition::kNumConditions)>
      condition_mix = {0.40, 0.14, 0.07, 0.07, 0.14, 0.10, 0.08};
  uint64_t seed = 2022;

  // -- Ragged stays ----------------------------------------------------------
  // When set, each admission's stay length is drawn from the patient's own
  // rng stream: log-normal around a condition-dependent typical stay (sicker
  // archetypes stay longer), clamped to [min_steps, max_steps]. Generated
  // samples then carry num_steps == length == the drawn stay (no padding in
  // storage); the dataset grid is max_steps. With variable_length unset the
  // fixed-grid path is taken and its rng stream — and therefore every value
  // and label — is bitwise-unchanged from before this knob existed.
  bool variable_length = false;
  int64_t min_steps = 6;     // 6 hours
  int64_t max_steps = 720;   // 30 days
};

// Cohort presets calibrated against the paper's Table I.
CohortConfig SynthPhysioNet2012();
CohortConfig SynthMimicIii();

// Generates a full cohort. Deterministic for a fixed config (incl. seed).
data::EmrDataset GenerateCohort(const CohortConfig& config);

// Summary of a sharded generation run.
struct ShardedCohortInfo {
  std::vector<std::string> paths;      // shard files, in index order
  int64_t num_samples = 0;
  data::LengthStats length_stats;      // stay-length distribution
};

// Streams the cohort to CRC-framed shards ("<prefix>-00000.elds", ...,
// `samples_per_shard` records each) without ever materializing it: resident
// memory is one sample plus O(num_admissions) risk/label scalars, so
// million-stay cohorts generate in a bounded footprint. Label calibration
// needs cohort-wide risk statistics, so generation runs in two passes over
// the same rng stream (risks + labels first, values second); every value,
// label, and length is bitwise-identical to GenerateCohort on the same
// config. Read the result back with data::ShardReader / data::ShardedLoader.
ShardedCohortInfo GenerateCohortToShards(const CohortConfig& config,
                                         const std::string& path_prefix,
                                         int64_t samples_per_shard = 4096);

// The representative "Patient A" of Section V-D: a DM+DLA course whose
// Glucose starts rising around hour 12 and restabilises by hour ~35, with
// Lactate, pH, HCO3, Temp, MAP and FiO2 deranged during the episode. The
// sample uses a dense observation pattern so per-hour interpretation plots
// have data at every step.
data::EmrSample MakeDlaShowcasePatient(uint64_t seed = 7);

namespace internal {

// Per-hour latent state exposed for tests.
struct Trajectory {
  std::vector<float> severity;   // [T], >= 0
  std::vector<float> episode;    // [T] in [0, 1]
  Condition condition = Condition::kStable;
};

Trajectory SimulateTrajectory(Condition condition, int64_t num_steps,
                              Rng* rng);

// Condition coupling: additive z-space shift for feature `c` given episode
// intensity and severity.
float ConditionShift(Condition condition, int64_t feature, float severity,
                     float episode);

// Risk score used by the outcome model (computed on true latent values).
struct RiskFeatures {
  float terminal_severity = 0.0f;
  float mean_severity = 0.0f;
  float max_severity = 0.0f;
  float glucose_lactate = 0.0f;   // DLA signature
  float glucose_acidosis = 0.0f;  // DKA/DLA signature
  float lactate_shock = 0.0f;     // lactate x hypotension
  float troponin_strain = 0.0f;   // troponin x tachycardia
};

}  // namespace internal

}  // namespace synth
}  // namespace elda

#endif  // ELDA_SYNTH_SIMULATOR_H_
