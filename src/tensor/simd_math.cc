// Scalar reference definitions and dispatched array kernels for the SIMD
// transcendental contract (see simd_math.h).
//
// This file is compiled with -ffp-contract=off (see CMakeLists.txt): the
// bitwise scalar==vector contract requires every fma to be an explicit
// std::fma and every separate mul/add to stay separate.

#include "tensor/simd_math.h"

#include <cstdlib>
#include <cstring>

namespace elda {
namespace simd {
namespace {

bool EnvDisabled() {
  const char* env = std::getenv("ELDA_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "OFF") == 0 || std::strcmp(env, "scalar") == 0;
}

bool DetectAvx2() {
#if ELDA_SIMD_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

struct Dispatch {
  bool available = false;
  bool env_enabled = false;  // available and not disabled by ELDA_SIMD
  bool enabled = false;      // current state (ForceScalar can clear it)
  Dispatch() {
    available = DetectAvx2();
    env_enabled = available && !EnvDisabled();
    enabled = env_enabled;
  }
};

Dispatch& D() {
  static Dispatch d;  // thread-safe magic-static init
  return d;
}

// The fixed 8-lane fold trees of the row-softmax reduction contract. Both
// the scalar reference and the AVX2 path (after storing its accumulator
// register) fold through these exact functions.
inline float FoldMax8(const float* l) {
  const float m01 = MaxPs(l[0], l[1]);
  const float m23 = MaxPs(l[2], l[3]);
  const float m45 = MaxPs(l[4], l[5]);
  const float m67 = MaxPs(l[6], l[7]);
  return MaxPs(MaxPs(m01, m23), MaxPs(m45, m67));
}

inline float FoldAdd8(const float* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

#if ELDA_SIMD_AVX2

// Mask with `tail` (1..7) active lanes for maskload/maskstore; an active
// lane is all-ones so the same mask works as a blend/and operand.
inline __m256i TailMask(int64_t tail) {
  alignas(32) static const int32_t kMask[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                -1, 0,  0,  0,  0,  0,  0,
                                                0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 8 - tail));
}

#endif  // ELDA_SIMD_AVX2

}  // namespace

bool Available() { return D().available; }

bool Enabled() { return D().enabled; }

void ForceScalar(bool force) { D().enabled = !force && D().env_enabled; }

const char* ActivePath() { return Enabled() ? "avx2" : "scalar"; }

float ExpRef(float x) {
  float xc = MinPs(x, kExpHi);
  xc = MaxPs(xc, kExpLo);
  const float nf = std::fma(xc, kLog2e, kExpRoundMagic) - kExpRoundMagic;
  float r = std::fma(nf, kExpNegC1, xc);
  r = std::fma(nf, kExpNegC2, r);
  float p = kExpP0;
  p = std::fma(p, r, kExpP1);
  p = std::fma(p, r, kExpP2);
  p = std::fma(p, r, kExpP3);
  p = std::fma(p, r, kExpP4);
  p = std::fma(p, r, kExpP5);
  const float r2 = r * r;
  p = std::fma(p, r2, r);
  p = p + 1.0f;
  // nf is exactly integral, so the truncating cast equals the vector path's
  // round-to-nearest cvtps2dq.
  const int32_t n = static_cast<int32_t>(nf);
  float y = p * BitsToFloat((n + 127) << 23);
  y = (x > kExpHi) ? HUGE_VALF : y;
  y = (x < kExpLo) ? 0.0f : y;
  y = (x != x) ? x : y;
  return y;
}

float SigmoidRef(float x) {
  const float z = ExpRef(-std::fabs(x));
  const float num = (x >= 0.0f) ? 1.0f : z;
  return num / (1.0f + z);
}

float TanhRef(float x) {
  float xc = MinPs(x, kTanhClamp);
  xc = MaxPs(xc, -kTanhClamp);
  const float x2 = xc * xc;
  float p = kTanhAlpha13;
  p = std::fma(x2, p, kTanhAlpha11);
  p = std::fma(x2, p, kTanhAlpha9);
  p = std::fma(x2, p, kTanhAlpha7);
  p = std::fma(x2, p, kTanhAlpha5);
  p = std::fma(x2, p, kTanhAlpha3);
  p = std::fma(x2, p, kTanhAlpha1);
  p = xc * p;
  float q = kTanhBeta6;
  q = std::fma(x2, q, kTanhBeta4);
  q = std::fma(x2, q, kTanhBeta2);
  q = std::fma(x2, q, kTanhBeta0);
  float y = p / q;
  y = (x != x) ? x : y;
  return y;
}

void ExpArray(const float* x, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, Exp8(_mm256_loadu_ps(x + i)));
    }
  }
#endif
  for (; i < n; ++i) y[i] = ExpRef(x[i]);
}

void SigmoidArray(const float* x, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, Sigmoid8(_mm256_loadu_ps(x + i)));
    }
  }
#endif
  for (; i < n; ++i) y[i] = SigmoidRef(x[i]);
}

void TanhArray(const float* x, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, Tanh8(_mm256_loadu_ps(x + i)));
    }
  }
#endif
  for (; i < n; ++i) y[i] = TanhRef(x[i]);
}

void AddSigmoidArray(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, Sigmoid8(_mm256_add_ps(_mm256_loadu_ps(a + i),
                                                     _mm256_loadu_ps(b + i))));
    }
  }
#endif
  for (; i < n; ++i) y[i] = SigmoidRef(a[i] + b[i]);
}

void AddTanhArray(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, Tanh8(_mm256_add_ps(_mm256_loadu_ps(a + i),
                                                  _mm256_loadu_ps(b + i))));
    }
  }
#endif
  for (; i < n; ++i) y[i] = TanhRef(a[i] + b[i]);
}

void ExpNegReluArray(const float* x, float* y, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const __m256 zero = _mm256_setzero_ps();
    const __m256 neg1 = _mm256_set1_ps(-1.0f);
    for (; i + 8 <= n; i += 8) {
      const __m256 relu = _mm256_max_ps(_mm256_loadu_ps(x + i), zero);
      _mm256_storeu_ps(y + i, Exp8(_mm256_mul_ps(relu, neg1)));
    }
  }
#endif
  for (; i < n; ++i) {
    y[i] = ExpRef((x[i] > 0.0f ? x[i] : 0.0f) * -1.0f);
  }
}

void SigmoidGradArray(const float* g, const float* y, float* dx, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const __m256 one = _mm256_set1_ps(1.0f);
    for (; i + 8 <= n; i += 8) {
      const __m256 yv = _mm256_loadu_ps(y + i);
      const __m256 d = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
      _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
    }
  }
#endif
  for (; i < n; ++i) dx[i] = g[i] * (y[i] * (1.0f - y[i]));
}

void TanhGradArray(const float* g, const float* y, float* dx, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const __m256 one = _mm256_set1_ps(1.0f);
    for (; i + 8 <= n; i += 8) {
      const __m256 yv = _mm256_loadu_ps(y + i);
      const __m256 d = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
      _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
    }
  }
#endif
  for (; i < n; ++i) dx[i] = g[i] * (1.0f - y[i] * y[i]);
}

void ExpNegReluGradArray(const float* g, const float* y, const float* x,
                         float* dx, int64_t n) {
  int64_t i = 0;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    // The contract's negation is an exact sign flip; vmulps with -1 would
    // leave the sign of a NaN product untouched (and compilers fold a
    // constant * -1 to xor only sometimes), so both paths xor explicitly.
    const __m256 sign = _mm256_set1_ps(-0.0f);
    for (; i + 8 <= n; i += 8) {
      const __m256 gy =
          _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(y + i));
      const __m256 mask = _mm256_blendv_ps(
          zero, one, _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ));
      _mm256_storeu_ps(dx + i,
                       _mm256_mul_ps(_mm256_xor_ps(gy, sign), mask));
    }
  }
#endif
  for (; i < n; ++i) {
    dx[i] = (-(g[i] * y[i])) * (x[i] > 0.0f ? 1.0f : 0.0f);
  }
}

void SoftmaxRow(const float* x, float* y, int64_t n) {
  if (n <= 0) return;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const int64_t full = n & ~int64_t{7};
    const int64_t tail = n - full;
    const __m256i tmask =
        tail > 0 ? TailMask(tail) : _mm256_setzero_si256();
    const __m256 tmaskf = _mm256_castsi256_ps(tmask);
    const __m256 neg_inf = _mm256_set1_ps(-HUGE_VALF);
    // Pass 1: lane-blocked max.
    __m256 mv = neg_inf;
    for (int64_t j = 0; j < full; j += 8) {
      mv = _mm256_max_ps(mv, _mm256_loadu_ps(x + j));
    }
    if (tail > 0) {
      const __m256 xt = _mm256_blendv_ps(
          neg_inf, _mm256_maskload_ps(x + full, tmask), tmaskf);
      mv = _mm256_max_ps(mv, xt);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, mv);
    const float m = FoldMax8(lanes);
    // Pass 2: e = exp(x - m) into y, lane-blocked sum.
    const __m256 mb = _mm256_set1_ps(m);
    __m256 sv = _mm256_setzero_ps();
    for (int64_t j = 0; j < full; j += 8) {
      const __m256 ev = Exp8(_mm256_sub_ps(_mm256_loadu_ps(x + j), mb));
      _mm256_storeu_ps(y + j, ev);
      sv = _mm256_add_ps(sv, ev);
    }
    if (tail > 0) {
      const __m256 ev =
          Exp8(_mm256_sub_ps(_mm256_maskload_ps(x + full, tmask), mb));
      _mm256_maskstore_ps(y + full, tmask, ev);
      sv = _mm256_add_ps(sv, _mm256_and_ps(ev, tmaskf));
    }
    _mm256_store_ps(lanes, sv);
    const float inv = 1.0f / FoldAdd8(lanes);
    // Pass 3: scale.
    const __m256 iv = _mm256_set1_ps(inv);
    for (int64_t j = 0; j < full; j += 8) {
      _mm256_storeu_ps(y + j, _mm256_mul_ps(_mm256_loadu_ps(y + j), iv));
    }
    if (tail > 0) {
      _mm256_maskstore_ps(
          y + full, tmask,
          _mm256_mul_ps(_mm256_maskload_ps(y + full, tmask), iv));
    }
    return;
  }
#endif
  // Scalar reference: the same 8-lane-blocked reduction, spelled out.
  // Padding lanes (j >= n up to the next multiple of 8) contribute -inf to
  // the max and +0.0f to the sum, exactly as the vector tail does.
  const int64_t padded = (n + 7) & ~int64_t{7};
  float lanes[8];
  for (int64_t l = 0; l < 8; ++l) lanes[l] = -HUGE_VALF;
  for (int64_t j = 0; j < padded; ++j) {
    const float v = j < n ? x[j] : -HUGE_VALF;
    lanes[j & 7] = MaxPs(lanes[j & 7], v);
  }
  const float m = FoldMax8(lanes);
  for (int64_t l = 0; l < 8; ++l) lanes[l] = 0.0f;
  for (int64_t j = 0; j < padded; ++j) {
    float e = 0.0f;
    if (j < n) {
      e = ExpRef(x[j] - m);
      y[j] = e;
    }
    lanes[j & 7] = lanes[j & 7] + e;
  }
  const float inv = 1.0f / FoldAdd8(lanes);
  for (int64_t j = 0; j < n; ++j) y[j] = y[j] * inv;
}

void SoftmaxGradRow(const float* g, const float* y, float* dx, int64_t n) {
  if (n <= 0) return;
#if ELDA_SIMD_AVX2
  if (Enabled()) {
    const int64_t full = n & ~int64_t{7};
    const int64_t tail = n - full;
    __m256 sv = _mm256_setzero_ps();
    for (int64_t j = 0; j < full; j += 8) {
      sv = _mm256_fmadd_ps(_mm256_loadu_ps(g + j), _mm256_loadu_ps(y + j),
                           sv);
    }
    if (tail > 0) {
      // Masked loads read +0 in inactive lanes; fma then adds an exact +0,
      // matching the scalar reference's padded-lane adds.
      const __m256i tmask = TailMask(tail);
      sv = _mm256_fmadd_ps(_mm256_maskload_ps(g + full, tmask),
                           _mm256_maskload_ps(y + full, tmask), sv);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, sv);
    const float dot = FoldAdd8(lanes);
    const __m256 db = _mm256_set1_ps(dot);
    for (int64_t j = 0; j < full; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(g + j), db);
      _mm256_storeu_ps(dx + j, _mm256_mul_ps(_mm256_loadu_ps(y + j), d));
    }
    for (int64_t j = full; j < n; ++j) dx[j] = y[j] * (g[j] - dot);
    return;
  }
#endif
  const int64_t padded = (n + 7) & ~int64_t{7};
  float lanes[8];
  for (int64_t l = 0; l < 8; ++l) lanes[l] = 0.0f;
  for (int64_t j = 0; j < padded; ++j) {
    const float gv = j < n ? g[j] : 0.0f;
    const float yv = j < n ? y[j] : 0.0f;
    lanes[j & 7] = std::fma(gv, yv, lanes[j & 7]);
  }
  const float dot = FoldAdd8(lanes);
  for (int64_t j = 0; j < n; ++j) dx[j] = y[j] * (g[j] - dot);
}

}  // namespace simd
}  // namespace elda
