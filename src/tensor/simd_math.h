// SIMD transcendental kernels and their scalar reference contract.
//
// This is the elementwise twin of the GEMM contract in tensor_ops.h: every
// transcendental the kernels evaluate (exp, sigmoid, tanh, row softmax) has
// one executable scalar definition — ExpRef / SigmoidRef / TanhRef /
// SoftmaxRow's scalar body — and the production AVX2 paths run *exactly the
// same IEEE-754 operation sequence* eight lanes at a time. Every individual
// step (add, sub, mul, div, fma, min/max select, blend, int<->float
// conversion) is correctly rounded and therefore lane-for-lane identical to
// its scalar counterpart, so the vector kernels are bitwise equal to the
// scalar reference for all inputs, not merely close. Disabling SIMD
// (ELDA_SIMD=off at runtime, -DELDA_SIMD=OFF at configure time, or a CPU
// without AVX2+FMA) changes performance only, never a single output bit —
// which is how the checkpoint/resume, streamed-vs-batch, and
// across-thread-count bitwise guarantees survive this layer.
//
// The references are deliberately *not* libm: they are polynomial kernels
// (Cephes-style exp, Eigen-style rational tanh) whose accuracy versus
// correctly-rounded double-precision libm is bounded and tested in
// tests/simd_test.cc (<= 4 ulp for exp/sigmoid, <= 8 ulp for tanh on
// normal inputs; tanh of a *denormal* input is only sign-correct and
// magnitude-bounded, since the rational's numerator underflows before the
// divide rescales it; see DESIGN.md "Elementwise execution" for the full
// policy). Special values:
// NaN propagates through exp/sigmoid/tanh; exp saturates to +inf above
// kExpHi and flushes to +0 below kExpLo (no denormal outputs); tanh
// saturates to the polynomial's value at +/-kTanhClamp.
//
// The scalar references are defined out-of-line in simd_math.cc, which is
// compiled with -ffp-contract=off: the contract depends on each fma being
// an *explicit* std::fma and each mul/add staying un-fused, and out-of-line
// definitions keep other translation units from recompiling them with
// different contraction settings.

#ifndef ELDA_TENSOR_SIMD_MATH_H_
#define ELDA_TENSOR_SIMD_MATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__) && !defined(ELDA_SIMD_DISABLED)
#define ELDA_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace elda {
namespace simd {

// -- Dispatch ---------------------------------------------------------------

// True when the binary was compiled with AVX2+FMA support and the running
// CPU reports both features.
bool Available();

// True when the AVX2 path is active: Available(), not disabled by the
// ELDA_SIMD environment variable ("off" / "0" / "scalar"), and not forced
// off via ForceScalar. Because scalar and vector paths are bitwise
// identical, this only ever selects a speed, never a value.
bool Enabled();

// Test hook: ForceScalar(true) pins every kernel to the scalar reference;
// ForceScalar(false) restores Available()-and-env dispatch.
void ForceScalar(bool force);

// "avx2" or "scalar"; for logs and bench metadata.
const char* ActivePath();

// -- Scalar building blocks -------------------------------------------------

// The exact semantics of vminps/vmaxps: return b on NaN or equality. These
// are the only compare-selects the kernels use, so NaN behaviour is pinned.
inline float MinPs(float a, float b) { return a < b ? a : b; }
inline float MaxPs(float a, float b) { return a > b ? a : b; }

inline float BitsToFloat(int32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// -- Kernel constants -------------------------------------------------------
//
// Shared by the scalar references (simd_math.cc) and the inline AVX2 bodies
// below; both sides must consume identical constants for the bitwise
// contract to hold.

// exp: Cephes-style expf. Range-reduce x = n*ln2 + r with the hi/lo split
// constant, evaluate a degree-5 polynomial on r, scale by 2^n through the
// exponent bits. kExpLo is chosen so the 2^n scale factor and the final
// product both stay normal (exp(-87) ~ 1.6e-38 > FLT_MIN).
inline constexpr float kExpHi = 88.3762626647949f;
inline constexpr float kExpLo = -87.0f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpRoundMagic = 12582912.0f;  // 1.5 * 2^23
inline constexpr float kExpNegC1 = -0.693359375f;     // -ln2_hi
inline constexpr float kExpNegC2 = 2.12194440e-4f;    // -ln2_lo
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;

// tanh: Eigen-style rational approximation x*P(x^2)/Q(x^2), inputs clamped
// to +/-kTanhClamp where the rational saturates to ~ +/-(1 - 2.7e-7).
inline constexpr float kTanhClamp = 7.90531110763549805f;
inline constexpr float kTanhAlpha1 = 4.89352455891786e-03f;
inline constexpr float kTanhAlpha3 = 6.37261928875436e-04f;
inline constexpr float kTanhAlpha5 = 1.48572235717979e-05f;
inline constexpr float kTanhAlpha7 = 5.12229709037114e-08f;
inline constexpr float kTanhAlpha9 = -8.60467152213735e-11f;
inline constexpr float kTanhAlpha11 = 2.00018790482477e-13f;
inline constexpr float kTanhAlpha13 = -2.76076847742355e-16f;
inline constexpr float kTanhBeta0 = 4.89352518554385e-03f;
inline constexpr float kTanhBeta2 = 2.26843463243900e-03f;
inline constexpr float kTanhBeta4 = 1.18534705686654e-04f;
inline constexpr float kTanhBeta6 = 1.19825839466702e-06f;

// -- Scalar reference contract ----------------------------------------------
//
// The executable definitions of the transcendental contract. All elementwise
// kernels, fused gate kernels, and fused autograd ops evaluate these (or
// their 8-lane mirrors). Defined in simd_math.cc (-ffp-contract=off).

float ExpRef(float x);      // Cephes expf; NaN in -> NaN out
float SigmoidRef(float x);  // exp(-|x|) sign-split form, branch-free select
float TanhRef(float x);     // Eigen rational form; NaN in -> NaN out

// -- Array kernels ----------------------------------------------------------
//
// Contiguous [n]-element kernels: vector body over full 8-lane chunks, the
// scalar reference over the remainder (bitwise identical either way).
// Callers partition work across threads *before* calling (any split is
// safe: the kernels are elementwise).

void ExpArray(const float* x, float* y, int64_t n);
void SigmoidArray(const float* x, float* y, int64_t n);
void TanhArray(const float* x, float* y, int64_t n);

// Fused chains: one pass over memory, no intermediate temporaries. Each
// computes per element exactly the float expression the composed kernels
// would, in the same order (see the autograd twins in autograd/ops.h).
void AddSigmoidArray(const float* a, const float* b, float* y, int64_t n);
void AddTanhArray(const float* a, const float* b, float* y, int64_t n);
// exp(-relu(x)), evaluated as ExpRef((x > 0 ? x : 0) * -1.0f) — the exact
// composed Relu -> MulScalar(-1) -> Exp sequence (GRU-D's decay factors).
void ExpNegReluArray(const float* x, float* y, int64_t n);

// Fused backward kernels. Parenthesization matches the composed backward
// graphs they replace, so switching to them is bitwise neutral given the
// same forward value y:
//   SigmoidGrad:    dx = g * (y * (1 - y))
//   TanhGrad:       dx = g * (1 - y*y)
//   ExpNegReluGrad: dx = (-(g * y)) * (x > 0 ? 1 : 0)
// ExpNegReluGrad carries one documented exception to bitwise identity: the
// sign bit of a *NaN* gradient. C leaves the sign of a negated NaN
// unspecified, and compilers exploit it (folding -(t) * c into t * -c,
// where a hardware multiply returns NaN operands sign-unchanged), so no
// portable scalar expression can pin it. Non-NaN elements — everything a
// finite training run produces — are bitwise identical across paths; NaN
// elements agree on payload and NaN-ness but may differ in sign bit.
void SigmoidGradArray(const float* g, const float* y, float* dx, int64_t n);
void TanhGradArray(const float* g, const float* y, float* dx, int64_t n);
void ExpNegReluGradArray(const float* g, const float* y, const float* x,
                         float* dx, int64_t n);

// -- Row softmax (last axis) ------------------------------------------------
//
// Softmax over one contiguous row of n elements, with an 8-lane-blocked
// reduction contract: the row is conceptually padded to a multiple of 8
// (padding contributes -inf to the max pass and +0.0f to the sum passes),
// element j accumulates into lane j mod 8, and the 8 lane partials are
// folded with the fixed tree ((l0?l1)?(l2?l3)) ? ((l4?l5)?(l6?l7)). The
// scalar reference implements exactly this lane structure, so the AVX2 path
// (whose register lanes *are* the contract's lanes) matches it bitwise.
// In-place operation (y == x) is allowed.
void SoftmaxRow(const float* x, float* y, int64_t n);

// Fused softmax backward for one row: dx = y * (g - dot(g, y)), with the
// dot product accumulated under the same 8-lane contract (lane-blocked
// fma, fixed fold tree).
void SoftmaxGradRow(const float* g, const float* y, float* dx, int64_t n);

// -- Inline AVX2 bodies -----------------------------------------------------
//
// The 8-lane mirrors of ExpRef/SigmoidRef/TanhRef, usable from any TU that
// wants to embed them in a wider fused loop (the recurrent gate kernels in
// tensor_ops.cc do). All-intrinsic bodies: immune to -ffp-contract.

#if ELDA_SIMD_AVX2

inline __m256 Exp8(__m256 x) {
  const __m256 hi = _mm256_set1_ps(kExpHi);
  const __m256 lo = _mm256_set1_ps(kExpLo);
  const __m256 one = _mm256_set1_ps(1.0f);
  __m256 xc = _mm256_min_ps(x, hi);
  xc = _mm256_max_ps(xc, lo);
  // n = round-to-nearest(xc * log2e) via the shift-magic constant; exact
  // because |xc * log2e| < 2^22.
  const __m256 magic = _mm256_set1_ps(kExpRoundMagic);
  __m256 nf = _mm256_fmadd_ps(xc, _mm256_set1_ps(kLog2e), magic);
  nf = _mm256_sub_ps(nf, magic);
  // r = xc - n*ln2, in two fma steps against the hi/lo split.
  __m256 r = _mm256_fmadd_ps(nf, _mm256_set1_ps(kExpNegC1), xc);
  r = _mm256_fmadd_ps(nf, _mm256_set1_ps(kExpNegC2), r);
  // Degree-5 Horner polynomial for e^r on |r| <= ln2/2 + epsilon.
  __m256 p = _mm256_set1_ps(kExpP0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
  const __m256 r2 = _mm256_mul_ps(r, r);
  p = _mm256_fmadd_ps(p, r2, r);
  p = _mm256_add_ps(p, one);
  // Scale by 2^n through the exponent field; n is within [-126, 127] by the
  // clamp, so (n + 127) << 23 is a valid finite float.
  const __m256i n = _mm256_cvtps_epi32(nf);
  const __m256i ebits =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  __m256 y = _mm256_mul_ps(p, _mm256_castsi256_ps(ebits));
  // Saturation and NaN selects, in the same order as ExpRef.
  y = _mm256_blendv_ps(y, _mm256_set1_ps(HUGE_VALF),
                       _mm256_cmp_ps(x, hi, _CMP_GT_OQ));
  y = _mm256_blendv_ps(y, _mm256_setzero_ps(),
                       _mm256_cmp_ps(x, lo, _CMP_LT_OQ));
  y = _mm256_blendv_ps(y, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return y;
}

inline __m256 Sigmoid8(__m256 x) {
  // Sign-split sigmoid on exp(-|x|), as SigmoidRef: z = exp(-|x|);
  // x >= 0 ? 1/(1+z) : z/(1+z). NaN falls through the GE compare into the
  // z branch and propagates.
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 nabs = _mm256_or_ps(x, _mm256_set1_ps(-0.0f));  // -|x|
  const __m256 z = Exp8(nabs);
  const __m256 num = _mm256_blendv_ps(
      z, one, _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GE_OQ));
  return _mm256_div_ps(num, _mm256_add_ps(one, z));
}

inline __m256 Tanh8(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(kTanhClamp);
  __m256 xc = _mm256_min_ps(x, clamp);
  xc = _mm256_max_ps(xc, _mm256_set1_ps(-kTanhClamp));
  const __m256 x2 = _mm256_mul_ps(xc, xc);
  __m256 p = _mm256_set1_ps(kTanhAlpha13);
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha11));
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha9));
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha7));
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha5));
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha3));
  p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(kTanhAlpha1));
  p = _mm256_mul_ps(xc, p);
  __m256 q = _mm256_set1_ps(kTanhBeta6);
  q = _mm256_fmadd_ps(x2, q, _mm256_set1_ps(kTanhBeta4));
  q = _mm256_fmadd_ps(x2, q, _mm256_set1_ps(kTanhBeta2));
  q = _mm256_fmadd_ps(x2, q, _mm256_set1_ps(kTanhBeta0));
  __m256 y = _mm256_div_ps(p, q);
  y = _mm256_blendv_ps(y, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return y;
}

#endif  // ELDA_SIMD_AVX2

}  // namespace simd
}  // namespace elda

#endif  // ELDA_TENSOR_SIMD_MATH_H_
