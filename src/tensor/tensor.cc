#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "mem/pool.h"

namespace elda {

int64_t ShapeVolume(const std::vector<int64_t>& shape) {
  int64_t volume = 1;
  for (int64_t d : shape) {
    ELDA_CHECK_GE(d, 0);
    volume *= d;
  }
  return volume;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      size_(ShapeVolume(shape_)),
      data_(mem::AcquireShared(size_)) {
  std::memset(data_.get(), 0, static_cast<size_t>(size_) * sizeof(float));
}

Tensor Tensor::Empty(std::vector<int64_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = ShapeVolume(t.shape_);
  t.data_ = mem::AcquireShared(t.size_);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t = Empty(std::vector<int64_t>{});
  t[0] = value;
  return t;
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data) {
  const int64_t volume = ShapeVolume(shape);
  ELDA_CHECK_EQ(volume, static_cast<int64_t>(data.size()))
      << "shape" << ShapeToString(shape);
  Tensor t = Empty(std::move(shape));
  std::memcpy(t.data(), data.data(),
              static_cast<size_t>(volume) * sizeof(float));
  return t;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, float lo, float hi,
                       Rng* rng) {
  Tensor t = Empty(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(std::vector<int64_t> shape, float mean, float stddev,
                      Rng* rng) {
  Tensor t = Empty(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

int64_t Tensor::shape(int64_t axis) const {
  if (axis < 0) axis += dim();
  ELDA_CHECK_GE(axis, 0);
  ELDA_CHECK_LT(axis, dim());
  return shape_[axis];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  ELDA_CHECK(defined());
  int64_t inferred_axis = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      ELDA_CHECK_EQ(inferred_axis, -1) << "multiple -1 dims in reshape";
      inferred_axis = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    ELDA_CHECK_GT(known, 0);
    ELDA_CHECK_EQ(size_ % known, 0)
        << "cannot infer reshape dim from" << ShapeToString(shape_);
    new_shape[inferred_axis] = size_ / known;
  }
  ELDA_CHECK_EQ(ShapeVolume(new_shape), size_)
      << ShapeToString(shape_) << "->" << ShapeToString(new_shape);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.size_ = size_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::ViewRows(int64_t start, int64_t len) const {
  ELDA_CHECK(defined());
  ELDA_CHECK_GE(dim(), 1);
  ELDA_CHECK(start >= 0 && len >= 0 && start + len <= shape_[0])
      << "rows [" << start << "," << start + len << ") of"
      << ShapeToString(shape_);
  const int64_t row = size_ / std::max<int64_t>(shape_[0], 1);
  Tensor t;
  t.shape_ = shape_;
  t.shape_[0] = len;
  t.size_ = len * row;
  // Aliasing handle: shares the control block (keeps the pooled buffer
  // alive) but points at the first viewed row.
  t.data_ = std::shared_ptr<float[]>(data_, data_.get() + start * row);
  return t;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_.get()[FlatIndex(idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_.get()[FlatIndex(idx)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  ELDA_CHECK_EQ(static_cast<int64_t>(idx.size()), dim());
  int64_t flat = 0;
  int64_t axis = 0;
  for (int64_t i : idx) {
    ELDA_DCHECK(i >= 0 && i < shape_[axis]);
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  Tensor t = Empty(shape_);
  std::memcpy(t.data(), data(), static_cast<size_t>(size_) * sizeof(float));
  return t;
}

void Tensor::Fill(float value) {
  ELDA_CHECK(defined());
  std::fill(data_.get(), data_.get() + size_, value);
}

std::vector<int64_t> Tensor::Strides() const {
  std::vector<int64_t> strides(shape_.size(), 1);
  for (int64_t i = dim() - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape_[i + 1];
  }
  return strides;
}

std::string Tensor::DebugString(int64_t max_values) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  if (defined()) {
    for (int64_t i = 0; i < std::min(size_, max_values); ++i) {
      if (i) out << ", ";
      out << data_.get()[i];
    }
    if (size_ > max_values) out << ", ...";
  }
  out << "}";
  return out.str();
}

}  // namespace elda
