// Dense float32 tensor with shared storage.
//
// Tensor is the numeric workhorse of this repository. Design points:
//   - Row-major, contiguous, float32 only (matching the paper's models).
//   - Value semantics with *shallow* copies: copying a Tensor copies the
//     shape and a shared handle to the storage, like torch.Tensor. Use
//     Clone() for a deep copy. This makes it cheap for autograd nodes to
//     retain their inputs on the tape.
//   - Storage comes from the elda::mem buffer pool (see DESIGN.md "Memory
//     model"): the last handle to go away returns the buffer to the pool,
//     and `Empty` hands out pooled memory *uninitialized* — only kernels
//     that overwrite every output element may use it. `Zeros` (and the
//     shape constructor, kept for compatibility) zero-fill on top.
//   - Shapes are dynamic (vector<int64_t>), rank 0 (scalar) through rank N.
//   - Element access by multi-index is provided for tests and data prep;
//     numeric kernels live in tensor_ops.h and operate on raw pointers.

#ifndef ELDA_TENSOR_TENSOR_H_
#define ELDA_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace elda {

class Tensor {
 public:
  // An empty (null) tensor; size() == 0 and dim() == 0.
  Tensor() = default;

  // Zero-filled tensor of the given shape. A rank-0 shape ({}) is a scalar
  // holding one element.
  explicit Tensor(std::vector<int64_t> shape);

  // Copy/move are shallow (storage is shared).
  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // -- Factories ------------------------------------------------------------

  // Uninitialized tensor of the given shape (pooled memory, whatever bits
  // the previous owner left behind). Callers must overwrite every element
  // before reading any; kernels that accumulate into their output (`+=`)
  // must use Zeros instead.
  static Tensor Empty(std::vector<int64_t> shape);
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor Scalar(float value);
  // Takes ownership of `data`; data.size() must match the shape's volume.
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data);
  static Tensor Uniform(std::vector<int64_t> shape, float lo, float hi,
                        Rng* rng);
  static Tensor Normal(std::vector<int64_t> shape, float mean, float stddev,
                       Rng* rng);

  // -- Shape ---------------------------------------------------------------

  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t shape(int64_t axis) const;
  int64_t size() const { return size_; }
  bool defined() const { return data_ != nullptr; }

  // Returns a tensor sharing this storage with a new shape of equal volume.
  // One dimension may be -1 and is inferred.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Zero-copy view of rows [start, start + len) along axis 0. The view
  // shares (aliases) this tensor's storage — no allocation, no copy; the
  // underlying pooled buffer stays alive for as long as any view does.
  // Because storage is row-major and contiguous, an axis-0 range is itself
  // contiguous, so the view is an ordinary Tensor; writes through it alias
  // the parent. This is what makes per-timestep reads in the time-major
  // recurrence engine allocation-free (see DESIGN.md "Recurrence
  // execution").
  Tensor ViewRows(int64_t start, int64_t len) const;

  // -- Data ----------------------------------------------------------------

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  // Flat element access.
  float& operator[](int64_t i) { return data_.get()[i]; }
  float operator[](int64_t i) const { return data_.get()[i]; }

  // Multi-index access (rank checked). Convenient in tests and data prep.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // Deep copy.
  Tensor Clone() const;

  // Fills every element with `value`.
  void Fill(float value);

  // Row-major strides for this shape.
  std::vector<int64_t> Strides() const;

  // Human-readable summary (shape plus leading values), for debugging.
  std::string DebugString(int64_t max_values = 16) const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  std::vector<int64_t> shape_;
  int64_t size_ = 0;
  // Pooled storage handle: the deleter returns the buffer to mem::Pool on
  // last release (see mem/pool.h).
  std::shared_ptr<float[]> data_;
};

// Volume of a shape (product of dimensions; 1 for rank 0).
int64_t ShapeVolume(const std::vector<int64_t>& shape);

// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace elda

#endif  // ELDA_TENSOR_TENSOR_H_
