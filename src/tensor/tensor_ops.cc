#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "par/par.h"

namespace elda {
namespace {

// Threading note: every parallel loop in this file partitions disjoint
// *output* elements across chunks and computes each element with exactly the
// serial instruction sequence, so results are bitwise identical for any
// thread count (see DESIGN.md "Threading model"). Whole-tensor float sums
// (SumAll/MeanAll) stay serial because chunked accumulation would reorder
// the additions.

// Applies a binary functor with NumPy broadcasting. The fast paths cover the
// two layouts that dominate this codebase: identical shapes, and a
// right-hand side whose shape is a suffix of the left-hand side's (e.g.
// [B, T, C] op [C] for per-feature biases).
template <typename F>
Tensor BinaryBroadcast(const Tensor& a, const Tensor& b, F f) {
  ELDA_CHECK(a.defined() && b.defined());
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    par::ParallelFor(0, a.size(), par::kElementGrain,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
                     });
    return out;
  }
  // Suffix fast path: b's shape equals the trailing dims of a's shape.
  if (b.dim() <= a.dim()) {
    bool suffix = true;
    for (int64_t i = 0; i < b.dim(); ++i) {
      if (b.shape(b.dim() - 1 - i) != a.shape(a.dim() - 1 - i)) {
        suffix = false;
        break;
      }
    }
    if (suffix && b.size() > 0) {
      Tensor out(a.shape());
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      const int64_t inner = b.size();
      const int64_t outer = a.size() / inner;
      const int64_t grain =
          std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
      par::ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
          const float* row = pa + o * inner;
          float* orow = po + o * inner;
          for (int64_t i = 0; i < inner; ++i) orow[i] = f(row[i], pb[i]);
        }
      });
      return out;
    }
  }
  // General broadcast: align shapes right, stride 0 on broadcast dims. The
  // innermost dimension is peeled into a tight loop (strides there are 0 or
  // 1), so the odometer only ticks once per inner run.
  const std::vector<int64_t> out_shape = BroadcastShapes(a.shape(), b.shape());
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> sa(rank, 0), sb(rank, 0);
  {
    const auto stra = a.Strides();
    const auto strb = b.Strides();
    for (int64_t i = 0; i < a.dim(); ++i) {
      const int64_t o = rank - a.dim() + i;
      sa[o] = a.shape(i) == 1 ? 0 : stra[i];
    }
    for (int64_t i = 0; i < b.dim(); ++i) {
      const int64_t o = rank - b.dim() + i;
      sb[o] = b.shape(i) == 1 ? 0 : strb[i];
    }
  }
  Tensor out(out_shape);
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t inner = out_shape[rank - 1];
  const int64_t inner_sa = sa[rank - 1];
  const int64_t inner_sb = sb[rank - 1];
  const int64_t outer = out.size() / std::max<int64_t>(inner, 1);
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
  par::ParallelFor(0, outer, grain, [&](int64_t r0, int64_t r1) {
    // Seed the odometer at run r0 (mixed-radix decomposition over the outer
    // dims, dim rank-2 fastest), then tick it across the chunk.
    std::vector<int64_t> idx(rank, 0);
    int64_t off_a = 0, off_b = 0;
    int64_t rem = r0;
    for (int64_t d = rank - 2; d >= 0; --d) {
      idx[d] = rem % out_shape[d];
      rem /= out_shape[d];
      off_a += idx[d] * sa[d];
      off_b += idx[d] * sb[d];
    }
    int64_t flat = r0 * inner;
    for (int64_t run = r0; run < r1; ++run) {
      const float* ra = pa + off_a;
      const float* rb = pb + off_b;
      float* ro = po + flat;
      if (inner_sa == 1 && inner_sb == 1) {
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(ra[i], rb[i]);
      } else if (inner_sa == 1 && inner_sb == 0) {
        const float bv = *rb;
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(ra[i], bv);
      } else if (inner_sa == 0 && inner_sb == 1) {
        const float av = *ra;
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(av, rb[i]);
      } else {
        const float v = f(*ra, *rb);
        for (int64_t i = 0; i < inner; ++i) ro[i] = v;
      }
      flat += inner;
      // Odometer over the remaining (outer) dimensions.
      for (int64_t d = rank - 2; d >= 0; --d) {
        off_a += sa[d];
        off_b += sb[d];
        if (++idx[d] < out_shape[d]) break;
        idx[d] = 0;
        off_a -= sa[d] * out_shape[d];
        off_b -= sb[d] * out_shape[d];
      }
    }
  });
  return out;
}

template <typename F>
Tensor UnaryOp(const Tensor& a, F f) {
  ELDA_CHECK(a.defined());
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ParallelFor(0, a.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
                   });
  return out;
}

// Decomposes a shape around `axis` into [outer, n, inner].
void AxisDecompose(const std::vector<int64_t>& shape, int64_t axis,
                   int64_t* outer, int64_t* n, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *n = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int64_t NormalizeAxis(int64_t axis, int64_t rank) {
  if (axis < 0) axis += rank;
  ELDA_CHECK(axis >= 0 && axis < rank) << "axis" << axis << "rank" << rank;
  return axis;
}

// C[M,N] += A[M,K] * B[K,N] restricted to output rows [i0, i1), with
// optional logical transposes (full leading dimensions m/k/n are kept so a
// row range addresses the same storage as the whole product). The non-
// transposed path uses the i-k-j ordering so the inner loop is a contiguous
// AXPY; __restrict__ lets the compiler vectorise it. Restricting the row
// range never changes the per-element accumulation order, so partitioning
// rows across threads is bitwise identical to one serial call.
void GemmRows(const float* __restrict__ a, const float* __restrict__ b,
              float* __restrict__ c, int64_t m, int64_t k, int64_t n,
              bool trans_a, bool trans_b, int64_t i0, int64_t i1) {
  if (!trans_a && !trans_b) {
    for (int64_t i = i0; i < i1; ++i) {
      float* __restrict__ crow = c + i * n;
      const float* arow = a + i * k;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict__ brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (trans_a && !trans_b) {
    // A is stored [K, M].
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* __restrict__ brow = b + p * n;
      for (int64_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* __restrict__ crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // B is stored [N, K]; each output is a dot product of contiguous rows.
    for (int64_t i = i0; i < i1; ++i) {
      const float* __restrict__ arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* __restrict__ brow = b + j * k;
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
          s0 += arow[p] * brow[p];
          s1 += arow[p + 1] * brow[p + 1];
          s2 += arow[p + 2] * brow[p + 2];
          s3 += arow[p + 3] * brow[p + 3];
        }
        float s = (s0 + s1) + (s2 + s3);
        for (; p < k; ++p) s += arow[p] * brow[p];
        crow[j] += s;
      }
    }
  } else {
    // Both transposed: A stored [K, M], B stored [N, K].
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s += a[p * m + i] * brow[p];
        crow[j] += s;
      }
    }
  }
}

// Minimum flops worth one parallel chunk; below this, dispatch overhead
// dominates and the work stays on fewer threads.
constexpr int64_t kMatMulGrainFlops = 1 << 15;

}  // namespace

std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b) {
  const int64_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank, 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < static_cast<int64_t>(rank - a.size()) ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < static_cast<int64_t>(rank - b.size()) ? 1 : b[i - (rank - b.size())];
    ELDA_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast" << ShapeToString(a) << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const std::vector<int64_t>& shape) {
  if (t.shape() == shape) return t;
  const int64_t rank = t.dim();
  const int64_t target_rank = static_cast<int64_t>(shape.size());
  ELDA_CHECK_LE(target_rank, rank);
  Tensor cur = t;
  // Sum away leading extra dims.
  for (int64_t i = 0; i < rank - target_rank; ++i) cur = Sum(cur, 0, false);
  // Sum (keepdims) over dims where the target is 1 but current is larger.
  for (int64_t i = 0; i < target_rank; ++i) {
    if (shape[i] == 1 && cur.shape(i) != 1) cur = Sum(cur, i, true);
  }
  ELDA_CHECK(cur.shape() == shape)
      << ShapeToString(t.shape()) << "->" << ShapeToString(shape);
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x * x; });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) {
    // Split by sign for numerical stability at large |x|.
    if (x >= 0.0f) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Clip(const Tensor& a, float lo, float hi) {
  return UnaryOp(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(a, [p](float x) { return std::pow(x, p); });
}
Tensor GreaterThanScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x > s ? 1.0f : 0.0f; });
}
Tensor EqualScalar(const Tensor& a, float s, float tolerance) {
  return UnaryOp(a, [s, tolerance](float x) {
    return std::fabs(x - s) <= tolerance ? 1.0f : 0.0f;
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  ELDA_CHECK(a.dim() >= 2 && b.dim() >= 2)
      << ShapeToString(a.shape()) << ShapeToString(b.shape());
  const int64_t am = a.shape(trans_a ? -1 : -2);
  const int64_t ak = a.shape(trans_a ? -2 : -1);
  const int64_t bk = b.shape(trans_b ? -1 : -2);
  const int64_t bn = b.shape(trans_b ? -2 : -1);
  ELDA_CHECK_EQ(ak, bk) << "matmul inner dims" << ShapeToString(a.shape())
                        << ShapeToString(b.shape());
  const int64_t a_mat = a.shape(-1) * a.shape(-2);
  const int64_t b_mat = b.shape(-1) * b.shape(-2);
  const int64_t a_batch = a.size() / a_mat;
  const int64_t b_batch = b.size() / b_mat;
  ELDA_CHECK(a_batch == b_batch || b_batch == 1 || a_batch == 1)
      << "matmul batch dims" << ShapeToString(a.shape())
      << ShapeToString(b.shape());
  const int64_t batch = std::max(a_batch, b_batch);

  std::vector<int64_t> out_shape;
  if (a_batch >= b_batch) {
    out_shape.assign(a.shape().begin(), a.shape().end() - 2);
  } else {
    out_shape.assign(b.shape().begin(), b.shape().end() - 2);
  }
  out_shape.push_back(am);
  out_shape.push_back(bn);
  Tensor out(out_shape);
  const float* base_a = a.data();
  const float* base_b = b.data();
  float* base_o = out.data();
  const int64_t flops_per_item = am * ak * bn;
  if (batch > 1) {
    const int64_t grain = std::max<int64_t>(
        1, kMatMulGrainFlops / std::max<int64_t>(1, flops_per_item));
    par::ParallelFor(0, batch, grain, [&](int64_t b0, int64_t b1) {
      for (int64_t i = b0; i < b1; ++i) {
        const float* pa = base_a + (a_batch == 1 ? 0 : i * a_mat);
        const float* pb = base_b + (b_batch == 1 ? 0 : i * b_mat);
        GemmRows(pa, pb, base_o + i * am * bn, am, ak, bn, trans_a, trans_b,
                 0, am);
      }
    });
  } else {
    const int64_t row_grain = std::max<int64_t>(
        1, kMatMulGrainFlops / std::max<int64_t>(1, ak * bn));
    par::ParallelFor(0, am, row_grain, [&](int64_t i0, int64_t i1) {
      GemmRows(base_a, base_b, base_o, am, ak, bn, trans_a, trans_b, i0, i1);
    });
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  ELDA_CHECK_EQ(a.dim(), 2);
  return TransposeLast2(a);
}

Tensor TransposeLast2(const Tensor& a) {
  ELDA_CHECK_GE(a.dim(), 2);
  const int64_t rows = a.shape(-2);
  const int64_t cols = a.shape(-1);
  const int64_t mat = rows * cols;
  const int64_t batch = a.size() / mat;
  std::vector<int64_t> out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, cols));
  // Lane space: (batch, row) pairs; each lane writes one output column.
  par::ParallelFor(0, batch * rows, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t bb = l / rows;
      const int64_t i = l % rows;
      const float* src = pa + bb * mat + i * cols;
      float* dst = po + bb * mat;
      for (int64_t j = 0; j < cols; ++j) dst[j * rows + i] = src[j];
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  ELDA_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  axis = NormalizeAxis(axis, rank);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& p : parts) {
    ELDA_CHECK_EQ(p.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) ELDA_CHECK_EQ(p.shape(d), out_shape[d]);
    }
    total_axis += p.shape(axis);
  }
  out_shape[axis] = total_axis;
  Tensor out(out_shape);
  int64_t outer, n_unused, inner;
  AxisDecompose(out_shape, axis, &outer, &n_unused, &inner);
  int64_t dst_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t chunk = p.shape(axis) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(out.data() + o * total_axis * inner + dst_offset,
                  p.data() + o * chunk, chunk * sizeof(float));
    }
    dst_offset += chunk;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  axis = NormalizeAxis(axis, a.dim());
  ELDA_CHECK(start >= 0 && len >= 0 && start + len <= a.shape(axis))
      << "slice [" << start << "," << start + len << ") of axis" << axis
      << "in" << ShapeToString(a.shape());
  std::vector<int64_t> out_shape = a.shape();
  out_shape[axis] = len;
  Tensor out(out_shape);
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(out.data() + o * len * inner,
                a.data() + (o * n + start) * inner, len * inner * sizeof(float));
  }
  return out;
}

float SumAll(const Tensor& a) {
  // Deliberately serial: a chunked parallel sum would reorder the float
  // additions and break bitwise reproducibility across thread counts.
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) s += p[i];
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  ELDA_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAll(const Tensor& a) {
  ELDA_CHECK_GT(a.size(), 0);
  const float* p = a.data();
  // Max is an exact, order-independent combine, so the partitioned reduce
  // is bitwise identical to the serial loop for every thread count.
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, p[0],
      [p](int64_t lo, int64_t hi) {
        float m = p[lo];
        for (int64_t i = lo + 1; i < hi; ++i) m = std::max(m, p[i]);
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  std::vector<int64_t> out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  // Lane space: output elements (o, i). Each lane accumulates over the
  // reduced axis in k-order exactly as the serial loop did, so any disjoint
  // lane partition is bitwise identical. Chunks are blocked per o-row to
  // keep the inner loop contiguous.
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    while (l0 < l1) {
      const int64_t o = l0 / inner;
      const int64_t i0 = l0 % inner;
      const int64_t i1 = std::min(inner, i0 + (l1 - l0));
      float* orow = po + o * inner;
      for (int64_t k = 0; k < n; ++k) {
        const float* row = pa + (o * n + k) * inner;
        for (int64_t i = i0; i < i1; ++i) orow[i] += row[i];
      }
      l0 += i1 - i0;
    }
  });
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.dim());
  const float inv = 1.0f / static_cast<float>(a.shape(axis));
  return MulScalar(Sum(a, axis, keepdims), inv);
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  ELDA_CHECK_GT(n, 0);
  std::vector<int64_t> out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    while (l0 < l1) {
      const int64_t o = l0 / inner;
      const int64_t i0 = l0 % inner;
      const int64_t i1 = std::min(inner, i0 + (l1 - l0));
      float* orow = po + o * inner;
      std::memcpy(orow + i0, pa + o * n * inner + i0,
                  (i1 - i0) * sizeof(float));
      for (int64_t k = 1; k < n; ++k) {
        const float* row = pa + (o * n + k) * inner;
        for (int64_t i = i0; i < i1; ++i) orow[i] = std::max(orow[i], row[i]);
      }
      l0 += i1 - i0;
    }
  });
  return out;
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  // Lane space: softmax fibers (o, i), in the same o-major order the serial
  // loop used; each lane's arithmetic is untouched.
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t o = l / inner;
      const int64_t i = l % inner;
      const int64_t base = o * n * inner + i;
      float m = pa[base];
      for (int64_t k = 1; k < n; ++k) m = std::max(m, pa[base + k * inner]);
      float z = 0.0f;
      for (int64_t k = 0; k < n; ++k) {
        const float e = std::exp(pa[base + k * inner] - m);
        po[base + k * inner] = e;
        z += e;
      }
      const float inv = 1.0f / z;
      for (int64_t k = 0; k < n; ++k) po[base + k * inner] *= inv;
    }
  });
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, true,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float diff = std::fabs(pa[i] - pb[i]);
          if (diff > atol + rtol * std::fabs(pb[i])) return false;
          if (std::isnan(pa[i]) || std::isnan(pb[i])) return false;
        }
        return true;
      },
      [](bool x, bool y) { return x && y; });
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  ELDA_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, 0.0f,
      [&](int64_t lo, int64_t hi) {
        float m = 0.0f;
        for (int64_t i = lo; i < hi; ++i) {
          m = std::max(m, std::fabs(pa[i] - pb[i]));
        }
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

}  // namespace elda
