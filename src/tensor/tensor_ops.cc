#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX512F__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "mem/pool.h"
#include "mem/prof.h"
#include "par/par.h"
#include "tensor/simd_math.h"

namespace elda {
namespace {

// Threading note: every parallel loop in this file partitions disjoint
// *output* elements across chunks and computes each element with exactly the
// serial instruction sequence, so results are bitwise identical for any
// thread count (see DESIGN.md "Threading model"). Whole-tensor float sums
// (SumAll/MeanAll) stay serial because chunked accumulation would reorder
// the additions.
//
// Allocation note: kernels here allocate their outputs with Tensor::Empty
// (uninitialized pooled memory) because they overwrite every output element.
// The one exception is the simple GEMM path, which accumulates with `+=`
// and therefore zero-fills first (see DESIGN.md "Memory model").

// Applies a binary functor with NumPy broadcasting. The fast paths cover the
// two layouts that dominate this codebase: identical shapes, and a
// right-hand side whose shape is a suffix of the left-hand side's (e.g.
// [B, T, C] op [C] for per-feature biases).
template <typename F>
Tensor BinaryBroadcast(const char* prof_name, const Tensor& a, const Tensor& b,
                       F f) {
  ELDA_PROF_SCOPE(prof_name);
  ELDA_CHECK(a.defined() && b.defined());
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    par::ParallelFor(0, a.size(), par::kElementGrain,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
                     });
    return out;
  }
  // Suffix fast path: b's shape equals the trailing dims of a's shape.
  if (b.dim() <= a.dim()) {
    bool suffix = true;
    for (int64_t i = 0; i < b.dim(); ++i) {
      if (b.shape(b.dim() - 1 - i) != a.shape(a.dim() - 1 - i)) {
        suffix = false;
        break;
      }
    }
    if (suffix && b.size() > 0) {
      Tensor out = Tensor::Empty(a.shape());
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      const int64_t inner = b.size();
      const int64_t outer = a.size() / inner;
      const int64_t grain =
          std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
      par::ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
          const float* row = pa + o * inner;
          float* orow = po + o * inner;
          for (int64_t i = 0; i < inner; ++i) orow[i] = f(row[i], pb[i]);
        }
      });
      return out;
    }
  }
  // General broadcast: align shapes right, stride 0 on broadcast dims. The
  // innermost dimension is peeled into a tight loop (strides there are 0 or
  // 1), so the odometer only ticks once per inner run.
  const std::vector<int64_t> out_shape = BroadcastShapes(a.shape(), b.shape());
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> sa(rank, 0), sb(rank, 0);
  {
    const auto stra = a.Strides();
    const auto strb = b.Strides();
    for (int64_t i = 0; i < a.dim(); ++i) {
      const int64_t o = rank - a.dim() + i;
      sa[o] = a.shape(i) == 1 ? 0 : stra[i];
    }
    for (int64_t i = 0; i < b.dim(); ++i) {
      const int64_t o = rank - b.dim() + i;
      sb[o] = b.shape(i) == 1 ? 0 : strb[i];
    }
  }
  Tensor out = Tensor::Empty(out_shape);
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t inner = out_shape[rank - 1];
  const int64_t inner_sa = sa[rank - 1];
  const int64_t inner_sb = sb[rank - 1];
  const int64_t outer = out.size() / std::max<int64_t>(inner, 1);
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
  par::ParallelFor(0, outer, grain, [&](int64_t r0, int64_t r1) {
    // Seed the odometer at run r0 (mixed-radix decomposition over the outer
    // dims, dim rank-2 fastest), then tick it across the chunk.
    std::vector<int64_t> idx(rank, 0);
    int64_t off_a = 0, off_b = 0;
    int64_t rem = r0;
    for (int64_t d = rank - 2; d >= 0; --d) {
      idx[d] = rem % out_shape[d];
      rem /= out_shape[d];
      off_a += idx[d] * sa[d];
      off_b += idx[d] * sb[d];
    }
    int64_t flat = r0 * inner;
    for (int64_t run = r0; run < r1; ++run) {
      const float* ra = pa + off_a;
      const float* rb = pb + off_b;
      float* ro = po + flat;
      if (inner_sa == 1 && inner_sb == 1) {
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(ra[i], rb[i]);
      } else if (inner_sa == 1 && inner_sb == 0) {
        const float bv = *rb;
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(ra[i], bv);
      } else if (inner_sa == 0 && inner_sb == 1) {
        const float av = *ra;
        for (int64_t i = 0; i < inner; ++i) ro[i] = f(av, rb[i]);
      } else {
        const float v = f(*ra, *rb);
        for (int64_t i = 0; i < inner; ++i) ro[i] = v;
      }
      flat += inner;
      // Odometer over the remaining (outer) dimensions.
      for (int64_t d = rank - 2; d >= 0; --d) {
        off_a += sa[d];
        off_b += sb[d];
        if (++idx[d] < out_shape[d]) break;
        idx[d] = 0;
        off_a -= sa[d] * out_shape[d];
        off_b -= sb[d] * out_shape[d];
      }
    }
  });
  return out;
}

// Scalar activation bodies shared by the elementwise kernels and the fused
// recurrent gate kernels, so both paths run literally the same float
// expressions (the fused kernels' bitwise-identity contract relies on it).
// Since the SIMD transcendental layer these delegate to the scalar
// reference contract in simd_math.h, whose 8-lane AVX2 mirrors the
// vectorized gate loops below embed — one contract, every path.
inline float SigmoidScalar(float x) { return simd::SigmoidRef(x); }

inline float TanhScalar(float x) { return simd::TanhRef(x); }

template <typename F>
Tensor UnaryOp(const char* prof_name, const Tensor& a, F f) {
  ELDA_PROF_SCOPE(prof_name);
  ELDA_CHECK(a.defined());
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ParallelFor(0, a.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
                   });
  return out;
}

// Decomposes a shape around `axis` into [outer, n, inner].
void AxisDecompose(const std::vector<int64_t>& shape, int64_t axis,
                   int64_t* outer, int64_t* n, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *n = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) *inner *= shape[i];
}

int64_t NormalizeAxis(int64_t axis, int64_t rank) {
  if (axis < 0) axis += rank;
  ELDA_CHECK(axis >= 0 && axis < rank) << "axis" << axis << "rank" << rank;
  return axis;
}

// ---------------------------------------------------------------------------
// GEMM.
//
// Determinism contract (DESIGN.md "Memory model"): every output element is
// computed as
//     acc = +0;  for p = 0..K-1 ascending:  acc = fma(A[i,p], B[p,j], acc)
// — one fused multiply-add per k step, strictly in k order. Both production
// kernels (the simple loops for small products and the packed cache-blocked
// kernel for large ones) implement exactly this per-element sequence, as
// does GemmReference. Packing, register tiling, and thread partitioning
// only change *which elements* are computed when, never the arithmetic
// inside one element, so results are bitwise identical across kernels,
// tile shapes, and thread counts. fma is exactly rounded, so scalar
// std::fma and vector FMA lanes agree bit-for-bit.
//
// Operand storage conventions match the logical transposes: A is stored
// [M,K] ([K,M] when trans_a), B is stored [K,N] ([N,K] when trans_b), C is
// always [M,N] row-major.

// Register microtile: kMR output rows by kNR output columns.
#if defined(__AVX512F__) && defined(__FMA__)
constexpr int64_t kMR = 8;
constexpr int64_t kNR = 32;  // two zmm vectors
#else
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 16;
#endif

// Floats needed to hold all packed B panels for a [K,N] product.
int64_t PackedBFloats(int64_t k, int64_t n) {
  return ((n + kNR - 1) / kNR) * kNR * std::max<int64_t>(k, 1);
}

// Packs the column panel [j0, j0+kNR) of logical B[K,N] into bp[k][kNR],
// zero-padding past column n (padded lanes are computed by the microkernel
// but never stored).
void PackBPanel(const float* __restrict__ b, float* __restrict__ bp,
                int64_t k, int64_t n, int64_t j0, bool trans_b) {
  const int64_t nr = std::min(kNR, n - j0);
  if (!trans_b) {
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      float* dst = bp + p * kNR;
      for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
      for (int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
    }
  } else {
    // B stored [N, K]: read each logical column contiguously.
    for (int64_t j = 0; j < nr; ++j) {
      const float* src = b + (j0 + j) * k;
      for (int64_t p = 0; p < k; ++p) bp[p * kNR + j] = src[p];
    }
    for (int64_t j = nr; j < kNR; ++j) {
      for (int64_t p = 0; p < k; ++p) bp[p * kNR + j] = 0.0f;
    }
  }
}

void PackBAll(const float* b, float* bp, int64_t k, int64_t n, bool trans_b) {
  for (int64_t j0 = 0, panel = 0; j0 < n; j0 += kNR, ++panel) {
    PackBPanel(b, bp + panel * k * kNR, k, n, j0, trans_b);
  }
}

// Packs logical rows [i0, i0+mr) of A[M,K] into ap[k][kMR], zero-padding to
// kMR rows.
void PackABlock(const float* __restrict__ a, float* __restrict__ ap,
                int64_t m, int64_t k, int64_t i0, int64_t mr, bool trans_a) {
  if (!trans_a) {
    for (int64_t r = 0; r < mr; ++r) {
      const float* src = a + (i0 + r) * k;
      for (int64_t p = 0; p < k; ++p) ap[p * kMR + r] = src[p];
    }
  } else {
    // A stored [K, M].
    for (int64_t p = 0; p < k; ++p) {
      const float* src = a + p * m + i0;
      float* dst = ap + p * kMR;
      for (int64_t r = 0; r < mr; ++r) dst[r] = src[r];
    }
  }
  for (int64_t r = mr; r < kMR; ++r) {
    for (int64_t p = 0; p < k; ++p) ap[p * kMR + r] = 0.0f;
  }
}

#if defined(__AVX512F__) && defined(__FMA__)

// 8x32 register tile: 16 zmm accumulators, two B vectors streamed per k
// step, A broadcast from the packed block. Each accumulator lane is one
// output element's strict-k fma chain.
void MicroKernel(const float* __restrict__ ap, const float* __restrict__ bp,
                 int64_t k, float* __restrict__ c, int64_t ldc, int64_t mr,
                 int64_t nr) {
  __m512 acc[kMR][2];
  for (int64_t r = 0; r < kMR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNR);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kNR + 16);
    const float* arow = ap + p * kMR;
    for (int64_t r = 0; r < kMR; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (nr == kNR) {
    for (int64_t r = 0; r < mr; ++r) {
      _mm512_storeu_ps(c + r * ldc, acc[r][0]);
      _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
    }
  } else {
    const __mmask16 m0 =
        nr >= 16 ? static_cast<__mmask16>(0xFFFF)
                 : static_cast<__mmask16>((1u << nr) - 1u);
    const __mmask16 m1 =
        nr > 16 ? static_cast<__mmask16>((1u << (nr - 16)) - 1u)
                : static_cast<__mmask16>(0);
    for (int64_t r = 0; r < mr; ++r) {
      _mm512_mask_storeu_ps(c + r * ldc, m0, acc[r][0]);
      if (m1) _mm512_mask_storeu_ps(c + r * ldc + 16, m1, acc[r][1]);
    }
  }
}

#else

// Portable microkernel: identical per-element fma sequence; the compiler
// vectorizes the jr lanes as far as the target allows.
void MicroKernel(const float* __restrict__ ap, const float* __restrict__ bp,
                 int64_t k, float* __restrict__ c, int64_t ldc, int64_t mr,
                 int64_t nr) {
  float acc[kMR][kNR];
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) acc[r][j] = 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      for (int64_t j = 0; j < kNR; ++j) {
        acc[r][j] = std::fma(av, brow[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#endif

// Computes output rows [i0, i1) of C[M,N] against pre-packed B panels.
// ap_scratch holds one packed A block (k * kMR floats). Restricting the row
// range never changes any element's accumulation, so partitioning rows
// across threads (with arbitrary, even tile-misaligned, boundaries) is
// bitwise identical to one serial call.
void GemmPackedRows(const float* a, const float* bp, float* c, int64_t m,
                    int64_t k, int64_t n, bool trans_a, int64_t i0,
                    int64_t i1, float* ap_scratch) {
  for (int64_t ib = i0; ib < i1; ib += kMR) {
    const int64_t mr = std::min(kMR, i1 - ib);
    PackABlock(a, ap_scratch, m, k, ib, mr, trans_a);
    for (int64_t jp = 0, panel = 0; jp < n; jp += kNR, ++panel) {
      const int64_t nr = std::min(kNR, n - jp);
      MicroKernel(ap_scratch, bp + panel * k * kNR, k, c + ib * n + jp, n,
                  mr, nr);
    }
  }
}

// Small-product kernel, rows [i0, i1): no packing, same per-element
// contract. The two AXPY-style paths (NN, TN) accumulate into C, which must
// be zero on entry; the dot-style paths (NT, TT) overwrite. Dot products
// run kLanes output columns at a time — independent strict-k chains, for
// instruction-level parallelism without touching any chain's order.
void GemmSimpleRows(const float* __restrict__ a, const float* __restrict__ b,
                    float* __restrict__ c, int64_t m, int64_t k, int64_t n,
                    bool trans_a, bool trans_b, int64_t i0, int64_t i1) {
  constexpr int64_t kLanes = 8;
  if (!trans_a && !trans_b) {
    for (int64_t i = i0; i < i1; ++i) {
      float* __restrict__ crow = c + i * n;
      const float* arow = a + i * k;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict__ brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = std::fma(av, brow[j], crow[j]);
        }
      }
    }
  } else if (trans_a && !trans_b) {
    // A is stored [K, M].
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* __restrict__ brow = b + p * n;
      for (int64_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        float* __restrict__ crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = std::fma(av, brow[j], crow[j]);
        }
      }
    }
  } else if (!trans_a && trans_b) {
    // B is stored [N, K]; each output is a dot product of contiguous rows.
    for (int64_t i = i0; i < i1; ++i) {
      const float* __restrict__ arow = a + i * k;
      float* crow = c + i * n;
      int64_t j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        float s[kLanes] = {};
        for (int64_t p = 0; p < k; ++p) {
          const float av = arow[p];
          for (int64_t jj = 0; jj < kLanes; ++jj) {
            s[jj] = std::fma(av, b[(j + jj) * k + p], s[jj]);
          }
        }
        for (int64_t jj = 0; jj < kLanes; ++jj) crow[j + jj] = s[jj];
      }
      for (; j < n; ++j) {
        const float* __restrict__ brow = b + j * k;
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s = std::fma(arow[p], brow[p], s);
        crow[j] = s;
      }
    }
  } else {
    // Both transposed: A stored [K, M], B stored [N, K].
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      int64_t j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        float s[kLanes] = {};
        for (int64_t p = 0; p < k; ++p) {
          const float av = a[p * m + i];
          for (int64_t jj = 0; jj < kLanes; ++jj) {
            s[jj] = std::fma(av, b[(j + jj) * k + p], s[jj]);
          }
        }
        for (int64_t jj = 0; jj < kLanes; ++jj) crow[j + jj] = s[jj];
      }
      for (; j < n; ++j) {
        const float* brow = b + j * k;
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s = std::fma(a[p * m + i], brow[p], s);
        crow[j] = s;
      }
    }
  }
}

// Products below this flop count (or too skinny for a tile) skip the packed
// kernel: two packing passes plus tile padding are not worth it.
constexpr int64_t kPackedMinFlops = 1 << 14;

bool UsePackedGemm(int64_t m, int64_t k, int64_t n) {
  if (m < kMR || n < kNR / 2) return false;
  return m * k * n >= kPackedMinFlops;
}

// Minimum flops worth one parallel chunk; below this, dispatch overhead
// dominates and the work stays on fewer threads.
constexpr int64_t kMatMulGrainFlops = 1 << 15;

}  // namespace

void GemmReference(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, bool trans_a, bool trans_b) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc = std::fma(av, bv, acc);
      }
      c[i * n + j] = acc;
    }
  }
}

std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b) {
  const int64_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank, 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < static_cast<int64_t>(rank - a.size()) ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < static_cast<int64_t>(rank - b.size()) ? 1 : b[i - (rank - b.size())];
    ELDA_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast" << ShapeToString(a) << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const std::vector<int64_t>& shape) {
  if (t.shape() == shape) return t;
  const int64_t rank = t.dim();
  const int64_t target_rank = static_cast<int64_t>(shape.size());
  ELDA_CHECK_LE(target_rank, rank);
  Tensor cur = t;
  // Sum away leading extra dims.
  for (int64_t i = 0; i < rank - target_rank; ++i) cur = Sum(cur, 0, false);
  // Sum (keepdims) over dims where the target is 1 but current is larger.
  for (int64_t i = 0; i < target_rank; ++i) {
    if (shape[i] == 1 && cur.shape(i) != 1) cur = Sum(cur, i, true);
  }
  ELDA_CHECK(cur.shape() == shape)
      << ShapeToString(t.shape()) << "->" << ShapeToString(shape);
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast("Add", a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast("Sub", a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast("Mul", a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast("Div", a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast("Maximum", a, b,
                         [](float x, float y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp("AddScalar", a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp("MulScalar", a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp("Neg", a, [](float x) { return -x; });
}
// Exp/Sigmoid/Tanh dispatch whole chunks into the SIMD array kernels
// instead of a per-element functor; chunk boundaries cannot affect
// elementwise values, so any thread partition stays bitwise identical.
namespace {
template <void (*ArrayFn)(const float*, float*, int64_t)>
Tensor UnarySimd(const char* prof_name, const Tensor& a) {
  ELDA_PROF_SCOPE(prof_name);
  ELDA_CHECK(a.defined());
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ParallelFor(0, a.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     ArrayFn(pa + lo, po + lo, hi - lo);
                   });
  return out;
}
}  // namespace

Tensor Exp(const Tensor& a) { return UnarySimd<simd::ExpArray>("Exp", a); }
Tensor Log(const Tensor& a) {
  return UnaryOp("Log", a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp("Sqrt", a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp("Abs", a, [](float x) { return std::fabs(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryOp("Square", a, [](float x) { return x * x; });
}
Tensor Sigmoid(const Tensor& a) {
  return UnarySimd<simd::SigmoidArray>("Sigmoid", a);
}
Tensor Tanh(const Tensor& a) { return UnarySimd<simd::TanhArray>("Tanh", a); }
Tensor Relu(const Tensor& a) {
  return UnaryOp("Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Clip(const Tensor& a, float lo, float hi) {
  return UnaryOp("Clip", a,
                 [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
Tensor Pow(const Tensor& a, float p) {
  return UnaryOp("Pow", a, [p](float x) { return std::pow(x, p); });
}
Tensor GreaterThanScalar(const Tensor& a, float s) {
  return UnaryOp("GreaterThanScalar", a,
                 [s](float x) { return x > s ? 1.0f : 0.0f; });
}
Tensor EqualScalar(const Tensor& a, float s, float tolerance) {
  return UnaryOp("EqualScalar", a, [s, tolerance](float x) {
    return std::fabs(x - s) <= tolerance ? 1.0f : 0.0f;
  });
}

// -- Fused elementwise chains ------------------------------------------------
//
// Each kernel runs a short composed chain (Add+Sigmoid, Relu+Neg+Exp, ...)
// as one pass over memory. Per element they evaluate exactly the float
// expression the composed kernels would, in the same order, against the
// same transcendental reference contract — so fused and composed paths are
// bitwise identical (tested in tests/simd_test.cc). RecordFusion feeds the
// ELDA_PROF fusion columns: kernel passes and temporary allocations the
// composed graph would have cost.

namespace {
constexpr int64_t kFloatBytes = static_cast<int64_t>(sizeof(float));

template <void (*ArrayFn)(const float*, const float*, float*, int64_t)>
Tensor FusedBinarySameShape(const Tensor& a, const Tensor& b) {
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  par::ParallelFor(0, a.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     ArrayFn(pa + lo, pb + lo, po + lo, hi - lo);
                   });
  return out;
}
}  // namespace

Tensor AddSigmoid(const Tensor& a, const Tensor& b) {
  ELDA_CHECK(a.defined() && b.defined());
  if (a.shape() == b.shape()) {
    ELDA_PROF_SCOPE("AddSigmoid");
    prof::RecordFusion(1, a.size() * kFloatBytes);
    return FusedBinarySameShape<simd::AddSigmoidArray>(a, b);
  }
  // Broadcast shapes fall back to the (scalar, still single-pass) broadcast
  // engine with the same per-element expression.
  return BinaryBroadcast("AddSigmoid", a, b, [](float x, float y) {
    return simd::SigmoidRef(x + y);
  });
}

Tensor AddTanh(const Tensor& a, const Tensor& b) {
  ELDA_CHECK(a.defined() && b.defined());
  if (a.shape() == b.shape()) {
    ELDA_PROF_SCOPE("AddTanh");
    prof::RecordFusion(1, a.size() * kFloatBytes);
    return FusedBinarySameShape<simd::AddTanhArray>(a, b);
  }
  return BinaryBroadcast("AddTanh", a, b, [](float x, float y) {
    return simd::TanhRef(x + y);
  });
}

Tensor ExpNegRelu(const Tensor& a) {
  ELDA_PROF_SCOPE("ExpNegRelu");
  ELDA_CHECK(a.defined());
  prof::RecordFusion(2, 2 * a.size() * kFloatBytes);
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ParallelFor(0, a.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     simd::ExpNegReluArray(pa + lo, po + lo, hi - lo);
                   });
  return out;
}

Tensor SigmoidGrad(const Tensor& g, const Tensor& y) {
  ELDA_PROF_SCOPE("SigmoidGrad");
  ELDA_CHECK(g.shape() == y.shape());
  prof::RecordFusion(3, 3 * g.size() * kFloatBytes);
  return FusedBinarySameShape<simd::SigmoidGradArray>(g, y);
}

Tensor TanhGrad(const Tensor& g, const Tensor& y) {
  ELDA_PROF_SCOPE("TanhGrad");
  ELDA_CHECK(g.shape() == y.shape());
  prof::RecordFusion(3, 3 * g.size() * kFloatBytes);
  return FusedBinarySameShape<simd::TanhGradArray>(g, y);
}

Tensor ExpNegReluGrad(const Tensor& g, const Tensor& y, const Tensor& x) {
  ELDA_PROF_SCOPE("ExpNegReluGrad");
  ELDA_CHECK(g.shape() == y.shape());
  ELDA_CHECK(g.shape() == x.shape());
  prof::RecordFusion(3, 3 * g.size() * kFloatBytes);
  Tensor out = Tensor::Empty(g.shape());
  const float* pg = g.data();
  const float* py = y.data();
  const float* px = x.data();
  float* po = out.data();
  par::ParallelFor(0, g.size(), par::kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     simd::ExpNegReluGradArray(pg + lo, py + lo, px + lo,
                                               po + lo, hi - lo);
                   });
  return out;
}

Tensor SoftmaxLastAxisGrad(const Tensor& g, const Tensor& y) {
  ELDA_PROF_SCOPE("SoftmaxGrad");
  ELDA_CHECK(g.shape() == y.shape());
  const int64_t n = y.shape(-1);
  ELDA_CHECK_GT(n, 0);
  prof::RecordFusion(3, 3 * g.size() * kFloatBytes);
  const int64_t rows = y.size() / n;
  Tensor out = Tensor::Empty(g.shape());
  const float* pg = g.data();
  const float* py = y.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      simd::SoftmaxGradRow(pg + r * n, py + r * n, po + r * n, n);
    }
  });
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  ELDA_PROF_SCOPE("MatMul");
  ELDA_CHECK(a.dim() >= 2 && b.dim() >= 2)
      << ShapeToString(a.shape()) << ShapeToString(b.shape());
  const int64_t am = a.shape(trans_a ? -1 : -2);
  const int64_t ak = a.shape(trans_a ? -2 : -1);
  const int64_t bk = b.shape(trans_b ? -1 : -2);
  const int64_t bn = b.shape(trans_b ? -2 : -1);
  ELDA_CHECK_EQ(ak, bk) << "matmul inner dims" << ShapeToString(a.shape())
                        << ShapeToString(b.shape());
  const int64_t a_mat = a.shape(-1) * a.shape(-2);
  const int64_t b_mat = b.shape(-1) * b.shape(-2);
  // max(.., 1) guards zero-sized matrices (a zero batch just runs no work).
  const int64_t a_batch = a.size() / std::max<int64_t>(a_mat, 1);
  const int64_t b_batch = b.size() / std::max<int64_t>(b_mat, 1);
  ELDA_CHECK(a_batch == b_batch || b_batch == 1 || a_batch == 1)
      << "matmul batch dims" << ShapeToString(a.shape())
      << ShapeToString(b.shape());
  const int64_t batch = std::max(a_batch, b_batch);

  std::vector<int64_t> out_shape;
  if (a_batch >= b_batch) {
    out_shape.assign(a.shape().begin(), a.shape().end() - 2);
  } else {
    out_shape.assign(b.shape().begin(), b.shape().end() - 2);
  }
  out_shape.push_back(am);
  out_shape.push_back(bn);
  Tensor out = Tensor::Empty(out_shape);
  const bool packed = UsePackedGemm(am, ak, bn);
  if (!packed && !trans_b) {
    // The simple NN/TN kernels accumulate into C; the dot-style NT/TT and
    // the packed kernel overwrite, so only this case needs the zero-fill.
    std::memset(out.data(), 0, static_cast<size_t>(out.size()) * sizeof(float));
  }
  const float* base_a = a.data();
  const float* base_b = b.data();
  float* base_o = out.data();
  const int64_t flops_per_item = am * ak * bn;
  if (batch > 1) {
    // Flop-derived grain, capped to a few chunks per thread: a large batch
    // of small matrices (flops_per_item > kMatMulGrainFlops => grain 1)
    // must not degenerate into thousands of one-item chunks whose per-chunk
    // pool buffers and B-packing cost more than the GEMMs themselves —
    // which used to make 8 threads *slower* than 2 on BM_MatMulBatchedSmall.
    const int64_t grain = par::BalancedGrain(
        batch, kMatMulGrainFlops / std::max<int64_t>(1, flops_per_item));
    par::ParallelFor(0, batch, grain, [&](int64_t b0, int64_t b1) {
      if (packed) {
        mem::ScopedBuffer bp(PackedBFloats(ak, bn));
        mem::ScopedBuffer ap(std::max<int64_t>(ak, 1) * kMR);
        for (int64_t i = b0; i < b1; ++i) {
          const float* pa = base_a + (a_batch == 1 ? 0 : i * a_mat);
          const float* pb = base_b + (b_batch == 1 ? 0 : i * b_mat);
          // A shared B is packed once per chunk, per-item B every time.
          if (b_batch != 1 || i == b0) {
            PackBAll(pb, bp.data(), ak, bn, trans_b);
          }
          GemmPackedRows(pa, bp.data(), base_o + i * am * bn, am, ak, bn,
                         trans_a, 0, am, ap.data());
        }
      } else {
        for (int64_t i = b0; i < b1; ++i) {
          const float* pa = base_a + (a_batch == 1 ? 0 : i * a_mat);
          const float* pb = base_b + (b_batch == 1 ? 0 : i * b_mat);
          GemmSimpleRows(pa, pb, base_o + i * am * bn, am, ak, bn, trans_a,
                         trans_b, 0, am);
        }
      }
    });
  } else {
    const int64_t row_grain = std::max<int64_t>(
        1, kMatMulGrainFlops / std::max<int64_t>(1, ak * bn));
    if (packed) {
      mem::ScopedBuffer bp(PackedBFloats(ak, bn));
      PackBAll(base_b, bp.data(), ak, bn, trans_b);
      par::ParallelFor(0, am, row_grain, [&](int64_t i0, int64_t i1) {
        mem::ScopedBuffer ap(std::max<int64_t>(ak, 1) * kMR);
        GemmPackedRows(base_a, bp.data(), base_o, am, ak, bn, trans_a, i0, i1,
                       ap.data());
      });
    } else {
      par::ParallelFor(0, am, row_grain, [&](int64_t i0, int64_t i1) {
        GemmSimpleRows(base_a, base_b, base_o, am, ak, bn, trans_a, trans_b,
                       i0, i1);
      });
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  ELDA_CHECK_EQ(a.dim(), 2);
  return TransposeLast2(a);
}

Tensor TransposeLast2(const Tensor& a) {
  ELDA_PROF_SCOPE("Transpose");
  ELDA_CHECK_GE(a.dim(), 2);
  const int64_t rows = a.shape(-2);
  const int64_t cols = a.shape(-1);
  const int64_t mat = rows * cols;
  const int64_t batch = a.size() / std::max<int64_t>(mat, 1);
  std::vector<int64_t> out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  Tensor out = Tensor::Empty(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, cols));
  // Lane space: (batch, row) pairs; each lane writes one output column.
  par::ParallelFor(0, batch * rows, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t bb = l / rows;
      const int64_t i = l % rows;
      const float* src = pa + bb * mat + i * cols;
      float* dst = po + bb * mat;
      for (int64_t j = 0; j < cols; ++j) dst[j * rows + i] = src[j];
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  ELDA_PROF_SCOPE("Concat");
  ELDA_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  axis = NormalizeAxis(axis, rank);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& p : parts) {
    ELDA_CHECK_EQ(p.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) ELDA_CHECK_EQ(p.shape(d), out_shape[d]);
    }
    total_axis += p.shape(axis);
  }
  out_shape[axis] = total_axis;
  Tensor out = Tensor::Empty(out_shape);
  int64_t outer, n_unused, inner;
  AxisDecompose(out_shape, axis, &outer, &n_unused, &inner);
  // Per-part source pointer, copy length, and destination offset inside one
  // outer slice; the outer dimension is then partitioned across threads
  // (disjoint output ranges, so bitwise-deterministic for free).
  std::vector<const float*> srcs(parts.size());
  std::vector<int64_t> chunks(parts.size());
  std::vector<int64_t> offsets(parts.size());
  int64_t dst_offset = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    srcs[pi] = parts[pi].data();
    chunks[pi] = parts[pi].shape(axis) * inner;
    offsets[pi] = dst_offset;
    dst_offset += chunks[pi];
  }
  const int64_t row = total_axis * inner;  // floats per outer slice
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, row));
  par::ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      float* dst = po + o * row;
      for (size_t pi = 0; pi < srcs.size(); ++pi) {
        std::memcpy(dst + offsets[pi], srcs[pi] + o * chunks[pi],
                    static_cast<size_t>(chunks[pi]) * sizeof(float));
      }
    }
  });
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  ELDA_PROF_SCOPE("Slice");
  axis = NormalizeAxis(axis, a.dim());
  ELDA_CHECK(start >= 0 && len >= 0 && start + len <= a.shape(axis))
      << "slice [" << start << "," << start + len << ") of axis" << axis
      << "in" << ShapeToString(a.shape());
  std::vector<int64_t> out_shape = a.shape();
  out_shape[axis] = len;
  Tensor out = Tensor::Empty(out_shape);
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t row = len * inner;
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, row));
  par::ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      std::memcpy(po + o * row, pa + (o * n + start) * inner,
                  static_cast<size_t>(row) * sizeof(float));
    }
  });
  return out;
}

Tensor Transpose01(const Tensor& a) {
  ELDA_PROF_SCOPE("Transpose01");
  ELDA_CHECK_GE(a.dim(), 2);
  const int64_t d0 = a.shape(0);
  const int64_t d1 = a.shape(1);
  const int64_t inner = a.size() / std::max<int64_t>(d0 * d1, 1);
  std::vector<int64_t> out_shape = a.shape();
  std::swap(out_shape[0], out_shape[1]);
  Tensor out = Tensor::Empty(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
  // Lane space: output (j, i) pairs; each lane copies one inner run.
  par::ParallelFor(0, d1 * d0, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t j = l / d0;
      const int64_t i = l % d0;
      std::memcpy(po + l * inner, pa + (i * d1 + j) * inner,
                  static_cast<size_t>(inner) * sizeof(float));
    }
  });
  return out;
}

Tensor ReverseAxis(const Tensor& a, int64_t axis) {
  ELDA_PROF_SCOPE("ReverseAxis");
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, inner));
  par::ParallelFor(0, outer * n, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t o = l / n;
      const int64_t i = l % n;
      std::memcpy(po + (o * n + i) * inner,
                  pa + (o * n + (n - 1 - i)) * inner,
                  static_cast<size_t>(inner) * sizeof(float));
    }
  });
  return out;
}

Tensor StackRows(const std::vector<Tensor>& parts) {
  ELDA_PROF_SCOPE("StackRows");
  ELDA_CHECK(!parts.empty());
  const std::vector<int64_t>& part_shape = parts[0].shape();
  const int64_t part_size = parts[0].size();
  std::vector<int64_t> out_shape;
  out_shape.reserve(part_shape.size() + 1);
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), part_shape.begin(), part_shape.end());
  Tensor out = Tensor::Empty(out_shape);
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, part_size));
  par::ParallelFor(
      0, static_cast<int64_t>(parts.size()), grain, [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          ELDA_CHECK(parts[p].shape() == part_shape)
              << "stack part" << p << ShapeToString(parts[p].shape()) << "vs"
              << ShapeToString(part_shape);
          std::memcpy(po + p * part_size, parts[p].data(),
                      static_cast<size_t>(part_size) * sizeof(float));
        }
      });
  return out;
}

Tensor GruGates(const Tensor& xw, const Tensor& hu, const Tensor& h,
                Tensor* r_out, Tensor* z_out, Tensor* n_out) {
  ELDA_PROF_SCOPE("GruGates");
  ELDA_CHECK_EQ(xw.dim(), 2);
  const int64_t batch = xw.shape(0);
  const int64_t hidden = xw.shape(1) / 3;
  ELDA_CHECK_EQ(xw.shape(1), 3 * hidden);
  ELDA_CHECK(hu.shape() == xw.shape());
  ELDA_CHECK(h.shape() == (std::vector<int64_t>{batch, hidden}));
  Tensor h_new = Tensor::Empty({batch, hidden});
  const bool capture = r_out != nullptr;
  if (capture) {
    *r_out = Tensor::Empty({batch, hidden});
    *z_out = Tensor::Empty({batch, hidden});
    *n_out = Tensor::Empty({batch, hidden});
  }
  const float* pxw = xw.data();
  const float* phu = hu.data();
  const float* ph = h.data();
  float* po = h_new.data();
  float* pr = capture ? r_out->data() : nullptr;
  float* pz = capture ? z_out->data() : nullptr;
  float* pn = capture ? n_out->data() : nullptr;
  // Row-major loops: per-row pointer hoisting and the capture branch lifted
  // out of the inner loop. Same float expressions, in the same order, as
  // the composed Slice/Add/Sigmoid/Mul/Tanh/Sub kernels. The 8-lane AVX2
  // body runs the same transcendental contract as the scalar tail
  // (Sigmoid8/Tanh8 mirror SigmoidRef/TanhRef bitwise), so vector, tail,
  // and scalar-dispatch elements all agree bit-for-bit.
  prof::RecordFusion(10, 10 * batch * hidden *
                             static_cast<int64_t>(sizeof(float)));
#if ELDA_SIMD_AVX2
  const bool vec = simd::Enabled();
#endif
  const int64_t row_grain =
      std::max<int64_t>(1, par::kElementGrain / (3 * hidden));
  par::ParallelFor(0, batch, row_grain, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* xr = pxw + b * 3 * hidden;
      const float* ur = phu + b * 3 * hidden;
      const float* hp = ph + b * hidden;
      float* out = po + b * hidden;
      int64_t k = 0;
      if (pr != nullptr) {
        float* rr = pr + b * hidden;
        float* zr = pz + b * hidden;
        float* nr = pn + b * hidden;
#if ELDA_SIMD_AVX2
        if (vec) {
          const __m256 one = _mm256_set1_ps(1.0f);
          for (; k + 8 <= hidden; k += 8) {
            const __m256 r = simd::Sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(xr + k), _mm256_loadu_ps(ur + k)));
            const __m256 z = simd::Sigmoid8(
                _mm256_add_ps(_mm256_loadu_ps(xr + hidden + k),
                              _mm256_loadu_ps(ur + hidden + k)));
            const __m256 n = simd::Tanh8(_mm256_add_ps(
                _mm256_loadu_ps(xr + 2 * hidden + k),
                _mm256_mul_ps(r, _mm256_loadu_ps(ur + 2 * hidden + k))));
            const __m256 h_next =
                _mm256_add_ps(_mm256_mul_ps(_mm256_sub_ps(one, z), n),
                              _mm256_mul_ps(z, _mm256_loadu_ps(hp + k)));
            _mm256_storeu_ps(out + k, h_next);
            _mm256_storeu_ps(rr + k, r);
            _mm256_storeu_ps(zr + k, z);
            _mm256_storeu_ps(nr + k, n);
          }
        }
#endif
        for (; k < hidden; ++k) {
          const float r = SigmoidScalar(xr[k] + ur[k]);
          const float z = SigmoidScalar(xr[hidden + k] + ur[hidden + k]);
          const float n =
              TanhScalar(xr[2 * hidden + k] + (r * ur[2 * hidden + k]));
          out[k] = ((1.0f - z) * n) + (z * hp[k]);
          rr[k] = r;
          zr[k] = z;
          nr[k] = n;
        }
      } else {
#if ELDA_SIMD_AVX2
        if (vec) {
          const __m256 one = _mm256_set1_ps(1.0f);
          for (; k + 8 <= hidden; k += 8) {
            const __m256 r = simd::Sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(xr + k), _mm256_loadu_ps(ur + k)));
            const __m256 z = simd::Sigmoid8(
                _mm256_add_ps(_mm256_loadu_ps(xr + hidden + k),
                              _mm256_loadu_ps(ur + hidden + k)));
            const __m256 n = simd::Tanh8(_mm256_add_ps(
                _mm256_loadu_ps(xr + 2 * hidden + k),
                _mm256_mul_ps(r, _mm256_loadu_ps(ur + 2 * hidden + k))));
            const __m256 h_next =
                _mm256_add_ps(_mm256_mul_ps(_mm256_sub_ps(one, z), n),
                              _mm256_mul_ps(z, _mm256_loadu_ps(hp + k)));
            _mm256_storeu_ps(out + k, h_next);
          }
        }
#endif
        for (; k < hidden; ++k) {
          const float r = SigmoidScalar(xr[k] + ur[k]);
          const float z = SigmoidScalar(xr[hidden + k] + ur[hidden + k]);
          const float n =
              TanhScalar(xr[2 * hidden + k] + (r * ur[2 * hidden + k]));
          out[k] = ((1.0f - z) * n) + (z * hp[k]);
        }
      }
    }
  });
  return h_new;
}

Tensor LstmGates(const Tensor& xw, const Tensor& hu, const Tensor& bias,
                 const Tensor& c, Tensor* i_out, Tensor* f_out, Tensor* g_out,
                 Tensor* o_out, Tensor* tc_out) {
  ELDA_PROF_SCOPE("LstmGates");
  ELDA_CHECK_EQ(xw.dim(), 2);
  const int64_t batch = xw.shape(0);
  const int64_t hidden = xw.shape(1) / 4;
  ELDA_CHECK_EQ(xw.shape(1), 4 * hidden);
  ELDA_CHECK(hu.shape() == xw.shape());
  ELDA_CHECK_EQ(bias.size(), 4 * hidden);
  ELDA_CHECK(c.shape() == (std::vector<int64_t>{batch, hidden}));
  Tensor packed = Tensor::Empty({2, batch, hidden});
  const bool capture = i_out != nullptr;
  if (capture) {
    *i_out = Tensor::Empty({batch, hidden});
    *f_out = Tensor::Empty({batch, hidden});
    *g_out = Tensor::Empty({batch, hidden});
    *o_out = Tensor::Empty({batch, hidden});
    *tc_out = Tensor::Empty({batch, hidden});
  }
  const float* pxw = xw.data();
  const float* phu = hu.data();
  const float* pb = bias.data();
  const float* pc = c.data();
  float* ph_new = packed.data();
  float* pc_new = packed.data() + batch * hidden;
  float* pi = capture ? i_out->data() : nullptr;
  float* pf = capture ? f_out->data() : nullptr;
  float* pg = capture ? g_out->data() : nullptr;
  float* po = capture ? o_out->data() : nullptr;
  float* ptc = capture ? tc_out->data() : nullptr;
  // Row-major loops with the capture branch lifted out of the inner loop;
  // gate pre-activations exactly as Add(Add(xw, hu), bias). The 8-lane AVX2
  // body mirrors the scalar expressions op for op (see GruGates).
  prof::RecordFusion(16, 16 * batch * hidden *
                             static_cast<int64_t>(sizeof(float)));
#if ELDA_SIMD_AVX2
  const bool vec = simd::Enabled();
#endif
  const int64_t row_grain =
      std::max<int64_t>(1, par::kElementGrain / (4 * hidden));
  par::ParallelFor(0, batch, row_grain, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* xr = pxw + b * 4 * hidden;
      const float* ur = phu + b * 4 * hidden;
      const float* cp = pc + b * hidden;
      float* hr = ph_new + b * hidden;
      float* cr = pc_new + b * hidden;
      int64_t k = 0;
      if (pi != nullptr) {
#if ELDA_SIMD_AVX2
        if (vec) {
          for (; k + 8 <= hidden; k += 8) {
            const __m256 i_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + k),
                              _mm256_loadu_ps(ur + k)),
                _mm256_loadu_ps(pb + k)));
            const __m256 f_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + hidden + k),
                              _mm256_loadu_ps(ur + hidden + k)),
                _mm256_loadu_ps(pb + hidden + k)));
            const __m256 g_g = simd::Tanh8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + 2 * hidden + k),
                              _mm256_loadu_ps(ur + 2 * hidden + k)),
                _mm256_loadu_ps(pb + 2 * hidden + k)));
            const __m256 o_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + 3 * hidden + k),
                              _mm256_loadu_ps(ur + 3 * hidden + k)),
                _mm256_loadu_ps(pb + 3 * hidden + k)));
            const __m256 c_new =
                _mm256_add_ps(_mm256_mul_ps(f_g, _mm256_loadu_ps(cp + k)),
                              _mm256_mul_ps(i_g, g_g));
            const __m256 tc = simd::Tanh8(c_new);
            _mm256_storeu_ps(hr + k, _mm256_mul_ps(o_g, tc));
            _mm256_storeu_ps(cr + k, c_new);
            _mm256_storeu_ps(pi + b * hidden + k, i_g);
            _mm256_storeu_ps(pf + b * hidden + k, f_g);
            _mm256_storeu_ps(pg + b * hidden + k, g_g);
            _mm256_storeu_ps(po + b * hidden + k, o_g);
            _mm256_storeu_ps(ptc + b * hidden + k, tc);
          }
        }
#endif
        for (; k < hidden; ++k) {
          const float i = SigmoidScalar((xr[k] + ur[k]) + pb[k]);
          const float f = SigmoidScalar(
              (xr[hidden + k] + ur[hidden + k]) + pb[hidden + k]);
          const float g = TanhScalar(
              (xr[2 * hidden + k] + ur[2 * hidden + k]) + pb[2 * hidden + k]);
          const float o = SigmoidScalar(
              (xr[3 * hidden + k] + ur[3 * hidden + k]) + pb[3 * hidden + k]);
          const float c_new = (f * cp[k]) + (i * g);
          const float tc = TanhScalar(c_new);
          hr[k] = o * tc;
          cr[k] = c_new;
          pi[b * hidden + k] = i;
          pf[b * hidden + k] = f;
          pg[b * hidden + k] = g;
          po[b * hidden + k] = o;
          ptc[b * hidden + k] = tc;
        }
      } else {
#if ELDA_SIMD_AVX2
        if (vec) {
          for (; k + 8 <= hidden; k += 8) {
            const __m256 i_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + k),
                              _mm256_loadu_ps(ur + k)),
                _mm256_loadu_ps(pb + k)));
            const __m256 f_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + hidden + k),
                              _mm256_loadu_ps(ur + hidden + k)),
                _mm256_loadu_ps(pb + hidden + k)));
            const __m256 g_g = simd::Tanh8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + 2 * hidden + k),
                              _mm256_loadu_ps(ur + 2 * hidden + k)),
                _mm256_loadu_ps(pb + 2 * hidden + k)));
            const __m256 o_g = simd::Sigmoid8(_mm256_add_ps(
                _mm256_add_ps(_mm256_loadu_ps(xr + 3 * hidden + k),
                              _mm256_loadu_ps(ur + 3 * hidden + k)),
                _mm256_loadu_ps(pb + 3 * hidden + k)));
            const __m256 c_new =
                _mm256_add_ps(_mm256_mul_ps(f_g, _mm256_loadu_ps(cp + k)),
                              _mm256_mul_ps(i_g, g_g));
            const __m256 tc = simd::Tanh8(c_new);
            _mm256_storeu_ps(hr + k, _mm256_mul_ps(o_g, tc));
            _mm256_storeu_ps(cr + k, c_new);
          }
        }
#endif
        for (; k < hidden; ++k) {
          const float i = SigmoidScalar((xr[k] + ur[k]) + pb[k]);
          const float f = SigmoidScalar(
              (xr[hidden + k] + ur[hidden + k]) + pb[hidden + k]);
          const float g = TanhScalar(
              (xr[2 * hidden + k] + ur[2 * hidden + k]) + pb[2 * hidden + k]);
          const float o = SigmoidScalar(
              (xr[3 * hidden + k] + ur[3 * hidden + k]) + pb[3 * hidden + k]);
          const float c_new = (f * cp[k]) + (i * g);
          const float tc = TanhScalar(c_new);
          hr[k] = o * tc;
          cr[k] = c_new;
        }
      }
    }
  });
  return packed;
}

float SumAll(const Tensor& a) {
  ELDA_PROF_SCOPE("SumAll");
  // Deliberately serial: a chunked parallel sum would reorder the float
  // additions and break bitwise reproducibility across thread counts.
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) s += p[i];
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  ELDA_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAll(const Tensor& a) {
  ELDA_PROF_SCOPE("MaxAll");
  ELDA_CHECK_GT(a.size(), 0);
  const float* p = a.data();
  // Max is an exact, order-independent combine, so the partitioned reduce
  // is bitwise identical to the serial loop for every thread count.
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, p[0],
      [p](int64_t lo, int64_t hi) {
        float m = p[lo];
        for (int64_t i = lo + 1; i < hi; ++i) m = std::max(m, p[i]);
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  ELDA_PROF_SCOPE("Sum");
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  std::vector<int64_t> out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out = Tensor::Empty(out_shape);
  if (n == 0) {
    std::memset(out.data(), 0, static_cast<size_t>(out.size()) * sizeof(float));
    return out;
  }
  const float* pa = a.data();
  float* po = out.data();
  // Lane space: output elements (o, i). Each lane assigns the k = 0 slice
  // and then accumulates k = 1..n-1 in order, exactly as the serial loop
  // did, so any disjoint lane partition is bitwise identical. Chunks are
  // blocked per o-row to keep the inner loop contiguous.
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    while (l0 < l1) {
      const int64_t o = l0 / inner;
      const int64_t i0 = l0 % inner;
      const int64_t i1 = std::min(inner, i0 + (l1 - l0));
      float* orow = po + o * inner;
      const float* row0 = pa + o * n * inner;
      for (int64_t i = i0; i < i1; ++i) orow[i] = row0[i];
      for (int64_t kk = 1; kk < n; ++kk) {
        const float* row = pa + (o * n + kk) * inner;
        for (int64_t i = i0; i < i1; ++i) orow[i] += row[i];
      }
      l0 += i1 - i0;
    }
  });
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  ELDA_PROF_SCOPE("Mean");
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  const float inv = 1.0f / static_cast<float>(n);
  std::vector<int64_t> out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out = Tensor::Empty(out_shape);
  if (n == 0) {
    out.Fill(0.0f * inv);  // matches Sum-then-MulScalar: 0 * inf = NaN
    return out;
  }
  const float* pa = a.data();
  float* po = out.data();
  // Fused Sum + scale: one allocation and one pass fewer than the previous
  // MulScalar(Sum(...)). Per lane the k-order sum is identical to Sum's and
  // the 1/n multiply happens after the sum completes, so results match the
  // two-op form bit-for-bit.
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    while (l0 < l1) {
      const int64_t o = l0 / inner;
      const int64_t i0 = l0 % inner;
      const int64_t i1 = std::min(inner, i0 + (l1 - l0));
      float* orow = po + o * inner;
      const float* row0 = pa + o * n * inner;
      for (int64_t i = i0; i < i1; ++i) orow[i] = row0[i];
      for (int64_t kk = 1; kk < n; ++kk) {
        const float* row = pa + (o * n + kk) * inner;
        for (int64_t i = i0; i < i1; ++i) orow[i] += row[i];
      }
      for (int64_t i = i0; i < i1; ++i) orow[i] *= inv;
      l0 += i1 - i0;
    }
  });
  return out;
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdims) {
  ELDA_PROF_SCOPE("Max");
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  ELDA_CHECK_GT(n, 0);
  std::vector<int64_t> out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out = Tensor::Empty(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    while (l0 < l1) {
      const int64_t o = l0 / inner;
      const int64_t i0 = l0 % inner;
      const int64_t i1 = std::min(inner, i0 + (l1 - l0));
      float* orow = po + o * inner;
      std::memcpy(orow + i0, pa + o * n * inner + i0,
                  (i1 - i0) * sizeof(float));
      for (int64_t k = 1; k < n; ++k) {
        const float* row = pa + (o * n + k) * inner;
        for (int64_t i = i0; i < i1; ++i) orow[i] = std::max(orow[i], row[i]);
      }
      l0 += i1 - i0;
    }
  });
  return out;
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  ELDA_PROF_SCOPE("Softmax");
  axis = NormalizeAxis(axis, a.dim());
  int64_t outer, n, inner;
  AxisDecompose(a.shape(), axis, &outer, &n, &inner);
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain =
      std::max<int64_t>(1, par::kElementGrain / std::max<int64_t>(1, n));
  if (inner == 1 && n > 0) {
    // Last-axis fast path: each fiber is one contiguous row, handled by the
    // vectorized row kernel under the 8-lane-blocked reduction contract
    // (simd_math.h). Row partitioning across threads never changes a row's
    // arithmetic, so results stay bitwise identical across thread counts.
    par::ParallelFor(0, outer, grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        simd::SoftmaxRow(pa + o * n, po + o * n, n);
      }
    });
    return out;
  }
  // General (strided) axis: serial per-fiber max/exp/sum/scale. Lane space:
  // softmax fibers (o, i), in the same o-major order the serial loop used;
  // each lane's arithmetic is untouched. The exp is the same scalar
  // reference the fast path runs through its vector lanes.
  par::ParallelFor(0, outer * inner, grain, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int64_t o = l / inner;
      const int64_t i = l % inner;
      const int64_t base = o * n * inner + i;
      float m = pa[base];
      for (int64_t k = 1; k < n; ++k) m = std::max(m, pa[base + k * inner]);
      float z = 0.0f;
      for (int64_t k = 0; k < n; ++k) {
        const float e = simd::ExpRef(pa[base + k * inner] - m);
        po[base + k * inner] = e;
        z += e;
      }
      const float inv = 1.0f / z;
      for (int64_t k = 0; k < n; ++k) po[base + k * inner] *= inv;
    }
  });
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, true,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float diff = std::fabs(pa[i] - pb[i]);
          if (diff > atol + rtol * std::fabs(pb[i])) return false;
          if (std::isnan(pa[i]) || std::isnan(pb[i])) return false;
        }
        return true;
      },
      [](bool x, bool y) { return x && y; });
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  ELDA_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  return par::ParallelReduce(
      0, a.size(), par::kElementGrain, 0.0f,
      [&](int64_t lo, int64_t hi) {
        float m = 0.0f;
        for (int64_t i = lo; i < hi; ++i) {
          m = std::max(m, std::fabs(pa[i] - pb[i]));
        }
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

}  // namespace elda
