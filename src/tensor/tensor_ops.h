// Numeric kernels over Tensor.
//
// All functions return freshly allocated tensors (inputs are never mutated
// unless the name says so). Binary element-wise ops support full NumPy-style
// broadcasting; matmul supports 2-D, batched 3-D, and 3-D x 2-D (shared
// right-hand side) operands, each with optional transposition of either
// operand (needed by autograd backward passes).

#ifndef ELDA_TENSOR_TENSOR_OPS_H_
#define ELDA_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace elda {

// -- Broadcasting ------------------------------------------------------------

// NumPy broadcast of two shapes; CHECK-fails if incompatible.
std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b);

// Sums `t` over its broadcast dimensions so that the result has `shape`.
// This is the adjoint of broadcasting and is used by autograd backward.
Tensor ReduceToShape(const Tensor& t, const std::vector<int64_t>& shape);

// -- Element-wise binary (broadcasting) ---------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// Scalar right-hand-side conveniences.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// -- Element-wise unary --------------------------------------------------------

// Transcendental note: Exp/Sigmoid/Tanh/Softmax evaluate the SIMD
// transcendental contract of tensor/simd_math.h (polynomial kernels whose
// scalar reference and AVX2 paths are bitwise identical), not libm. See
// DESIGN.md "Elementwise execution" for the accuracy policy.
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  // clamps input at 1e-12 to keep finite
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Clip(const Tensor& a, float lo, float hi);
Tensor Pow(const Tensor& a, float p);

// 1.0 where the predicate holds, else 0.0 (used for masks / selectors).
Tensor GreaterThanScalar(const Tensor& a, float s);
// |x - s| <= tolerance. The default tolerance absorbs float rounding when
// the compared values are computed rather than stored constants (e.g.
// standardised mask cells); pass 0.0f explicitly for exact bit equality.
Tensor EqualScalar(const Tensor& a, float s, float tolerance = 1e-6f);

// -- Fused elementwise chains -----------------------------------------------
//
// One memory pass instead of a short chain of composed kernels. Per element
// each evaluates exactly the float expression of the composed chain it
// replaces, in the same order, so fused and composed results are bitwise
// identical (the autograd twins in autograd/ops.h rely on this to keep
// streamed-vs-batch and checkpoint guarantees intact while dropping tape
// nodes and temporaries).

Tensor AddSigmoid(const Tensor& a, const Tensor& b);  // sigmoid(a + b)
Tensor AddTanh(const Tensor& a, const Tensor& b);     // tanh(a + b)
Tensor ExpNegRelu(const Tensor& a);                   // exp(-relu(a))

// Fused backward kernels (parenthesization pinned to the composed graphs):
Tensor SigmoidGrad(const Tensor& g, const Tensor& y);  // g * (y * (1 - y))
Tensor TanhGrad(const Tensor& g, const Tensor& y);     // g * (1 - y*y)
// (-(g * y)) * (x > 0 ? 1 : 0); the negation is an exact sign flip
Tensor ExpNegReluGrad(const Tensor& g, const Tensor& y, const Tensor& x);
// Per last-axis row: dx = y * (g - dot(g, y)), dot under the 8-lane-blocked
// reduction contract of simd_math.h.
Tensor SoftmaxLastAxisGrad(const Tensor& g, const Tensor& y);

// -- Matrix multiplication ------------------------------------------------------

// MatMul(a, b, trans_a, trans_b): logical shapes after transposition must be
// [.., M, K] x [.., K, N] -> [.., M, N]. Supported operand ranks:
//   2-D x 2-D, 3-D x 3-D (equal batch), 3-D x 2-D (rhs shared across batch).
//
// Determinism contract: every output element is acc = +0 then
// acc = fma(a_ip, b_pj, acc) for p ascending — the sequence GemmReference
// spells out below. The production kernels (simple and packed/blocked) are
// bitwise identical to GemmReference for all inputs and thread counts.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

// The executable definition of the GEMM contract: naive i-j-k loops, one
// std::fma per k step. C = op(A) * op(B) with A stored [M,K] ([K,M] when
// trans_a), B stored [K,N] ([N,K] when trans_b), C stored [M,N]. Slow; used
// by tests to pin the optimized kernels bit-for-bit.
void GemmReference(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, bool trans_a, bool trans_b);

// -- Shape manipulation ----------------------------------------------------------

// 2-D transpose.
Tensor Transpose(const Tensor& a);
// Swaps the last two dimensions of a rank >= 2 tensor.
Tensor TransposeLast2(const Tensor& a);
// Swaps the first two dimensions of a rank >= 2 tensor: [A, B, rest...] ->
// [B, A, rest...]. This is the batch-major <-> time-major relayout of the
// recurrence engine ([B, T, C] <-> [T, B, C]); a pure permutation copy, so
// every element value is preserved bit-for-bit.
Tensor Transpose01(const Tensor& a);
// Reverses the order of entries along `axis` (a pure permutation copy).
Tensor ReverseAxis(const Tensor& a, int64_t axis);
// Stacks N same-shaped tensors into [N, shape...]. Unlike Concat it adds a
// new leading axis, which keeps the result time-major when the parts are
// per-step states.
Tensor StackRows(const std::vector<Tensor>& parts);
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
// Slice of length `len` starting at `start` along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);

// -- Fused recurrent gate kernels -------------------------------------------------
//
// One pass over the gate pre-activations instead of ~10 elementwise kernel
// dispatches per timestep. Per element these run exactly the float
// expressions the composed kernels (Slice + Add + Sigmoid/Tanh + Mul + Sub)
// would, in the same order, so the fused path is bitwise identical to the
// op-by-op path for all inputs and thread counts.

// GRU step. xw = x_t*W_ih + b (packed [B, 3H], gate order r|z|n), hu =
// h_{t-1}*W_hh ([B, 3H]), h = h_{t-1} ([B, H]). Returns h_t. When the
// capture pointers are non-null the gate activations r, z, n are written
// out (retained by autograd for the backward pass); pass nullptr in no-grad
// mode to skip storing them.
Tensor GruGates(const Tensor& xw, const Tensor& hu, const Tensor& h,
                Tensor* r_out, Tensor* z_out, Tensor* n_out);

// LSTM step. xw = x_t*W_ih ([B, 4H], gate order i|f|g|o), hu = h_{t-1}*W_hh
// ([B, 4H]), bias [4H], c = c_{t-1} ([B, H]). Returns the packed next state
// [2, B, H] with h_t in row block 0 and c_t in row block 1 (time-major
// packing keeps both exposable as zero-copy ViewRows). Optional captures:
// gate activations i, f, g, o and tanh(c_t).
Tensor LstmGates(const Tensor& xw, const Tensor& hu, const Tensor& bias,
                 const Tensor& c, Tensor* i_out, Tensor* f_out, Tensor* g_out,
                 Tensor* o_out, Tensor* tc_out);

// -- Reductions --------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
Tensor Sum(const Tensor& a, int64_t axis, bool keepdims = false);
Tensor Mean(const Tensor& a, int64_t axis, bool keepdims = false);
Tensor Max(const Tensor& a, int64_t axis, bool keepdims = false);

// Numerically stable softmax along `axis`.
Tensor Softmax(const Tensor& a, int64_t axis);

// -- Comparisons for tests -------------------------------------------------------------

// True iff shapes match and |a-b| <= atol + rtol*|b| element-wise.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

// Largest absolute element-wise difference (shapes must match).
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace elda

#endif  // ELDA_TENSOR_TENSOR_OPS_H_
