#include "train/checkpoint.h"

#include <cstring>

#include "health/ckpt_io.h"

namespace elda {
namespace train {
namespace {

constexpr int64_t kMaxTensorElements = int64_t{1} << 28;
constexpr uint64_t kMaxListEntries = 1 << 20;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

class BlobReader {
 public:
  explicit BlobReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Pod(T* value) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Floats(float* dst, int64_t count) {
    const size_t n = static_cast<size_t>(count) * sizeof(float);
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool Done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

void AppendTensorList(std::string* out, const std::vector<Tensor>& tensors) {
  AppendPod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    AppendPod(out, static_cast<uint32_t>(t.dim()));
    for (int64_t d : t.shape()) AppendPod(out, d);
    out->append(reinterpret_cast<const char*>(t.data()),
                static_cast<size_t>(t.size()) * sizeof(float));
  }
}

bool ReadTensorList(BlobReader* reader, std::vector<Tensor>* tensors,
                    std::string* error, const std::string& what) {
  uint64_t count = 0;
  if (!reader->Pod(&count) || count > kMaxListEntries) {
    return Fail(error, "corrupt tensor count in " + what);
  }
  std::vector<Tensor> parsed;
  parsed.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!reader->Pod(&rank) || rank > 8) {
      return Fail(error, "corrupt tensor header in " + what);
    }
    std::vector<int64_t> shape(rank);
    int64_t volume = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      if (!reader->Pod(&shape[d]) || shape[d] <= 0 ||
          volume > kMaxTensorElements / shape[d]) {
        return Fail(error, "rejected tensor dimensions in " + what);
      }
      volume *= shape[d];
    }
    Tensor t(shape);
    if (!reader->Floats(t.data(), volume)) {
      return Fail(error, "truncated tensor data in " + what);
    }
    parsed.push_back(std::move(t));
  }
  *tensors = std::move(parsed);
  return true;
}

const health::Section* RequireSection(
    const std::vector<health::Section>& sections, const std::string& name,
    std::string* error) {
  const health::Section* section = health::FindSection(sections, name);
  if (section == nullptr) {
    Fail(error, "checkpoint is missing section '" + name + "'");
  }
  return section;
}

}  // namespace

bool SaveTrainCheckpoint(const std::string& path, const TrainCheckpoint& ckpt,
                         std::string* error) {
  std::vector<health::Section> sections;

  std::string progress;
  AppendPod(&progress, ckpt.next_epoch);
  AppendPod(&progress, ckpt.epochs_run);
  AppendPod(&progress, ckpt.best_epoch);
  AppendPod(&progress, ckpt.epochs_without_improvement);
  AppendPod(&progress, ckpt.total_batches);
  AppendPod(&progress, ckpt.recoveries);
  AppendPod(&progress, ckpt.skipped_batches);
  AppendPod(&progress, ckpt.best_val_auc_pr);
  AppendPod(&progress, ckpt.best_val.bce);
  AppendPod(&progress, ckpt.best_val.auc_roc);
  AppendPod(&progress, ckpt.best_val.auc_pr);
  AppendPod(&progress, ckpt.total_batch_seconds);
  sections.push_back({"progress", std::move(progress)});

  sections.push_back({"model", ckpt.params_blob});

  std::string adam;
  AppendPod(&adam, ckpt.adam.step_count);
  AppendPod(&adam, ckpt.adam.lr);
  AppendTensorList(&adam, ckpt.adam.m);
  AppendTensorList(&adam, ckpt.adam.v);
  sections.push_back({"adam", std::move(adam)});

  std::string rng;
  for (uint64_t s : ckpt.rng.s) AppendPod(&rng, s);
  AppendPod(&rng, ckpt.rng.cached_normal);
  AppendPod(&rng, static_cast<uint8_t>(ckpt.rng.has_cached_normal ? 1 : 0));
  sections.push_back({"rng", std::move(rng)});

  std::string batcher;
  AppendPod(&batcher, static_cast<uint64_t>(ckpt.batch_order.size()));
  for (int64_t idx : ckpt.batch_order) AppendPod(&batcher, idx);
  sections.push_back({"batcher", std::move(batcher)});

  std::string best;
  AppendTensorList(&best, ckpt.best_params);
  sections.push_back({"best", std::move(best)});

  if (!ckpt.source_state.empty()) {
    sections.push_back({"source", ckpt.source_state});
  }

  return health::WriteSectionedFile(path, sections, error);
}

bool LoadTrainCheckpoint(const std::string& path, TrainCheckpoint* ckpt,
                         std::string* error) {
  ELDA_CHECK(ckpt != nullptr);
  std::vector<health::Section> sections;
  if (!health::ReadSectionedFile(path, &sections, error)) return false;

  TrainCheckpoint parsed;
  const health::Section* progress =
      RequireSection(sections, "progress", error);
  if (progress == nullptr) return false;
  {
    BlobReader reader(progress->payload);
    const bool ok = reader.Pod(&parsed.next_epoch) &&
                 reader.Pod(&parsed.epochs_run) &&
                 reader.Pod(&parsed.best_epoch) &&
                 reader.Pod(&parsed.epochs_without_improvement) &&
                 reader.Pod(&parsed.total_batches) &&
                 reader.Pod(&parsed.recoveries) &&
                 reader.Pod(&parsed.skipped_batches) &&
                 reader.Pod(&parsed.best_val_auc_pr) &&
                 reader.Pod(&parsed.best_val.bce) &&
                 reader.Pod(&parsed.best_val.auc_roc) &&
                 reader.Pod(&parsed.best_val.auc_pr) &&
                 reader.Pod(&parsed.total_batch_seconds);
    if (!ok || !reader.Done()) {
      return Fail(error, "corrupt 'progress' section in " + path);
    }
    if (parsed.next_epoch < 0 || parsed.total_batches < 0) {
      return Fail(error, "implausible progress counters in " + path);
    }
  }

  const health::Section* model = RequireSection(sections, "model", error);
  if (model == nullptr) return false;
  parsed.params_blob = model->payload;

  const health::Section* adam = RequireSection(sections, "adam", error);
  if (adam == nullptr) return false;
  {
    BlobReader reader(adam->payload);
    if (!reader.Pod(&parsed.adam.step_count) ||
        !reader.Pod(&parsed.adam.lr) ||
        !ReadTensorList(&reader, &parsed.adam.m, error, "'adam' (m)") ||
        !ReadTensorList(&reader, &parsed.adam.v, error, "'adam' (v)") ||
        !reader.Done()) {
      if (error != nullptr && error->empty()) {
        *error = "corrupt 'adam' section in " + path;
      }
      return false;
    }
  }

  const health::Section* rng = RequireSection(sections, "rng", error);
  if (rng == nullptr) return false;
  {
    BlobReader reader(rng->payload);
    uint8_t has_cached = 0;
    bool ok = true;
    for (uint64_t& s : parsed.rng.s) ok = ok && reader.Pod(&s);
    ok = ok && reader.Pod(&parsed.rng.cached_normal) &&
         reader.Pod(&has_cached) && reader.Done();
    if (!ok) return Fail(error, "corrupt 'rng' section in " + path);
    parsed.rng.has_cached_normal = has_cached != 0;
  }

  const health::Section* batcher = RequireSection(sections, "batcher", error);
  if (batcher == nullptr) return false;
  {
    BlobReader reader(batcher->payload);
    uint64_t count = 0;
    if (!reader.Pod(&count) || count > kMaxListEntries) {
      return Fail(error, "corrupt 'batcher' section in " + path);
    }
    parsed.batch_order.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!reader.Pod(&parsed.batch_order[i])) {
        return Fail(error, "truncated 'batcher' section in " + path);
      }
    }
    if (!reader.Done()) {
      return Fail(error, "trailing bytes in 'batcher' section of " + path);
    }
  }

  const health::Section* best = RequireSection(sections, "best", error);
  if (best == nullptr) return false;
  {
    BlobReader reader(best->payload);
    if (!ReadTensorList(&reader, &parsed.best_params, error, "'best'") ||
        !reader.Done()) {
      if (error != nullptr && error->empty()) {
        *error = "corrupt 'best' section in " + path;
      }
      return false;
    }
  }

  // Optional: streamed-loader cursor state (absent in older checkpoints and
  // classic Train runs).
  const health::Section* source = health::FindSection(sections, "source");
  if (source != nullptr) parsed.source_state = source->payload;

  *ckpt = std::move(parsed);
  return true;
}

}  // namespace train
}  // namespace elda
