// Crash-safe full-run training checkpoints.
//
// A TrainCheckpoint captures everything Trainer::Train needs to continue a
// killed run bit-for-bit: model parameters, Adam moments and step counter,
// the RNG stream, the batcher's current index permutation, the best-
// validation snapshot, and the early-stopping bookkeeping. It is stored in
// the sectioned v2 container (health/ckpt_io.h): atomic writes, per-section
// CRC32 verified at load, so a torn or bit-flipped file is rejected with a
// precise error instead of resuming from garbage.

#ifndef ELDA_TRAIN_CHECKPOINT_H_
#define ELDA_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace elda {
namespace train {

// State of a Trainer::Train run at an epoch boundary (captured after the
// epoch's evaluation and bookkeeping, before the next epoch's shuffle).
struct TrainCheckpoint {
  // Progress and early-stopping bookkeeping.
  int64_t next_epoch = 0;  // first epoch the resumed run should execute
  int64_t epochs_run = 0;
  int64_t best_epoch = 0;
  int64_t epochs_without_improvement = 0;
  int64_t total_batches = 0;
  int64_t recoveries = 0;
  int64_t skipped_batches = 0;
  double best_val_auc_pr = -1.0;
  EvalResult best_val;
  double total_batch_seconds = 0.0;

  // Run state proper.
  std::string params_blob;          // nn::EncodeParameters of the model
  optim::AdamState adam;            // moments, step counter, current LR
  RngState rng;                     // shuffle / dropout stream
  std::vector<int64_t> batch_order; // batcher permutation at the boundary
  std::vector<Tensor> best_params;  // best-validation snapshot (may be empty)
  // BatchSource::ExportState of the training stream (TrainStreamed runs;
  // empty for the classic Train path). Optional section: checkpoints written
  // before this field existed load with it empty.
  std::string source_state;
};

// Atomic write of the checkpoint to `path`. Returns false with a message on
// I/O failure (or an injected fault); an existing checkpoint at `path`
// survives a failed write untouched.
bool SaveTrainCheckpoint(const std::string& path, const TrainCheckpoint& ckpt,
                         std::string* error = nullptr);

// Loads and validates a checkpoint (magic, version, CRCs, section layout,
// tensor dims). `ckpt` is only modified on success.
bool LoadTrainCheckpoint(const std::string& path, TrainCheckpoint* ckpt,
                         std::string* error = nullptr);

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_CHECKPOINT_H_
