#include "train/experiment.h"

#include <iostream>

namespace elda {
namespace train {

PreparedExperiment::PreparedExperiment(const data::EmrDataset& cohort,
                                       data::Task task, uint64_t split_seed)
    : task_(task), num_features_(cohort.num_features()) {
  std::vector<float> labels;
  labels.reserve(cohort.size());
  for (const data::EmrSample& s : cohort.samples()) {
    labels.push_back(task == data::Task::kMortality ? s.mortality_label
                                                    : s.los_gt7_label);
  }
  Rng rng(split_seed);
  split_ = data::StratifiedSplit(labels, 0.8, 0.1, &rng);
  standardizer_.Fit(cohort, split_.train);
  prepared_ = data::PrepareDataset(cohort, standardizer_);
}

ModelStats RunRepeated(
    const std::function<std::unique_ptr<SequenceModel>(uint64_t seed)>&
        make_model,
    const PreparedExperiment& experiment, const TrainerConfig& trainer_config,
    int64_t num_runs) {
  ELDA_CHECK_GT(num_runs, 0);
  ModelStats stats;
  std::vector<double> bces, rocs, prs;
  double batch_seconds = 0.0, predict_ms = 0.0;
  for (int64_t run = 0; run < num_runs; ++run) {
    TrainerConfig config = trainer_config;
    config.seed = trainer_config.seed + run * 1000003;
    std::unique_ptr<SequenceModel> model = make_model(config.seed);
    if (run == 0) {
      stats.name = model->name();
      stats.num_parameters = model->NumParameters();
    }
    Trainer trainer(config);
    TrainResult result = trainer.Train(model.get(), experiment.prepared(),
                                       experiment.split(), experiment.task());
    if (result.status != health::TrainStatus::kOk &&
        result.status != health::TrainStatus::kRecovered) {
      // A failed run has no trustworthy metrics; report it instead of
      // letting garbage skew the aggregate.
      ++stats.failed_runs;
      std::cerr << stats.name << " run " << run << " failed ("
                << health::TrainStatusName(result.status) << ": "
                << result.status_message << "); excluded from aggregates\n";
      continue;
    }
    if (result.status == health::TrainStatus::kRecovered) {
      ++stats.recovered_runs;
    }
    bces.push_back(result.test.bce);
    rocs.push_back(result.test.auc_roc);
    prs.push_back(result.test.auc_pr);
    batch_seconds += result.train_seconds_per_batch;
    predict_ms += result.predict_ms_per_sample;
  }
  const int64_t completed = static_cast<int64_t>(bces.size());
  ELDA_CHECK_GT(completed, 0)
      << "all" << num_runs << "runs of" << stats.name << "failed";
  stats.bce = metrics::Aggregate(bces);
  stats.auc_roc = metrics::Aggregate(rocs);
  stats.auc_pr = metrics::Aggregate(prs);
  stats.train_seconds_per_batch = batch_seconds / completed;
  stats.predict_ms_per_sample = predict_ms / completed;
  return stats;
}

}  // namespace train
}  // namespace elda
