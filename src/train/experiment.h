// Experiment runner shared by the benchmark harness: prepares a cohort once
// (split, standardise, impute) and trains any registered model on it over
// one or more seeds, aggregating metrics as mean +/- std, mirroring the
// paper's "run five times per model per application" protocol.

#ifndef ELDA_TRAIN_EXPERIMENT_H_
#define ELDA_TRAIN_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/emr.h"
#include "data/pipeline.h"
#include "metrics/metrics.h"
#include "train/trainer.h"

namespace elda {
namespace train {

// A cohort prepared for a specific task.
class PreparedExperiment {
 public:
  // Splits 80/10/10 (stratified on the task label), fits the standardizer on
  // the training split, prepares all samples.
  PreparedExperiment(const data::EmrDataset& cohort, data::Task task,
                     uint64_t split_seed = 17);

  const std::vector<data::PreparedSample>& prepared() const {
    return prepared_;
  }
  const data::SplitIndices& split() const { return split_; }
  data::Task task() const { return task_; }
  const data::Standardizer& standardizer() const { return standardizer_; }
  int64_t num_features() const { return num_features_; }

 private:
  data::Task task_;
  int64_t num_features_;
  data::Standardizer standardizer_;
  data::SplitIndices split_;
  std::vector<data::PreparedSample> prepared_;
};

// Aggregated results of training one model `num_runs` times.
struct ModelStats {
  std::string name;
  int64_t num_parameters = 0;
  metrics::MeanStd bce;
  metrics::MeanStd auc_roc;
  metrics::MeanStd auc_pr;
  double train_seconds_per_batch = 0.0;
  double predict_ms_per_sample = 0.0;
  // Runs that ended with a terminal TrainStatus (aborted / checkpoint
  // error); their metrics are excluded from the aggregates above.
  int64_t failed_runs = 0;
  int64_t recovered_runs = 0;  // completed via skip/rollback recovery
};

// Trains `make_model(seed)` num_runs times on the prepared experiment and
// aggregates the test metrics over the runs that completed (status kOk or
// kRecovered). Failed runs are counted in `failed_runs` and skipped; at
// least one run must complete.
ModelStats RunRepeated(
    const std::function<std::unique_ptr<SequenceModel>(uint64_t seed)>&
        make_model,
    const PreparedExperiment& experiment, const TrainerConfig& trainer_config,
    int64_t num_runs);

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_EXPERIMENT_H_
