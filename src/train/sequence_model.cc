#include "train/sequence_model.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "autograd/ops.h"
#include "util/logging.h"

namespace elda {
namespace train {
namespace {

// Default resident state: a bounded rolling window of the raw prepared
// observation rows, replayed through Forward() on every step. Correct for
// any model (the window is exactly the prefix a batch-mode caller would
// score) at O(window) cost per observation.
struct WindowReplayState : nn::StepState {
  explicit WindowReplayState(int64_t capacity)
      : x(capacity), mask(capacity), delta(capacity) {}

  void Save(nn::StateWriter* w) const override {
    nn::StepState::Save(w);
    w->Window(x);
    w->Window(mask);
    w->Window(delta);
  }

  bool Load(nn::StateReader* r) override {
    return nn::StepState::Load(r) && r->WindowInto(&x) &&
           r->WindowInto(&mask) && r->WindowInto(&delta);
  }

  nn::RollingWindow x;
  nn::RollingWindow mask;
  nn::RollingWindow delta;
};

}  // namespace

ag::Variable SequenceModel::EncodeSteps(const data::Batch& batch,
                                        nn::ForwardContext* ctx) const {
  ELDA_CHECK(has_step_encoding())
      << name() << " exposes a terminal-only encoding (no per-step state)";
  const int64_t b = batch.x.shape(0);
  const int64_t t_total = batch.x.shape(1);
  const int64_t c = batch.x.shape(2);
  const int64_t h = encoding_dim();
  const int64_t min_steps = min_steps_to_score();
  // Prefix replay: encoding t is EncodeTerminal over the first t+1 steps —
  // exactly the window a streaming client's state has absorbed at step t, so
  // Readout over these rows is bitwise-equal to the StepForward risk stream.
  std::vector<ag::Variable> per_step;
  per_step.reserve(static_cast<size_t>(t_total));
  for (int64_t t = 0; t < t_total; ++t) {
    const int64_t len = t + 1;
    if (len < min_steps) {
      per_step.push_back(ag::Constant(
          Tensor::Full({b, h}, std::numeric_limits<float>::quiet_NaN())));
      continue;
    }
    data::Batch prefix;
    prefix.x = Tensor::Empty({b, len, c});
    prefix.mask = Tensor::Empty({b, len, c});
    prefix.delta = Tensor::Empty({b, len, c});
    prefix.y = Tensor::Zeros({b});
    prefix.lengths.resize(static_cast<size_t>(b));
    const size_t bytes = static_cast<size_t>(len * c) * sizeof(float);
    for (int64_t row = 0; row < b; ++row) {
      const int64_t src = row * t_total * c;
      std::memcpy(prefix.x.data() + row * len * c, batch.x.data() + src,
                  bytes);
      std::memcpy(prefix.mask.data() + row * len * c, batch.mask.data() + src,
                  bytes);
      std::memcpy(prefix.delta.data() + row * len * c,
                  batch.delta.data() + src, bytes);
      const int64_t full = batch.lengths.empty()
                               ? t_total
                               : batch.lengths[static_cast<size_t>(row)];
      prefix.lengths[static_cast<size_t>(row)] = std::min(full, len);
    }
    per_step.push_back(EncodeTerminal(prefix, ctx));
  }
  return ag::Transpose01(ag::Stack0(per_step));  // [T, B, H] -> [B, T, H]
}

std::unique_ptr<nn::StepState> SequenceModel::MakeStepState(
    int64_t window_capacity) const {
  ELDA_CHECK_GE(window_capacity, 1);
  return std::make_unique<WindowReplayState>(window_capacity);
}

ag::Variable SequenceModel::StepForward(
    const StepBatch& obs, const std::vector<nn::StepState*>& states,
    nn::ForwardContext* ctx) const {
  const int64_t n = static_cast<int64_t>(states.size());
  ELDA_CHECK_EQ(obs.x.shape(0), n);
  ELDA_CHECK_EQ(obs.mask.shape(0), n);
  ELDA_CHECK_EQ(obs.delta.shape(0), n);
  const int64_t cols = obs.x.shape(1);

  std::vector<WindowReplayState*> ws(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    ws[b] = dynamic_cast<WindowReplayState*>(states[b]);
    ELDA_CHECK(ws[b] != nullptr)
        << "StepForward given a state not made by this model's MakeStepState";
    ws[b]->x.Append(obs.x.data() + b * cols, cols);
    ws[b]->mask.Append(obs.mask.data() + b * cols, cols);
    ws[b]->delta.Append(obs.delta.data() + b * cols, cols);
    ++ws[b]->steps_seen;
  }

  Tensor logits =
      Tensor::Full({n}, std::numeric_limits<float>::quiet_NaN());
  // Group sequences by current window length so each length replays as one
  // batched Forward call. Rows of a batch are computed independently, so
  // grouping does not change any value.
  std::map<int64_t, std::vector<int64_t>> by_len;
  const int64_t min_steps = min_steps_to_score();
  for (int64_t b = 0; b < n; ++b) {
    if (ws[b]->x.size() >= min_steps) by_len[ws[b]->x.size()].push_back(b);
  }
  for (const auto& [len, group] : by_len) {
    const int64_t g = static_cast<int64_t>(group.size());
    data::Batch batch;
    batch.x = Tensor::Empty({g, len, cols});
    batch.mask = Tensor::Empty({g, len, cols});
    batch.delta = Tensor::Empty({g, len, cols});
    batch.y = Tensor::Zeros({g});
    // Every row in this group has exactly `len` real steps, so the replayed
    // batch is uniform; filling lengths keeps length-aware Forward
    // implementations on their dense path explicitly.
    batch.lengths.assign(static_cast<size_t>(g), len);
    for (int64_t gi = 0; gi < g; ++gi) {
      WindowReplayState* w = ws[group[gi]];
      w->x.CopyInto(batch.x.data() + gi * len * cols);
      w->mask.CopyInto(batch.mask.data() + gi * len * cols);
      w->delta.CopyInto(batch.delta.data() + gi * len * cols);
    }
    ag::Variable out = Forward(batch, ctx);
    ELDA_CHECK_EQ(out.value().size(), g);
    const float* src = out.value().data();
    for (int64_t gi = 0; gi < g; ++gi) logits.data()[group[gi]] = src[gi];
  }
  return ag::Constant(logits);
}

}  // namespace train
}  // namespace elda
