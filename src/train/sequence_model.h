// The common interface every predictive model in this repository implements:
// ELDA-Net, its ablation variants, and all eleven baselines.

#ifndef ELDA_TRAIN_SEQUENCE_MODEL_H_
#define ELDA_TRAIN_SEQUENCE_MODEL_H_

#include <string>

#include "autograd/variable.h"
#include "data/pipeline.h"
#include "nn/module.h"

namespace elda {
namespace train {

class SequenceModel : public nn::Module {
 public:
  // Computes pre-sigmoid risk logits [B] for a batch. Models are free to use
  // any of x / mask / delta. Non-const because models may consume dropout
  // randomness and cache attention maps for interpretation.
  virtual ag::Variable Forward(const data::Batch& batch) = 0;

  // Display name used in benchmark tables ("GRU-D", "ELDA-Net", ...).
  virtual std::string name() const = 0;
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_SEQUENCE_MODEL_H_
