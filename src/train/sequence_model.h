// The common interface every predictive model in this repository implements:
// ELDA-Net, its ablation variants, and all eleven baselines.

#ifndef ELDA_TRAIN_SEQUENCE_MODEL_H_
#define ELDA_TRAIN_SEQUENCE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/pipeline.h"
#include "nn/forward_context.h"
#include "nn/module.h"
#include "nn/step_state.h"

namespace elda {
namespace train {

// One observation for each of B live sequences — the step-level analogue of
// data::Batch. Row b belongs to the b-th StepState passed to StepForward.
// All three slabs are [B, C] with the same prepared semantics as one
// timestep of data::Batch (standardized LOCF values, observation mask,
// steps-since-last-observation).
struct StepBatch {
  Tensor x;
  Tensor mask;
  Tensor delta;

  int64_t size() const { return x.defined() ? x.shape(0) : 0; }
};

// Encoding bundle returned by SequenceModel::Encode. `terminal` is always
// defined; `steps` only when per-step encodings were requested (and the
// model supports them).
struct Encoding {
  ag::Variable terminal;  // [B, H], H = encoding_dim()
  ag::Variable steps;     // [B, T, H]; rows below min_steps_to_score are NaN
};

class SequenceModel : public nn::Module {
 public:
  // -- Encoder / readout decomposition --------------------------------------
  //
  // Every model is a sequence *encoder* (batch -> representation) plus a
  // binary-risk *readout* (representation rows -> pre-sigmoid logits). Task
  // heads (train/task_head.h) build on this split: the terminal mortality
  // head recomposes exactly the legacy Forward, per-step decompensation
  // applies the readout to each step's encoding, and phenotype / LOS heads
  // attach their own linear layers to the terminal encoding.

  // Terminal representation [B, encoding_dim()] — the vector the model's own
  // readout consumes. Models are free to use any of x / mask / delta.
  // Logically const and safe to call concurrently: all per-call state
  // (train/eval mode, the dropout RNG stream, captured interpretation
  // surfaces) lives in `ctx`, which the caller owns — one context per
  // thread. `ctx` is never null.
  virtual ag::Variable EncodeTerminal(const data::Batch& batch,
                                      nn::ForwardContext* ctx) const = 0;

  // Maps representation rows [N, encoding_dim()] to pre-sigmoid risk logits
  // [N]. Every implementation is row-independent (strict-k GEMM, per-row
  // softmax), so scoring rows in any batching produces identical floats.
  virtual ag::Variable Readout(const ag::Variable& rep,
                               nn::ForwardContext* ctx) const = 0;

  // Width of the representation rows EncodeTerminal/EncodeSteps produce.
  virtual int64_t encoding_dim() const = 0;

  // Per-step representations [B, T, H]: entry (b, t) is EncodeTerminal over
  // the prefix [0, t] of row b, so Readout over it is the model's rolling
  // risk — the decompensation workload. Steps below min_steps_to_score()
  // hold quiet-NaN rows. The base implementation replays each prefix through
  // EncodeTerminal (correct for every model, O(T) forwards); models with a
  // causal recurrence may override with a single-sweep version. Only valid
  // when has_step_encoding() is true.
  virtual ag::Variable EncodeSteps(const data::Batch& batch,
                                   nn::ForwardContext* ctx) const;

  // False for models with no natural per-step state (LR / FM / AFM collapse
  // time before encoding); they expose a terminal-only encoding and
  // EncodeSteps CHECK-fails.
  virtual bool has_step_encoding() const { return true; }

  // Bundles the terminal (and optionally per-step) encodings.
  Encoding Encode(const data::Batch& batch, nn::ForwardContext* ctx,
                  bool want_steps = false) const {
    Encoding enc;
    enc.terminal = EncodeTerminal(batch, ctx);
    if (want_steps) enc.steps = EncodeSteps(batch, ctx);
    return enc;
  }

  // Pre-sigmoid risk logits [B] for a batch: the legacy monolithic-classifier
  // entry point, now the fixed composition Readout(EncodeTerminal(.)). Each
  // model's split preserves its pre-decomposition op sequence exactly, so
  // this is bitwise-identical to the former virtual Forward.
  ag::Variable Forward(const data::Batch& batch, nn::ForwardContext* ctx) const {
    return Readout(EncodeTerminal(batch, ctx), ctx);
  }

  // Convenience overload: inference-mode forward (dropout off, nothing
  // captured). Note this fixes the mode regardless of Module::training();
  // training runs must pass an explicit context.
  ag::Variable Forward(const data::Batch& batch) const {
    nn::ForwardContext ctx;
    return Forward(batch, &ctx);
  }

  // Display name used in benchmark tables ("GRU-D", "ELDA-Net", ...).
  virtual std::string name() const = 0;

  // -- Step-level inference (the serving path; see DESIGN.md) ---------------
  //
  // A streaming client admits one StepState per live sequence and calls
  // StepForward once per new observation instead of replaying the whole
  // window through Forward. Models with a causal recurrence override these
  // with resident-state implementations doing O(1) work per observation;
  // the base-class default keeps a bounded rolling window of raw
  // observations and replays it, which is correct for every model but O(T)
  // per step.

  // Allocates the resident state for one sequence. `window_capacity` bounds
  // any history the state retains (raw-observation windows for replay
  // models, hidden-state histories for attention scoring); purely
  // incremental states ignore it. Once a stay outruns the capacity the
  // oldest steps are evicted and scores follow the retained suffix window.
  //
  // Every concrete state implements nn::StepState::Save/Load, so a state
  // serialized mid-stream and loaded into a fresh MakeStepState allocation
  // (same model, same window_capacity) continues scoring bitwise-identically
  // — the contract the serving layer's session checkpoint/restore builds on.
  virtual std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const;

  // Advances each of the B sequences by one observation (row b of `obs`
  // belongs to states[b], which must come from this model's MakeStepState)
  // and returns pre-sigmoid risk logits [B]. Because every kernel on the
  // inference path computes output rows independently (strict-k GEMM,
  // elementwise gate math, per-row softmax), row b is bitwise identical to
  // Forward() over the window states[b] has seen, regardless of how
  // sequences are batched together. Sequences with fewer than
  // min_steps_to_score() observations get a quiet-NaN logit but still
  // advance. Inference-only: call under ag::NoGradScope; the returned
  // variable is detached (no tape).
  virtual ag::Variable StepForward(const StepBatch& obs,
                                   const std::vector<nn::StepState*>& states,
                                   nn::ForwardContext* ctx) const;

  // True when StepForward advances resident recurrent state in O(1) per
  // observation; false when it replays the bounded rolling window (the
  // base-class default).
  virtual bool has_incremental_step() const { return false; }

  // Fewest observations before the model can score a window at all (e.g.
  // StageNet's conv kernel, attention modules needing two steps).
  virtual int64_t min_steps_to_score() const { return 1; }
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_SEQUENCE_MODEL_H_
