// The common interface every predictive model in this repository implements:
// ELDA-Net, its ablation variants, and all eleven baselines.

#ifndef ELDA_TRAIN_SEQUENCE_MODEL_H_
#define ELDA_TRAIN_SEQUENCE_MODEL_H_

#include <string>

#include "autograd/variable.h"
#include "data/pipeline.h"
#include "nn/forward_context.h"
#include "nn/module.h"

namespace elda {
namespace train {

class SequenceModel : public nn::Module {
 public:
  // Computes pre-sigmoid risk logits [B] for a batch. Models are free to use
  // any of x / mask / delta. Logically const and safe to call concurrently:
  // all per-call state (train/eval mode, the dropout RNG stream, captured
  // interpretation surfaces) lives in `ctx`, which the caller owns — one
  // context per thread. `ctx` is never null.
  virtual ag::Variable Forward(const data::Batch& batch,
                               nn::ForwardContext* ctx) const = 0;

  // Convenience overload: inference-mode forward (dropout off, nothing
  // captured). Derived classes re-expose it with
  // `using train::SequenceModel::Forward;`. Note this fixes the mode
  // regardless of Module::training(); training runs must pass an explicit
  // context.
  ag::Variable Forward(const data::Batch& batch) const {
    nn::ForwardContext ctx;
    return Forward(batch, &ctx);
  }

  // Display name used in benchmark tables ("GRU-D", "ELDA-Net", ...).
  virtual std::string name() const = 0;
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_SEQUENCE_MODEL_H_
