// The common interface every predictive model in this repository implements:
// ELDA-Net, its ablation variants, and all eleven baselines.

#ifndef ELDA_TRAIN_SEQUENCE_MODEL_H_
#define ELDA_TRAIN_SEQUENCE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/pipeline.h"
#include "nn/forward_context.h"
#include "nn/module.h"
#include "nn/step_state.h"

namespace elda {
namespace train {

// One observation for each of B live sequences — the step-level analogue of
// data::Batch. Row b belongs to the b-th StepState passed to StepForward.
// All three slabs are [B, C] with the same prepared semantics as one
// timestep of data::Batch (standardized LOCF values, observation mask,
// steps-since-last-observation).
struct StepBatch {
  Tensor x;
  Tensor mask;
  Tensor delta;

  int64_t size() const { return x.defined() ? x.shape(0) : 0; }
};

class SequenceModel : public nn::Module {
 public:
  // Computes pre-sigmoid risk logits [B] for a batch. Models are free to use
  // any of x / mask / delta. Logically const and safe to call concurrently:
  // all per-call state (train/eval mode, the dropout RNG stream, captured
  // interpretation surfaces) lives in `ctx`, which the caller owns — one
  // context per thread. `ctx` is never null.
  virtual ag::Variable Forward(const data::Batch& batch,
                               nn::ForwardContext* ctx) const = 0;

  // Convenience overload: inference-mode forward (dropout off, nothing
  // captured). Derived classes re-expose it with
  // `using train::SequenceModel::Forward;`. Note this fixes the mode
  // regardless of Module::training(); training runs must pass an explicit
  // context.
  ag::Variable Forward(const data::Batch& batch) const {
    nn::ForwardContext ctx;
    return Forward(batch, &ctx);
  }

  // Display name used in benchmark tables ("GRU-D", "ELDA-Net", ...).
  virtual std::string name() const = 0;

  // -- Step-level inference (the serving path; see DESIGN.md) ---------------
  //
  // A streaming client admits one StepState per live sequence and calls
  // StepForward once per new observation instead of replaying the whole
  // window through Forward. Models with a causal recurrence override these
  // with resident-state implementations doing O(1) work per observation;
  // the base-class default keeps a bounded rolling window of raw
  // observations and replays it, which is correct for every model but O(T)
  // per step.

  // Allocates the resident state for one sequence. `window_capacity` bounds
  // any history the state retains (raw-observation windows for replay
  // models, hidden-state histories for attention scoring); purely
  // incremental states ignore it. Once a stay outruns the capacity the
  // oldest steps are evicted and scores follow the retained suffix window.
  //
  // Every concrete state implements nn::StepState::Save/Load, so a state
  // serialized mid-stream and loaded into a fresh MakeStepState allocation
  // (same model, same window_capacity) continues scoring bitwise-identically
  // — the contract the serving layer's session checkpoint/restore builds on.
  virtual std::unique_ptr<nn::StepState> MakeStepState(
      int64_t window_capacity) const;

  // Advances each of the B sequences by one observation (row b of `obs`
  // belongs to states[b], which must come from this model's MakeStepState)
  // and returns pre-sigmoid risk logits [B]. Because every kernel on the
  // inference path computes output rows independently (strict-k GEMM,
  // elementwise gate math, per-row softmax), row b is bitwise identical to
  // Forward() over the window states[b] has seen, regardless of how
  // sequences are batched together. Sequences with fewer than
  // min_steps_to_score() observations get a quiet-NaN logit but still
  // advance. Inference-only: call under ag::NoGradScope; the returned
  // variable is detached (no tape).
  virtual ag::Variable StepForward(const StepBatch& obs,
                                   const std::vector<nn::StepState*>& states,
                                   nn::ForwardContext* ctx) const;

  // True when StepForward advances resident recurrent state in O(1) per
  // observation; false when it replays the bounded rolling window (the
  // base-class default).
  virtual bool has_incremental_step() const { return false; }

  // Fewest observations before the model can score a window at all (e.g.
  // StageNet's conv kernel, attention modules needing two steps).
  virtual int64_t min_steps_to_score() const { return 1; }
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_SEQUENCE_MODEL_H_
