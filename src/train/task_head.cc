#include "train/task_head.h"

#include "autograd/ops.h"

namespace elda {
namespace train {
namespace {

// Validity of cell (b, t) of a per-step slab: a real (non-padding) step the
// model can score. Warm-up steps below min_steps_to_score() hold quiet-NaN
// logits and must never be selected into a loss.
std::vector<uint8_t> StepValidity(const SequenceModel& model,
                                  const data::Batch& batch) {
  const int64_t batch_size = batch.x.shape(0);
  const int64_t steps = batch.x.shape(1);
  const int64_t min_steps = model.min_steps_to_score();
  std::vector<uint8_t> valid(batch_size * steps, 0);
  for (int64_t b = 0; b < batch_size; ++b) {
    const int64_t len = batch.lengths.empty()
                            ? steps
                            : std::min<int64_t>(steps, batch.lengths[b]);
    for (int64_t t = min_steps - 1; t < len; ++t) {
      valid[b * steps + t] = 1;
    }
  }
  return valid;
}

}  // namespace

// -- BinaryTerminalHead ------------------------------------------------------

ag::Variable BinaryTerminalHead::Logits(const SequenceModel& model,
                                        const Encoding& enc,
                                        nn::ForwardContext* ctx) const {
  return model.Readout(enc.terminal, ctx);
}

ag::Variable BinaryTerminalHead::Loss(const SequenceModel& model,
                                      const ag::Variable& logits,
                                      const data::Batch& batch) const {
  (void)model;
  return ag::BceWithLogits(logits, batch.y);
}

void BinaryTerminalHead::Collect(const SequenceModel& model,
                                 const Tensor& probs, const data::Batch& batch,
                                 std::vector<float>* scores,
                                 std::vector<float>* labels,
                                 std::vector<uint8_t>* valid) const {
  (void)model;
  for (int64_t b = 0; b < probs.size(); ++b) {
    scores->push_back(probs[b]);
    labels->push_back(batch.y[b]);
    valid->push_back(1);
  }
}

// -- DecompensationHead ------------------------------------------------------

ag::Variable DecompensationHead::Logits(const SequenceModel& model,
                                        const Encoding& enc,
                                        nn::ForwardContext* ctx) const {
  ELDA_CHECK(model.has_step_encoding())
      << model.name() << " exposes no per-step encoding";
  ELDA_CHECK(enc.steps.defined())
      << "DecompensationHead needs Encode(..., want_steps=true)";
  const int64_t batch_size = enc.steps.value().shape(0);
  const int64_t steps = enc.steps.value().shape(1);
  const int64_t dim = enc.steps.value().shape(2);
  // Readout rows are batching-independent, so flattening [B, T, H] to
  // [B*T, H] scores every step bitwise as if each prefix had been the
  // terminal batch — warm-up NaN rows pass through as NaN logits.
  ag::Variable flat = ag::Reshape(enc.steps, {batch_size * steps, dim});
  return ag::Reshape(model.Readout(flat, ctx), {batch_size, steps});
}

ag::Variable DecompensationHead::Loss(const SequenceModel& model,
                                      const ag::Variable& logits,
                                      const data::Batch& batch) const {
  ELDA_CHECK(batch.has_multitask_labels())
      << "batch carries no per-step decompensation labels";
  return ag::MaskedBceWithLogits(logits, batch.y_decomp,
                                 StepValidity(model, batch));
}

void DecompensationHead::Collect(const SequenceModel& model,
                                 const Tensor& probs, const data::Batch& batch,
                                 std::vector<float>* scores,
                                 std::vector<float>* labels,
                                 std::vector<uint8_t>* valid) const {
  ELDA_CHECK(batch.has_multitask_labels());
  const std::vector<uint8_t> step_valid = StepValidity(model, batch);
  for (int64_t i = 0; i < probs.size(); ++i) {
    scores->push_back(probs.data()[i]);
    labels->push_back(batch.y_decomp.data()[i]);
    valid->push_back(step_valid[i]);
  }
}

// -- PhenotypeHead -----------------------------------------------------------

PhenotypeHead::PhenotypeHead(int64_t encoding_dim, int64_t num_phenotypes,
                             uint64_t seed)
    : rng_(seed), linear_(encoding_dim, num_phenotypes, true, &rng_) {
  RegisterSubmodule("linear", &linear_);
}

ag::Variable PhenotypeHead::Logits(const SequenceModel& model,
                                   const Encoding& enc,
                                   nn::ForwardContext* ctx) const {
  (void)model;
  (void)ctx;
  return linear_.Forward(enc.terminal);
}

ag::Variable PhenotypeHead::Loss(const SequenceModel& model,
                                 const ag::Variable& logits,
                                 const data::Batch& batch) const {
  (void)model;
  ELDA_CHECK(batch.has_multitask_labels())
      << "batch carries no phenotype labels";
  return ag::BceWithLogits(logits, batch.y_pheno);
}

void PhenotypeHead::Collect(const SequenceModel& model, const Tensor& probs,
                            const data::Batch& batch,
                            std::vector<float>* scores,
                            std::vector<float>* labels,
                            std::vector<uint8_t>* valid) const {
  (void)model;
  ELDA_CHECK(batch.has_multitask_labels());
  for (int64_t i = 0; i < probs.size(); ++i) {
    scores->push_back(probs.data()[i]);
    labels->push_back(batch.y_pheno.data()[i]);
    valid->push_back(1);
  }
}

// -- LosHead -----------------------------------------------------------------

LosHead::LosHead(int64_t encoding_dim, uint64_t seed)
    : rng_(seed), linear_(encoding_dim, 1, true, &rng_) {
  RegisterSubmodule("linear", &linear_);
}

ag::Variable LosHead::Logits(const SequenceModel& model, const Encoding& enc,
                             nn::ForwardContext* ctx) const {
  (void)model;
  (void)ctx;
  const int64_t batch_size = enc.terminal.value().shape(0);
  return ag::Reshape(linear_.Forward(enc.terminal), {batch_size});
}

ag::Variable LosHead::Loss(const SequenceModel& model,
                           const ag::Variable& logits,
                           const data::Batch& batch) const {
  (void)model;
  ELDA_CHECK(batch.y_los.defined()) << "batch carries no LOS labels";
  return ag::BceWithLogits(logits, batch.y_los);
}

void LosHead::Collect(const SequenceModel& model, const Tensor& probs,
                      const data::Batch& batch, std::vector<float>* scores,
                      std::vector<float>* labels,
                      std::vector<uint8_t>* valid) const {
  (void)model;
  for (int64_t b = 0; b < probs.size(); ++b) {
    scores->push_back(probs[b]);
    labels->push_back(batch.y_los[b]);
    valid->push_back(1);
  }
}

// -- MultiHead ---------------------------------------------------------------

TaskHead* MultiHead::Add(std::unique_ptr<TaskHead> head, float weight) {
  ELDA_CHECK(head != nullptr);
  for (const Entry& e : entries_) {
    ELDA_CHECK(e.head->task_name() != head->task_name())
        << "duplicate head for task " << head->task_name();
  }
  RegisterSubmodule(head->task_name(), head.get());
  entries_.push_back(Entry{std::move(head), weight});
  return entries_.back().head.get();
}

bool MultiHead::wants_steps() const {
  for (const Entry& e : entries_) {
    if (e.head->wants_steps()) return true;
  }
  return false;
}

std::vector<ag::Variable> MultiHead::Logits(const SequenceModel& model,
                                            const Encoding& enc,
                                            nn::ForwardContext* ctx) const {
  std::vector<ag::Variable> logits;
  logits.reserve(entries_.size());
  for (const Entry& e : entries_) {
    logits.push_back(e.head->Logits(model, enc, ctx));
  }
  return logits;
}

ag::Variable MultiHead::JointLoss(const SequenceModel& model,
                                  const Encoding& enc,
                                  const data::Batch& batch,
                                  nn::ForwardContext* ctx) const {
  ELDA_CHECK(!entries_.empty()) << "MultiHead has no heads";
  ag::Variable total;
  for (const Entry& e : entries_) {
    ag::Variable term = ag::MulScalar(
        e.head->Loss(model, e.head->Logits(model, enc, ctx), batch),
        e.weight);
    total = total.defined() ? ag::Add(total, term) : term;
  }
  return total;
}

// -- ModelWithHead -----------------------------------------------------------

ModelWithHead::ModelWithHead(SequenceModel* model, MultiHead* heads)
    : model_(model), heads_(heads) {
  ELDA_CHECK(model_ != nullptr && heads_ != nullptr);
  RegisterSubmodule("encoder", model_);
  RegisterSubmodule("heads", heads_);
}

}  // namespace train
}  // namespace elda
