// Task heads over the encoder/readout decomposition (see sequence_model.h).
//
// A SequenceModel is an encoder (batch -> representation rows) plus a
// binary-risk readout. A TaskHead turns those encodings into one clinical
// workload's logits and loss; labels ride in the multi-task data::Batch
// slabs (y / y_los / y_decomp / y_pheno), so heads need nothing beyond the
// batch itself. The four workloads:
//
//   BinaryTerminalHead   terminal risk via the model's own readout. Logits
//                        and loss recompose exactly the legacy monolithic
//                        Forward + BceWithLogits — bitwise, by construction.
//   DecompensationHead   per-step risk [B, T]: the model's readout applied
//                        to every row of EncodeSteps. Readout rows are
//                        batching-independent, so step t of row b is bitwise
//                        the terminal risk of the prefix [0, t] — and
//                        therefore bitwise what the streaming StepForward
//                        path emits for the same window (serve/service.h
//                        scores decompensation with no extra machinery).
//   PhenotypeHead        K-way multi-label phenotyping [B, K] from a
//                        head-owned linear layer on the terminal encoding.
//   LosHead              LOS > 7d from a head-owned linear layer.
//
// MultiHead composes several heads over ONE encoding bundle with a weighted
// joint loss; ModelWithHead bundles encoder + heads into a single Module so
// the optimizer, parameter serialization, and train checkpoints cover both.

#ifndef ELDA_TRAIN_TASK_HEAD_H_
#define ELDA_TRAIN_TASK_HEAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "train/sequence_model.h"

namespace elda {
namespace train {

class TaskHead : public nn::Module {
 public:
  // Stable workload key: "mortality", "decompensation", "phenotyping",
  // "los". Used for submodule registration, metric rows, and bench columns.
  virtual std::string task_name() const = 0;

  // True when the head consumes per-step encodings (Encoding::steps must be
  // populated — pass want_steps to SequenceModel::Encode accordingly).
  virtual bool wants_steps() const { return false; }

  // Pre-sigmoid logits from the shared encoding bundle. Shape is
  // head-specific: [B] terminal binary, [B, T] per-step, [B, K] multi-label.
  virtual ag::Variable Logits(const SequenceModel& model, const Encoding& enc,
                              nn::ForwardContext* ctx) const = 0;

  // Scalar training loss for `logits` against this head's label slab in
  // `batch`. Padding steps and warm-up steps below min_steps_to_score()
  // are masked out by selection (never read), not by zero-multiplication.
  virtual ag::Variable Loss(const SequenceModel& model,
                            const ag::Variable& logits,
                            const data::Batch& batch) const = 0;

  // Flattens (score, label, valid) triples for metric computation; `probs`
  // is Sigmoid over this head's logits. Appends to the output vectors so an
  // evaluation loop can accumulate across minibatches; `valid` marks padding
  // (metrics additionally skip non-finite warm-up scores — see
  // metrics/metrics.h).
  virtual void Collect(const SequenceModel& model, const Tensor& probs,
                       const data::Batch& batch, std::vector<float>* scores,
                       std::vector<float>* labels,
                       std::vector<uint8_t>* valid) const = 0;
};

// Terminal binary risk through the model's own readout: logits are
// Readout(terminal) — the exact legacy Forward — and the loss is the exact
// legacy BceWithLogits against batch.y (whichever primary task the batch
// was made for).
class BinaryTerminalHead : public TaskHead {
 public:
  std::string task_name() const override { return "mortality"; }
  ag::Variable Logits(const SequenceModel& model, const Encoding& enc,
                      nn::ForwardContext* ctx) const override;
  ag::Variable Loss(const SequenceModel& model, const ag::Variable& logits,
                    const data::Batch& batch) const override;
  void Collect(const SequenceModel& model, const Tensor& probs,
               const data::Batch& batch, std::vector<float>* scores,
               std::vector<float>* labels,
               std::vector<uint8_t>* valid) const override;
};

// Per-step decompensation risk [B, T]: the model's readout over every row
// of the per-step encoding. Requires has_step_encoding(). Loss is masked
// per-step BCE against batch.y_decomp; steps at or past lengths[b] and
// warm-up steps below min_steps_to_score() are excluded by selection.
class DecompensationHead : public TaskHead {
 public:
  std::string task_name() const override { return "decompensation"; }
  bool wants_steps() const override { return true; }
  ag::Variable Logits(const SequenceModel& model, const Encoding& enc,
                      nn::ForwardContext* ctx) const override;
  ag::Variable Loss(const SequenceModel& model, const ag::Variable& logits,
                    const data::Batch& batch) const override;
  void Collect(const SequenceModel& model, const Tensor& probs,
               const data::Batch& batch, std::vector<float>* scores,
               std::vector<float>* labels,
               std::vector<uint8_t>* valid) const override;
};

// Multi-label phenotyping [B, K] from a head-owned linear layer on the
// terminal encoding. Loss is mean BCE over all B*K cells; metrics are
// micro-averaged over the same cells.
class PhenotypeHead : public TaskHead {
 public:
  PhenotypeHead(int64_t encoding_dim, int64_t num_phenotypes, uint64_t seed);

  std::string task_name() const override { return "phenotyping"; }
  int64_t num_phenotypes() const { return linear_.out_features(); }
  ag::Variable Logits(const SequenceModel& model, const Encoding& enc,
                      nn::ForwardContext* ctx) const override;
  ag::Variable Loss(const SequenceModel& model, const ag::Variable& logits,
                    const data::Batch& batch) const override;
  void Collect(const SequenceModel& model, const Tensor& probs,
               const data::Batch& batch, std::vector<float>* scores,
               std::vector<float>* labels,
               std::vector<uint8_t>* valid) const override;

 private:
  Rng rng_;
  nn::Linear linear_;
};

// LOS > 7d from a head-owned linear layer on the terminal encoding; labels
// come from batch.y_los (always populated by MakeBatch).
class LosHead : public TaskHead {
 public:
  LosHead(int64_t encoding_dim, uint64_t seed);

  std::string task_name() const override { return "los"; }
  ag::Variable Logits(const SequenceModel& model, const Encoding& enc,
                      nn::ForwardContext* ctx) const override;
  ag::Variable Loss(const SequenceModel& model, const ag::Variable& logits,
                    const data::Batch& batch) const override;
  void Collect(const SequenceModel& model, const Tensor& probs,
               const data::Batch& batch, std::vector<float>* scores,
               std::vector<float>* labels,
               std::vector<uint8_t>* valid) const override;

 private:
  Rng rng_;
  nn::Linear linear_;
};

// Several heads over one shared encoding bundle with a weighted joint loss
//   L = sum_i w_i * L_i.
// Heads are owned and registered as submodules under their task_name in Add
// order, which fixes the parameter/checkpoint layout. With a single head of
// weight 1 the joint loss (value and gradients) is bitwise the head's own
// loss, so single-task training through MultiHead matches the legacy loop.
class MultiHead : public nn::Module {
 public:
  // Returns the added head for convenience. Task names must be unique.
  TaskHead* Add(std::unique_ptr<TaskHead> head, float weight = 1.0f);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const TaskHead& head(int64_t i) const { return *entries_[i].head; }
  float weight(int64_t i) const { return entries_[i].weight; }

  // True when any head consumes per-step encodings — the want_steps to pass
  // to SequenceModel::Encode.
  bool wants_steps() const;

  // Per-head logits in Add order over the shared bundle.
  std::vector<ag::Variable> Logits(const SequenceModel& model,
                                   const Encoding& enc,
                                   nn::ForwardContext* ctx) const;

  // Weighted joint loss; labels ride in `batch`'s label slabs.
  ag::Variable JointLoss(const SequenceModel& model, const Encoding& enc,
                         const data::Batch& batch,
                         nn::ForwardContext* ctx) const;

 private:
  struct Entry {
    std::unique_ptr<TaskHead> head;
    float weight = 1.0f;
  };
  std::vector<Entry> entries_;
};

// Encoder + heads as one Module: Parameters() / checkpoints / serialization
// cover the trunk first, then each head in Add order. Non-owning — both
// pointers must outlive the bundle.
class ModelWithHead : public nn::Module {
 public:
  ModelWithHead(SequenceModel* model, MultiHead* heads);

  SequenceModel* model() const { return model_; }
  MultiHead* heads() const { return heads_; }

 private:
  SequenceModel* model_;
  MultiHead* heads_;
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_TASK_HEAD_H_
