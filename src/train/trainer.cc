#include "train/trainer.h"

#include <algorithm>
#include <iostream>

#include "autograd/ops.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"

namespace elda {
namespace train {
namespace {

std::vector<float> LabelsFor(const std::vector<data::PreparedSample>& prepared,
                             const std::vector<int64_t>& indices,
                             data::Task task) {
  std::vector<float> labels;
  labels.reserve(indices.size());
  for (int64_t i : indices) {
    labels.push_back(task == data::Task::kMortality
                         ? prepared[i].mortality_label
                         : prepared[i].los_gt7_label);
  }
  return labels;
}

}  // namespace

PredictResult Trainer::Predict(
    SequenceModel* model, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    const PredictOptions& options) {
  PredictResult result;
  result.labels = LabelsFor(prepared, indices, task);
  result.scores.assign(indices.size(), 0.0f);
  if (indices.empty()) return result;

  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);
  const int64_t count = static_cast<int64_t>(indices.size());
  const int64_t num_batches = (count + batch_size - 1) / batch_size;
  const bool was_training = model->training();
  model->SetTraining(false);

  // Minibatch composition depends only on batch_size, and every minibatch
  // writes a disjoint score range, so the parallel path is bitwise
  // identical to running the batches back-to-back.
  auto run_batch = [&](int64_t b) {
    const int64_t start = b * batch_size;
    const int64_t end = std::min(count, start + batch_size);
    std::vector<int64_t> chunk(indices.begin() + start, indices.begin() + end);
    data::Batch batch = data::MakeBatch(prepared, chunk, task);
    Tensor probs = Sigmoid(model->Forward(batch).value());
    for (int64_t i = 0; i < probs.size(); ++i) {
      result.scores[static_cast<size_t>(start + i)] = probs[i];
    }
  };
  if (options.parallel) {
    par::ParallelFor(
        0, num_batches, /*grain=*/1,
        [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) run_batch(b);
        },
        options.num_threads);
  } else {
    for (int64_t b = 0; b < num_batches; ++b) run_batch(b);
  }

  model->SetTraining(was_training);
  return result;
}

EvalResult Trainer::Evaluate(
    SequenceModel* model, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    const PredictOptions& options) {
  const PredictResult predicted =
      Predict(model, prepared, indices, task, options);
  EvalResult result;
  result.bce = metrics::BceLoss(predicted.scores, predicted.labels);
  result.auc_roc = metrics::AucRoc(predicted.scores, predicted.labels);
  result.auc_pr = metrics::AucPr(predicted.scores, predicted.labels);
  return result;
}

TrainResult Trainer::Train(SequenceModel* model,
                           const std::vector<data::PreparedSample>& prepared,
                           const data::SplitIndices& split,
                           data::Task task) const {
  // Pin the thread count for the whole run (kernels + eval batching);
  // num_threads == 0 leaves the global --threads / ELDA_THREADS setting.
  par::ScopedNumThreads scoped_threads(config_.num_threads);
  TrainResult result;
  result.num_parameters = model->NumParameters();
  std::vector<ag::Variable> params = model->Parameters();
  optim::Adam adam(params, config_.learning_rate);
  Rng rng(config_.seed);
  data::Batcher batcher(&prepared, split.train, config_.batch_size, task,
                        &rng);

  double best_val_auc_pr = -1.0;
  std::vector<Tensor> best_params;
  int64_t epochs_without_improvement = 0;
  double total_batch_seconds = 0.0;
  int64_t total_batches = 0;

  for (int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    model->SetTraining(true);
    batcher.StartEpoch();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    while (batcher.Next(&batch)) {
      Stopwatch sw;
      adam.ZeroGrad();
      ag::Variable logits = model->Forward(batch);
      ag::Variable loss = ag::BceWithLogits(logits, batch.y);
      loss.Backward();
      if (config_.clip_norm > 0.0f) {
        optim::ClipGradNorm(params, config_.clip_norm);
      }
      adam.Step();
      total_batch_seconds += sw.Seconds();
      ++total_batches;
      epoch_loss += loss.value()[0];
      ++epoch_batches;
    }
    result.epochs_run = epoch + 1;

    const EvalResult val = Evaluate(model, prepared, split.val, task);
    if (config_.verbose) {
      std::cerr << model->name() << " epoch " << epoch
                << " train_bce=" << epoch_loss / epoch_batches
                << " val_auc_pr=" << val.auc_pr << "\n";
    }
    if (val.auc_pr > best_val_auc_pr) {
      best_val_auc_pr = val.auc_pr;
      result.val = val;
      result.best_epoch = epoch;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const ag::Variable& p : params) {
        best_params.push_back(p.value().Clone());
      }
    } else if (++epochs_without_improvement > config_.patience) {
      break;
    }
  }

  // Restore the best-validation parameters before the test evaluation.
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = best_params[i];
    }
  }
  result.test = Evaluate(model, prepared, split.test, task);
  result.train_seconds_per_batch =
      total_batches > 0 ? total_batch_seconds / total_batches : 0.0;

  // Single-sample prediction latency (Table III's "Prediction (ms)").
  if (!split.test.empty()) {
    model->SetTraining(false);
    const int64_t reps = 20;
    Stopwatch sw;
    for (int64_t r = 0; r < reps; ++r) {
      data::Batch one =
          data::MakeBatch(prepared, {split.test[0]}, task);
      model->Forward(one);
    }
    result.predict_ms_per_sample = sw.Milliseconds() / reps;
  }
  return result;
}

}  // namespace train
}  // namespace elda
