#include "train/trainer.h"

#include <iostream>

#include "autograd/ops.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"

namespace elda {
namespace train {
namespace {

std::vector<float> LabelsFor(const std::vector<data::PreparedSample>& prepared,
                             const std::vector<int64_t>& indices,
                             data::Task task) {
  std::vector<float> labels;
  labels.reserve(indices.size());
  for (int64_t i : indices) {
    labels.push_back(task == data::Task::kMortality
                         ? prepared[i].mortality_label
                         : prepared[i].los_gt7_label);
  }
  return labels;
}

}  // namespace

std::vector<float> Trainer::PredictScores(
    SequenceModel* model, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    int64_t batch_size) {
  const bool was_training = model->training();
  model->SetTraining(false);
  std::vector<float> scores;
  scores.reserve(indices.size());
  for (size_t start = 0; start < indices.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), start + static_cast<size_t>(batch_size));
    std::vector<int64_t> chunk(indices.begin() + start,
                               indices.begin() + end);
    data::Batch batch = data::MakeBatch(prepared, chunk, task);
    Tensor probs = Sigmoid(model->Forward(batch).value());
    for (int64_t i = 0; i < probs.size(); ++i) scores.push_back(probs[i]);
  }
  model->SetTraining(was_training);
  return scores;
}

EvalResult Trainer::Evaluate(
    SequenceModel* model, const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    int64_t batch_size) {
  const std::vector<float> scores =
      PredictScores(model, prepared, indices, task, batch_size);
  const std::vector<float> labels = LabelsFor(prepared, indices, task);
  EvalResult result;
  result.bce = metrics::BceLoss(scores, labels);
  result.auc_roc = metrics::AucRoc(scores, labels);
  result.auc_pr = metrics::AucPr(scores, labels);
  return result;
}

TrainResult Trainer::Train(SequenceModel* model,
                           const std::vector<data::PreparedSample>& prepared,
                           const data::SplitIndices& split,
                           data::Task task) const {
  TrainResult result;
  result.num_parameters = model->NumParameters();
  std::vector<ag::Variable> params = model->Parameters();
  optim::Adam adam(params, config_.learning_rate);
  Rng rng(config_.seed);
  data::Batcher batcher(&prepared, split.train, config_.batch_size, task,
                        &rng);

  double best_val_auc_pr = -1.0;
  std::vector<Tensor> best_params;
  int64_t epochs_without_improvement = 0;
  double total_batch_seconds = 0.0;
  int64_t total_batches = 0;

  for (int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    model->SetTraining(true);
    batcher.StartEpoch();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    while (batcher.Next(&batch)) {
      Stopwatch sw;
      adam.ZeroGrad();
      ag::Variable logits = model->Forward(batch);
      ag::Variable loss = ag::BceWithLogits(logits, batch.y);
      loss.Backward();
      if (config_.clip_norm > 0.0f) {
        optim::ClipGradNorm(params, config_.clip_norm);
      }
      adam.Step();
      total_batch_seconds += sw.Seconds();
      ++total_batches;
      epoch_loss += loss.value()[0];
      ++epoch_batches;
    }
    result.epochs_run = epoch + 1;

    const EvalResult val = Evaluate(model, prepared, split.val, task);
    if (config_.verbose) {
      std::cerr << model->name() << " epoch " << epoch
                << " train_bce=" << epoch_loss / epoch_batches
                << " val_auc_pr=" << val.auc_pr << "\n";
    }
    if (val.auc_pr > best_val_auc_pr) {
      best_val_auc_pr = val.auc_pr;
      result.val = val;
      result.best_epoch = epoch;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const ag::Variable& p : params) {
        best_params.push_back(p.value().Clone());
      }
    } else if (++epochs_without_improvement > config_.patience) {
      break;
    }
  }

  // Restore the best-validation parameters before the test evaluation.
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = best_params[i];
    }
  }
  result.test = Evaluate(model, prepared, split.test, task);
  result.train_seconds_per_batch =
      total_batches > 0 ? total_batch_seconds / total_batches : 0.0;

  // Single-sample prediction latency (Table III's "Prediction (ms)").
  if (!split.test.empty()) {
    model->SetTraining(false);
    const int64_t reps = 20;
    Stopwatch sw;
    for (int64_t r = 0; r < reps; ++r) {
      data::Batch one =
          data::MakeBatch(prepared, {split.test[0]}, task);
      model->Forward(one);
    }
    result.predict_ms_per_sample = sw.Milliseconds() / reps;
  }
  return result;
}

}  // namespace train
}  // namespace elda
